//! Offline, API-compatible subset of `serde`.
//!
//! Instead of serde's visitor architecture, serialization goes through a
//! self-describing JSON-shaped tree, [`Content`]: [`Serialize`] renders a
//! value into a `Content`, [`Deserialize`] rebuilds a value from one. The
//! `serde_json` stub turns `Content` into text and back. The derive
//! macros (re-exported from `serde_derive`) generate impls of these
//! traits for named structs and unit/newtype/struct-variant enums,
//! honoring `#[serde(default)]`, `#[serde(default = "path")]`,
//! `#[serde(tag = "…")]` and `#[serde(rename_all = "snake_case")]`.

#![warn(missing_docs)]
// Vendored stand-in for the crates.io crate; keep clippy out of it, as
// it would be for a registry dependency.
#![allow(clippy::all)]

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (exposed as `serde_json::Value`).
///
/// Maps preserve insertion order so serialized output is stable.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Content {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Nonnegative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object (ordered key → value pairs).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::U64(u) => Some(u as f64),
            Content::I64(i) => Some(i as f64),
            Content::F64(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a `u64`, if a nonnegative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::U64(u) => Some(u),
            Content::I64(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, if an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Content::U64(u) => i64::try_from(u).ok(),
            Content::I64(i) => Some(i),
            _ => None,
        }
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Content::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_array(&self) -> Option<&Vec<Content>> {
        match self {
            Content::Seq(v) => Some(v),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Content::Null)
    }

    /// The object's entries, if this is an object.
    pub fn as_map_entries(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up `key` if this is an object (also used via `Index`).
    pub fn get(&self, key: &str) -> Option<&Content> {
        self.as_map_entries()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// A short human-readable description of the value's type, for errors.
    pub fn type_name(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "a boolean",
            Content::U64(_) | Content::I64(_) => "an integer",
            Content::F64(_) => "a number",
            Content::Str(_) => "a string",
            Content::Seq(_) => "an array",
            Content::Map(_) => "an object",
        }
    }
}

static NULL: Content = Content::Null;

impl std::ops::Index<&str> for Content {
    type Output = Content;
    fn index(&self, key: &str) -> &Content {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Content {
    type Output = Content;
    fn index(&self, idx: usize) -> &Content {
        match self {
            Content::Seq(v) => v.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Finds `key` among object entries (helper used by derive-generated
/// code).
pub fn content_find<'a>(entries: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error: a message plus the reverse path of fields it
/// occurred under.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    msg: String,
    path: Vec<String>,
}

impl DeError {
    /// A free-form error.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self {
            msg: msg.into(),
            path: Vec::new(),
        }
    }

    /// "expected X, found Y" while deserializing `target`.
    pub fn type_error(target: &str, expected: &str, found: &Content) -> Self {
        Self::custom(format!(
            "invalid type for {target}: expected {expected}, found {}",
            found.type_name()
        ))
    }

    /// A required field was absent.
    pub fn missing_field(target: &str, field: &str) -> Self {
        Self::custom(format!("missing field `{field}` for {target}"))
    }

    /// An enum tag didn't match any variant.
    pub fn unknown_variant(target: &str, got: &str, expected: &[&str]) -> Self {
        Self::custom(format!(
            "unknown variant `{got}` for {target}, expected one of: {}",
            expected.join(", ")
        ))
    }

    /// Wraps the error with the field it occurred in (innermost first).
    pub fn at_field(mut self, field: &str) -> Self {
        self.path.insert(0, field.to_string());
        self
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.path.is_empty() {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "at `{}`: {}", self.path.join("."), self.msg)
        }
    }
}

impl std::error::Error for DeError {}

/// Serialization into a [`Content`] tree.
pub trait Serialize {
    /// Renders `self` as a content tree.
    fn serialize(&self) -> Content;
}

/// Reconstruction from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, reporting the offending field on failure.
    fn deserialize(v: &Content) -> Result<Self, DeError>;
}

impl Serialize for Content {
    fn serialize(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn deserialize(v: &Content) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Content) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::type_error("bool", "a boolean", v))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Content) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::type_error("String", "a string", v))
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Content) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError::type_error("f64", "a number", v))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Content) -> Result<Self, DeError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::type_error("f32", "a number", v))
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Content) -> Result<Self, DeError> {
                let u = v.as_u64().ok_or_else(|| {
                    DeError::type_error(stringify!($t), "a nonnegative integer", v)
                })?;
                <$t>::try_from(u).map_err(|_| {
                    DeError::custom(format!(
                        "integer {u} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                let i = *self as i64;
                if i >= 0 { Content::U64(i as u64) } else { Content::I64(i) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Content) -> Result<Self, DeError> {
                let i = v.as_i64().ok_or_else(|| {
                    DeError::type_error(stringify!($t), "an integer", v)
                })?;
                <$t>::try_from(i).map_err(|_| {
                    DeError::custom(format!(
                        "integer {i} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Content {
        match self {
            Some(x) => x.serialize(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Content) -> Result<Self, DeError> {
        if v.is_null() {
            Ok(None)
        } else {
            T::deserialize(v).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Content {
        self.as_slice().serialize()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Content {
        self.as_slice().serialize()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Content) -> Result<Self, DeError> {
        let arr = v
            .as_array()
            .ok_or_else(|| DeError::type_error("Vec", "an array", v))?;
        arr.iter()
            .enumerate()
            .map(|(i, x)| T::deserialize(x).map_err(|e| e.at_field(&format!("[{i}]"))))
            .collect()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Content {
                Content::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Content) -> Result<Self, DeError> {
                let arr = v
                    .as_array()
                    .ok_or_else(|| DeError::type_error("tuple", "an array", v))?;
                let expected = [$($idx),+].len();
                if arr.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected an array of length {expected}, found {}",
                        arr.len()
                    )));
                }
                Ok(($($name::deserialize(&arr[$idx])
                    .map_err(|e| e.at_field(&format!("[{}]", $idx)))?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(f64::deserialize(&3.5f64.serialize()).unwrap(), 3.5);
        assert_eq!(u64::deserialize(&7u64.serialize()).unwrap(), 7);
        assert_eq!(usize::deserialize(&Content::U64(3)).unwrap(), 3);
        assert_eq!(bool::deserialize(&true.serialize()).unwrap(), true);
        assert_eq!(
            String::deserialize(&"hi".serialize()).unwrap(),
            "hi".to_string()
        );
    }

    #[test]
    fn numeric_coercions() {
        // JSON configs write `1` where an f64 field is declared.
        assert_eq!(f64::deserialize(&Content::U64(2)).unwrap(), 2.0);
        assert_eq!(f64::deserialize(&Content::I64(-2)).unwrap(), -2.0);
        assert!(u64::deserialize(&Content::F64(1.5)).is_err());
        assert!(u64::deserialize(&Content::I64(-1)).is_err());
    }

    #[test]
    fn vec_and_tuple_round_trips() {
        let v = vec![(1usize, 2.5f64), (3, 4.5)];
        let back: Vec<(usize, f64)> = Deserialize::deserialize(&v.serialize()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn option_null_handling() {
        let none: Option<f64> = None;
        assert!(none.serialize().is_null());
        let got: Option<f64> = Deserialize::deserialize(&Content::Null).unwrap();
        assert_eq!(got, None);
        let got: Option<f64> = Deserialize::deserialize(&Content::F64(1.0)).unwrap();
        assert_eq!(got, Some(1.0));
    }

    #[test]
    fn errors_name_the_field_path() {
        let v = Content::Map(vec![(
            "outer".to_string(),
            Content::Str("not a number".to_string()),
        )]);
        let err = f64::deserialize(&v["outer"]).unwrap_err().at_field("outer");
        let msg = err.to_string();
        assert!(msg.contains("outer"), "{msg}");
        assert!(msg.contains("expected a number"), "{msg}");
    }

    #[test]
    fn index_on_missing_key_gives_null() {
        let v = Content::Map(vec![]);
        assert!(v["nope"].is_null());
        assert!(v[0].is_null());
    }
}
