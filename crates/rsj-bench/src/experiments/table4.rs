//! Table 4: the two discretization-based heuristics as a function of the
//! number of samples `n` — the paper's own convergence ablation.

use crate::report::{fmt_ratio, Table};
use crate::scenarios::{paper_distributions, Fidelity, EPSILON};
use rand::SeedableRng;
use rsj_core::{draw_samples, expected_cost_monte_carlo, CostModel, DiscretizedDp, Strategy};
use rsj_dist::DiscretizationScheme;
use rsj_par::Parallelism;

/// The paper's sample-count sweep.
pub const PAPER_NS: [usize; 7] = [10, 25, 50, 100, 250, 500, 1000];
/// Reduced sweep for smoke runs.
pub const QUICK_NS: [usize; 4] = [10, 50, 100, 250];

/// One distribution's Table 4 row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Distribution label.
    pub distribution: String,
    /// Normalized cost per `n` for Equal-time.
    pub equal_time: Vec<(usize, Option<f64>)>,
    /// Normalized cost per `n` for Equal-probability.
    pub equal_probability: Vec<(usize, Option<f64>)>,
}

fn ns(fidelity: Fidelity) -> Vec<usize> {
    match fidelity {
        Fidelity::Paper => PAPER_NS.to_vec(),
        Fidelity::Quick => QUICK_NS.to_vec(),
    }
}

/// Computes the Table 4 data; both schemes of one distribution are scored
/// on the same Monte-Carlo samples.
pub fn compute(fidelity: Fidelity, seed: u64) -> Vec<Row> {
    let cost = CostModel::reservation_only();
    let sweep = ns(fidelity);
    let dists = paper_distributions();
    Parallelism::current().par_map(&dists, |i, nd| {
        let mut rng =
            rand::rngs::StdRng::seed_from_u64(seed.wrapping_mul(97).wrapping_add(i as u64));
        let samples = draw_samples(nd.dist.as_ref(), fidelity.samples(), &mut rng);
        let omniscient = cost.omniscient(nd.dist.as_ref());
        let score = |scheme: DiscretizationScheme, n: usize| -> Option<f64> {
            let h = DiscretizedDp::new(scheme, n, EPSILON).ok()?;
            let seq = h.sequence(nd.dist.as_ref(), &cost).ok()?;
            Some(expected_cost_monte_carlo(&seq, &cost, &samples) / omniscient)
        };
        Row {
            distribution: nd.name.to_string(),
            equal_time: sweep
                .iter()
                .map(|&n| (n, score(DiscretizationScheme::EqualTime, n)))
                .collect(),
            equal_probability: sweep
                .iter()
                .map(|&n| (n, score(DiscretizationScheme::EqualProbability, n)))
                .collect(),
        }
    })
}

/// Renders the paper's (wide) layout.
pub fn render(rows: &[Row]) -> Result<Table, crate::report::ReportError> {
    let sweep: Vec<usize> = rows
        .first()
        .map(|r| r.equal_time.iter().map(|&(n, _)| n).collect())
        .unwrap_or_default();
    let mut header = vec!["Distribution".to_string()];
    for n in &sweep {
        header.push(format!("ET n={n}"));
    }
    for n in &sweep {
        header.push(format!("EP n={n}"));
    }
    let mut table = Table::new(header);
    for row in rows {
        let mut cells = vec![row.distribution.clone()];
        cells.extend(row.equal_time.iter().map(|&(_, c)| fmt_ratio(c)));
        cells.extend(row.equal_probability.iter().map(|&(_, c)| fmt_ratio(c)));
        table.push_row(cells)?;
    }
    Ok(table)
}

/// Runs the experiment and writes `results/table4.{md,csv}`.
pub fn emit(fidelity: Fidelity, seed: u64) -> std::io::Result<Vec<Row>> {
    let rows = compute(fidelity, seed);
    render(&rows)?.emit(
        "table4",
        "Table 4 — discretization-based heuristics vs number of samples n (ET = Equal-time, EP = Equal-probability)",
    )?;
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_shape() {
        let rows = compute(Fidelity::Quick, 13);
        assert_eq!(rows.len(), 9);
        for r in &rows {
            assert_eq!(r.equal_time.len(), QUICK_NS.len());
            assert_eq!(r.equal_probability.len(), QUICK_NS.len());
        }
    }

    #[test]
    fn uniform_is_flat_at_4_thirds() {
        // Table 4's Uniform row: 1.33 for every n and both schemes.
        let rows = compute(Fidelity::Quick, 13);
        let uniform = rows.iter().find(|r| r.distribution == "Uniform").unwrap();
        for (n, c) in uniform.equal_time.iter().chain(&uniform.equal_probability) {
            let v = c.unwrap();
            assert!((v - 4.0 / 3.0).abs() < 0.05, "n={n}: {v}");
        }
    }

    #[test]
    fn costs_improve_with_more_samples_for_heavy_tails() {
        // Table 4's most dramatic rows: Weibull and Pareto start terrible
        // at n = 10 and converge.
        let rows = compute(Fidelity::Quick, 13);
        for name in ["Weibull", "Pareto"] {
            let row = rows.iter().find(|r| r.distribution == name).unwrap();
            let first = row.equal_time.first().unwrap().1.unwrap();
            let last = row.equal_time.last().unwrap().1.unwrap();
            assert!(
                first > last * 1.5,
                "{name}: n=10 cost {first} should far exceed n=250 cost {last}"
            );
        }
    }

    #[test]
    fn converged_costs_are_moderate() {
        let rows = compute(Fidelity::Quick, 13);
        for r in &rows {
            let last_et = r.equal_time.last().unwrap().1.unwrap();
            let last_ep = r.equal_probability.last().unwrap().1.unwrap();
            assert!(last_et < 4.0, "{}: ET {last_et}", r.distribution);
            assert!(last_ep < 4.0, "{}: EP {last_ep}", r.distribution);
        }
    }
}
