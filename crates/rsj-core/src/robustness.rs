//! Model-misspecification analysis: the paper's NeuroHPC pipeline plans on
//! a *fitted* LogNormal, not on the unknown true law (§5.3, Fig. 1). This
//! module quantifies what that costs: plan a sequence on an `assumed`
//! distribution, then evaluate it under the `truth`.

use crate::cost::CostModel;
use crate::error::{CoreError, Result};
use crate::eval::expected_cost_analytic;
use crate::heuristics::Strategy;
use crate::sequence::ReservationSequence;
use rsj_dist::ContinuousDistribution;
use serde::{Deserialize, Serialize};

/// Outcome of planning under a (possibly wrong) assumed distribution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MisspecReport {
    /// Expected cost, under the truth, of the sequence planned on the
    /// assumed law.
    pub planned_cost: f64,
    /// Expected cost, under the truth, of the sequence the same strategy
    /// produces when given the truth (the information-oracle baseline).
    pub oracle_cost: f64,
    /// `planned_cost / oracle_cost` — 1.0 means the misspecification was
    /// free; large values mean the plan is fragile.
    pub penalty_ratio: f64,
    /// Cost the *planner believed* it would pay (expected cost of the plan
    /// under the assumed law). Comparing with `planned_cost` reveals
    /// optimism/pessimism of the model.
    pub believed_cost: f64,
}

/// Plans with `strategy` on `assumed` and scores the result under `truth`.
///
/// The planned sequence may not cover the truth's tail as deeply as a
/// correctly-specified plan would; the evaluators' geometric extension
/// keeps the score well defined (and charges appropriately for the
/// surprise).
///
/// A zero or non-finite oracle cost — possible only when one of the
/// distributions is malformed (NaN moments, empty support) — would turn
/// `penalty_ratio` into `inf`/`NaN`; it is reported as
/// [`CoreError::DegenerateEvaluation`] instead of poisoning downstream
/// reports. The same guard covers a non-finite planned cost.
pub fn misspecification_report(
    strategy: &dyn Strategy,
    assumed: &dyn ContinuousDistribution,
    truth: &dyn ContinuousDistribution,
    cost: &CostModel,
) -> Result<MisspecReport> {
    let planned: ReservationSequence = strategy.sequence(assumed, cost)?;
    let oracle_seq = strategy.sequence(truth, cost)?;
    let planned_cost = expected_cost_with_extension(&planned, truth, cost);
    let oracle_cost = expected_cost_with_extension(&oracle_seq, truth, cost);
    if !(oracle_cost.is_finite() && oracle_cost > 0.0) {
        return Err(CoreError::DegenerateEvaluation {
            what: "oracle expected cost",
            value: oracle_cost,
        });
    }
    if !planned_cost.is_finite() {
        return Err(CoreError::DegenerateEvaluation {
            what: "planned expected cost",
            value: planned_cost,
        });
    }
    Ok(MisspecReport {
        planned_cost,
        oracle_cost,
        penalty_ratio: planned_cost / oracle_cost,
        believed_cost: expected_cost_analytic(&planned, assumed, cost),
    })
}

/// Eq. 4 series including the sequence's geometric extension until the
/// evaluation distribution's tail is exhausted — needed because a plan
/// made on a lighter-tailed assumed law may stop far short of the truth's
/// tail.
pub fn expected_cost_with_extension(
    seq: &ReservationSequence,
    dist: &dyn ContinuousDistribution,
    cost: &CostModel,
) -> f64 {
    let mut total = cost.beta * dist.mean();
    let mut t_prev = 0.0;
    let mut k = 0usize;
    loop {
        let surv = if t_prev == 0.0 {
            1.0
        } else {
            dist.survival(t_prev)
        };
        if surv < 1e-14 || k > 1_000_000 {
            return total;
        }
        let t_next = seq.reservation(k);
        total += (cost.alpha * t_next + cost.beta * t_prev + cost.gamma) * surv;
        t_prev = t_next;
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::{DiscretizedDp, MeanByMean};
    use rsj_dist::{DiscretizationScheme, LogNormal, Weibull};

    #[test]
    fn correctly_specified_has_unit_penalty() {
        let d = LogNormal::new(3.0, 0.5).unwrap();
        let c = CostModel::reservation_only();
        let s = MeanByMean::default();
        let r = misspecification_report(&s, &d, &d, &c).unwrap();
        assert!((r.penalty_ratio - 1.0).abs() < 1e-12);
        // believed uses the prefix series (tail cutoff 1e-12), planned the
        // deeper extension evaluator: equal up to that tail sliver.
        assert!((r.believed_cost - r.planned_cost).abs() / r.planned_cost < 1e-6);
    }

    #[test]
    fn extension_evaluator_matches_plain_on_deep_sequences() {
        let d = LogNormal::new(3.0, 0.5).unwrap();
        let c = CostModel::new(1.0, 0.5, 0.1).unwrap();
        let seq = crate::heuristics::Strategy::sequence(&MeanByMean::default(), &d, &c).unwrap();
        let plain = expected_cost_analytic(&seq, &d, &c);
        let extended = expected_cost_with_extension(&seq, &d, &c);
        assert!(
            (plain - extended).abs() / plain < 1e-6,
            "plain {plain} vs extended {extended}"
        );
    }

    #[test]
    fn underestimating_scale_is_penalized() {
        // Assume the job is half as long as it really is.
        let truth = LogNormal::new(3.0, 0.5).unwrap();
        let assumed = LogNormal::new(3.0 - std::f64::consts::LN_2, 0.5).unwrap();
        let c = CostModel::reservation_only();
        let dp = DiscretizedDp::new(DiscretizationScheme::EqualProbability, 400, 1e-7).unwrap();
        let r = misspecification_report(&dp, &assumed, &truth, &c).unwrap();
        assert!(
            r.penalty_ratio > 1.005,
            "halving the scale must cost something: {}",
            r.penalty_ratio
        );
        // And the planner believed it would pay less than it does.
        assert!(r.believed_cost < r.planned_cost);
    }

    #[test]
    fn wrong_family_with_matched_moments_is_mild() {
        // Plan on a LogNormal moment-matched to a Weibull truth: the §5.3
        // fitting approach. The penalty exists but stays moderate.
        let truth = Weibull::new(1.0, 1.5).unwrap();
        let assumed = LogNormal::from_moments(truth.mean(), truth.variance().sqrt()).unwrap();
        let c = CostModel::reservation_only();
        let dp = DiscretizedDp::new(DiscretizationScheme::EqualProbability, 400, 1e-7).unwrap();
        let r = misspecification_report(&dp, &assumed, &truth, &c).unwrap();
        assert!(r.penalty_ratio >= 1.0 - 1e-9);
        assert!(
            r.penalty_ratio < 1.25,
            "moment-matched family swap should be mild: {}",
            r.penalty_ratio
        );
    }

    #[test]
    fn degenerate_oracle_cost_is_a_typed_error_not_nan() {
        use rsj_dist::Support;
        // Plans fine (finite mean / conditional means) but evaluates to
        // NaN: the survival function is broken, as a corrupted refit model
        // could be.
        #[derive(Debug)]
        struct BrokenSurvival;
        impl ContinuousDistribution for BrokenSurvival {
            fn name(&self) -> String {
                "BrokenSurvival".into()
            }
            fn support(&self) -> Support {
                Support::Unbounded { lower: 0.0 }
            }
            fn pdf(&self, _t: f64) -> f64 {
                0.1
            }
            fn cdf(&self, _t: f64) -> f64 {
                0.5
            }
            fn quantile(&self, _p: f64) -> f64 {
                1.0
            }
            fn survival(&self, _t: f64) -> f64 {
                f64::NAN
            }
            fn conditional_mean_above(&self, t: f64) -> f64 {
                t + 1.0
            }
            fn mean(&self) -> f64 {
                1.0
            }
            fn variance(&self) -> f64 {
                1.0
            }
        }
        let c = CostModel::reservation_only();
        let s = MeanByMean::default();
        let err = misspecification_report(&s, &BrokenSurvival, &BrokenSurvival, &c).unwrap_err();
        assert!(
            matches!(
                err,
                crate::error::CoreError::DegenerateEvaluation {
                    what: "oracle expected cost",
                    ..
                }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn more_variance_misjudgment_costs_more() {
        let truth = LogNormal::new(3.0, 0.8).unwrap();
        let c = CostModel::reservation_only();
        let dp = DiscretizedDp::new(DiscretizationScheme::EqualProbability, 300, 1e-7).unwrap();
        let mild = LogNormal::new(3.0, 0.7).unwrap();
        let severe = LogNormal::new(3.0, 0.3).unwrap();
        let r_mild = misspecification_report(&dp, &mild, &truth, &c).unwrap();
        let r_severe = misspecification_report(&dp, &severe, &truth, &c).unwrap();
        assert!(
            r_severe.penalty_ratio > r_mild.penalty_ratio,
            "severe {} vs mild {}",
            r_severe.penalty_ratio,
            r_mild.penalty_ratio
        );
    }
}
