//! Regenerates the paper's table4 (see rsj-bench docs).

use rsj_bench::scenarios::Fidelity;

fn main() -> std::io::Result<()> {
    rsj_obs::init_from_env();
    let fidelity = Fidelity::from_env();
    rsj_obs::info!("running table4 at {fidelity:?} fidelity (RSJ_FIDELITY=quick for a fast pass)");
    rsj_bench::experiments::table4::emit(fidelity, rsj_bench::DEFAULT_SEED)?;
    Ok(())
}
