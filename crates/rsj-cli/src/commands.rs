//! Command implementations, pure enough to unit-test: each takes a parsed
//! configuration and returns its textual (or JSON) report.

use crate::config::{AdaptiveSpec, EvaluateConfig, PlanConfig, SimulateConfig};
use rand::SeedableRng;
use reservation_strategies::Planner;
use rsj_core::{
    coverage_gap, expected_cost_analytic, expected_cost_monte_carlo, CostModel, ReservationSequence,
};
use rsj_dist::ContinuousDistribution;
use rsj_sim::{
    analyze_wait_times, cost_model_from_queue, generate_workload, run_adaptive,
    simulate_with_faults, summarize, AdaptiveReport, ClusterConfig, FaultConfig, SchedulerPolicy,
    WaitTimeAnalysis, WorkloadConfig,
};
use rsj_traces::fit_archive;
use rsj_traces::TraceArchive;
use serde::Serialize;
use serde_json::json;

/// Renders `value` as pretty JSON (used by `--json`).
fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("serializable reports")
}

/// `rsj plan`: compute a ladder and report costs. Runs entirely through
/// the [`Planner`] facade, so `--json` output is the facade's [`Plan`]
/// (digest included) — byte-comparable with `rsj-serve` responses.
///
/// With `explain_solver` the report also attributes the solve: which DP
/// path fired (the `O(n log n)` monotone envelope vs the exact `O(n²)`
/// pass, and why) and whether the discretization table came warm from
/// the process-wide cache. The same labels ride on the trace timeline's
/// `solve` stage args in serve mode, so offline and traced runs can be
/// cross-checked. In `--json` mode the explanation wraps the plan as
/// `{"plan": ..., "solver_explanation": ...}` — opt-in, so plain plan
/// output stays byte-comparable.
///
/// [`Plan`]: reservation_strategies::Plan
pub fn run_plan(cfg: &PlanConfig, json: bool, explain_solver: bool) -> Result<String, String> {
    let plan = Planner::builder()
        .distribution(cfg.distribution.clone())
        .cost_rates(cfg.cost.alpha, cfg.cost.beta, cfg.cost.gamma)
        .solver(cfg.heuristic.clone())
        .build()
        .map_err(|e| e.to_string())?
        .plan()
        .map_err(|e| e.to_string())?;
    // Read the per-thread attribution immediately: the planner cleared it
    // right before this solve, so it cannot be stale.
    let dp_path = explain_solver.then(rsj_core::last_dp_path).flatten();
    let eval_source = explain_solver.then(rsj_dist::last_eval_source).flatten();

    if json {
        if explain_solver {
            return Ok(to_json(&json!({
                "plan": plan,
                "solver_explanation": json!({
                    "dp_path": dp_path.map(rsj_core::DpPath::as_str),
                    "eval_table": eval_source.map(rsj_dist::EvalTableSource::as_str),
                }),
            })));
        }
        return Ok(to_json(&plan));
    }

    let mut out = String::new();
    out.push_str(&format!("distribution:     {}\n", plan.distribution));
    out.push_str(&format!(
        "cost model:       C(R, t) = {}·R + {}·min(R,t) + {}\n",
        cfg.cost.alpha, cfg.cost.beta, cfg.cost.gamma
    ));
    out.push_str(&format!("solver:           {}\n", plan.solver));
    let shown: Vec<String> = plan
        .sequence
        .iter()
        .take(cfg.show)
        .map(|t| format!("{t:.4}"))
        .collect();
    out.push_str(&format!(
        "request ladder:   {}{}\n",
        shown.join(", "),
        if plan.sequence.len() > cfg.show {
            ", …"
        } else {
            ""
        }
    ));
    out.push_str(&format!("ladder length:    {}\n", plan.sequence.len()));
    out.push_str(&format!("expected cost:    {:.4}\n", plan.expected_cost));
    out.push_str(&format!(
        "vs omniscient:    {:.4} (E° = {:.4})\n",
        plan.normalized_cost, plan.omniscient_cost
    ));
    out.push_str(&format!("plan digest:      {}\n", plan.digest));
    if plan.coverage_gap > 0.0 {
        out.push_str(&format!(
            "tail gap:         P(X ≥ last) = {:.2e}\n",
            plan.coverage_gap
        ));
    }
    if explain_solver {
        let path = match dp_path {
            Some(rsj_core::DpPath::Monotone) => "monotone O(n log n) envelope (runtime gate fired)",
            Some(rsj_core::DpPath::ExactDeclined) => {
                "exact O(n²) pass (monotone gate declined at runtime)"
            }
            Some(rsj_core::DpPath::ExactForced) => "exact O(n²) pass (monotone fast path disabled)",
            None => "no discretized DP (closed-form or sampling heuristic)",
        };
        let table = match eval_source {
            Some(rsj_dist::EvalTableSource::CacheHit) => "warm (process-wide cache hit)",
            Some(rsj_dist::EvalTableSource::Built) => "cold (discretized and evaluated fresh)",
            None => "none (solver did not discretize)",
        };
        out.push_str(&format!("solver path:      {path}\n"));
        out.push_str(&format!("eval table:       {table}\n"));
    }
    Ok(out)
}

/// `rsj risk`: the exact cost-risk profile of a planned ladder (quantiles,
/// attempt counts). Reuses the plan configuration.
pub fn run_risk(cfg: &PlanConfig, json: bool) -> Result<String, String> {
    let dist = cfg.distribution.build().map_err(|e| e.to_string())?;
    let cost = cfg.cost.build()?;
    let heuristic = cfg.heuristic.build().map_err(|e| e.to_string())?;
    let seq = heuristic
        .sequence(dist.as_ref(), &cost)
        .map_err(|e| e.to_string())?;
    let profile = rsj_core::risk_profile(&seq, dist.as_ref(), &cost);
    let quantiles: Vec<(f64, f64)> = [0.5, 0.9, 0.95, 0.99]
        .iter()
        .map(|&q| (q, profile.cost_quantile(dist.as_ref(), q)))
        .collect();

    if json {
        return Ok(to_json(&json!({
            "heuristic": heuristic.name(),
            "expected_cost": profile.expected_cost(dist.as_ref()),
            "cost_quantiles": quantiles,
            "expected_reservations": profile.expected_reservations(),
            "prob_more_than_2_reservations": profile.prob_more_than(2),
        })));
    }

    let mut out = String::new();
    out.push_str(&format!(
        "risk profile of {} on {}\n",
        heuristic.name(),
        dist.name()
    ));
    out.push_str(&format!(
        "expected cost:        {:.4}\n",
        profile.expected_cost(dist.as_ref())
    ));
    for (q, v) in quantiles {
        out.push_str(&format!(
            "budget at p{:<3}       {v:.4}\n",
            (q * 100.0) as u32
        ));
    }
    out.push_str(&format!(
        "expected attempts:    {:.3}\n",
        profile.expected_reservations()
    ));
    out.push_str(&format!(
        "P(> 2 attempts):      {:.2}%\n",
        profile.prob_more_than(2) * 100.0
    ));
    Ok(out)
}

/// `rsj evaluate`: score an explicit sequence.
pub fn run_evaluate(cfg: &EvaluateConfig, json: bool) -> Result<String, String> {
    let dist = cfg.distribution.build().map_err(|e| e.to_string())?;
    let cost = cfg.cost.build()?;
    let seq =
        ReservationSequence::new(cfg.sequence.clone(), cfg.complete).map_err(|e| e.to_string())?;
    let analytic = expected_cost_analytic(&seq, dist.as_ref(), &cost);
    let omniscient = cost.omniscient(dist.as_ref());
    let mc = if cfg.monte_carlo_samples > 0 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
        let samples = rsj_core::draw_samples(dist.as_ref(), cfg.monte_carlo_samples, &mut rng);
        Some(expected_cost_monte_carlo(&seq, &cost, &samples))
    } else {
        None
    };

    if json {
        return Ok(to_json(&json!({
            "analytic_expected_cost": analytic,
            "monte_carlo_expected_cost": mc,
            "omniscient_cost": omniscient,
            "normalized_cost": analytic / omniscient,
            "coverage_gap": coverage_gap(&seq, dist.as_ref()),
        })));
    }

    let mut out = String::new();
    out.push_str(&format!("analytic expected cost:  {analytic:.4}\n"));
    if let Some(mc) = mc {
        out.push_str(&format!(
            "monte-carlo ({} samples): {mc:.4}\n",
            cfg.monte_carlo_samples
        ));
    }
    out.push_str(&format!(
        "normalized vs omniscient: {:.4}\n",
        analytic / omniscient
    ));
    Ok(out)
}

/// `rsj fit`: LogNormal fits of a runtime-trace CSV.
pub fn run_fit(csv_text: &str, json: bool) -> Result<String, String> {
    let archive = TraceArchive::from_csv(csv_text)?;
    let reports = fit_archive(&archive)?;
    if reports.is_empty() {
        return Err("archive contains no applications".into());
    }
    if json {
        return Ok(to_json(&reports));
    }
    let mut out = String::new();
    for r in &reports {
        out.push_str(&format!(
            "{}: {} runs → LogNormal(μ={:.4}, σ={:.4}); mean {:.2}s, std {:.2}s; KS {:.4} ({})\n",
            r.app,
            r.runs,
            r.mu,
            r.sigma,
            r.natural_mean,
            r.natural_std,
            r.ks_statistic,
            if r.acceptable() {
                "fit OK"
            } else {
                "REJECTED at 1%"
            },
        ));
    }
    Ok(out)
}

/// `rsj simulate`: queue simulation + Figure 2 analysis.
pub fn run_simulate(cfg: &SimulateConfig, json: bool) -> Result<String, String> {
    let policy = match cfg.policy.as_str() {
        "fcfs" => SchedulerPolicy::Fcfs,
        "easy" => SchedulerPolicy::EasyBackfill,
        "conservative" => SchedulerPolicy::Conservative,
        "slurm" => SchedulerPolicy::SlurmLike(rsj_sim::PriorityConfig {
            high_priority_proc_hours: 100.0,
            upgrade_after: 24.0,
        }),
        other => {
            return Err(format!(
                "unknown policy: {other} (use fcfs|easy|conservative|slurm)"
            ))
        }
    };
    let runtime = cfg.runtime.build().map_err(|e| e.to_string())?;
    let workload = WorkloadConfig {
        arrival_rate: cfg.arrival_rate,
        processor_choices: cfg.widths.clone(),
        overestimate: cfg.overestimate,
        count: cfg.jobs,
    };
    workload.validate()?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    let jobs = generate_workload(&workload, runtime.as_ref(), &mut rng);
    let cluster = ClusterConfig {
        processors: cfg.processors,
        policy,
    };
    let faults = cfg.faults.unwrap_or_else(FaultConfig::none);
    let records = simulate_with_faults(&cluster, &jobs, &faults).map_err(|e| e.to_string())?;
    let summary = summarize(&records, cfg.processors);

    let mut analyses = Vec::new();
    for &w in &cfg.analyze_widths {
        if let Some(a) = analyze_wait_times(&records, w, cfg.groups) {
            analyses.push(a);
        }
    }

    let adaptive = match &cfg.adaptive {
        Some(spec) => Some(run_adaptive_section(spec, runtime.as_ref(), &analyses)?),
        None => None,
    };

    if json {
        return Ok(to_json(&json!({
            "summary": summary,
            "fits": analyses.iter().map(|a| json!({
                "processors": a.processors,
                "alpha": a.fit.slope,
                "gamma": a.fit.intercept,
                "r_squared": a.fit.r_squared,
            })).collect::<Vec<_>>(),
            "adaptive": adaptive.as_ref().map(|r| json!({
                "jobs": r.jobs.len(),
                "mean_cost_ratio": r.mean_cost_ratio,
                "tail_cost_ratio": r.tail_cost_ratio(r.jobs.len() / 4),
                "cumulative_regret": r.cumulative_regret,
                "replans": r.replans,
                "rejected_refits": r.rejected_refits,
                "fallbacks": r.fallbacks,
                "censored_observations": r.censored_observations,
                "gave_up": r.gave_up,
                "final_model": r.final_model,
            })),
        })));
    }

    let mut out = String::new();
    out.push_str(&format!(
        "{} jobs, {} processors, {:?}: utilization {:.1}%, mean wait {:.2} h, max wait {:.2} h\n",
        summary.completed,
        cfg.processors,
        policy,
        summary.utilization * 100.0,
        summary.mean_wait,
        summary.max_wait
    ));
    if !faults.is_fault_free() {
        out.push_str(&format!(
            "faults: {:.1}% of jobs hit by a crash/preemption/walltime kill\n",
            summary.faulted_fraction * 100.0
        ));
    }
    for a in &analyses {
        let cm = cost_model_from_queue(a);
        out.push_str(&format!(
            "{} procs: wait ≈ {:.3}·R + {:.3} h (R² {:.2}) → CostModel(α={:.3}, β=1, γ={:.3})\n",
            a.processors, a.fit.slope, a.fit.intercept, a.fit.r_squared, cm.alpha, cm.gamma
        ));
        if a.fit.r_squared < 0.2 {
            out.push_str(&format!(
                "  warning: R² = {:.2} — the affine wait model explains little here \
                 (saturated or underloaded queues flatten the wait-vs-request relation); \
                 adjust arrival_rate before trusting the cost model\n",
                a.fit.r_squared
            ));
        }
    }
    if let Some(r) = &adaptive {
        out.push_str(&format!(
            "adaptive: {} jobs, cost ratio vs oracle {:.3} (last quarter {:.3}); \
             {} replans, {} rejected, {} fallbacks, {} censored; final model {}\n",
            r.jobs.len(),
            r.mean_cost_ratio,
            r.tail_cost_ratio(r.jobs.len() / 4),
            r.replans,
            r.rejected_refits,
            r.fallbacks,
            r.censored_observations,
            r.final_model
        ));
    }
    Ok(out)
}

/// Runs the `adaptive` section of `rsj simulate`: the S19 replanning loop
/// against the simulation's runtime law, costed either explicitly or by the
/// queue-derived NeuroHPC-style model.
fn run_adaptive_section(
    spec: &AdaptiveSpec,
    truth: &dyn ContinuousDistribution,
    analyses: &[WaitTimeAnalysis],
) -> Result<AdaptiveReport, String> {
    let prior = spec.prior.build().map_err(|e| e.to_string())?;
    let strategy = spec.heuristic.build().map_err(|e| e.to_string())?;
    let cost = match &spec.cost {
        Some(c) => c.build()?,
        None => analyses
            .first()
            .map(cost_model_from_queue)
            .unwrap_or_else(CostModel::reservation_only),
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed);
    run_adaptive(
        truth,
        prior.as_ref(),
        strategy.as_ref(),
        &cost,
        spec.jobs,
        &spec.config,
        &mut rng,
    )
    .map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CostSpec, HeuristicSpec};
    use rsj_dist::DistSpec;

    fn plan_config(heuristic: HeuristicSpec) -> PlanConfig {
        PlanConfig {
            distribution: DistSpec::LogNormal {
                mu: 3.0,
                sigma: 0.5,
            },
            cost: CostSpec {
                alpha: 1.0,
                beta: 0.0,
                gamma: 0.0,
            },
            heuristic,
            show: 5,
        }
    }

    #[test]
    fn plan_text_output() {
        let cfg = plan_config(HeuristicSpec::MeanByMean);
        let out = run_plan(&cfg, false, false).unwrap();
        assert!(out.contains("mean_by_mean"), "{out}");
        assert!(out.contains("request ladder"), "{out}");
        assert!(out.contains("vs omniscient"), "{out}");
        assert!(out.contains("plan digest"), "{out}");
        assert!(!out.contains("solver path"), "{out}");
    }

    #[test]
    fn plan_explain_solver_attributes_the_dp_path() {
        // A DP solve on a lognormal grid: the monotone gate fires and the
        // first build of this table is cold.
        rsj_dist::clear_eval_cache();
        let cfg = plan_config(HeuristicSpec::Dp {
            scheme: rsj_dist::DiscretizationScheme::EqualProbability,
            n: 307,
            epsilon: 1e-7,
            monotone: true,
        });
        let out = run_plan(&cfg, false, true).unwrap();
        assert!(
            out.contains("solver path:      monotone O(n log n)"),
            "{out}"
        );
        assert!(out.contains("eval table:       cold"), "{out}");

        // The same config again: the table now comes from the cache.
        let out = run_plan(&cfg, false, true).unwrap();
        assert!(out.contains("eval table:       warm"), "{out}");

        // Fast path off: the exact pass is attributed as forced.
        let cfg = plan_config(HeuristicSpec::Dp {
            scheme: rsj_dist::DiscretizationScheme::EqualProbability,
            n: 307,
            epsilon: 1e-7,
            monotone: false,
        });
        let out = run_plan(&cfg, false, true).unwrap();
        assert!(
            out.contains("exact O(n²) pass (monotone fast path disabled)"),
            "{out}"
        );

        // A closed-form heuristic never runs the DP or discretizes.
        let cfg = plan_config(HeuristicSpec::MeanByMean);
        let out = run_plan(&cfg, false, true).unwrap();
        assert!(out.contains("no discretized DP"), "{out}");
        assert!(out.contains("eval table:       none"), "{out}");
    }

    #[test]
    fn plan_explain_solver_json_wraps_plan_and_explanation() {
        // No cache clear here: clearing would race the warm-hit assertion
        // of the sibling explain test; this test's n = 211 key is unique
        // in the process, so its first build is cold regardless.
        let cfg = plan_config(HeuristicSpec::Dp {
            scheme: rsj_dist::DiscretizationScheme::EqualTime,
            n: 211,
            epsilon: 1e-7,
            monotone: true,
        });
        let out = run_plan(&cfg, true, true).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["plan"]["digest"].as_str().unwrap().len(), 16);
        assert_eq!(
            v["solver_explanation"]["dp_path"].as_str(),
            Some("monotone")
        );
        assert_eq!(v["solver_explanation"]["eval_table"].as_str(), Some("cold"));
        // The unwrapped plan JSON is unchanged by the flag being off.
        let plain = run_plan(&cfg, true, false).unwrap();
        let p: serde_json::Value = serde_json::from_str(&plain).unwrap();
        assert_eq!(p["digest"], v["plan"]["digest"]);
    }

    #[test]
    fn plan_json_output_parses() {
        let cfg = plan_config(HeuristicSpec::Dp {
            scheme: rsj_dist::DiscretizationScheme::EqualTime,
            n: 200,
            epsilon: 1e-7,
            monotone: true,
        });
        let out = run_plan(&cfg, true, false).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(v["normalized_cost"].as_f64().unwrap() > 1.0);
        assert!(v["sequence"].as_array().unwrap().len() > 2);
        assert_eq!(v["digest"].as_str().unwrap().len(), 16);
    }

    #[test]
    fn evaluate_uniform_optimum() {
        let cfg = EvaluateConfig {
            distribution: DistSpec::Uniform { a: 10.0, b: 20.0 },
            cost: CostSpec {
                alpha: 1.0,
                beta: 0.0,
                gamma: 0.0,
            },
            sequence: vec![20.0],
            complete: true,
            monte_carlo_samples: 500,
            seed: 1,
        };
        let out = run_evaluate(&cfg, false).unwrap();
        assert!(out.contains("1.3333"), "{out}");
        let json_out = run_evaluate(&cfg, true).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json_out).unwrap();
        assert!((v["analytic_expected_cost"].as_f64().unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn evaluate_rejects_bad_sequence() {
        let cfg = EvaluateConfig {
            distribution: DistSpec::Uniform { a: 10.0, b: 20.0 },
            cost: CostSpec {
                alpha: 1.0,
                beta: 0.0,
                gamma: 0.0,
            },
            sequence: vec![20.0, 15.0],
            complete: true,
            monte_carlo_samples: 0,
            seed: 0,
        };
        assert!(run_evaluate(&cfg, false).is_err());
    }

    #[test]
    fn fit_command_round_trip() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let archive = rsj_traces::synthesize(&rsj_traces::SynthConfig::vbmqa(2000), &mut rng);
        let out = run_fit(&archive.to_csv(), false).unwrap();
        assert!(out.contains("VBMQA"), "{out}");
        assert!(out.contains("fit OK"), "{out}");
        assert!(run_fit("garbage", false).is_err());
    }

    fn simulate_config() -> SimulateConfig {
        SimulateConfig {
            processors: 256,
            policy: "easy".into(),
            arrival_rate: 4.0,
            widths: vec![(16, 0.5), (64, 0.3), (128, 0.2)],
            runtime: DistSpec::LogNormal {
                mu: 0.5,
                sigma: 0.6,
            },
            overestimate: (1.1, 2.0),
            jobs: 1500,
            analyze_widths: vec![64],
            groups: 8,
            seed: 5,
            faults: None,
            adaptive: None,
        }
    }

    #[test]
    fn simulate_command_smoke() {
        let cfg = simulate_config();
        let out = run_simulate(&cfg, false).unwrap();
        assert!(out.contains("utilization"), "{out}");
        assert!(
            !out.contains("faults:"),
            "fault-free runs stay quiet: {out}"
        );
        let json_out = run_simulate(&cfg, true).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json_out).unwrap();
        assert!(v["summary"]["completed"].as_u64().unwrap() == 1500);
        // Bad policy errors.
        let mut bad = cfg;
        bad.policy = "priority".into();
        assert!(run_simulate(&bad, false).is_err());
    }

    #[test]
    fn simulate_command_reports_faults() {
        let mut cfg = simulate_config();
        cfg.faults = Some(rsj_sim::FaultConfig::crashes(2.0, 11));
        let out = run_simulate(&cfg, false).unwrap();
        assert!(out.contains("faults:"), "{out}");
        let json_out = run_simulate(&cfg, true).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json_out).unwrap();
        assert!(v["summary"]["faulted_fraction"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn simulate_command_runs_adaptive_section() {
        let mut cfg = simulate_config();
        cfg.adaptive = Some(AdaptiveSpec {
            prior: DistSpec::LogNormal {
                mu: -0.2,
                sigma: 0.6,
            },
            jobs: 60,
            heuristic: HeuristicSpec::MeanByMean,
            cost: None,
            seed: 3,
            config: rsj_sim::AdaptiveConfig {
                censor_after: Some(8),
                ..rsj_sim::AdaptiveConfig::default()
            },
        });
        let out = run_simulate(&cfg, false).unwrap();
        assert!(out.contains("adaptive:"), "{out}");
        let json_out = run_simulate(&cfg, true).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json_out).unwrap();
        assert_eq!(v["adaptive"]["jobs"].as_u64().unwrap(), 60);
        let ratio = v["adaptive"]["mean_cost_ratio"].as_f64().unwrap();
        assert!(ratio > 0.5 && ratio < 3.0, "{ratio}");
    }

    #[test]
    fn simulate_command_rejects_bad_adaptive_config() {
        let mut cfg = simulate_config();
        cfg.adaptive = Some(AdaptiveSpec {
            prior: DistSpec::LogNormal {
                mu: -0.2,
                sigma: 0.6,
            },
            jobs: 10,
            heuristic: HeuristicSpec::MeanByMean,
            cost: None,
            seed: 0,
            config: rsj_sim::AdaptiveConfig {
                max_drift: 0.5,
                ..rsj_sim::AdaptiveConfig::default()
            },
        });
        let err = run_simulate(&cfg, false).unwrap_err();
        assert!(err.contains("max_drift"), "error names the field: {err}");
    }

    #[test]
    fn simulate_command_rejects_bad_fault_config() {
        let mut cfg = simulate_config();
        cfg.faults = Some(rsj_sim::FaultConfig::crashes(-3.0, 0));
        let err = run_simulate(&cfg, false).unwrap_err();
        assert!(err.contains("mtbf"), "error names the field: {err}");
    }
}
