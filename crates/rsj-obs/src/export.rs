//! Registry exporters: Prometheus text exposition and JSON (via the
//! workspace's `serde_json` with its `float_roundtrip` convention, so a
//! snapshot → JSON → snapshot → JSON cycle is bit-for-bit stable).

use crate::histogram::Histogram;
use crate::metrics::Registry;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::path::Path;

/// One counter at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// One gauge at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Last-set value.
    pub value: f64,
}

/// An exported exemplar: the bucket's most recent traced sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExemplarSample {
    /// The sample value.
    pub value: f64,
    /// The trace id of the request that produced it; resolvable to a
    /// full timeline via the serving layer's `trace` op.
    pub trace_id: String,
}

/// One histogram bucket: samples in `[lower, upper)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketSample {
    /// Inclusive lower bound (0 for the underflow bucket).
    pub lower: f64,
    /// Exclusive upper bound (0 for the underflow bucket).
    pub upper: f64,
    /// Samples in the bucket.
    pub count: u64,
    /// The bucket's exemplar, when a traced sample landed here.
    #[serde(default)]
    pub exemplar: Option<ExemplarSample>,
}

/// One histogram at snapshot time, with precomputed summary quantiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
    /// Median estimate.
    pub p50: f64,
    /// 95th-percentile estimate.
    pub p95: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
    /// Non-empty buckets in ascending order.
    pub buckets: Vec<BucketSample>,
}

impl HistogramSample {
    /// Summarizes `histogram` under `name`.
    pub fn of(name: &str, histogram: &Histogram) -> Self {
        Self {
            name: name.to_string(),
            count: histogram.count(),
            sum: histogram.sum(),
            min: histogram.min(),
            max: histogram.max(),
            p50: histogram.p50(),
            p95: histogram.p95(),
            p99: histogram.p99(),
            buckets: histogram
                .nonzero_buckets_with_exemplars()
                .into_iter()
                .map(|(lower, upper, count, exemplar)| BucketSample {
                    lower,
                    upper,
                    count,
                    exemplar: exemplar.map(|e| ExemplarSample {
                        value: e.value,
                        trace_id: e.trace_id.clone(),
                    }),
                })
                .collect(),
        }
    }
}

/// A point-in-time copy of a whole [`Registry`], ready for serialization.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counters, name-sorted.
    #[serde(default)]
    pub counters: Vec<CounterSample>,
    /// Gauges, name-sorted.
    #[serde(default)]
    pub gauges: Vec<GaugeSample>,
    /// Histograms, name-sorted.
    #[serde(default)]
    pub histograms: Vec<HistogramSample>,
}

impl MetricsSnapshot {
    /// Whether the snapshot holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Pretty-printed JSON (round-trip-exact floats).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot types are serializable")
    }

    /// Prometheus text exposition (version 0.0.4). Counters and gauges map
    /// directly; histograms are exported in summary form —
    /// `name{quantile="…"}` series plus `name_sum`, `name_count`, `name_min`
    /// and `name_max` — because log-linear buckets have no fixed upper
    /// bounds a scrape config could rely on.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            let name = sanitize_metric_name(&c.name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", c.value);
        }
        for g in &self.gauges {
            let name = sanitize_metric_name(&g.name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", fmt_value(g.value));
        }
        for h in &self.histograms {
            let name = sanitize_metric_name(&h.name);
            let _ = writeln!(out, "# TYPE {name} summary");
            for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
                let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {}", fmt_value(v));
            }
            let _ = writeln!(out, "{name}_sum {}", fmt_value(h.sum));
            let _ = writeln!(out, "{name}_count {}", h.count);
            let _ = writeln!(out, "{name}_min {}", fmt_value(h.min));
            let _ = writeln!(out, "{name}_max {}", fmt_value(h.max));
            // Exemplars ride as comments (the 0.0.4 text format has no
            // native exemplar syntax): one line per traced bucket, tying
            // the aggregate to a concrete, fetchable trace id.
            for b in &h.buckets {
                if let Some(e) = &b.exemplar {
                    let _ = writeln!(
                        out,
                        "# exemplar {name}{{le=\"{}\"}} {} trace_id=\"{}\"",
                        fmt_value(b.upper),
                        fmt_value(e.value),
                        e.trace_id.replace(['"', '\\', '\n'], "_"),
                    );
                }
            }
        }
        out
    }
}

/// Prometheus sample values: Rust's shortest-round-trip `Display`, which
/// the exposition format accepts (plain decimal or scientific).
fn fmt_value(v: f64) -> String {
    format!("{v}")
}

/// Maps a metric name into the Prometheus grammar
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        let ok =
            ch.is_ascii_alphabetic() || ch == '_' || ch == ':' || (i > 0 && ch.is_ascii_digit());
        out.push(if ok { ch } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Writes `registry`'s snapshot to `path`: JSON when the extension is
/// `.json`, Prometheus text otherwise. This is what `--metrics-out`
/// flags call.
pub fn write_metrics_file(registry: &Registry, path: impl AsRef<Path>) -> std::io::Result<()> {
    let path = path.as_ref();
    let snapshot = registry.snapshot();
    let body = if path.extension().is_some_and(|e| e == "json") {
        let mut json = snapshot.to_json();
        json.push('\n');
        json
    } else {
        snapshot.to_prometheus()
    };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Registry {
        let reg = Registry::new();
        reg.counter("rsj_jobs_total").add(12);
        reg.gauge("rsj_utilization").set(0.751);
        let h = reg.histogram("rsj_solve_seconds");
        for i in 1..=100 {
            h.observe(i as f64 / 1000.0);
        }
        h.observe_with_exemplar(0.05, "0000000000000000000000000000beef");
        reg
    }

    #[test]
    fn prometheus_lines_match_exposition_grammar() {
        let text = sample_registry().snapshot().to_prometheus();
        for line in text.lines() {
            let ok = line.starts_with("# TYPE ")
                || line.starts_with("# HELP ")
                || exemplar_comment_ok(line)
                || prometheus_sample_line_ok(line);
            assert!(ok, "bad exposition line: {line:?}");
        }
        assert!(text.contains("# TYPE rsj_jobs_total counter"));
        assert!(text.contains("rsj_jobs_total 12"));
        assert!(text.contains("# TYPE rsj_solve_seconds summary"));
        assert!(text.contains("rsj_solve_seconds_count 101"));
        assert!(text.contains("rsj_solve_seconds{quantile=\"0.5\"}"));
        assert!(
            text.contains("trace_id=\"0000000000000000000000000000beef\""),
            "exemplar comment missing: {text}"
        );
    }

    /// `# exemplar name{le="upper"} value trace_id="id"` — the comment
    /// form this crate emits for bucket exemplars.
    fn exemplar_comment_ok(line: &str) -> bool {
        let Some(rest) = line.strip_prefix("# exemplar ") else {
            return false;
        };
        let Some((series, tail)) = rest.split_once("} ") else {
            return false;
        };
        let Some((value, trace)) = tail.split_once(' ') else {
            return false;
        };
        series.contains("{le=\"")
            && value.parse::<f64>().is_ok()
            && trace.starts_with("trace_id=\"")
            && trace.ends_with('"')
    }

    /// `name{labels} value` with the value a decimal float.
    fn prometheus_sample_line_ok(line: &str) -> bool {
        let Some((series, value)) = line.rsplit_once(' ') else {
            return false;
        };
        let name_part = series.split('{').next().unwrap_or("");
        let name_ok = !name_part.is_empty()
            && name_part.chars().enumerate().all(|(i, c)| {
                c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
            });
        let labels_ok = match series.split_once('{') {
            None => true,
            Some((_, rest)) => rest.ends_with('}'),
        };
        name_ok && labels_ok && value.parse::<f64>().is_ok()
    }

    #[test]
    fn json_round_trips_bit_for_bit() {
        let snap = sample_registry().snapshot();
        let json = snap.to_json();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.to_json(), json, "second serialization must be stable");
    }

    #[test]
    fn sanitizer_covers_awkward_names() {
        assert_eq!(sanitize_metric_name("a.b-c/d"), "a_b_c_d");
        assert_eq!(sanitize_metric_name("9lives"), "_lives");
        assert_eq!(sanitize_metric_name(""), "_");
        assert_eq!(sanitize_metric_name("ok_name:total"), "ok_name:total");
    }

    #[test]
    fn write_metrics_file_picks_format_by_extension() {
        let reg = sample_registry();
        let dir = std::env::temp_dir().join("rsj_obs_export_test");
        let json_path = dir.join("m.json");
        let prom_path = dir.join("m.prom");
        write_metrics_file(&reg, &json_path).unwrap();
        write_metrics_file(&reg, &prom_path).unwrap();
        let json = std::fs::read_to_string(&json_path).unwrap();
        assert!(serde_json::from_str::<MetricsSnapshot>(&json).is_ok());
        let prom = std::fs::read_to_string(&prom_path).unwrap();
        assert!(prom.contains("# TYPE"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
