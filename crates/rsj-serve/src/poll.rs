//! Thin std-only readiness polling for the serving reactor.
//!
//! Wraps the OS readiness primitive behind a tiny mio-style surface:
//! [`Poller`] owns the polling handle, sockets are registered with a
//! `usize` token plus an [`Interest`], and [`Poller::wait`] fills a
//! vector of [`Event`]s. A self-pipe [`Waker`] lets worker threads nudge
//! the reactor out of `wait` when they queue a response.
//!
//! Backends (selected at compile time, no external crates):
//! - Linux: `epoll` (level-triggered), via direct `extern "C"`
//!   declarations against the libc that `std` already links.
//! - Other Unix (macOS/BSD): portable `poll(2)` with an interest table.
//!
//! Level-triggered semantics everywhere: an event fires as long as the
//! condition holds, so the reactor never needs to drain-to-`WouldBlock`
//! for correctness (it still does, for throughput).

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Token reserved for the internal waker; never reported to callers.
pub const WAKER_TOKEN: usize = usize::MAX;

/// What readiness a registration wants to hear about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer closed).
    pub readable: bool,
    /// Wake when the fd is writable again.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READABLE: Interest = Interest { readable: true, writable: false };
    /// Read + write interest (used while a partial write is parked).
    pub const BOTH: Interest = Interest { readable: true, writable: true };
    /// No interest; the fd stays registered but silent (backpressure).
    pub const NONE: Interest = Interest { readable: false, writable: false };
}

/// One readiness notification from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token supplied at registration time.
    pub token: usize,
    /// The fd has bytes to read (or EOF to observe).
    pub readable: bool,
    /// The fd can accept more bytes.
    pub writable: bool,
    /// The peer hung up or the fd errored; treat as readable-to-EOF.
    pub hangup: bool,
}

/// Handle for waking the poller from another thread.
///
/// Cloning is cheap; each clone writes to the same self-pipe. Wakes
/// coalesce: N wakes before the next `wait` produce one wakeup.
#[derive(Debug)]
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Nudge the poller out of [`Poller::wait`].
    pub fn wake(&self) {
        let buf = [1u8];
        // A full pipe already guarantees a pending wakeup; ignore errors.
        unsafe {
            let _ = sys::write(self.fd, buf.as_ptr().cast(), 1);
        }
    }
}

impl Clone for Waker {
    fn clone(&self) -> Waker {
        Waker { fd: unsafe { sys::dup(self.fd) } }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe {
            let _ = sys::close(self.fd);
        }
    }
}

// The fd is used only for single-byte writes, which are atomic.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

/// Shared syscall declarations. `std` links libc on every Unix target,
/// so these resolve without adding a dependency.
mod sys {
    use std::os::raw::{c_int, c_void};

    extern "C" {
        pub fn close(fd: c_int) -> c_int;
        pub fn dup(fd: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn pipe(fds: *mut c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    }

    pub const F_SETFL: c_int = 4;
    pub const F_SETFD: c_int = 2;
    pub const FD_CLOEXEC: c_int = 1;
    #[cfg(target_os = "linux")]
    pub const O_NONBLOCK: c_int = 0o4000;
    #[cfg(not(target_os = "linux"))]
    pub const O_NONBLOCK: c_int = 0x0004;

    /// Create a nonblocking close-on-exec pipe, returning (read, write).
    pub fn nonblocking_pipe() -> std::io::Result<(c_int, c_int)> {
        let mut fds = [0 as c_int; 2];
        if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
            return Err(std::io::Error::last_os_error());
        }
        for fd in fds {
            unsafe {
                fcntl(fd, F_SETFL, O_NONBLOCK);
                fcntl(fd, F_SETFD, FD_CLOEXEC);
            }
        }
        Ok((fds[0], fds[1]))
    }

    /// Drain every pending byte from the waker pipe.
    pub fn drain_pipe(fd: c_int) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { read(fd, buf.as_mut_ptr().cast(), buf.len()) };
            if n <= 0 {
                break;
            }
        }
    }
}

#[cfg(target_os = "linux")]
mod backend {
    use super::{sys, Event, Interest, WAKER_TOKEN};
    use std::io;
    use std::os::raw::c_int;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0o2000000;

    // The kernel ABI packs epoll_event on x86_64 only.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }

    /// epoll-backed poller.
    pub struct Poller {
        epfd: RawFd,
        wake_rx: RawFd,
        wake_tx: RawFd,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            let (wake_rx, wake_tx) = match sys::nonblocking_pipe() {
                Ok(p) => p,
                Err(e) => {
                    unsafe { sys::close(epfd) };
                    return Err(e);
                }
            };
            let poller = Poller { epfd, wake_rx, wake_tx };
            poller.ctl(EPOLL_CTL_ADD, wake_rx, WAKER_TOKEN, Interest::READABLE)?;
            Ok(poller)
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let mut events = EPOLLRDHUP;
            if interest.readable {
                events |= EPOLLIN;
            }
            if interest.writable {
                events |= EPOLLOUT;
            }
            let mut ev = EpollEvent { events, data: token as u64 };
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn reregister(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) };
            if rc != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn waker(&self) -> super::Waker {
            super::Waker { fd: unsafe { sys::dup(self.wake_tx) } }
        }

        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            out.clear();
            let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
            let timeout_ms: c_int = match timeout {
                Some(d) => d.as_millis().min(c_int::MAX as u128) as c_int,
                None => -1,
            };
            let n = unsafe {
                epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout_ms)
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for ev in buf.iter().take(n as usize) {
                let token = { ev.data } as usize;
                if token == WAKER_TOKEN {
                    sys::drain_pipe(self.wake_rx);
                    continue;
                }
                let bits = { ev.events };
                out.push(Event {
                    token,
                    readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                sys::close(self.wake_rx);
                sys::close(self.wake_tx);
                sys::close(self.epfd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod backend {
    use super::{sys, Event, Interest, WAKER_TOKEN};
    use std::collections::HashMap;
    use std::io;
    use std::os::raw::{c_int, c_short};
    use std::os::unix::io::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    #[repr(C)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: usize, timeout: c_int) -> c_int;
    }

    /// Portable `poll(2)` fallback for kqueue platforms; the interest
    /// table lives in userspace and is rebuilt on every wait.
    pub struct Poller {
        registrations: Mutex<HashMap<RawFd, (usize, Interest)>>,
        wake_rx: RawFd,
        wake_tx: RawFd,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let (wake_rx, wake_tx) = sys::nonblocking_pipe()?;
            Ok(Poller { registrations: Mutex::new(HashMap::new()), wake_rx, wake_tx })
        }

        pub fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.registrations.lock().unwrap().insert(fd, (token, interest));
            Ok(())
        }

        pub fn reregister(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.register(fd, token, interest)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.registrations.lock().unwrap().remove(&fd);
            Ok(())
        }

        pub fn waker(&self) -> super::Waker {
            super::Waker { fd: unsafe { sys::dup(self.wake_tx) } }
        }

        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            out.clear();
            let mut fds = Vec::new();
            let mut tokens = Vec::new();
            fds.push(PollFd { fd: self.wake_rx, events: POLLIN, revents: 0 });
            tokens.push(WAKER_TOKEN);
            {
                let regs = self.registrations.lock().unwrap();
                for (&fd, &(token, interest)) in regs.iter() {
                    let mut events = 0;
                    if interest.readable {
                        events |= POLLIN;
                    }
                    if interest.writable {
                        events |= POLLOUT;
                    }
                    fds.push(PollFd { fd, events, revents: 0 });
                    tokens.push(token);
                }
            }
            let timeout_ms: c_int = match timeout {
                Some(d) => d.as_millis().min(c_int::MAX as u128) as c_int,
                None => -1,
            };
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len(), timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for (pfd, &token) in fds.iter().zip(tokens.iter()) {
                if pfd.revents == 0 {
                    continue;
                }
                if token == WAKER_TOKEN {
                    sys::drain_pipe(self.wake_rx);
                    continue;
                }
                out.push(Event {
                    token,
                    readable: pfd.revents & (POLLIN | POLLHUP) != 0,
                    writable: pfd.revents & POLLOUT != 0,
                    hangup: pfd.revents & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                sys::close(self.wake_rx);
                sys::close(self.wake_tx);
            }
        }
    }
}

/// Readiness poller over the platform backend (epoll on Linux,
/// `poll(2)` elsewhere on Unix).
///
/// All registration methods take the raw fd; the caller keeps ownership
/// of the socket and must deregister before closing it (the Linux
/// backend would otherwise keep reporting a dangling registration,
/// although closing an fd does remove it from the epoll set when no
/// other references exist).
pub struct Poller {
    inner: backend::Poller,
}

impl Poller {
    /// Create a poller plus its internal self-pipe waker.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller { inner: backend::Poller::new()? })
    }

    /// Start watching `fd` under `token`.
    pub fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.inner.register(fd, token, interest)
    }

    /// Change the interest set for an already-registered fd.
    pub fn reregister(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.inner.reregister(fd, token, interest)
    }

    /// Stop watching `fd`.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.inner.deregister(fd)
    }

    /// A handle other threads can use to interrupt [`Poller::wait`].
    pub fn waker(&self) -> Waker {
        self.inner.waker()
    }

    /// Block until readiness, a wake, or `timeout`; fills `out`.
    ///
    /// Waker events are consumed internally and never surfaced. A
    /// return with an empty `out` means timeout or explicit wake.
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.wait(out, timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Instant;

    #[test]
    fn timeout_returns_empty() {
        let poller = Poller::new().unwrap();
        let mut events = Vec::new();
        let started = Instant::now();
        poller.wait(&mut events, Some(Duration::from_millis(30))).unwrap();
        assert!(events.is_empty());
        assert!(started.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn waker_interrupts_wait() {
        let poller = Poller::new().unwrap();
        let waker = poller.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waker.wake();
        });
        let mut events = Vec::new();
        let started = Instant::now();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.is_empty());
        assert!(started.elapsed() < Duration::from_secs(4));
        handle.join().unwrap();
    }

    #[test]
    fn readable_socket_reports_its_token() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        poller.register(server.as_raw_fd(), 7, Interest::READABLE).unwrap();

        client.write_all(b"hello").unwrap();
        let mut events = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while events.is_empty() && Instant::now() < deadline {
            poller.wait(&mut events, Some(Duration::from_millis(100))).unwrap();
        }
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        let mut buf = [0u8; 16];
        let n = (&server).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello");
        poller.deregister(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn interest_none_silences_a_ready_socket() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        client.write_all(b"x").unwrap();

        poller.register(server.as_raw_fd(), 3, Interest::NONE).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
        assert!(events.is_empty(), "paused registration must stay silent");

        poller.reregister(server.as_raw_fd(), 3, Interest::READABLE).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while events.is_empty() && Instant::now() < deadline {
            poller.wait(&mut events, Some(Duration::from_millis(100))).unwrap();
        }
        assert_eq!(events.len(), 1);
        assert!(events[0].readable);
    }
}
