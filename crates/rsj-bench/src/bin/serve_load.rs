//! Seeds `results/BENCH_serve.json`: closed-loop load numbers for the
//! `rsj-serve` planning daemon under three regimes — a healthy baseline,
//! deliberate overload against a tiny admission queue, and the fixed-seed
//! chaos schedule behind a fault-injecting proxy with a retrying client.
//!
//! Reported per scenario: throughput, p50/p99 request latency, and the
//! shed/failure split. Future robustness PRs diff against this file
//! instead of folklore. Timings move with the host; the invariants the
//! suite *asserts* (typed sheds, bit-identical successes) are enforced by
//! the `rsj-serve` test suite, not here.
//!
//! Honours `RSJ_FIDELITY` (`quick` shrinks the request counts), `RSJ_LOG`
//! and `RSJ_RESULTS_DIR`.

use rsj_bench::perf::HostInfo;
use rsj_bench::scenarios::Fidelity;
use rsj_bench::{report, DEFAULT_SEED};
use rsj_core::SolverSpec;
use rsj_dist::{DiscretizationScheme, DistSpec};
use rsj_serve::{
    AdmissionConfig, BreakerConfig, ChaosPolicy, ChaosProxy, Client, Request, ResilientClient,
    Response, RetryPolicy, Server, ServerConfig,
};
use serde::{Deserialize, Serialize};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const SCHEMA_VERSION: u32 = 1;

/// Per-stage latency summary, computed from the server's own request
/// timelines (the `trace` op against a `trace_buffer` server), so the
/// numbers attribute time the way the server measured it rather than the
/// way the client observed it.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StageSummary {
    stage: String,
    count: usize,
    p50_ms: f64,
    p99_ms: f64,
}

/// One load regime's aggregate numbers.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ScenarioResult {
    name: String,
    /// Requests attempted (including ones that were shed or failed).
    requests: usize,
    /// Successful plan/pong responses.
    ok: usize,
    /// Typed `overloaded` / `deadline_exceeded` rejections.
    shed: usize,
    /// Transport-level failures (chaos faults, torn lines).
    failed: usize,
    /// Client-side retry attempts beyond the first try (chaos scenario).
    retries: usize,
    wall_seconds: f64,
    throughput_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    shed_rate: f64,
    /// Server-side stage breakdown (baseline scenario only; empty where
    /// the regime runs untraced).
    #[serde(default)]
    stages: Vec<StageSummary>,
}

/// The `results/BENCH_serve.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ServeBaseline {
    schema_version: u32,
    fidelity: String,
    seed: u64,
    host: HostInfo,
    workers: usize,
    scenarios: Vec<ScenarioResult>,
}

/// The rotating request mix: three distributions over one DP config, so
/// the stream exercises cold solves, cache hits and coalescing alike.
fn request_for(i: usize) -> Request {
    let dists = [
        DistSpec::LogNormal {
            mu: 3.0,
            sigma: 0.5,
        },
        DistSpec::LogNormal {
            mu: 2.0,
            sigma: 0.8,
        },
        DistSpec::LogNormal {
            mu: 1.5,
            sigma: 0.3,
        },
    ];
    Request::plan_with(
        dists[i % 3].clone(),
        SolverSpec::Dp {
            scheme: DiscretizationScheme::EqualProbability,
            n: 300,
            epsilon: 1e-6,
            monotone: true,
        },
    )
}

/// A request no other load thread will have cached: every solve is cold,
/// so the overload scenario keeps the workers genuinely busy.
fn unique_request(i: usize) -> Request {
    Request::plan_with(
        DistSpec::LogNormal {
            mu: 1.5 + 0.01 * i as f64,
            sigma: 0.6,
        },
        SolverSpec::Dp {
            scheme: DiscretizationScheme::EqualProbability,
            n: 600,
            epsilon: 1e-6,
            monotone: true,
        },
    )
}

fn percentile_ms(latencies: &mut [Duration], q: f64) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.sort_unstable();
    let rank = ((latencies.len() as f64 * q).ceil() as usize).clamp(1, latencies.len());
    latencies[rank - 1].as_secs_f64() * 1e3
}

/// Outcome counts accumulated while driving one regime.
#[derive(Debug, Default, Clone, Copy)]
struct Tally {
    ok: usize,
    shed: usize,
    failed: usize,
    retries: usize,
}

fn finish(
    name: &str,
    requests: usize,
    tally: Tally,
    wall: Duration,
    latencies: &mut [Duration],
) -> ScenarioResult {
    let wall_seconds = wall.as_secs_f64();
    ScenarioResult {
        name: name.to_string(),
        requests,
        ok: tally.ok,
        shed: tally.shed,
        failed: tally.failed,
        retries: tally.retries,
        wall_seconds,
        throughput_rps: requests as f64 / wall_seconds.max(1e-9),
        p50_ms: percentile_ms(latencies, 0.50),
        p99_ms: percentile_ms(latencies, 0.99),
        shed_rate: tally.shed as f64 / (requests as f64).max(1.0),
        stages: Vec::new(),
    }
}

/// Per-stage p50/p99 over the plan timelines retained by the server's
/// trace ring, name-sorted for a stable JSON diff.
fn stage_summaries(timelines: &[rsj_obs::TimelineRecord]) -> Vec<StageSummary> {
    let mut by_stage: std::collections::BTreeMap<&str, Vec<Duration>> =
        std::collections::BTreeMap::new();
    for record in timelines.iter().filter(|r| r.op == "plan") {
        for stage in &record.stages {
            by_stage
                .entry(stage.name.as_str())
                .or_default()
                .push(Duration::from_micros(stage.duration_us()));
        }
    }
    by_stage
        .into_iter()
        .map(|(stage, mut durations)| StageSummary {
            stage: stage.to_string(),
            count: durations.len(),
            p50_ms: percentile_ms(&mut durations, 0.50),
            p99_ms: percentile_ms(&mut durations, 0.99),
        })
        .collect()
}

fn spawn_server(config: ServerConfig) -> (SocketAddr, impl FnOnce()) {
    let server = Server::bind(config).expect("bind server");
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run());
    (addr, move || {
        shutdown.signal();
        // Unblock the accept poll with one last connection attempt.
        let _ = std::net::TcpStream::connect(addr);
        join.join()
            .expect("server thread")
            .expect("clean server exit");
    })
}

/// Healthy regime: one closed-loop client, default admission settings.
/// Runs against a `trace_buffer` server so the result also carries the
/// server-side per-stage breakdown.
fn baseline(workers: usize, requests: usize) -> ScenarioResult {
    let (addr, stop) = spawn_server(ServerConfig {
        workers,
        trace_buffer: requests.max(64),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    let mut latencies = Vec::with_capacity(requests);
    let mut tally = Tally::default();
    let started = Instant::now();
    for i in 0..requests {
        let t = Instant::now();
        match client.call(&request_for(i)) {
            Ok(Response::Plan { .. }) => tally.ok += 1,
            Ok(Response::Error { .. }) => tally.shed += 1,
            Ok(_) => {}
            Err(_) => tally.failed += 1,
        }
        latencies.push(t.elapsed());
    }
    let wall = started.elapsed();
    let timelines = client.trace(Some(requests), None, None).unwrap_or_default();
    drop(client);
    stop();
    let mut result = finish("baseline", requests, tally, wall, &mut latencies);
    result.stages = stage_summaries(&timelines);
    result
}

/// Overload regime: a burst of concurrent connections against a tiny
/// admission queue; the interesting number is the typed shed rate.
fn overload(workers: usize, clients: usize, per_client: usize) -> ScenarioResult {
    let (addr, stop) = spawn_server(ServerConfig {
        workers,
        admission: AdmissionConfig {
            capacity: 2,
            high_watermark: 2,
            low_watermark: 1,
        },
        ..ServerConfig::default()
    });
    let started = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(per_client);
                let mut tally = Tally::default();
                for i in 0..per_client {
                    let t = Instant::now();
                    match Client::connect(addr) {
                        Ok(mut client) => {
                            match client
                                .call(&unique_request(c * per_client + i).with_deadline_ms(10_000))
                            {
                                Ok(Response::Plan { .. }) => tally.ok += 1,
                                Ok(Response::Error { .. }) => tally.shed += 1,
                                Ok(_) => {}
                                Err(_) => tally.failed += 1,
                            }
                        }
                        Err(_) => tally.failed += 1,
                    }
                    latencies.push(t.elapsed());
                }
                (tally, latencies)
            })
        })
        .collect();
    let mut tally = Tally::default();
    let mut latencies = Vec::new();
    for t in threads {
        let (part, l) = t.join().expect("load thread");
        tally.ok += part.ok;
        tally.shed += part.shed;
        tally.failed += part.failed;
        latencies.extend(l);
    }
    let wall = started.elapsed();
    stop();
    finish(
        "overload",
        clients * per_client,
        tally,
        wall,
        &mut latencies,
    )
}

/// Chaos regime: the fixed-seed fault schedule (worker panics, dispatch
/// delays, dropped/truncated/stalled connections) behind the chaos proxy,
/// driven by the retrying resilient client.
fn chaos(workers: usize, requests: usize, seed: u64) -> ScenarioResult {
    let policy = ChaosPolicy {
        seed,
        worker_panic_every: 5,
        delay_every: 4,
        delay_ms: 10,
        drop_conn_every: 6,
        stall_every: 5,
        stall_ms: 50,
        partial_write_every: 7,
    };
    let (addr, stop) = spawn_server(ServerConfig {
        workers,
        chaos: Some(policy),
        ..ServerConfig::default()
    });
    let proxy = ChaosProxy::bind(addr, policy).expect("bind proxy");
    let proxy_addr = proxy.local_addr();
    let proxy_stop = proxy.stop_handle();
    let proxy_join = std::thread::spawn(move || proxy.run());

    let retry = RetryPolicy {
        max_attempts: 4,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(50),
        jitter_seed: seed,
        retry_budget: (requests * 2) as u32,
    };
    // A lenient breaker: the point of this scenario is retry
    // effectiveness under a known fault rate, not fail-fast behavior.
    let breaker = BreakerConfig {
        failure_threshold: u32::MAX,
        ..BreakerConfig::default()
    };
    let mut client = ResilientClient::new(proxy_addr.to_string(), retry, breaker);
    let mut latencies = Vec::with_capacity(requests);
    let mut tally = Tally::default();
    let started = Instant::now();
    for i in 0..requests {
        let t = Instant::now();
        match client.call(&request_for(i)) {
            Ok(Response::Plan { .. }) => tally.ok += 1,
            Ok(Response::Error { .. }) => tally.shed += 1,
            Ok(_) => {}
            Err(_) => tally.failed += 1,
        }
        latencies.push(t.elapsed());
    }
    let wall = started.elapsed();
    tally.retries = client.retries_spent() as usize;
    drop(client);
    proxy_stop.stop();
    stop();
    proxy_join
        .join()
        .expect("proxy thread")
        .expect("clean proxy exit");
    finish("chaos", requests, tally, wall, &mut latencies)
}

fn main() -> std::io::Result<()> {
    rsj_obs::init_from_env();
    rsj_obs::set_metrics_enabled(true);
    let host = HostInfo::capture();
    let fidelity = Fidelity::from_env();
    // Closed-loop volumes per regime; the baked-in solver configs are
    // bench-scoped, so only the counts move with fidelity.
    let (base_requests, load_clients, load_per_client, chaos_requests) = match fidelity {
        Fidelity::Paper => (400, 12, 20, 96),
        Fidelity::Quick => (60, 6, 5, 24),
    };
    let workers = 2;

    rsj_obs::info!("serve_load at {fidelity:?} fidelity, {workers} workers");
    let scenarios = vec![
        baseline(workers, base_requests),
        overload(workers, load_clients, load_per_client),
        chaos(workers, chaos_requests, DEFAULT_SEED),
    ];
    for s in &scenarios {
        rsj_obs::info!(
            "{}: {} req in {:.2}s ({:.1} rps), p50 {:.2}ms p99 {:.2}ms, \
             ok={} shed={} failed={} retries={}",
            s.name,
            s.requests,
            s.wall_seconds,
            s.throughput_rps,
            s.p50_ms,
            s.p99_ms,
            s.ok,
            s.shed,
            s.failed,
            s.retries
        );
    }

    let doc = ServeBaseline {
        schema_version: SCHEMA_VERSION,
        fidelity: format!("{fidelity:?}"),
        seed: DEFAULT_SEED,
        host,
        workers,
        scenarios,
    };
    let path = report::write_result_file(
        "BENCH_serve.json",
        &format!(
            "{}\n",
            serde_json::to_string_pretty(&doc).expect("serializable")
        ),
    )?;
    println!("wrote {}", path.display());
    Ok(())
}
