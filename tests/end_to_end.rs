//! Cross-crate integration tests: full pipelines from substrate to
//! strategy, exercising the public facade API.

use rand::SeedableRng;
use reservation_strategies::prelude::*;
use rsj_dist::LogNormal;

/// Archive → fit → NeuroHPC scenario → heuristics → sane normalized costs.
#[test]
fn trace_to_strategy_pipeline() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(101);
    let archive = synthesize(&SynthConfig::vbmqa(4000), &mut rng);
    let cost = CostModel::neuro_hpc(0.95, 1.05).unwrap();
    let scenario = NeuroHpcScenario::from_archive(&archive, "VBMQA", cost).unwrap();

    let omniscient = scenario.cost.omniscient(&scenario.dist);
    assert!(omniscient > 0.0);

    let heuristics: Vec<Box<dyn Strategy>> = vec![
        Box::new(BruteForce::new(400, 500, EvalMethod::Analytic, 3).unwrap()),
        Box::new(DiscretizedDp::new(DiscretizationScheme::EqualProbability, 300, 1e-7).unwrap()),
        Box::new(MeanByMean::default()),
        Box::new(MeanDoubling::default()),
    ];
    let mut ratios = Vec::new();
    for h in &heuristics {
        let seq = h.sequence(&scenario.dist, &scenario.cost).unwrap();
        let ratio = normalized_cost_analytic(&seq, &scenario.dist, &scenario.cost);
        assert!(
            (1.0 - 1e-9..4.0).contains(&ratio),
            "{}: ratio {ratio}",
            h.name()
        );
        ratios.push(ratio);
    }
    // The structured heuristics (first two) beat the simple rules here.
    assert!(ratios[0] <= ratios[2] + 1e-6);
    assert!(ratios[1] <= ratios[2] + 1e-6);
}

/// Queue simulation → affine fit → cost model → strategy execution.
#[test]
fn queue_to_strategy_pipeline() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(102);
    let runtime = LogNormal::from_moments(3.0, 3.0).unwrap();
    let workload = WorkloadConfig {
        arrival_rate: 1.85,
        processor_choices: vec![(64, 0.25), (128, 0.2), (204, 0.2), (409, 0.15), (1024, 0.2)],
        overestimate: (1.1, 3.0),
        count: 4000,
    };
    let cluster = ClusterConfig::intrepid_like();
    let jobs = generate_workload(&workload, &runtime, &mut rng);
    let records = simulate(&cluster, &jobs);
    assert_eq!(records.len(), jobs.len(), "every job completes");

    let analysis = analyze_wait_times(&records, 204, 10).expect("enough 204-wide jobs");
    let cost = cost_model_from_queue(&analysis);
    assert!(cost.alpha > 0.0 && cost.beta == 1.0 && cost.gamma >= 0.0);

    // Schedule a stochastic job against the derived cost model.
    let app = LogNormal::from_moments(2.0, 1.0).unwrap();
    let seq = DiscretizedDp::new(DiscretizationScheme::EqualTime, 300, 1e-7)
        .unwrap()
        .sequence(&app, &cost)
        .unwrap();
    let ratio = normalized_cost_analytic(&seq, &app, &cost);
    assert!((1.0 - 1e-9..3.0).contains(&ratio), "ratio {ratio}");

    // Batch execution agrees with the analytic series.
    let mut rng = rand::rngs::StdRng::seed_from_u64(103);
    let stats = run_batch(&seq, &app, &cost, 50_000, &mut rng).unwrap();
    let analytic = expected_cost_analytic(&seq, &app, &cost);
    assert!(
        (stats.mean_cost - analytic).abs() / analytic < 0.05,
        "batch {} vs analytic {analytic}",
        stats.mean_cost
    );
}

/// Cloud decision pipeline over every Table 1 distribution.
#[test]
fn cloud_decision_pipeline() {
    let cost = CostModel::reservation_only();
    let pricing = CloudPricing::aws_like();
    for (name, spec) in rsj_dist::DistSpec::paper_table1() {
        let dist = spec.build().unwrap();
        let seq = DiscretizedDp::new(DiscretizationScheme::EqualProbability, 400, 1e-7)
            .unwrap()
            .sequence(dist.as_ref(), &cost)
            .unwrap();
        let (ratio, break_even, beneficial) = pricing.decision(&seq, dist.as_ref());
        assert_eq!(break_even, 4.0);
        assert!(
            beneficial,
            "{name}: ratio {ratio} should be below the AWS break-even"
        );
    }
}

/// The facade's module re-exports expose a coherent API surface.
#[test]
fn facade_reexports() {
    let d = reservation_strategies::dist::Exponential::new(1.0).unwrap();
    let c = reservation_strategies::core::CostModel::reservation_only();
    use reservation_strategies::core::Strategy as _;
    let seq = reservation_strategies::core::MeanByMean::default()
        .sequence(&d, &c)
        .unwrap();
    assert!(seq.len() > 5);
    let pricing = reservation_strategies::sim::CloudPricing::aws_like();
    assert_eq!(pricing.break_even_ratio(), 4.0);
    let s = reservation_strategies::traces::NeuroHpcScenario::paper();
    assert!(s.cost.alpha > 0.0);
}

/// CSV round-trip through the archive format, then a fit on the re-read
/// archive.
#[test]
fn archive_csv_round_trip_then_fit() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(104);
    let archive = synthesize(&SynthConfig::vbmqa(2000), &mut rng);
    let csv = archive.to_csv();
    let back = TraceArchive::from_csv(&csv).unwrap();
    assert_eq!(archive, back);
    let reports = fit_archive(&back).unwrap();
    assert!((reports[0].mu - 7.1128).abs() < 0.05);
}
