//! The span/event tracing layer: a global [`Subscriber`], a thread-local
//! span stack, and the dispatch functions behind the [`span!`](crate::span)
//! / [`event!`](crate::event) macros.
//!
//! ## Zero cost when disabled
//!
//! The installed subscriber's maximum level is mirrored into a global
//! `AtomicU8` (`0` = no subscriber). Every macro expansion first checks
//! that atomic with a relaxed load; when the level is filtered out the
//! expansion performs **no formatting, no allocation, no clock read and no
//! lock** — an inactive [`Span`] is a `None` and its `Drop` is a branch.

use crate::level::Level;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// A structured log record handed to [`Subscriber::on_event`].
#[derive(Debug)]
pub struct Event<'a> {
    /// Severity.
    pub level: Level,
    /// The `module_path!()` of the call site.
    pub target: &'a str,
    /// The formatted message.
    pub message: &'a str,
    /// Names of the spans enclosing the call site, outermost first.
    pub spans: &'a [&'static str],
}

/// A span boundary handed to [`Subscriber::on_span_enter`] /
/// [`Subscriber::on_span_exit`].
#[derive(Debug)]
pub struct SpanRecord<'a> {
    /// The span's name.
    pub name: &'static str,
    /// Nesting depth after entering (1 = top level).
    pub depth: usize,
    /// Names of the enclosing spans including this one, outermost first.
    pub spans: &'a [&'static str],
}

/// Receives events and span boundaries. Implementations must be cheap to
/// call and internally synchronized (`Send + Sync`).
pub trait Subscriber: Send + Sync {
    /// The most verbose level this subscriber wants; more verbose events
    /// are never dispatched to it.
    fn max_level(&self) -> Level;

    /// An event passed the level filter.
    fn on_event(&self, event: &Event<'_>);

    /// A span was entered (dispatched only at `max_level() >= Trace`
    /// alongside timing on exit; override for structured sinks).
    fn on_span_enter(&self, _span: &SpanRecord<'_>) {}

    /// A span was exited after `elapsed`.
    fn on_span_exit(&self, _span: &SpanRecord<'_>, _elapsed: Duration) {}
}

/// `0` = off; otherwise the installed subscriber's `max_level() as u8`.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);

static SUBSCRIBER: RwLock<Option<Arc<dyn Subscriber>>> = RwLock::new(None);

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Installs `subscriber` as the process-global subscriber, replacing any
/// previous one (tests swap subscribers; production installs once at
/// startup).
pub fn set_subscriber(subscriber: Arc<dyn Subscriber>) {
    let level = subscriber.max_level() as u8;
    *SUBSCRIBER.write().expect("subscriber lock poisoned") = Some(subscriber);
    MAX_LEVEL.store(level, Ordering::Relaxed);
}

/// Removes the global subscriber; tracing reverts to the free disabled
/// path.
pub fn clear_subscriber() {
    MAX_LEVEL.store(0, Ordering::Relaxed);
    *SUBSCRIBER.write().expect("subscriber lock poisoned") = None;
}

/// Whether an event at `level` would reach the installed subscriber. This
/// is the macros' fast path: a single relaxed atomic load.
#[inline(always)]
pub fn enabled(level: Level) -> bool {
    level as u8 <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Whether any subscriber is installed at all.
#[inline(always)]
pub fn subscriber_installed() -> bool {
    MAX_LEVEL.load(Ordering::Relaxed) != 0
}

/// Formats and dispatches an event. Called by the [`event!`](crate::event)
/// macro *after* the level check; not intended for direct use.
#[doc(hidden)]
pub fn dispatch_event(level: Level, target: &str, args: std::fmt::Arguments<'_>) {
    let guard = SUBSCRIBER.read().expect("subscriber lock poisoned");
    let Some(subscriber) = guard.as_ref() else {
        return;
    };
    if level > subscriber.max_level() {
        return;
    }
    let message = args.to_string();
    SPAN_STACK.with(|stack| {
        let spans = stack.borrow();
        subscriber.on_event(&Event {
            level,
            target,
            message: &message,
            spans: &spans,
        });
    });
}

/// An RAII span: created by the [`span!`](crate::span) macro, pushes its
/// name onto the thread-local span stack and reports its wall time to the
/// subscriber on drop.
///
/// Spans are active only when the installed subscriber's level reaches
/// [`Level::Trace`]; otherwise construction returns an inert value whose
/// drop is a branch on `None`.
#[derive(Debug)]
#[must_use = "a span is exited when dropped; binding it to `_` drops it immediately"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Enters a span named `name` (no-op unless span tracing is enabled).
    #[inline]
    pub fn enter(name: &'static str) -> Self {
        if !enabled(Level::Trace) {
            return Self { name, start: None };
        }
        Self::enter_active(name)
    }

    #[cold]
    fn enter_active(name: &'static str) -> Self {
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.push(name);
            let guard = SUBSCRIBER.read().expect("subscriber lock poisoned");
            if let Some(subscriber) = guard.as_ref() {
                subscriber.on_span_enter(&SpanRecord {
                    name,
                    depth: stack.len(),
                    spans: &stack,
                });
            }
        });
        Self {
            name,
            start: Some(Instant::now()),
        }
    }

    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Whether the span is actually recording (a subscriber at `Trace`
    /// level was installed when it was entered).
    pub fn is_active(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if let Some(start) = self.start {
            exit_span(self.name, start.elapsed());
        }
    }
}

#[cold]
fn exit_span(name: &'static str, elapsed: Duration) {
    SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let guard = SUBSCRIBER.read().expect("subscriber lock poisoned");
        if let Some(subscriber) = guard.as_ref() {
            subscriber.on_span_exit(
                &SpanRecord {
                    name,
                    depth: stack.len(),
                    spans: &stack,
                },
                elapsed,
            );
        }
        // Pop after notifying so the record still contains this span.
        // Guard against unbalanced drops (a span sent across threads).
        if stack.last() == Some(&name) {
            stack.pop();
        }
    });
}

/// Runs `f` with the current thread's span stack (outermost first).
pub fn with_current_spans<T>(f: impl FnOnce(&[&'static str]) -> T) -> T {
    SPAN_STACK.with(|stack| f(&stack.borrow()))
}

/// Enters a span named `$name` (a `&'static str`), returning a guard that
/// reports wall time to the subscriber when dropped.
///
/// ```
/// let _guard = rsj_obs::span!("solver.brute_force");
/// // ... traced work ...
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::Span::enter($name)
    };
}

/// Emits an event at an explicit [`Level`](crate::Level) with `format!`
/// syntax. Formatting is skipped entirely when the level is filtered out.
///
/// ```
/// rsj_obs::event!(rsj_obs::Level::Info, "finished {} jobs", 42);
/// ```
#[macro_export]
macro_rules! event {
    ($level:expr, $($arg:tt)+) => {
        if $crate::trace::enabled($level) {
            $crate::trace::dispatch_event($level, module_path!(), format_args!($($arg)+));
        }
    };
}

/// [`event!`](crate::event) at [`Level::Error`](crate::Level::Error).
#[macro_export]
macro_rules! error {
    ($($arg:tt)+) => { $crate::event!($crate::Level::Error, $($arg)+) };
}

/// [`event!`](crate::event) at [`Level::Warn`](crate::Level::Warn).
#[macro_export]
macro_rules! warn {
    ($($arg:tt)+) => { $crate::event!($crate::Level::Warn, $($arg)+) };
}

/// [`event!`](crate::event) at [`Level::Info`](crate::Level::Info).
#[macro_export]
macro_rules! info {
    ($($arg:tt)+) => { $crate::event!($crate::Level::Info, $($arg)+) };
}

/// [`event!`](crate::event) at [`Level::Debug`](crate::Level::Debug).
#[macro_export]
macro_rules! debug {
    ($($arg:tt)+) => { $crate::event!($crate::Level::Debug, $($arg)+) };
}

/// [`event!`](crate::event) at [`Level::Trace`](crate::Level::Trace).
#[macro_export]
macro_rules! trace {
    ($($arg:tt)+) => { $crate::event!($crate::Level::Trace, $($arg)+) };
}
