//! Admission control: a bounded queue with watermark hysteresis between
//! the accept loop and the worker pool.
//!
//! Load shedding happens at admission, not after latency has already
//! collapsed: once the queue depth crosses the **high watermark** the
//! queue enters *shedding* mode and rejects every new item until depth
//! drains back to the **low watermark**. The hard `capacity` is a final
//! backstop above the high watermark. Rejected connections get a typed
//! [`ErrorKind::Overloaded`](crate::ErrorKind::Overloaded) line written
//! by a dedicated shed helper (the accept loop only enqueues the refused
//! stream — a few microseconds, no peer-facing syscalls) instead of
//! parking in an unbounded backlog.
//!
//! The hysteresis band (high → low) prevents shed/admit flapping right
//! at the threshold: once overloaded, the server keeps shedding until it
//! has genuinely caught up, which is what keeps p99 of the *admitted*
//! requests bounded under saturation.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Sizing of an [`AdmissionQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Hard bound on queued items; admission above it always sheds.
    pub capacity: usize,
    /// Depth at which shedding mode begins.
    pub high_watermark: usize,
    /// Depth at which shedding mode ends (must be ≤ `high_watermark`).
    pub low_watermark: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            capacity: 256,
            high_watermark: 192,
            low_watermark: 64,
        }
    }
}

impl AdmissionConfig {
    /// Clamps the watermarks into a usable shape: `low ≤ high ≤ capacity`,
    /// capacity at least 1.
    pub fn normalized(self) -> Self {
        let capacity = self.capacity.max(1);
        let high = self.high_watermark.min(capacity).max(1);
        let low = self.low_watermark.min(high);
        Self {
            capacity,
            high_watermark: high,
            low_watermark: low,
        }
    }
}

#[derive(Debug)]
struct State<T> {
    queue: VecDeque<T>,
    shedding: bool,
    closed: bool,
}

/// Outcome of a [`AdmissionQueue::pop`] call.
#[derive(Debug, PartialEq, Eq)]
pub enum Pop<T> {
    /// An admitted item, in FIFO order.
    Item(T),
    /// The wait timed out with the queue still open and empty.
    TimedOut,
    /// The queue is closed and fully drained; the worker should exit.
    Closed,
}

/// A bounded MPMC queue with watermark-hysteresis shedding. `try_admit`
/// is the producer side (the accept loop); `pop` is the consumer side
/// (workers). Closing the queue lets consumers drain what was already
/// admitted, then observe [`Pop::Closed`].
#[derive(Debug)]
pub struct AdmissionQueue<T> {
    config: AdmissionConfig,
    state: Mutex<State<T>>,
    not_empty: Condvar,
}

impl<T> AdmissionQueue<T> {
    /// An open queue sized by `config` (normalized; see
    /// [`AdmissionConfig::normalized`]).
    pub fn new(config: AdmissionConfig) -> Self {
        Self {
            config: config.normalized(),
            state: Mutex::new(State {
                queue: VecDeque::new(),
                shedding: false,
                closed: false,
            }),
            not_empty: Condvar::new(),
        }
    }

    /// The normalized sizing in effect.
    pub fn config(&self) -> AdmissionConfig {
        self.config
    }

    /// Admits `item` or hands it back for shedding. Rejection reasons:
    /// shedding mode (entered at the high watermark, left at the low
    /// one), hard capacity, or a closed queue.
    pub fn try_admit(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("admission lock");
        if state.closed {
            return Err(item);
        }
        let depth = state.queue.len();
        if state.shedding && depth <= self.config.low_watermark {
            state.shedding = false;
        }
        if !state.shedding && depth >= self.config.high_watermark {
            state.shedding = true;
        }
        if state.shedding || depth >= self.config.capacity {
            return Err(item);
        }
        state.queue.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Waits up to `timeout` for an item. Items admitted before
    /// [`close`](Self::close) keep being returned after it (drain);
    /// [`Pop::Closed`] only appears once the queue is closed *and* empty.
    pub fn pop(&self, timeout: Duration) -> Pop<T> {
        let mut state = self.state.lock().expect("admission lock");
        loop {
            if let Some(item) = state.queue.pop_front() {
                return Pop::Item(item);
            }
            if state.closed {
                return Pop::Closed;
            }
            let (next, wait) = self
                .not_empty
                .wait_timeout(state, timeout)
                .expect("admission lock");
            state = next;
            if wait.timed_out() && state.queue.is_empty() && !state.closed {
                return Pop::TimedOut;
            }
        }
    }

    /// Pops an item only if one is immediately available — never blocks.
    /// Workers use this to drain a batch behind the item `pop` returned,
    /// without waiting for requests that have not arrived.
    pub fn try_pop(&self) -> Option<T> {
        self.state.lock().expect("admission lock").queue.pop_front()
    }

    /// Closes the queue: future admissions shed, consumers drain the
    /// backlog then observe [`Pop::Closed`]. Idempotent.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("admission lock");
        state.closed = true;
        drop(state);
        self.not_empty.notify_all();
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.state.lock().expect("admission lock").queue.len()
    }

    /// Whether the queue is currently in shedding mode.
    pub fn is_shedding(&self) -> bool {
        self.state.lock().expect("admission lock").shedding
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(capacity: usize, high: usize, low: usize) -> AdmissionConfig {
        AdmissionConfig {
            capacity,
            high_watermark: high,
            low_watermark: low,
        }
    }

    #[test]
    fn admits_until_high_watermark_then_sheds_until_low() {
        let q = AdmissionQueue::new(cfg(10, 4, 2));
        for i in 0..4 {
            q.try_admit(i).unwrap_or_else(|_| panic!("admit {i}"));
        }
        // Depth 4 = high watermark: shedding begins.
        assert_eq!(q.try_admit(99), Err(99));
        assert!(q.is_shedding());
        // Draining to 3 (> low) keeps shedding on.
        assert_eq!(q.pop(Duration::ZERO), Pop::Item(0));
        assert_eq!(q.try_admit(99), Err(99));
        // Draining to 2 (= low) re-opens admission.
        assert_eq!(q.pop(Duration::ZERO), Pop::Item(1));
        q.try_admit(100).expect("below low watermark again");
        assert!(!q.is_shedding());
    }

    #[test]
    fn hard_capacity_sheds_even_without_watermark_transition() {
        // high == capacity: no hysteresis band, pure bounded queue.
        let q = AdmissionQueue::new(cfg(2, 2, 2));
        q.try_admit(1).unwrap();
        q.try_admit(2).unwrap();
        assert_eq!(q.try_admit(3), Err(3));
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let q = AdmissionQueue::new(AdmissionConfig::default());
        q.try_admit(1).unwrap();
        q.try_admit(2).unwrap();
        q.close();
        q.close(); // idempotent
        assert_eq!(q.try_admit(3), Err(3), "closed queue sheds");
        assert_eq!(q.pop(Duration::ZERO), Pop::Item(1));
        assert_eq!(q.pop(Duration::ZERO), Pop::Item(2));
        assert_eq!(q.pop(Duration::ZERO), Pop::Closed);
        assert_eq!(q.pop(Duration::ZERO), Pop::Closed);
    }

    #[test]
    fn try_pop_never_blocks() {
        let q = AdmissionQueue::new(AdmissionConfig::default());
        assert_eq!(q.try_pop(), None);
        q.try_admit(7).unwrap();
        assert_eq!(q.try_pop(), Some(7));
        assert_eq!(q.try_pop(), None);
        // Draining after close still works (batch tail during shutdown).
        q.try_admit(8).unwrap();
        q.close();
        assert_eq!(q.try_pop(), Some(8));
    }

    #[test]
    fn pop_times_out_on_an_open_empty_queue() {
        let q = AdmissionQueue::<u32>::new(AdmissionConfig::default());
        assert_eq!(q.pop(Duration::from_millis(1)), Pop::TimedOut);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = std::sync::Arc::new(AdmissionQueue::<u32>::new(AdmissionConfig::default()));
        let consumer = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || q.pop(Duration::from_secs(30)))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), Pop::Closed);
    }

    #[test]
    fn degenerate_configs_are_normalized() {
        let c = cfg(0, 0, 9).normalized();
        assert_eq!(c.capacity, 1);
        assert_eq!(c.high_watermark, 1);
        assert_eq!(c.low_watermark, 1);
        let c = cfg(8, 100, 100).normalized();
        assert_eq!(c.high_watermark, 8);
        assert_eq!(c.low_watermark, 8);
    }
}
