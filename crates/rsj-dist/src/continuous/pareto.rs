//! Pareto distribution `Pareto(ν, α)` (Table 1 / Table 5 / Theorem 10).

use crate::error::{check_param, Result};
use crate::traits::{ContinuousDistribution, Support};

/// Pareto (type I) distribution with scale `ν > 0` and shape `α > 0`,
/// support `[ν, ∞)`.
///
/// Paper instantiation: `ν = 1.5`, `α = 3.0`. The mean requires `α > 1`,
/// the variance `α > 2` (Theorem 2's finite-second-moment assumption).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    nu: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a `Pareto(ν, α)` distribution. Requires `α > 2` so that the
    /// second moment is finite, as assumed throughout the paper.
    pub fn new(nu: f64, alpha: f64) -> Result<Self> {
        check_param("nu", nu, "must be > 0", nu > 0.0)?;
        check_param(
            "alpha",
            alpha,
            "must be > 2 for finite variance",
            alpha > 2.0,
        )?;
        Ok(Self { nu, alpha })
    }

    /// Scale parameter `ν` (the left endpoint of the support).
    pub fn nu(&self) -> f64 {
        self.nu
    }

    /// Shape (tail index) parameter `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl ContinuousDistribution for Pareto {
    fn name(&self) -> String {
        format!("Pareto(ν={}, α={})", self.nu, self.alpha)
    }

    fn cache_key(&self) -> Option<String> {
        Some(self.name())
    }

    fn support(&self) -> Support {
        Support::Unbounded { lower: self.nu }
    }

    fn pdf(&self, t: f64) -> f64 {
        if t < self.nu {
            0.0
        } else {
            self.alpha * self.nu.powf(self.alpha) / t.powf(self.alpha + 1.0)
        }
    }

    fn cdf(&self, t: f64) -> f64 {
        if t <= self.nu {
            0.0
        } else {
            1.0 - (self.nu / t).powf(self.alpha)
        }
    }

    fn survival(&self, t: f64) -> f64 {
        if t <= self.nu {
            1.0
        } else {
            (self.nu / t).powf(self.alpha)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile: p out of [0,1]: {p}");
        if p == 1.0 {
            return f64::INFINITY;
        }
        self.nu / (1.0 - p).powf(1.0 / self.alpha)
    }

    fn mean(&self) -> f64 {
        self.alpha * self.nu / (self.alpha - 1.0)
    }

    fn variance(&self) -> f64 {
        let a = self.alpha;
        a * self.nu * self.nu / ((a - 1.0) * (a - 1.0) * (a - 2.0))
    }

    fn conditional_mean_above(&self, tau: f64) -> f64 {
        // Theorem 10: E[X | X > τ] = ατ / (α - 1) for τ ≥ ν.
        let tau = tau.max(self.nu);
        self.alpha * tau / (self.alpha - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_instance() -> Pareto {
        Pareto::new(1.5, 3.0).unwrap()
    }

    #[test]
    fn rejects_bad_params() {
        assert!(Pareto::new(0.0, 3.0).is_err());
        assert!(Pareto::new(1.5, 2.0).is_err()); // infinite variance
        assert!(Pareto::new(1.5, 1.0).is_err());
    }

    #[test]
    fn paper_instantiation_moments() {
        let d = paper_instance();
        // mean = 3·1.5/2 = 2.25; var = 3·2.25/(4·1) = 1.6875.
        assert!((d.mean() - 2.25).abs() < 1e-14);
        assert!((d.variance() - 1.6875).abs() < 1e-14);
    }

    #[test]
    fn cdf_quantile_inverse() {
        let d = paper_instance();
        for &p in &[0.0, 0.1, 0.5, 0.9, 0.9999] {
            let t = d.quantile(p);
            assert!((d.cdf(t) - p).abs() < 1e-12, "p={p}");
        }
    }

    #[test]
    fn conditional_mean_closed_form() {
        let d = paper_instance();
        // Below the support the conditional mean is the unconditional mean.
        assert!((d.conditional_mean_above(0.0) - d.mean()).abs() < 1e-14);
        // Lack-of-memory-like scaling: E[X | X > τ] = 1.5τ for α = 3.
        assert!((d.conditional_mean_above(4.0) - 6.0).abs() < 1e-13);
    }

    #[test]
    fn conditional_mean_matches_quadrature() {
        let d = paper_instance();
        for &tau in &[2.0, 5.0, 20.0] {
            let closed = d.conditional_mean_above(tau);
            let s = d.survival(tau);
            let numeric =
                tau + crate::quadrature::integrate_to_inf(|t| d.survival(t), tau, 1e-13).value / s;
            assert!(
                (closed - numeric).abs() / numeric < 1e-6,
                "tau={tau}: closed {closed}, numeric {numeric}"
            );
        }
    }

    #[test]
    fn pdf_zero_below_support() {
        let d = paper_instance();
        assert_eq!(d.pdf(1.0), 0.0);
        assert_eq!(d.cdf(1.5), 0.0);
        assert_eq!(d.survival(1.4), 1.0);
    }
}
