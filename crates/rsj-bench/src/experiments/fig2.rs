//! Figure 2: average queue wait as a function of requested runtime on the
//! simulated Intrepid-like machine, for the paper's two job widths (204 and
//! 409 processors), with the affine fit that feeds the NeuroHPC cost model.

use crate::report::{write_result_file, Table};
use crate::scenarios::Fidelity;
use rand::SeedableRng;
use rsj_dist::LogNormal;
use rsj_sim::{
    analyze_wait_times, cost_model_from_queue, generate_workload, simulate, summarize,
    ClusterConfig, WaitTimeAnalysis, WorkloadConfig,
};

/// The two job widths of Figure 2.
pub const WIDTHS: [usize; 2] = [204, 409];

/// Full result of the Figure 2 experiment.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// Per-width wait-time analyses.
    pub analyses: Vec<WaitTimeAnalysis>,
    /// Queue utilization achieved.
    pub utilization: f64,
}

fn workload(fidelity: Fidelity) -> WorkloadConfig {
    WorkloadConfig {
        // ~93% offered load on the 2048-processor machine. The mix includes
        // 1024-wide jobs: their long shadows are what give the 409-wide
        // class backfill opportunities, and with them the paper's affine
        // wait-vs-request relation emerges for both Figure 2 widths.
        arrival_rate: 1.85,
        processor_choices: vec![(64, 0.25), (128, 0.2), (204, 0.2), (409, 0.15), (1024, 0.2)],
        overestimate: (1.1, 3.0),
        count: match fidelity {
            Fidelity::Paper => 20_000,
            Fidelity::Quick => 6_000,
        },
    }
}

/// Runs the queue simulation and the 20-group analysis for both widths.
pub fn compute(fidelity: Fidelity, seed: u64) -> Fig2Result {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    // Actual runtimes: LogNormal with mean 3 h and std 3 h — a wide spread
    // so requested runtimes cover the Figure 2 x-axis.
    let runtime = LogNormal::from_moments(3.0, 3.0).expect("valid moments");
    let cfg = ClusterConfig::intrepid_like();
    let jobs = generate_workload(&workload(fidelity), &runtime, &mut rng);
    let records = simulate(&cfg, &jobs);
    let summary = summarize(&records, cfg.processors);
    let n_groups = match fidelity {
        Fidelity::Paper => 20,
        Fidelity::Quick => 10,
    };
    let analyses = WIDTHS
        .iter()
        .filter_map(|&w| analyze_wait_times(&records, w, n_groups))
        .collect();
    Fig2Result {
        analyses,
        utilization: summary.utilization,
    }
}

/// Runs the experiment; writes per-width group CSVs and a fit summary.
pub fn emit(fidelity: Fidelity, seed: u64) -> std::io::Result<Fig2Result> {
    let result = compute(fidelity, seed);
    let mut summary = Table::new(vec![
        "processors",
        "groups",
        "alpha (slope)",
        "gamma (intercept, h)",
        "R^2",
        "paper (409): alpha",
        "paper (409): gamma",
    ]);
    for a in &result.analyses {
        let mut csv = String::from("mean_requested_h,mean_wait_h,count\n");
        for g in &a.groups {
            csv.push_str(&format!(
                "{},{},{}\n",
                g.mean_requested, g.mean_wait, g.count
            ));
        }
        write_result_file(&format!("fig2_{}procs.csv", a.processors), &csv)?;
        summary.push_row(vec![
            a.processors.to_string(),
            a.groups.len().to_string(),
            format!("{:.3}", a.fit.slope),
            format!("{:.3}", a.fit.intercept),
            format!("{:.3}", a.fit.r_squared),
            "0.95".to_string(),
            "1.05".to_string(),
        ])?;
        let cm = cost_model_from_queue(a);
        println!(
            "{} procs → NeuroHPC cost model: alpha={:.3}, beta=1, gamma={:.3} (utilization {:.2})",
            a.processors, cm.alpha, cm.gamma, result.utilization
        );
    }
    summary.emit(
        "fig2",
        "Figure 2 — simulated wait time vs requested runtime, affine fits (group data in fig2_<w>procs.csv)",
    )?;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_grows_affinely_with_request() {
        let result = compute(Fidelity::Quick, 29);
        assert!(
            !result.analyses.is_empty(),
            "need at least one width analyzed"
        );
        for a in &result.analyses {
            // The Figure 2 shape: positive slope, meaningful R².
            assert!(
                a.fit.slope > 0.0,
                "{} procs: slope {} must be positive",
                a.processors,
                a.fit.slope
            );
            assert!(
                a.fit.r_squared > 0.3,
                "{} procs: R² {} too weak for an affine relation",
                a.processors,
                a.fit.r_squared
            );
            // Waits are hours-scale, not pathological.
            for g in &a.groups {
                assert!(g.mean_wait >= 0.0 && g.mean_wait < 500.0);
            }
        }
    }

    #[test]
    fn queue_is_meaningfully_loaded() {
        let result = compute(Fidelity::Quick, 29);
        assert!(
            result.utilization > 0.5,
            "utilization {} too low to produce queueing",
            result.utilization
        );
    }

    #[test]
    fn wider_jobs_wait_longer() {
        let result = compute(Fidelity::Quick, 31);
        if result.analyses.len() == 2 {
            let mean_wait = |a: &WaitTimeAnalysis| {
                a.groups.iter().map(|g| g.mean_wait).sum::<f64>() / a.groups.len() as f64
            };
            let w204 = mean_wait(&result.analyses[0]);
            let w409 = mean_wait(&result.analyses[1]);
            assert!(
                w409 > w204 * 0.8,
                "409-proc jobs ({w409}) should wait at least comparably to 204-proc ({w204})"
            );
        }
    }
}
