//! EASY backfilling (aggressive backfilling with one reservation), after
//! Mu'alem & Feitelson, "Utilization, predictability, workloads, and user
//! runtime estimates in scheduling the IBM SP2 with backfilling" (paper
//! reference [17]).
//!
//! Rules, applied whenever the machine state changes:
//!
//! 1. Start queue-head jobs FCFS while they fit.
//! 2. If a head remains blocked, give it a *shadow time* — the earliest
//!    time enough processors free up assuming every running job uses its
//!    full requested walltime — and compute the *extra* processors that
//!    will still be free at the shadow time.
//! 3. A later waiting job may start now iff it fits in the currently free
//!    processors **and** either (a) it will finish (by its request) before
//!    the shadow time, or (b) it uses no more than the extra processors —
//!    either way it cannot delay the head's reservation.

use super::{Running, SchedulerState};
use crate::job::Time;

/// Shadow computation for the blocked queue head: returns
/// `(shadow_time, extra_processors)`.
fn shadow(state: &SchedulerState, head_procs: usize, now: Time) -> (Time, usize) {
    debug_assert!(head_procs > state.free_processors());
    // Sort running jobs by conservative (requested) end time.
    let mut ends: Vec<(Time, usize)> = state
        .running
        .iter()
        .map(|r| (r.planned_end.max(now), r.job.processors))
        .collect();
    ends.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));

    let mut avail = state.free_processors();
    for (end, procs) in ends {
        avail += procs;
        if avail >= head_procs {
            // Extra = processors free at the shadow beyond the head's need.
            return (end, avail - head_procs);
        }
    }
    unreachable!("head fits the whole machine: it would have started FCFS");
}

/// One EASY scheduling pass at time `now`; returns the jobs started.
pub fn schedule_easy(state: &mut SchedulerState, now: Time) -> Vec<Running> {
    let mut started = state.schedule_fcfs(now);
    if state.waiting.is_empty() {
        return started;
    }

    // Head is blocked. Repeatedly look for a backfill candidate; recompute
    // the shadow after every start (freed/used processors change it).
    loop {
        let head_procs = state.waiting.front().expect("non-empty").processors;
        if head_procs > state.total_processors {
            // Impossible job: drop it so it cannot wedge the queue forever.
            state.waiting.pop_front();
            if state.waiting.is_empty() {
                return started;
            }
            // Head changed: jobs behind it may now start FCFS.
            started.extend(state.schedule_fcfs(now));
            if state.waiting.is_empty() {
                return started;
            }
            continue;
        }
        let (shadow_time, extra) = shadow(state, head_procs, now);
        let free = state.free_processors();
        let candidate = state
            .waiting
            .iter()
            .skip(1)
            .position(|j| {
                j.processors <= free && (now + j.requested <= shadow_time || j.processors <= extra)
            })
            .map(|pos| pos + 1); // skip(1) offset
        match candidate {
            Some(idx) => {
                let job = state.waiting.remove(idx).expect("index valid");
                started.push(state.start_job(job, now));
                // A start may have freed the head? No — starts only consume
                // processors; but FCFS progress is possible if the head was
                // waiting on a *smaller* count… it wasn't (it's blocked).
                // Recompute the shadow and keep scanning.
            }
            None => return started,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Job, JobId};

    fn job(id: u64, procs: usize, requested: Time) -> Job {
        Job {
            id: JobId(id),
            arrival: 0.0,
            processors: procs,
            requested,
            actual: requested,
        }
    }

    /// Machine of 10; a 6-proc job runs until t=5; head needs 8.
    fn blocked_state() -> SchedulerState {
        let mut st = SchedulerState::new(10);
        st.start_job(job(1, 6, 5.0), 0.0);
        st.waiting.push_back(job(2, 8, 1.0)); // blocked head: shadow t=5, extra 10-8=2... avail=4+6=10, extra=2
        st
    }

    #[test]
    fn backfills_short_job_before_shadow() {
        let mut st = blocked_state();
        // 4-proc job requesting 3h: fits free (4), ends at 3 ≤ shadow 5 → backfill.
        st.waiting.push_back(job(3, 4, 3.0));
        let started = schedule_easy(&mut st, 0.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job.id, JobId(3));
    }

    #[test]
    fn refuses_backfill_that_delays_head() {
        let mut st = blocked_state();
        // 4-proc job requesting 7h: ends after shadow (5) and needs more
        // than the 2 extra processors → would delay the head.
        st.waiting.push_back(job(3, 4, 7.0));
        let started = schedule_easy(&mut st, 0.0);
        assert!(started.is_empty());
    }

    #[test]
    fn allows_long_backfill_within_extra() {
        let mut st = blocked_state();
        // 2-proc job requesting 100h: runs past the shadow but uses only
        // the 2 extra processors → cannot delay the head.
        st.waiting.push_back(job(3, 2, 100.0));
        let started = schedule_easy(&mut st, 0.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job.id, JobId(3));
    }

    #[test]
    fn backfill_preserves_queue_order_for_rest() {
        let mut st = blocked_state();
        st.waiting.push_back(job(3, 4, 7.0)); // not eligible
        st.waiting.push_back(job(4, 4, 2.0)); // eligible
        let started = schedule_easy(&mut st, 0.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job.id, JobId(4));
        // Queue still holds head and the ineligible job, in order.
        let ids: Vec<JobId> = st.waiting.iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![JobId(2), JobId(3)]);
    }

    #[test]
    fn multiple_backfills_respect_shrinking_window() {
        let mut st = blocked_state();
        // Two 2-proc 100h jobs: the first consumes the 2 extra processors;
        // the second would then delay the head (free=2 left, extra=0).
        st.waiting.push_back(job(3, 2, 100.0));
        st.waiting.push_back(job(4, 2, 100.0));
        let started = schedule_easy(&mut st, 0.0);
        assert_eq!(started.len(), 1, "only one long backfill fits the extra");
    }

    #[test]
    fn fcfs_progress_before_backfill() {
        let mut st = SchedulerState::new(10);
        st.start_job(job(1, 2, 5.0), 0.0);
        st.waiting.push_back(job(2, 8, 1.0)); // fits: starts FCFS
        st.waiting.push_back(job(3, 1, 1.0)); // head after job 2 starts; blocked (0 free)
        let started = schedule_easy(&mut st, 0.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job.id, JobId(2));
    }

    #[test]
    fn oversized_job_is_dropped_not_wedged() {
        let mut st = SchedulerState::new(10);
        st.start_job(job(1, 6, 5.0), 0.0);
        st.waiting.push_back(job(2, 128, 1.0)); // impossible
        st.waiting.push_back(job(3, 4, 1.0));
        let started = schedule_easy(&mut st, 0.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job.id, JobId(3));
    }
}
