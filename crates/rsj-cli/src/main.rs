//! `rsj` binary: thin argv dispatch over the library commands.

use rsj_cli::{run_evaluate, run_fit, run_plan, run_simulate, USAGE};
use std::process::ExitCode;

/// Argv-level mistake: the user asked for something the CLI doesn't
/// have, so show them what it does have.
fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::FAILURE
}

/// Runtime failure in a correctly-invoked command (solver error, server
/// rejection, bad config contents): the usage text would only bury it.
fn fail_runtime(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}

/// Extracts `--flag <value>` from the argument list.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    };
    let json = args.iter().any(|a| a == "--json");

    // Observability flags, accepted by every command. `--log-level`
    // overrides `RSJ_LOG`; without either the CLI stays quiet (warnings
    // and errors only) so stdout/stderr remain script-friendly.
    match flag_value(&args, "--log-level") {
        Some(spec) => match rsj_obs::parse_filter(&spec) {
            Ok(level) => rsj_obs::init(level),
            Err(e) => return fail(&format!("invalid --log-level: {e}")),
        },
        None => rsj_obs::init_from_env_default(Some(rsj_obs::Level::Warn)),
    }
    let metrics_out = flag_value(&args, "--metrics-out");
    if metrics_out.is_some() {
        rsj_obs::set_metrics_enabled(true);
    }

    // Worker-thread override: `--threads <n>` beats `RSJ_THREADS` beats
    // the hardware default. Zero or garbage is a typed error (exit 1),
    // not a panic — and a malformed RSJ_THREADS is rejected here rather
    // than silently ignored mid-solve.
    match flag_value(&args, "--threads") {
        Some(spec) => match spec
            .parse::<usize>()
            .map_err(|_| rsj_par::ParError::InvalidEnv {
                value: spec.clone(),
            })
            .and_then(rsj_par::Parallelism::new)
        {
            Ok(par) => par.install_global(),
            Err(e) => return fail(&format!("invalid --threads: {e}")),
        },
        None => match rsj_par::Parallelism::from_env() {
            Ok(par) => par.install_global(),
            Err(e) => return fail(&format!("invalid RSJ_THREADS: {e}")),
        },
    }

    let result = match command.as_str() {
        "plan" | "risk" | "evaluate" | "simulate" => {
            let Some(path) = flag_value(&args, "--config") else {
                return fail("missing --config <file.json>");
            };
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => return fail(&format!("cannot read {path}: {e}")),
            };
            match command.as_str() {
                "plan" => {
                    let explain = args.iter().any(|a| a == "--explain-solver");
                    serde_json::from_str(&text)
                        .map_err(|e| format!("invalid plan config: {e}"))
                        .and_then(|cfg| run_plan(&cfg, json, explain))
                }
                "risk" => serde_json::from_str(&text)
                    .map_err(|e| format!("invalid plan config: {e}"))
                    .and_then(|cfg| rsj_cli::run_risk(&cfg, json)),
                "evaluate" => serde_json::from_str(&text)
                    .map_err(|e| format!("invalid evaluate config: {e}"))
                    .and_then(|cfg| run_evaluate(&cfg, json)),
                _ => serde_json::from_str(&text)
                    .map_err(|e| format!("invalid simulate config: {e}"))
                    .and_then(|cfg| run_simulate(&cfg, json)),
            }
        }
        "fit" => {
            let Some(path) = flag_value(&args, "--csv") else {
                return fail("missing --csv <traces.csv>");
            };
            match std::fs::read_to_string(&path) {
                Ok(text) => run_fit(&text, json),
                Err(e) => return fail(&format!("cannot read {path}: {e}")),
            }
        }
        "serve" => {
            let mut opts = rsj_cli::ServeOptions::default();
            if let Some(addr) = flag_value(&args, "--addr") {
                opts.addr = addr;
            }
            match flag_value(&args, "--workers").map(|w| w.parse::<usize>()) {
                Some(Ok(workers)) => opts.workers = Some(workers),
                Some(Err(_)) => return fail("invalid --workers: expected a number"),
                None => {}
            }
            match flag_value(&args, "--cache").map(|c| c.parse::<usize>()) {
                Some(Ok(cache)) => opts.cache = Some(cache),
                Some(Err(_)) => return fail("invalid --cache: expected a number"),
                None => {}
            }
            for (flag, slot) in [
                ("--queue", &mut opts.queue),
                ("--queue-high", &mut opts.queue_high),
                ("--queue-low", &mut opts.queue_low),
            ] {
                match flag_value(&args, flag).map(|v| v.parse::<usize>()) {
                    Some(Ok(n)) => *slot = Some(n),
                    Some(Err(_)) => return fail(&format!("invalid {flag}: expected a number")),
                    None => {}
                }
            }
            opts.journal_dir = flag_value(&args, "--journal-dir");
            match flag_value(&args, "--snapshot-every").map(|v| v.parse::<u64>()) {
                Some(Ok(n)) => opts.snapshot_every = Some(n),
                Some(Err(_)) => return fail("invalid --snapshot-every: expected a number"),
                None => {}
            }
            match flag_value(&args, "--trace-buffer").map(|v| v.parse::<usize>()) {
                Some(Ok(n)) => opts.trace_buffer = Some(n),
                Some(Err(_)) => return fail("invalid --trace-buffer: expected a number"),
                None => {}
            }
            match flag_value(&args, "--slow-ms").map(|v| v.parse::<u64>()) {
                Some(Ok(n)) => opts.slow_ms = Some(n),
                Some(Err(_)) => return fail("invalid --slow-ms: expected a number"),
                None => {}
            }
            match flag_value(&args, "--batch").map(|v| v.parse::<usize>()) {
                Some(Ok(n)) => opts.batch = Some(n),
                Some(Err(_)) => return fail("invalid --batch: expected a number"),
                None => {}
            }
            return match rsj_cli::run_serve(&opts) {
                Ok(()) => ExitCode::SUCCESS,
                Err(msg) => fail_runtime(&msg),
            };
        }
        "request" => {
            let Some(addr) = flag_value(&args, "--addr") else {
                return fail("missing --addr <host:port>");
            };
            let action = if args.iter().any(|a| a == "--ping") {
                rsj_cli::RequestAction::Ping
            } else if args.iter().any(|a| a == "--metrics") {
                rsj_cli::RequestAction::Metrics
            } else if args.iter().any(|a| a == "--health") {
                rsj_cli::RequestAction::Health
            } else if args.iter().any(|a| a == "--ready") {
                rsj_cli::RequestAction::Ready
            } else if args.iter().any(|a| a == "--shutdown") {
                rsj_cli::RequestAction::Shutdown
            } else if let Some(path) = flag_value(&args, "--config") {
                let text = match std::fs::read_to_string(&path) {
                    Ok(t) => t,
                    Err(e) => return fail(&format!("cannot read {path}: {e}")),
                };
                match serde_json::from_str(&text) {
                    Ok(cfg) => rsj_cli::RequestAction::Plan(Box::new(cfg)),
                    Err(e) => return fail(&format!("invalid plan config: {e}")),
                }
            } else {
                return fail(
                    "request needs one of --config/--ping/--metrics/--health/--ready/--shutdown",
                );
            };
            let mut opts = rsj_cli::RequestOptions::default();
            match flag_value(&args, "--deadline-ms").map(|v| v.parse::<u64>()) {
                Some(Ok(ms)) => opts.deadline_ms = Some(ms),
                Some(Err(_)) => return fail("invalid --deadline-ms: expected a number"),
                None => {}
            }
            match flag_value(&args, "--retries").map(|v| v.parse::<u32>()) {
                Some(Ok(n)) => opts.retries = Some(n),
                Some(Err(_)) => return fail("invalid --retries: expected a number"),
                None => {}
            }
            opts.trace = args.iter().any(|a| a == "--trace");
            rsj_cli::run_request(&addr, &action, json, opts)
        }
        "trace" => {
            if args.get(1).map(String::as_str) != Some("export") {
                return fail("trace supports one subcommand: export");
            }
            let Some(addr) = flag_value(&args, "--addr") else {
                return fail("missing --addr <host:port>");
            };
            let mut opts = rsj_cli::TraceExportOptions {
                out: match flag_value(&args, "--out") {
                    Some(out) => out,
                    None => return fail("missing --out <trace.json>"),
                },
                ..rsj_cli::TraceExportOptions::default()
            };
            match flag_value(&args, "--last").map(|v| v.parse::<usize>()) {
                Some(Ok(n)) => opts.last = Some(n),
                Some(Err(_)) => return fail("invalid --last: expected a number"),
                None => {}
            }
            match flag_value(&args, "--min-ms").map(|v| v.parse::<f64>()) {
                Some(Ok(x)) => opts.min_ms = Some(x),
                Some(Err(_)) => return fail("invalid --min-ms: expected a number"),
                None => {}
            }
            rsj_cli::run_trace_export(&addr, &opts)
        }
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => return fail(&format!("unknown command: {other}")),
    };

    match result {
        Ok(out) => {
            print!("{out}");
            if let Some(path) = &metrics_out {
                if let Err(e) = rsj_obs::write_metrics_file(rsj_obs::global_registry(), path) {
                    return fail(&format!("cannot write metrics to {path}: {e}"));
                }
                rsj_obs::info!("metrics exported to {path}");
            }
            ExitCode::SUCCESS
        }
        Err(msg) => fail_runtime(&msg),
    }
}
