//! Expected-cost evaluation: the exact series of Theorem 1 (Eq. 4), the
//! Monte-Carlo estimator of §5.1 (Eq. 13), and single-job execution
//! accounting (Eq. 2).

use crate::cost::{ConvexCost, CostModel};
use crate::sequence::ReservationSequence;
use rand::RngCore;
use rsj_dist::ContinuousDistribution;
use serde::{Deserialize, Serialize};

/// Everything that happened while running one job to completion under a
/// reservation sequence (Eq. 2 accounting).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Total cost paid across all reservations.
    pub cost: f64,
    /// Number of reservations paid for (the `k` of Eq. 2).
    pub reservations: usize,
    /// Total reserved time `Σ tᵢ` over the paid reservations.
    pub reserved_time: f64,
    /// Reserved-but-unused time in the final (successful) reservation.
    pub wasted_time: f64,
}

/// Walks a job of duration `t` through the sequence, paying every failed
/// reservation in full and the successful one per Eq. 1.
///
/// Jobs larger than the materialized prefix use the sequence's geometric
/// extension, so the walk always terminates.
pub fn run_job(seq: &ReservationSequence, cost: &CostModel, t: f64) -> RunOutcome {
    assert!(
        t >= 0.0 && t.is_finite(),
        "job duration must be finite, got {t}"
    );
    let k = seq.first_fitting(t);
    let mut total = 0.0;
    let mut reserved = 0.0;
    for i in 0..k {
        let r = seq.reservation(i);
        total += cost.failed(r);
        reserved += r;
    }
    let final_r = seq.reservation(k);
    total += cost.single(final_r, t);
    reserved += final_r;
    RunOutcome {
        cost: total,
        reservations: k + 1,
        reserved_time: reserved,
        wasted_time: final_r - t,
    }
}

/// Exact expected cost of a sequence via Theorem 1:
/// `E(S) = β·E[X] + Σ_{i≥0} (α·t_{i+1} + β·tᵢ + γ)·P(X ≥ tᵢ)` with `t₀ = 0`.
///
/// The series is summed over the materialized prefix; the neglected
/// remainder is proportional to `P(X ≥ t_last)` (see [`coverage_gap`]),
/// which sequence generators drive below `~1e-12`.
pub fn expected_cost_analytic(
    seq: &ReservationSequence,
    dist: &dyn ContinuousDistribution,
    cost: &CostModel,
) -> f64 {
    let mut total = cost.beta * dist.mean();
    let mut t_prev = 0.0; // t₀ = 0, P(X ≥ 0) = 1
    for t_next in seq.iter() {
        let surv = if t_prev == 0.0 {
            1.0
        } else {
            dist.survival(t_prev)
        };
        if surv <= 0.0 {
            break;
        }
        total += (cost.alpha * t_next + cost.beta * t_prev + cost.gamma) * surv;
        t_prev = t_next;
    }
    total
}

/// Probability mass not covered by the materialized prefix,
/// `P(X ≥ t_last)`; the analytic evaluator's truncation error is
/// `O(gap · cost-of-next-reservations)`.
pub fn coverage_gap(seq: &ReservationSequence, dist: &dyn ContinuousDistribution) -> f64 {
    if seq.is_complete() {
        0.0
    } else {
        dist.survival(seq.last())
    }
}

/// Monte-Carlo estimator of §5.1 (Eq. 13) over caller-provided job
/// durations (common random numbers across heuristics in the harness).
pub fn expected_cost_monte_carlo(
    seq: &ReservationSequence,
    cost: &CostModel,
    samples: &[f64],
) -> f64 {
    assert!(!samples.is_empty(), "Monte-Carlo evaluation needs samples");
    let total: f64 = samples.iter().map(|&t| run_job(seq, cost, t).cost).sum();
    total / samples.len() as f64
}

/// Draws `n` job durations for Monte-Carlo evaluation.
pub fn draw_samples(
    dist: &dyn ContinuousDistribution,
    n: usize,
    rng: &mut dyn RngCore,
) -> Vec<f64> {
    rsj_dist::sample_n(dist, n, rng)
}

/// Expected cost normalized by the omniscient scheduler's
/// `E° = (α+β)·E[X] + γ`; always `≥ 1` (§5.1).
pub fn normalized_cost_analytic(
    seq: &ReservationSequence,
    dist: &dyn ContinuousDistribution,
    cost: &CostModel,
) -> f64 {
    expected_cost_analytic(seq, dist, cost) / cost.omniscient(dist)
}

/// Monte-Carlo analogue of [`normalized_cost_analytic`].
pub fn normalized_cost_monte_carlo(
    seq: &ReservationSequence,
    dist: &dyn ContinuousDistribution,
    cost: &CostModel,
    samples: &[f64],
) -> f64 {
    expected_cost_monte_carlo(seq, cost, samples) / cost.omniscient(dist)
}

/// Exact expected cost under a convex reservation cost (Appendix C):
/// `E(S) = β·E[X] + Σ_{i≥0} (G(t_{i+1}) + β·tᵢ)·P(X ≥ tᵢ)`.
pub fn expected_cost_analytic_convex(
    seq: &ReservationSequence,
    dist: &dyn ContinuousDistribution,
    cost: &dyn ConvexCost,
) -> f64 {
    let beta = cost.beta();
    let mut total = beta * dist.mean();
    let mut t_prev = 0.0;
    for t_next in seq.iter() {
        let surv = if t_prev == 0.0 {
            1.0
        } else {
            dist.survival(t_prev)
        };
        if surv <= 0.0 {
            break;
        }
        total += (cost.g(t_next) + beta * t_prev) * surv;
        t_prev = t_next;
    }
    total
}

/// Single-job accounting under a convex reservation cost.
pub fn run_job_convex(seq: &ReservationSequence, cost: &dyn ConvexCost, t: f64) -> RunOutcome {
    assert!(
        t >= 0.0 && t.is_finite(),
        "job duration must be finite, got {t}"
    );
    let k = seq.first_fitting(t);
    let mut total = 0.0;
    let mut reserved = 0.0;
    for i in 0..k {
        let r = seq.reservation(i);
        total += cost.single(r, r); // failed: used the whole slot
        reserved += r;
    }
    let final_r = seq.reservation(k);
    total += cost.single(final_r, t);
    reserved += final_r;
    RunOutcome {
        cost: total,
        reservations: k + 1,
        reserved_time: reserved,
        wasted_time: final_r - t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::AffineConvexCost;
    use rsj_dist::{Exponential, Uniform};

    fn seq(v: &[f64], complete: bool) -> ReservationSequence {
        ReservationSequence::new(v.to_vec(), complete).unwrap()
    }

    #[test]
    fn run_job_single_success() {
        let s = seq(&[10.0, 20.0], true);
        let c = CostModel::new(1.0, 1.0, 0.5).unwrap();
        let out = run_job(&s, &c, 7.0);
        // One reservation: α·10 + β·7 + γ.
        assert!((out.cost - 17.5).abs() < 1e-12);
        assert_eq!(out.reservations, 1);
        assert!((out.wasted_time - 3.0).abs() < 1e-12);
    }

    #[test]
    fn run_job_two_reservations() {
        let s = seq(&[10.0, 20.0], true);
        let c = CostModel::new(1.0, 1.0, 0.5).unwrap();
        let out = run_job(&s, &c, 15.0);
        // Failed 10-slot: 2·10 + 0.5; success: 20 + 15 + 0.5.
        assert!((out.cost - (20.5 + 35.5)).abs() < 1e-12);
        assert_eq!(out.reservations, 2);
        assert!((out.reserved_time - 30.0).abs() < 1e-12);
    }

    #[test]
    fn run_job_uses_extension() {
        let s = seq(&[1.0], false);
        let c = CostModel::reservation_only();
        let out = run_job(&s, &c, 5.0); // extension: 2, 4, 8
        assert_eq!(out.reservations, 4);
        assert!((out.cost - (1.0 + 2.0 + 4.0 + 8.0)).abs() < 1e-12);
    }

    #[test]
    fn analytic_matches_uniform_hand_computation() {
        // Uniform(10, 20), RESERVATIONONLY, S = (15, 20):
        // E = 15·1 + 20·P(X ≥ 15) = 15 + 10 = 25.
        let d = Uniform::new(10.0, 20.0).unwrap();
        let c = CostModel::reservation_only();
        let s = seq(&[15.0, 20.0], true);
        assert!((expected_cost_analytic(&s, &d, &c) - 25.0).abs() < 1e-12);
        // Normalized by E° = 15 → 5/3.
        assert!((normalized_cost_analytic(&s, &d, &c) - 25.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn analytic_matches_uniform_full_model() {
        // §2.3's worked example: Uniform(a, b), S = ((a+b)/2, b).
        let (a, b) = (10.0, 20.0);
        let d = Uniform::new(a, b).unwrap();
        let c = CostModel::new(2.0, 3.0, 0.5).unwrap();
        let s = seq(&[15.0, 20.0], true);
        // Direct integration of Eq. 3 (see §2.3): split at t₁ = 15.
        let direct = {
            let t1 = 15.0;
            let first = (c.alpha * t1 + c.beta * (a + t1) / 2.0 + c.gamma) * 0.5;
            let fail = c.alpha * t1 + c.beta * t1 + c.gamma;
            let second = (fail + c.alpha * b + c.beta * (t1 + b) / 2.0 + c.gamma) * 0.5;
            first + second
        };
        let series = expected_cost_analytic(&s, &d, &c);
        assert!(
            (series - direct).abs() < 1e-10,
            "series {series} vs direct {direct}"
        );
    }

    #[test]
    fn monte_carlo_converges_to_analytic() {
        use rand::SeedableRng;
        let d = Exponential::new(1.0).unwrap();
        let c = CostModel::new(1.0, 0.5, 0.1).unwrap();
        // Arithmetic sequence tᵢ = i, deep enough that the gap is ~e^{-40}.
        let s = seq(&(1..=40).map(|i| i as f64).collect::<Vec<_>>(), false);
        let analytic = expected_cost_analytic(&s, &d, &c);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let samples = draw_samples(&d, 400_000, &mut rng);
        let mc = expected_cost_monte_carlo(&s, &c, &samples);
        assert!(
            (mc - analytic).abs() / analytic < 0.01,
            "mc {mc} vs analytic {analytic}"
        );
    }

    #[test]
    fn affine_convex_matches_affine() {
        let d = Exponential::new(1.0).unwrap();
        let c = CostModel::new(1.5, 0.7, 0.2).unwrap();
        let s = seq(&(1..=30).map(|i| i as f64 * 0.8).collect::<Vec<_>>(), false);
        let affine = expected_cost_analytic(&s, &d, &c);
        let convex = expected_cost_analytic_convex(&s, &d, &AffineConvexCost(c));
        assert!((affine - convex).abs() < 1e-10);
        // Per-job accounting must agree too.
        for &t in &[0.3, 1.7, 9.9] {
            let a = run_job(&s, &c, t);
            let v = run_job_convex(&s, &AffineConvexCost(c), t);
            assert!((a.cost - v.cost).abs() < 1e-10, "t={t}");
            assert_eq!(a.reservations, v.reservations);
        }
    }

    #[test]
    fn coverage_gap_zero_when_complete() {
        let d = Uniform::new(10.0, 20.0).unwrap();
        let s = seq(&[20.0], true);
        assert_eq!(coverage_gap(&s, &d), 0.0);
        let partial = seq(&[15.0], false);
        assert!((coverage_gap(&partial, &d) - 0.5).abs() < 1e-12);
    }
}
