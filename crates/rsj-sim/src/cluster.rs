//! The event-driven cluster simulation: jobs in, [`JobRecord`]s out.

use crate::error::SimError;
use crate::event::{EventKind, EventQueue};
use crate::fault::{FaultConfig, FaultInjector, FaultKind};
use crate::job::{Job, JobRecord};
use crate::scheduler::{SchedulerPolicy, SchedulerState};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of a simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Total processors.
    pub processors: usize,
    /// Scheduling policy.
    pub policy: SchedulerPolicy,
}

impl ClusterConfig {
    /// An Intrepid-like machine scaled down: EASY backfilling, 2048
    /// processors (the Figure 2 job sizes of 204/409 then occupy ~10%/20%
    /// of the machine, as they did relative to partition sizes on the real
    /// system).
    pub fn intrepid_like() -> Self {
        Self {
            processors: 2048,
            policy: SchedulerPolicy::EasyBackfill,
        }
    }
}

/// Runs the discrete-event simulation of `jobs` (any order; they are
/// processed by arrival time) and returns one record per started job,
/// sorted by job id.
pub fn simulate(config: &ClusterConfig, jobs: &[Job]) -> Vec<JobRecord> {
    simulate_with_faults(config, jobs, &FaultConfig::none())
        .expect("the fault-free configuration is always valid")
}

/// [`simulate`] with fault injection: running jobs can be interrupted by
/// node crashes, spot preemptions, or jittered walltime kills, which fire
/// as [`EventKind::NodeFailure`]/[`EventKind::Preemption`] events and mark
/// their record's [`JobRecord::fault`].
///
/// Interrupted jobs are *not* resubmitted — every submitted job yields
/// exactly one record, and retries belong to the reservation executor
/// ([`crate::resilient`]). With a fault-free configuration the injector
/// never draws, so this reproduces [`simulate`] bit-for-bit.
pub fn simulate_with_faults(
    config: &ClusterConfig,
    jobs: &[Job],
    faults: &FaultConfig,
) -> Result<Vec<JobRecord>, SimError> {
    let mut injector = FaultInjector::new(faults)?;
    let mut state = SchedulerState::new(config.processors);
    let mut events = EventQueue::new();
    let mut catalogue: HashMap<_, Job> = HashMap::with_capacity(jobs.len());
    for job in jobs {
        assert!(
            job.arrival.is_finite() && job.requested > 0.0 && job.actual >= 0.0,
            "malformed job {:?}",
            job
        );
        // A job wider than the machine can never start and would wedge
        // FCFS forever; real schedulers reject it at submission.
        assert!(
            job.processors <= config.processors,
            "job {:?} requests {} processors on a {}-processor machine",
            job.id,
            job.processors,
            config.processors
        );
        catalogue.insert(job.id, *job);
        events.push(job.arrival, EventKind::Arrival(job.id));
    }

    let mut records = Vec::with_capacity(jobs.len());
    // Fault kind of each scheduled interruption, keyed by job.
    let mut pending: HashMap<crate::job::JobId, FaultKind> = HashMap::new();

    let apply = |state: &mut SchedulerState,
                 records: &mut Vec<JobRecord>,
                 pending: &mut HashMap<crate::job::JobId, FaultKind>,
                 now: f64,
                 kind: EventKind| match kind {
        EventKind::Arrival(id) => state.waiting.push_back(catalogue[&id]),
        EventKind::Departure(id) => {
            if let Some(running) = state.remove_running(id) {
                records.push(JobRecord {
                    job: running.job,
                    start: running.start,
                    end: now,
                    wait: running.start - running.job.arrival,
                    killed: running.job.will_be_killed(),
                    fault: None,
                });
            }
        }
        EventKind::NodeFailure(id) | EventKind::Preemption(id) => {
            if let Some(running) = state.remove_running(id) {
                let fault = pending.remove(&id);
                records.push(JobRecord {
                    job: running.job,
                    start: running.start,
                    end: now,
                    wait: running.start - running.job.arrival,
                    // A jittered walltime kill is still a walltime kill;
                    // crashes and preemptions interrupt the job earlier.
                    killed: fault == Some(FaultKind::WalltimeKill),
                    fault,
                });
            }
        }
    };

    while let Some((now, kind)) = events.pop() {
        apply(&mut state, &mut records, &mut pending, now, kind);
        // Drain every simultaneous event before scheduling, so a batch of
        // same-time departures/arrivals sees one consistent machine state.
        while events.peek_time() == Some(now) {
            let (_, kind) = events.pop().expect("peeked");
            apply(&mut state, &mut records, &mut pending, now, kind);
        }

        for started in state.schedule(config.policy, now) {
            // Fixed per-job draw order (jitter, then crash/preemption)
            // keeps the fault trace deterministic.
            let kill = injector.effective_walltime(started.job.requested);
            let occupancy = started.job.actual.min(kill);
            let fault = if occupancy < started.job.occupancy() {
                Some(FaultKind::WalltimeKill)
            } else {
                None
            };
            let (end, fault) = match injector.interruption(occupancy) {
                Some((offset, kind)) => (started.start + offset, Some(kind)),
                None if fault.is_some() => (started.start + occupancy, fault),
                None => (started.actual_end, None),
            };
            match fault {
                None => events.push(end, EventKind::Departure(started.job.id)),
                Some(FaultKind::Preemption) => {
                    pending.insert(started.job.id, FaultKind::Preemption);
                    events.push(end, EventKind::Preemption(started.job.id));
                }
                Some(kind) => {
                    pending.insert(started.job.id, kind);
                    events.push(end, EventKind::NodeFailure(started.job.id));
                }
            }
        }
    }

    records.sort_by_key(|r| r.job.id);
    Ok(records)
}

/// Aggregate utilization and wait statistics of a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimSummary {
    /// Number of completed jobs.
    pub completed: usize,
    /// Mean queue wait (hours).
    pub mean_wait: f64,
    /// Maximum queue wait (hours).
    pub max_wait: f64,
    /// Fraction of jobs killed by their walltime limit.
    pub killed_fraction: f64,
    /// Fraction of jobs interrupted by an injected fault (0 without fault
    /// injection; defaults when deserializing pre-fault-layer summaries).
    #[serde(default)]
    pub faulted_fraction: f64,
    /// Machine utilization over the makespan: busy processor-hours divided
    /// by `processors × makespan`.
    pub utilization: f64,
}

/// Summarizes simulation records for a cluster of `processors`.
pub fn summarize(records: &[JobRecord], processors: usize) -> SimSummary {
    assert!(!records.is_empty(), "no records to summarize");
    let completed = records.len();
    let mean_wait = records.iter().map(|r| r.wait).sum::<f64>() / completed as f64;
    let max_wait = records.iter().map(|r| r.wait).fold(0.0, f64::max);
    let killed = records.iter().filter(|r| r.killed).count();
    let faulted = records.iter().filter(|r| r.fault.is_some()).count();
    let makespan = records.iter().map(|r| r.end).fold(0.0, f64::max)
        - records
            .iter()
            .map(|r| r.job.arrival)
            .fold(f64::INFINITY, f64::min);
    let busy: f64 = records
        .iter()
        .map(|r| (r.end - r.start) * r.job.processors as f64)
        .sum();
    SimSummary {
        completed,
        mean_wait,
        max_wait,
        killed_fraction: killed as f64 / completed as f64,
        faulted_fraction: faulted as f64 / completed as f64,
        utilization: if makespan > 0.0 {
            busy / (processors as f64 * makespan)
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobId, Time};

    fn job(id: u64, arrival: Time, procs: usize, requested: Time, actual: Time) -> Job {
        Job {
            id: JobId(id),
            arrival,
            processors: procs,
            requested,
            actual,
        }
    }

    #[test]
    fn single_job_runs_immediately() {
        let cfg = ClusterConfig {
            processors: 4,
            policy: SchedulerPolicy::Fcfs,
        };
        let records = simulate(&cfg, &[job(1, 0.5, 2, 2.0, 1.5)]);
        assert_eq!(records.len(), 1);
        let r = records[0];
        assert_eq!(r.start, 0.5);
        assert_eq!(r.end, 2.0); // 0.5 + min(1.5, 2.0)
        assert_eq!(r.wait, 0.0);
        assert!(!r.killed);
    }

    #[test]
    fn walltime_kill_is_recorded() {
        let cfg = ClusterConfig {
            processors: 4,
            policy: SchedulerPolicy::Fcfs,
        };
        let records = simulate(&cfg, &[job(1, 0.0, 2, 1.0, 3.0)]);
        assert_eq!(records[0].end, 1.0);
        assert!(records[0].killed);
    }

    #[test]
    fn fcfs_queueing_wait() {
        let cfg = ClusterConfig {
            processors: 4,
            policy: SchedulerPolicy::Fcfs,
        };
        // Both jobs need the whole machine; second waits for the first.
        let records = simulate(&cfg, &[job(1, 0.0, 4, 2.0, 2.0), job(2, 0.1, 4, 2.0, 2.0)]);
        assert_eq!(records[1].start, 2.0);
        assert!((records[1].wait - 1.9).abs() < 1e-12);
    }

    #[test]
    fn early_completion_frees_machine_sooner() {
        let cfg = ClusterConfig {
            processors: 4,
            policy: SchedulerPolicy::Fcfs,
        };
        // First job requests 10h but finishes in 1h.
        let records = simulate(&cfg, &[job(1, 0.0, 4, 10.0, 1.0), job(2, 0.0, 4, 1.0, 1.0)]);
        assert_eq!(records[1].start, 1.0, "starts when the machine frees");
    }

    #[test]
    fn easy_beats_fcfs_on_mean_wait() {
        // A blocked wide head plus many narrow short jobs: backfilling
        // should slash their waits.
        let mut jobs = vec![job(1, 0.0, 8, 10.0, 10.0), job(2, 0.01, 10, 5.0, 5.0)];
        for i in 0..20 {
            jobs.push(job(3 + i, 0.02 + i as f64 * 0.001, 1, 0.5, 0.5));
        }
        let fcfs = simulate(
            &ClusterConfig {
                processors: 10,
                policy: SchedulerPolicy::Fcfs,
            },
            &jobs,
        );
        let easy = simulate(
            &ClusterConfig {
                processors: 10,
                policy: SchedulerPolicy::EasyBackfill,
            },
            &jobs,
        );
        let mw_fcfs = summarize(&fcfs, 10).mean_wait;
        let mw_easy = summarize(&easy, 10).mean_wait;
        assert!(
            mw_easy < mw_fcfs * 0.8,
            "easy {mw_easy} should clearly beat fcfs {mw_fcfs}"
        );
    }

    #[test]
    fn all_jobs_complete() {
        let cfg = ClusterConfig {
            processors: 16,
            policy: SchedulerPolicy::EasyBackfill,
        };
        let jobs: Vec<Job> = (0..200)
            .map(|i| {
                job(
                    i,
                    i as f64 * 0.05,
                    1 + (i as usize * 7) % 8,
                    0.5 + (i % 5) as f64,
                    0.3 + (i % 4) as f64,
                )
            })
            .collect();
        let records = simulate(&cfg, &jobs);
        assert_eq!(records.len(), jobs.len(), "every job must complete");
        // Conservation: nothing starts before it arrives.
        for r in &records {
            assert!(r.start >= r.job.arrival);
            assert!(r.end > r.start);
        }
    }

    #[test]
    fn fault_free_config_reproduces_simulate_bitwise() {
        let cfg = ClusterConfig {
            processors: 16,
            policy: SchedulerPolicy::EasyBackfill,
        };
        let jobs: Vec<Job> = (0..100)
            .map(|i| {
                job(
                    i,
                    i as f64 * 0.03,
                    1 + (i as usize * 5) % 8,
                    0.5 + (i % 4) as f64,
                    0.4 + (i % 3) as f64,
                )
            })
            .collect();
        let plain = simulate(&cfg, &jobs);
        let faultless = simulate_with_faults(&cfg, &jobs, &FaultConfig::none()).unwrap();
        assert_eq!(plain, faultless);
    }

    #[test]
    fn crashes_interrupt_jobs_and_are_recorded() {
        let cfg = ClusterConfig {
            processors: 8,
            policy: SchedulerPolicy::Fcfs,
        };
        let jobs: Vec<Job> = (0..50)
            .map(|i| job(i, i as f64 * 0.1, 2, 5.0, 4.0))
            .collect();
        let faults = FaultConfig::crashes(1.0, 13);
        let records = simulate_with_faults(&cfg, &jobs, &faults).unwrap();
        assert_eq!(
            records.len(),
            jobs.len(),
            "one record per job, no resubmission"
        );
        let crashed: Vec<_> = records
            .iter()
            .filter(|r| r.fault == Some(FaultKind::Crash))
            .collect();
        assert!(!crashed.is_empty(), "mtbf 1h must crash some 4h jobs");
        for r in &crashed {
            assert!(
                r.end - r.start < r.job.occupancy(),
                "crash cuts the run short"
            );
            assert!(!r.killed);
        }
        // Determinism: an identical config+seed replays the same records.
        let replay = simulate_with_faults(&cfg, &jobs, &faults).unwrap();
        assert_eq!(records, replay);
    }

    #[test]
    fn jittered_walltime_kills_come_early_and_are_flagged() {
        let cfg = ClusterConfig {
            processors: 4,
            policy: SchedulerPolicy::Fcfs,
        };
        // Every job overruns its walltime, so every kill is jitter-eligible.
        let jobs: Vec<Job> = (0..40)
            .map(|i| job(i, i as f64 * 0.01, 2, 2.0, 3.0))
            .collect();
        let records =
            simulate_with_faults(&cfg, &jobs, &FaultConfig::walltime_jitter(0.3, 21)).unwrap();
        let early: Vec<_> = records
            .iter()
            .filter(|r| r.fault == Some(FaultKind::WalltimeKill))
            .collect();
        assert!(!early.is_empty(), "jitter 0.3 must shave some kills");
        for r in &early {
            let ran = r.end - r.start;
            assert!(
                (2.0 * 0.7..2.0).contains(&ran),
                "jittered kill after {ran}h"
            );
            assert!(r.killed, "a jittered walltime kill is still a kill");
        }
        let s = summarize(&records, cfg.processors);
        assert!(s.faulted_fraction > 0.0);
    }

    #[test]
    fn invalid_fault_config_is_rejected() {
        let cfg = ClusterConfig {
            processors: 4,
            policy: SchedulerPolicy::Fcfs,
        };
        let jobs = [job(1, 0.0, 2, 1.0, 1.0)];
        let err = simulate_with_faults(&cfg, &jobs, &FaultConfig::crashes(0.0, 0)).unwrap_err();
        assert!(err.to_string().contains("mtbf"), "{err}");
    }

    #[test]
    fn utilization_bounded() {
        let cfg = ClusterConfig::intrepid_like();
        let jobs: Vec<Job> = (0..100)
            .map(|i| job(i, i as f64 * 0.01, 204, 1.0, 0.9))
            .collect();
        let records = simulate(&cfg, &jobs);
        let s = summarize(&records, cfg.processors);
        assert!(s.utilization > 0.0 && s.utilization <= 1.0 + 1e-9);
        assert_eq!(s.completed, 100);
    }
}
