//! Reservation sequences (§2.2): strictly increasing request lengths
//! `t₁ < t₂ < …`, possibly finite (bounded supports) or a finite prefix of
//! an infinite sequence (unbounded supports).

use crate::error::{CoreError, Result};
use serde::{Deserialize, Serialize};

/// A strictly increasing sequence of reservation lengths.
///
/// For bounded job-time supports the sequence is *complete*: its last
/// element covers the support's upper endpoint and no job can outrun it.
/// For unbounded supports only a finite prefix is materialized; evaluators
/// and executors extend it geometrically past the last element when a
/// sampled job demands it (a documented safety valve — the prefix is always
/// generated deep enough that this happens with probability `< 1e-12`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReservationSequence {
    times: Vec<f64>,
    complete: bool,
}

impl ReservationSequence {
    /// Builds a sequence from reservation lengths, validating positivity and
    /// strict monotonicity. `complete` declares that the last element covers
    /// the entire job-time support.
    pub fn new(times: Vec<f64>, complete: bool) -> Result<Self> {
        if times.is_empty() {
            return Err(CoreError::EmptySequence);
        }
        let mut prev = 0.0;
        for (i, &t) in times.iter().enumerate() {
            if !t.is_finite() || t <= prev {
                return Err(CoreError::NotStrictlyIncreasing { index: i });
            }
            prev = t;
        }
        Ok(Self { times, complete })
    }

    /// A single-reservation sequence (the Theorem 4 optimum for uniform
    /// distributions is `(b)`).
    pub fn single(t: f64) -> Result<Self> {
        Self::new(vec![t], true)
    }

    /// The reservation lengths `t₁ < t₂ < …`.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of materialized reservations.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Never true after construction; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// First reservation `t₁` — the single degree of freedom of an optimal
    /// sequence (Proposition 1).
    pub fn first(&self) -> f64 {
        self.times[0]
    }

    /// Last materialized reservation.
    pub fn last(&self) -> f64 {
        *self.times.last().expect("non-empty by construction")
    }

    /// Whether the last element provably covers every possible job time.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Whether a job of duration `t` fits within the materialized prefix.
    pub fn covers(&self, t: f64) -> bool {
        t <= self.last()
    }

    /// The `i`-th reservation (0-based), extending geometrically (doubling
    /// from the last materialized element) beyond the prefix.
    ///
    /// The extension keeps every evaluator total: an incomplete prefix can
    /// always be continued, and the continuation is deterministic so all
    /// evaluations of the same sequence agree.
    pub fn reservation(&self, i: usize) -> f64 {
        if i < self.times.len() {
            self.times[i]
        } else {
            let extra = (i - self.times.len() + 1) as i32;
            self.last() * 2f64.powi(extra)
        }
    }

    /// Index `k` (0-based) of the first reservation that fits a job of
    /// duration `t`, i.e. the smallest `k` with `t ≤ t_{k+1}` in paper
    /// numbering. Uses the geometric extension beyond the prefix.
    pub fn first_fitting(&self, t: f64) -> usize {
        match self
            .times
            .binary_search_by(|x| x.partial_cmp(&t).expect("finite"))
        {
            Ok(i) => i,
            Err(i) if i < self.times.len() => i,
            Err(_) => {
                // Beyond the prefix: extension doubles from the last value.
                let mut i = self.times.len();
                while self.reservation(i) < t {
                    i += 1;
                }
                i
            }
        }
    }

    /// Iterates over the materialized reservations.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.times.iter().copied()
    }
}

impl std::fmt::Display for ReservationSequence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        const SHOWN: usize = 6;
        write!(f, "(")?;
        for (i, t) in self.times.iter().take(SHOWN).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t:.4}")?;
        }
        if self.times.len() > SHOWN {
            write!(f, ", … [{} terms]", self.times.len())?;
        }
        if !self.complete {
            write!(f, ", …")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid() {
        assert!(matches!(
            ReservationSequence::new(vec![], true),
            Err(CoreError::EmptySequence)
        ));
        assert!(ReservationSequence::new(vec![1.0, 1.0], true).is_err());
        assert!(ReservationSequence::new(vec![2.0, 1.0], true).is_err());
        assert!(ReservationSequence::new(vec![0.0], true).is_err());
        assert!(ReservationSequence::new(vec![-1.0, 2.0], true).is_err());
        assert!(ReservationSequence::new(vec![1.0, f64::INFINITY], true).is_err());
    }

    #[test]
    fn accessors() {
        let s = ReservationSequence::new(vec![1.0, 2.0, 4.0], false).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.first(), 1.0);
        assert_eq!(s.last(), 4.0);
        assert!(!s.is_complete());
        assert!(s.covers(3.5) && !s.covers(4.5));
    }

    #[test]
    fn geometric_extension() {
        let s = ReservationSequence::new(vec![1.0, 2.0, 4.0], false).unwrap();
        assert_eq!(s.reservation(2), 4.0);
        assert_eq!(s.reservation(3), 8.0);
        assert_eq!(s.reservation(5), 32.0);
    }

    #[test]
    fn first_fitting_within_prefix() {
        let s = ReservationSequence::new(vec![1.0, 2.0, 4.0], false).unwrap();
        assert_eq!(s.first_fitting(0.5), 0);
        assert_eq!(s.first_fitting(1.0), 0); // t = t₁ fits the first slot
        assert_eq!(s.first_fitting(1.5), 1);
        assert_eq!(s.first_fitting(4.0), 2);
    }

    #[test]
    fn first_fitting_beyond_prefix() {
        let s = ReservationSequence::new(vec![1.0, 2.0, 4.0], false).unwrap();
        assert_eq!(s.first_fitting(5.0), 3); // extension: 8
        assert_eq!(s.first_fitting(20.0), 5); // extensions: 8, 16, 32
    }

    #[test]
    fn display_truncates() {
        let s = ReservationSequence::new((1..=10).map(|i| i as f64).collect(), false).unwrap();
        let text = format!("{s}");
        assert!(text.contains("[10 terms]"), "{text}");
    }
}
