//! # rsj-par — deterministic fork-join parallelism (system S21)
//!
//! A std-only parallel execution layer for the reservation-strategies
//! workspace: a scoped worker pool ([`Parallelism`]) with chunked work
//! distribution, [`Parallelism::par_map`] / [`Parallelism::try_par_map_reduce`]
//! entry points whose results are **bit-for-bit identical to serial
//! execution at any thread count**, typed panic propagation
//! ([`ParError::WorkerPanicked`]), and an `RSJ_THREADS` environment
//! override (plus `--threads` on the CLI via
//! [`Parallelism::install_global`]).
//!
//! ## Why not rayon
//!
//! The vendoring policy forbids external crates, and — more importantly —
//! work-stealing libraries make no cross-thread-count reproducibility
//! promise for reductions. Here the chunk shape is a pure function of the
//! input length and reductions use one fixed association (see the
//! [`Parallelism`] docs), so `RSJ_THREADS=1` and `RSJ_THREADS=64` produce
//! the same bytes. The paper's Monte-Carlo tables (Eq. 13 estimates with
//! common random numbers) stay exactly reproducible while the hot loops
//! scale with the hardware.
//!
//! ## Instrumentation
//!
//! When `rsj-obs` metrics are enabled the pool records
//! `rsj_par_tasks_total`, `rsj_par_chunks_total`, `rsj_par_steals_total`
//! (chunks claimed outside a worker's static round-robin share),
//! `rsj_par_calls_total` / `rsj_par_serial_calls_total`, and a
//! `rsj_par_worker_busy_seconds` histogram.

mod error;
mod pool;
mod stream;

pub use error::ParError;
pub use pool::{chunk_size, Parallelism};
pub use stream::substream_seed;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_threads_is_a_typed_error() {
        assert_eq!(Parallelism::new(0), Err(ParError::ZeroThreads));
        assert_eq!(Parallelism::new(3).unwrap().threads(), 3);
        assert_eq!(Parallelism::serial().threads(), 1);
    }

    #[test]
    fn par_map_preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let serial = Parallelism::serial()
            .try_par_map(&items, |i, x| (i as u64) * 31 + x * x)
            .unwrap();
        for threads in [2, 3, 4, 8] {
            let par = Parallelism::new(threads)
                .unwrap()
                .try_par_map(&items, |i, x| (i as u64) * 31 + x * x)
                .unwrap();
            assert_eq!(serial, par, "thread count {threads} changed results");
        }
    }

    #[test]
    fn float_reduction_is_identical_across_thread_counts() {
        // Non-associative f64 sums: equality holds because the chunked
        // association is fixed by the input length, not the thread count.
        let items: Vec<f64> = (0..10_000)
            .map(|i| 1.0 / (1.0 + i as f64).powi(2))
            .collect();
        let reference = Parallelism::serial()
            .try_par_map_reduce(&items, |_, x| *x, |a, b| a + b)
            .unwrap()
            .unwrap();
        for threads in [2, 4, 7] {
            let sum = Parallelism::new(threads)
                .unwrap()
                .try_par_map_reduce(&items, |_, x| *x, |a, b| a + b)
                .unwrap()
                .unwrap();
            assert_eq!(
                reference.to_bits(),
                sum.to_bits(),
                "thread count {threads} changed the reduction"
            );
        }
    }

    #[test]
    fn min_reduction_matches_plain_serial_scan() {
        // Min with leftmost-index tie-breaking is truly associative, so
        // the chunked reduction must equal the naive serial fold exactly.
        let items: Vec<f64> = (0..5000)
            .map(|i| ((i as f64) * 0.7919).sin().abs())
            .collect();
        let naive = items
            .iter()
            .enumerate()
            .fold(None::<(usize, f64)>, |best, (i, &v)| match best {
                Some((_, bv)) if bv <= v => best,
                _ => Some((i, v)),
            })
            .unwrap();
        let chunked = Parallelism::new(4)
            .unwrap()
            .try_par_map_reduce(&items, |i, &v| (i, v), |a, b| if b.1 < a.1 { b } else { a })
            .unwrap()
            .unwrap();
        assert_eq!(naive, chunked);
    }

    #[test]
    fn range_reduce_matches_slice_reduce_bit_for_bit() {
        // The DP inner loop swaps the slice variant for the range variant
        // to drop per-state index allocations; the two must share one
        // reduction tree exactly, at any thread count.
        let items: Vec<f64> = (0..10_000)
            .map(|i| ((i as f64) * 0.316).cos() / (1.0 + i as f64))
            .collect();
        let via_slice = Parallelism::new(4)
            .unwrap()
            .try_par_map_reduce(&items, |_, x| *x, |a, b| a + b)
            .unwrap()
            .unwrap();
        for threads in [1, 2, 4, 7] {
            let via_range = Parallelism::new(threads)
                .unwrap()
                .try_par_reduce_range(items.len(), |i| items[i], |a, b| a + b)
                .unwrap()
                .unwrap();
            assert_eq!(
                via_slice.to_bits(),
                via_range.to_bits(),
                "{threads} threads"
            );
        }
        // Min-with-index reductions (the DP shape) agree too.
        let naive = items
            .iter()
            .enumerate()
            .fold(None::<(f64, usize)>, |best, (i, &v)| match best {
                Some((bv, _)) if bv <= v => best,
                _ => Some((v, i)),
            })
            .unwrap();
        let ranged = Parallelism::new(3)
            .unwrap()
            .try_par_reduce_range(
                items.len(),
                |i| (items[i], i),
                |a, b| if b.0 < a.0 { b } else { a },
            )
            .unwrap()
            .unwrap();
        assert_eq!(naive, ranged);
        assert_eq!(
            Parallelism::new(4)
                .unwrap()
                .try_par_reduce_range(0, |i| i, |a, _| a),
            Ok(None)
        );
    }

    #[test]
    fn empty_inputs_are_fine() {
        let empty: Vec<u32> = Vec::new();
        assert_eq!(
            Parallelism::new(4).unwrap().try_par_map(&empty, |_, x| *x),
            Ok(Vec::new())
        );
        assert_eq!(
            Parallelism::new(4)
                .unwrap()
                .try_par_map_reduce(&empty, |_, x| *x, |a, _| a),
            Ok(None)
        );
    }

    #[test]
    fn worker_panic_becomes_typed_error() {
        let items: Vec<usize> = (0..500).collect();
        for par in [Parallelism::serial(), Parallelism::new(4).unwrap()] {
            let err = par
                .try_par_map(&items, |_, &x| {
                    if x == 137 {
                        panic!("boom at {x}");
                    }
                    x
                })
                .unwrap_err();
            match err {
                ParError::WorkerPanicked { message } => {
                    assert!(message.contains("boom"), "message: {message}")
                }
                other => panic!("expected WorkerPanicked, got {other:?}"),
            }
        }
    }

    #[test]
    fn chunk_shape_depends_only_on_length() {
        assert_eq!(chunk_size(0), 1);
        assert_eq!(chunk_size(9), 1);
        assert_eq!(chunk_size(256), 1);
        assert_eq!(chunk_size(100_000), 390);
        // More chunks than any realistic worker count, so dynamic
        // claiming can balance load.
        assert!(100_000usize.div_ceil(chunk_size(100_000)) >= 256);
    }

    #[test]
    fn global_override_wins_over_env() {
        // Serialize against other tests touching the global: this test
        // is the only one in this crate that installs it.
        Parallelism::new(3).unwrap().install_global();
        assert_eq!(Parallelism::current().threads(), 3);
        Parallelism::clear_global();
    }

    #[test]
    fn expensive_small_batches_still_fan_out() {
        // 9 items (one per Table 1 distribution) must become 9 chunks so
        // per-distribution experiments can use all workers.
        let items: Vec<usize> = (0..9).collect();
        let out = Parallelism::new(4)
            .unwrap()
            .try_par_map(&items, |i, &x| i + x)
            .unwrap();
        assert_eq!(out, (0..9).map(|i| 2 * i).collect::<Vec<_>>());
    }
}
