//! Bit-for-bit determinism of the parallel execution layer: every batch
//! runner produces *identical* statistics at any thread count, worker
//! panics surface as typed errors instead of aborting the process, and
//! invalid pool configurations are rejected up front.

use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use rsj_core::{CostModel, MeanDoubling, ReservationSequence, Strategy};
use rsj_dist::{ContinuousDistribution, LogNormal, Support};
use rsj_par::{ParError, Parallelism};
use rsj_sim::{
    run_adaptive, run_batch, run_batch_resilient, run_batch_resilient_seeded, run_batch_seeded,
    AdaptiveConfig, FaultConfig, ResilienceConfig, RetryPolicy, SimError,
};

/// Serializes tests that install an ambient (global) `Parallelism`; the
/// test harness runs `#[test]` fns on multiple threads and the global is
/// process-wide.
static GLOBAL_POOL: Mutex<()> = Mutex::new(());

fn setup() -> (ReservationSequence, LogNormal, CostModel) {
    let dist = LogNormal::new(1.0, 0.8).unwrap();
    let cost = CostModel::new(1.0, 0.5, 0.2).unwrap();
    let seq = MeanDoubling::default().sequence(&dist, &cost).unwrap();
    (seq, dist, cost)
}

fn faulty_config() -> ResilienceConfig {
    ResilienceConfig {
        faults: FaultConfig {
            seed: 7,
            mtbf: Some(5.0),
            preemption_rate: Some(0.05),
            walltime_jitter: Some(0.1),
        },
        retry: RetryPolicy::ExponentialBackoff { factor: 1.5 },
        max_failures: 20,
        checkpoint: None,
    }
}

/// `run_batch_seeded` is a pure function of `(seed, n)`: one, three and
/// four workers produce bit-for-bit identical `BatchStats`.
#[test]
fn seeded_runner_identical_across_thread_counts() {
    let (seq, dist, cost) = setup();
    let runs: Vec<_> = [1usize, 3, 4]
        .iter()
        .map(|&threads| {
            let par = Parallelism::new(threads).unwrap();
            run_batch_seeded(&seq, &dist, &cost, 5000, 42, &par).unwrap()
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[0], runs[2]);
}

/// Same guarantee under fault injection: per-job fault substreams make
/// the resilient batch independent of worker count and execution order.
#[test]
fn seeded_resilient_identical_across_thread_counts() {
    let (seq, dist, cost) = setup();
    let config = faulty_config();
    let runs: Vec<_> = [1usize, 4]
        .iter()
        .map(|&threads| {
            let par = Parallelism::new(threads).unwrap();
            run_batch_resilient_seeded(&seq, &dist, &cost, 5000, 42, &config, &par).unwrap()
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
    assert!(runs[0].failures > 0, "fault config should actually inject");
}

/// The rng-driven entry points (`run_batch`, `run_batch_resilient`)
/// pre-draw durations serially, so the ambient pool width cannot change
/// which randomness each job consumes.
#[test]
fn ambient_pool_width_does_not_change_rng_batches() {
    let _guard = GLOBAL_POOL.lock().unwrap_or_else(|p| p.into_inner());
    let (seq, dist, cost) = setup();
    let config = faulty_config();
    let run_both = |threads: usize| {
        Parallelism::new(threads).unwrap().install_global();
        let plain = run_batch(&seq, &dist, &cost, 3000, &mut StdRng::seed_from_u64(42)).unwrap();
        let resilient = run_batch_resilient(
            &seq,
            &dist,
            &cost,
            3000,
            &mut StdRng::seed_from_u64(42),
            &config,
        )
        .unwrap();
        (plain, resilient)
    };
    let serial = run_both(1);
    let wide = run_both(4);
    Parallelism::clear_global();
    assert_eq!(serial, wide);
}

/// Adaptive replanning executes refit-interval blocks in parallel; with a
/// block size past the parallel threshold the full `AdaptiveReport`
/// (per-job costs, refit records, regret) is identical at 1 and 4 threads.
#[test]
fn adaptive_report_identical_across_thread_counts() {
    let _guard = GLOBAL_POOL.lock().unwrap_or_else(|p| p.into_inner());
    let truth = LogNormal::new(1.2, 0.6).unwrap();
    let prior = LogNormal::new(0.5, 1.0).unwrap();
    let strategy = MeanDoubling::default();
    let cost = CostModel::new(1.0, 0.5, 0.2).unwrap();
    let config = AdaptiveConfig {
        // Past MIN_PAR_BLOCK (64) so the parallel path actually engages.
        refit_interval: 100,
        censor_after: Some(3),
        resilience: faulty_config(),
        ..AdaptiveConfig::default()
    };
    let run_at = |threads: usize| {
        Parallelism::new(threads).unwrap().install_global();
        run_adaptive(
            &truth,
            &prior,
            &strategy,
            &cost,
            300,
            &config,
            &mut StdRng::seed_from_u64(9),
        )
        .unwrap()
    };
    let serial = run_at(1);
    let wide = run_at(4);
    Parallelism::clear_global();
    assert_eq!(serial, wide);
    assert!(serial.replans > 0, "the run should actually replan");
}

/// A distribution whose sampler panics, to prove worker panics become
/// typed errors rather than aborting the batch.
#[derive(Debug)]
struct PanickingDist;

impl ContinuousDistribution for PanickingDist {
    fn name(&self) -> String {
        "Panicking".into()
    }
    fn support(&self) -> Support {
        Support::Unbounded { lower: 0.0 }
    }
    fn pdf(&self, _t: f64) -> f64 {
        0.0
    }
    fn cdf(&self, _t: f64) -> f64 {
        0.0
    }
    fn quantile(&self, _p: f64) -> f64 {
        panic!("synthetic sampler failure");
    }
    fn mean(&self) -> f64 {
        1.0
    }
    fn variance(&self) -> f64 {
        1.0
    }
    fn sample(&self, _rng: &mut dyn RngCore) -> f64 {
        panic!("synthetic sampler failure");
    }
}

/// A worker panic mid-batch surfaces as `SimError::Parallel(WorkerPanicked)`
/// — on the multi-threaded *and* the serial path.
#[test]
fn worker_panic_is_a_typed_error() {
    let (seq, _, cost) = setup();
    for threads in [1usize, 4] {
        let par = Parallelism::new(threads).unwrap();
        let err = run_batch_seeded(&seq, &PanickingDist, &cost, 64, 1, &par).unwrap_err();
        match err {
            SimError::Parallel(ParError::WorkerPanicked { message }) => {
                assert!(
                    message.contains("synthetic sampler failure"),
                    "panic payload should be preserved, got: {message}"
                );
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }
}

/// `--threads 0` style misconfiguration is a typed error that converts
/// into `SimError` for uniform CLI surfacing.
#[test]
fn zero_threads_is_a_typed_error() {
    let err = Parallelism::new(0).unwrap_err();
    assert_eq!(err, ParError::ZeroThreads);
    let sim: SimError = err.into();
    assert!(sim.to_string().contains("parallel execution failed"));
}
