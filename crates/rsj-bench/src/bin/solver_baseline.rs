//! Seeds `results/BENCH_solvers.json`: wall-clock baselines for the
//! solver families (Brute-Force, discretized DP, exact exponential) and
//! the seeded batch simulator over the Table 1 distributions, swept over
//! worker-thread counts, plus the instrumented metrics snapshot.
//!
//! Future performance PRs diff against this file instead of folklore.
//! Each row carries a `digest` of the solver's result (FNV-1a over the
//! IEEE-754 bit patterns): rows that differ only in `threads` must have
//! equal digests — the bit-for-bit determinism contract of `rsj-par`.
//! Eval-table caches are cleared before every timed solve so timings are
//! cold-cache honest; the explicit `*_warm` rows re-solve with the cache
//! primed to expose the caching win.
//!
//! Honours `RSJ_FIDELITY` (`quick` shrinks the grids) and `RSJ_LOG`.
//! `--threads <list>` (comma-separated) overrides the default sweep of
//! {1, 2, 4, ncpu}.

use rsj_bench::perf::{digest_f64s, HostInfo, PERF_SCHEMA_VERSION};
use rsj_bench::scenarios::{paper_distributions, Fidelity, EPSILON};
use rsj_bench::{report, DEFAULT_SEED};
use rsj_core::heuristics::{optimal_discrete, optimal_discrete_exact, optimal_discrete_monotone};
use rsj_core::{BruteForce, CancelToken, CostModel, DiscretizedDp, EvalMethod, Strategy};
use rsj_dist::{discretize, DiscretizationScheme};
use rsj_obs::{MetricsSnapshot, Stopwatch};
use rsj_par::Parallelism;
use rsj_sim::run_batch_seeded;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One timed solve: which solver, on which distribution, with how many
/// worker threads, how long, and a digest of what it produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SolverTiming {
    solver: String,
    distribution: String,
    threads: usize,
    wall_seconds: f64,
    /// `wall(threads = 1) / wall(threads = t)` for the same
    /// (solver, distribution); absent on the serial row itself.
    #[serde(skip_serializing_if = "Option::is_none")]
    speedup_vs_serial: Option<f64>,
    /// FNV-1a over the result's f64 bit patterns; equal across thread
    /// counts by the determinism contract.
    digest: String,
}

/// The `results/BENCH_solvers.json` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SolverBaseline {
    schema_version: u32,
    fidelity: String,
    seed: u64,
    /// The machine the sweep ran on; a `speedup_vs_serial ≈ 1` row is
    /// expected when `available_parallelism` is 1 and a regression
    /// otherwise.
    #[serde(default)]
    host: HostInfo,
    /// Worker-thread counts the suite was swept over.
    threads_swept: Vec<usize>,
    /// Serial wall-time ratio `exact / monotone` of the Theorem 5 DP on
    /// the n = 10000 lognormal grid (the `dp_core_*_n10000` rows): the
    /// headline win of the `O(n log n)` fast path. The perf gate fails a
    /// PR that lets this fall below 5.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    monotone_speedup_n10000: Option<f64>,
    timings: Vec<SolverTiming>,
    /// Global registry after the run: solver wall-time histograms with
    /// p50/p95/p99 plus candidate/state and worker-pool counters.
    metrics: MetricsSnapshot,
}

fn parse_threads() -> Result<Option<Vec<usize>>, String> {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("--threads") => match args.next() {
            Some(list) => {
                let threads = list
                    .split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|_| format!("--threads: `{list}` is not a list of integers"))?;
                if threads.is_empty() || threads.contains(&0) {
                    return Err("--threads: counts must be >= 1".into());
                }
                Ok(Some(threads))
            }
            None => Err("--threads requires a count or comma-separated list".into()),
        },
        Some(other) => Err(format!("unknown argument: {other}")),
        None => Ok(None),
    }
}

fn main() -> std::io::Result<()> {
    rsj_obs::init_from_env();
    rsj_obs::set_metrics_enabled(true);
    // Captured before the sweep installs its pools, so `pool_threads` is
    // the default this machine would solve with.
    let host = HostInfo::capture();

    let sweep = match parse_threads() {
        Ok(Some(list)) => list,
        Ok(None) => {
            let mut list = vec![1, 2, 4, Parallelism::available().threads()];
            list.sort_unstable();
            list.dedup();
            list
        }
        Err(msg) => {
            rsj_obs::error!("{msg}");
            eprintln!("usage: solver_baseline [--threads <n>[,<n>...]]");
            std::process::exit(2);
        }
    };

    let fidelity = Fidelity::from_env();
    let cost = CostModel::reservation_only();
    let mut timings: Vec<SolverTiming> = Vec::new();
    rsj_obs::info!(
        "timing solver baselines at {fidelity:?} fidelity, threads {:?}",
        sweep
    );

    for &threads in &sweep {
        let par = Parallelism::new(threads).expect("parse rejects zero");
        par.install_global();
        let mut time =
            |solver: &str, distribution: &str, cold: bool, f: &mut dyn FnMut() -> Vec<f64>| {
                if cold {
                    rsj_dist::clear_eval_cache();
                }
                let sw = Stopwatch::start();
                let result = f();
                let wall_seconds = sw.elapsed_secs();
                rsj_obs::info!("{solver} on {distribution} ({threads}t): {wall_seconds:.4}s");
                timings.push(SolverTiming {
                    solver: solver.into(),
                    distribution: distribution.into(),
                    threads,
                    wall_seconds,
                    speedup_vs_serial: None,
                    digest: digest_f64s(result),
                });
            };

        let brute = BruteForce::new(
            fidelity.grid(),
            fidelity.samples(),
            EvalMethod::Analytic,
            DEFAULT_SEED,
        )
        .expect("valid brute-force parameters");
        for nd in paper_distributions() {
            time("brute_force_analytic", nd.name, true, &mut || {
                brute
                    .sequence(nd.dist.as_ref(), &cost)
                    .expect("brute force solves the paper distributions")
                    .times()
                    .to_vec()
            });
            for (tag, scheme) in [
                ("dp_equal_time", DiscretizationScheme::EqualTime),
                (
                    "dp_equal_probability",
                    DiscretizationScheme::EqualProbability,
                ),
            ] {
                let dp = DiscretizedDp::new(scheme, fidelity.discretization(), EPSILON)
                    .expect("valid DP parameters");
                let mut solve = || {
                    dp.sequence(nd.dist.as_ref(), &cost)
                        .expect("DP solves the paper distributions")
                        .times()
                        .to_vec()
                };
                time(tag, nd.name, true, &mut solve);
                // Second solve with the eval-table cache primed.
                time(&format!("{tag}_warm"), nd.name, false, &mut solve);
            }
            time("batch_sim_seeded", nd.name, true, &mut || {
                let seq = rsj_core::MeanDoubling::default()
                    .sequence(nd.dist.as_ref(), &cost)
                    .expect("mean-doubling solves the paper distributions");
                let stats = run_batch_seeded(
                    &seq,
                    nd.dist.as_ref(),
                    &cost,
                    fidelity.samples(),
                    DEFAULT_SEED,
                    &par,
                )
                .expect("seeded batch runs");
                vec![
                    stats.mean_cost,
                    stats.p95_cost,
                    stats.max_cost,
                    stats.mean_reservations,
                    stats.max_reservations as f64,
                    stats.mean_waste,
                    stats.waste_fraction,
                ]
            });
        }

        // The closed-form §3.5 optimum only exists for Exponential(1); its
        // direct DP counterpart at the same discretization gives the
        // exact-vs-discretized cost of that special case.
        time("exact_exponential", "Exponential", true, &mut || {
            let s1 = rsj_core::exact::exponential::exp_optimal_s1();
            let c = rsj_core::exact::exponential::exp_optimal_cost(1.0);
            assert!(s1.is_finite() && c.is_finite());
            vec![s1, c]
        });
        // Monotone fast path vs exact O(n²) pass on one deep grid — the
        // core-solver comparison the perf gate tracks. The discretization
        // is built outside the timed region so both rows measure the DP
        // alone; digests must match exactly (bit-identity contract).
        {
            let lognormal = paper_distributions()
                .into_iter()
                .find(|nd| nd.name == "Lognormal")
                .expect("Table 1 has the lognormal row");
            let deep = discretize(
                lognormal.dist.as_ref(),
                DiscretizationScheme::EqualTime,
                10_000,
                EPSILON,
            )
            .expect("deep discretization succeeds");
            let solution_vec = |sol: rsj_core::DpSolution| {
                let mut out = vec![sol.expected_cost];
                out.extend(sol.values);
                out
            };
            time("dp_core_monotone_n10000", "Lognormal", true, &mut || {
                solution_vec(
                    optimal_discrete_monotone(&deep, &cost, &CancelToken::none())
                        .expect("no cancellation")
                        .expect("gate fires on the lognormal grid"),
                )
            });
            time("dp_core_exact_n10000", "Lognormal", true, &mut || {
                solution_vec(optimal_discrete_exact(&deep, &cost).expect("exact pass solves"))
            });
        }

        time("dp_discrete_direct", "Exponential", true, &mut || {
            let dist = paper_distributions()
                .into_iter()
                .find(|nd| nd.name == "Exponential")
                .expect("Table 1 has the exponential row");
            let discrete = discretize(
                dist.dist.as_ref(),
                DiscretizationScheme::EqualProbability,
                fidelity.discretization(),
                EPSILON,
            )
            .expect("discretization succeeds");
            let sol =
                optimal_discrete(&discrete, &cost).expect("DP solves the discretized exponential");
            let mut out = vec![sol.expected_cost];
            out.extend(sol.indices.iter().map(|&i| i as f64));
            out
        });
    }
    Parallelism::clear_global();

    // Speedup columns: serial reference per (solver, distribution).
    let serial: HashMap<(String, String), f64> = timings
        .iter()
        .filter(|t| t.threads == 1)
        .map(|t| ((t.solver.clone(), t.distribution.clone()), t.wall_seconds))
        .collect();
    for t in &mut timings {
        if t.threads == 1 {
            continue;
        }
        if let Some(&base) = serial.get(&(t.solver.clone(), t.distribution.clone())) {
            if t.wall_seconds > 0.0 {
                t.speedup_vs_serial = Some(base / t.wall_seconds);
            }
        }
    }

    // Determinism self-check: a digest that varies with the thread count
    // is a bug worth failing the baseline over.
    let mut digests: HashMap<(String, String), String> = HashMap::new();
    for t in &timings {
        let key = (t.solver.clone(), t.distribution.clone());
        match digests.get(&key) {
            None => {
                digests.insert(key, t.digest.clone());
            }
            Some(d) => assert_eq!(
                d, &t.digest,
                "{} on {} is not deterministic across thread counts",
                t.solver, t.distribution
            ),
        }
    }

    // The monotone fast path must reproduce the exact pass bit-for-bit:
    // a digest difference between the two core rows is a solver bug, not
    // a performance detail.
    let core_digests: Vec<&str> = ["dp_core_monotone_n10000", "dp_core_exact_n10000"]
        .iter()
        .filter_map(|s| timings.iter().find(|t| &t.solver == s))
        .map(|t| t.digest.as_str())
        .collect();
    assert_eq!(
        core_digests[0], core_digests[1],
        "monotone DP digest diverged from the exact pass"
    );
    let serial_wall = |solver: &str| {
        timings
            .iter()
            .find(|t| t.solver == solver && t.threads == *sweep.first().expect("sweep nonempty"))
            .map(|t| t.wall_seconds)
    };
    let monotone_speedup_n10000 = match (
        serial_wall("dp_core_exact_n10000"),
        serial_wall("dp_core_monotone_n10000"),
    ) {
        (Some(exact), Some(fast)) if fast > 0.0 => Some(exact / fast),
        _ => None,
    };
    if let Some(speedup) = monotone_speedup_n10000 {
        rsj_obs::info!("monotone DP speedup on the n=10000 grid: {speedup:.1}x");
    }

    let baseline = SolverBaseline {
        schema_version: PERF_SCHEMA_VERSION,
        fidelity: format!("{fidelity:?}"),
        seed: DEFAULT_SEED,
        host,
        threads_swept: sweep,
        monotone_speedup_n10000,
        timings,
        metrics: rsj_obs::global_registry().snapshot(),
    };
    let mut body = serde_json::to_string_pretty(&baseline).expect("baseline is serializable");
    body.push('\n');
    let path = report::write_result_file("BENCH_solvers.json", &body)?;
    rsj_obs::info!("solver baseline written to {}", path.display());
    Ok(())
}
