//! # rsj-traces — neuroscience runtime archives and the NeuroHPC scenario
//!
//! System S12 of `DESIGN.md`: the paper extracts job-runtime distributions
//! from 5000+ archived runs of two Vanderbilt medical-imaging applications
//! (Figure 1) and builds the §5.3 NeuroHPC experiment on the VBMQA fit. The
//! original database is private; this crate synthesizes archives whose
//! generating process matches the published fits and provides the identical
//! fit → schedule pipeline:
//!
//! * [`mod@format`] — trace records + CSV codec;
//! * [`synth`] — synthetic fMRIQA / VBMQA archives (optionally
//!   contaminated);
//! * [`pipeline`] — LogNormal MLE per application with KS goodness checks
//!   (the Figure 1 procedure);
//! * [`neurohpc`] — the §5.3 scenario: VBMQA law in hours under the
//!   Intrepid waiting-time cost model `CostModel(0.95, 1.0, 1.05)`, plus
//!   the Figure 4 moment-scaling sweep.
//!
//! ## Example
//!
//! ```
//! use rsj_traces::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let archive = synthesize(&SynthConfig::vbmqa(5000), &mut rng);
//! let reports = fit_archive(&archive).unwrap();
//! assert!((reports[0].mu - 7.1128).abs() < 0.05);
//! ```

#![warn(missing_docs)]
// `!(x > 0.0)`-style guards deliberately reject NaN together with
// out-of-range values; clippy's partial_cmp suggestion obscures that.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod format;
pub mod io;
pub mod neurohpc;
pub mod pipeline;
pub mod synth;

pub use format::{TraceArchive, TraceRecord};
pub use io::{load_csv, load_json, save_csv, save_json};
pub use neurohpc::NeuroHpcScenario;
pub use pipeline::{fit_archive, FitReport};
pub use synth::{figure1_archive, synthesize, SynthConfig};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::format::{TraceArchive, TraceRecord};
    pub use crate::neurohpc::NeuroHpcScenario;
    pub use crate::pipeline::{fit_archive, FitReport};
    pub use crate::synth::{figure1_archive, synthesize, SynthConfig};
}
