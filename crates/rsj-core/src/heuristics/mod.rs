//! The reservation heuristics of §4 (system S7 of DESIGN.md).
//!
//! * [`BruteForce`] — §4.1: grid search over `t₁`, sequences completed via
//!   the optimal recurrence (Eq. 11);
//! * [`DiscretizedDp`] — §4.2: truncate + discretize the distribution, then
//!   solve the discrete problem exactly by dynamic programming (Theorem 5);
//! * [`MeanByMean`], [`MeanStdev`], [`MeanDoubling`], [`MedianByMedian`] —
//!   §4.3: measure-based incremental rules.
//!
//! All heuristics implement the common [`Strategy`] trait and produce a
//! [`ReservationSequence`] for a distribution/cost-model pair.

mod brute_force;
mod dp;
mod simple;

pub use brute_force::{BruteForce, EvalMethod, SweepPoint};
pub use dp::{
    discrete_sequence_cost, optimal_discrete, optimal_discrete_par, DiscretizedDp, DpSolution,
};
pub use simple::{MeanByMean, MeanDoubling, MeanStdev, MedianByMedian};

use crate::cost::CostModel;
use crate::error::Result;
use crate::sequence::ReservationSequence;
use rsj_dist::ContinuousDistribution;

/// A reservation strategy: computes an increasing sequence of reservation
/// lengths for a given job-time distribution and cost model.
pub trait Strategy: Send + Sync {
    /// Display name, matching the paper's table headers where applicable.
    fn name(&self) -> &str;

    /// Computes the reservation sequence.
    fn sequence(
        &self,
        dist: &dyn ContinuousDistribution,
        cost: &CostModel,
    ) -> Result<ReservationSequence>;
}

/// Parameters shared by the sequence generators of the simple heuristics:
/// how deep into the tail a materialized prefix must reach.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailPolicy {
    /// Stop extending once `P(X ≥ tᵢ)` falls below this.
    pub tail_cutoff: f64,
    /// Hard cap on the number of reservations.
    pub max_len: usize,
}

impl Default for TailPolicy {
    fn default() -> Self {
        Self {
            tail_cutoff: 1e-12,
            max_len: 100_000,
        }
    }
}

/// The full §4 heuristic suite with the paper's evaluation parameters
/// (`M = 5000`, `N = 1000`, `ε = 1e-7`, `n = 1000`), in Table 2 column
/// order.
pub fn paper_suite(seed: u64) -> Vec<Box<dyn Strategy>> {
    vec![
        Box::new(BruteForce::paper(seed)),
        Box::new(MeanByMean::default()),
        Box::new(MeanStdev::default()),
        Box::new(MeanDoubling::default()),
        Box::new(MedianByMedian::default()),
        Box::new(DiscretizedDp::paper(
            rsj_dist::DiscretizationScheme::EqualTime,
        )),
        Box::new(DiscretizedDp::paper(
            rsj_dist::DiscretizationScheme::EqualProbability,
        )),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsj_dist::DistSpec;

    #[test]
    fn suite_has_paper_names_in_order() {
        let suite = paper_suite(1);
        let names: Vec<&str> = suite.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "Brute-Force",
                "Mean-by-Mean",
                "Mean-Stdev",
                "Mean-Doubling",
                "Median-by-Median",
                "Equal-time",
                "Equal-probability",
            ]
        );
    }

    #[test]
    fn every_heuristic_handles_every_paper_distribution() {
        let cost = CostModel::reservation_only();
        // Brute force is exercised with a small grid to keep this test fast.
        let mut suite: Vec<Box<dyn Strategy>> = vec![
            Box::new(BruteForce::new(200, 200, EvalMethod::Analytic, 7).unwrap()),
            Box::new(MeanByMean::default()),
            Box::new(MeanStdev::default()),
            Box::new(MeanDoubling::default()),
            Box::new(MedianByMedian::default()),
        ];
        suite.push(Box::new(
            DiscretizedDp::new(rsj_dist::DiscretizationScheme::EqualTime, 200, 1e-7).unwrap(),
        ));
        for (name, spec) in DistSpec::paper_table1() {
            let dist = spec.build().unwrap();
            for h in &suite {
                let seq = h
                    .sequence(dist.as_ref(), &cost)
                    .unwrap_or_else(|e| panic!("{} on {name}: {e}", h.name()));
                assert!(!seq.is_empty(), "{} on {name}", h.name());
            }
        }
    }
}
