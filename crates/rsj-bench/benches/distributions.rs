//! Criterion: throughput of the from-scratch distribution primitives
//! (pdf / cdf / quantile / sampling / conditional mean) across the Table 1
//! families — these sit on the hot path of every heuristic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rsj_dist::{ContinuousDistribution, DistSpec};

fn bench_distributions(c: &mut Criterion) {
    let dists: Vec<(&str, Box<dyn ContinuousDistribution>)> = DistSpec::paper_table1()
        .into_iter()
        .map(|(name, spec)| (name, spec.build().unwrap()))
        .collect();

    let mut group = c.benchmark_group("cdf");
    for (name, d) in &dists {
        let t = d.mean();
        group.bench_with_input(BenchmarkId::from_parameter(name), d, |b, d| {
            b.iter(|| d.cdf(criterion::black_box(t)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("quantile");
    for (name, d) in &dists {
        group.bench_with_input(BenchmarkId::from_parameter(name), d, |b, d| {
            b.iter(|| d.quantile(criterion::black_box(0.73)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("conditional_mean");
    for (name, d) in &dists {
        let tau = d.quantile(0.8);
        group.bench_with_input(BenchmarkId::from_parameter(name), d, |b, d| {
            b.iter(|| d.conditional_mean_above(criterion::black_box(tau)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("sample_1k");
    for (name, d) in &dists {
        group.bench_with_input(BenchmarkId::from_parameter(name), d, |b, d| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            b.iter(|| {
                let mut acc = 0.0;
                for _ in 0..1000 {
                    acc += d.sample(&mut rng);
                }
                acc
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distributions);
criterion_main!(benches);
