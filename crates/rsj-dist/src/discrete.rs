//! Finite discrete distributions and the truncation/discretization schemes
//! of §4.2.1 (system S3 of DESIGN.md).
//!
//! A continuous distribution is first truncated to `[a, b]` with
//! `b = Q(1 - ε)` when its support is unbounded, then sampled into `n`
//! `(vᵢ, fᵢ)` pairs by one of two schemes:
//!
//! * **Equal-probability** — `vᵢ = Q(i·F(b)/n)`, `fᵢ = F(b)/n`;
//! * **Equal-time** — `vᵢ = a + i·(b-a)/n`, `fᵢ = F(vᵢ) - F(vᵢ₋₁)`.
//!
//! The resulting [`DiscreteDistribution`] feeds the optimal dynamic program
//! of Theorem 5 (`rsj-core::heuristics::dp`).

use crate::error::{DistError, Result};
use crate::traits::ContinuousDistribution;
use serde::{Deserialize, Serialize};

/// Which discretization scheme of §4.2.1 to apply.
///
/// Serializes as the snake_case scheme name (`"equal_time"`,
/// `"equal_probability"`) — the same spelling [`FromStr`] accepts — so
/// CLI configs and the `rsj-serve` wire protocol share one vocabulary.
///
/// [`FromStr`]: std::str::FromStr
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum DiscretizationScheme {
    /// All sampled execution times carry the same probability mass.
    EqualProbability,
    /// Sampled execution times are equally spaced on `[a, b]`.
    EqualTime,
}

impl std::fmt::Display for DiscretizationScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiscretizationScheme::EqualProbability => write!(f, "Equal-probability"),
            DiscretizationScheme::EqualTime => write!(f, "Equal-time"),
        }
    }
}

impl std::str::FromStr for DiscretizationScheme {
    type Err = DistError;

    /// Parses the scheme name as it appears in CLI configs, the wire
    /// protocol and the paper's table headers. Matching is
    /// case-insensitive and treats `-`, `_` and spaces as equivalent, so
    /// `equal_time`, `Equal-time` and `EQUAL TIME` all parse.
    fn from_str(s: &str) -> Result<Self> {
        let canon: String = s
            .chars()
            .map(|c| match c {
                '-' | ' ' => '_',
                c => c.to_ascii_lowercase(),
            })
            .collect();
        match canon.as_str() {
            "equal_time" => Ok(DiscretizationScheme::EqualTime),
            "equal_probability" => Ok(DiscretizationScheme::EqualProbability),
            _ => Err(DistError::UnknownName {
                what: "discretization scheme",
                input: s.to_string(),
                expected: "`equal_time` or `equal_probability`",
            }),
        }
    }
}

/// A finite discrete distribution `X ~ (vᵢ, fᵢ)` with strictly increasing
/// values and positive probabilities summing to 1.
///
/// Construction normalizes the weights; the pre-normalization total mass is
/// kept (discretizing an unbounded law with truncation level ε yields raw
/// mass `F(b) = 1 - ε`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscreteDistribution {
    values: Vec<f64>,
    probs: Vec<f64>,
    /// Total probability mass before normalization (≤ 1).
    raw_mass: f64,
}

impl DiscreteDistribution {
    /// Builds a discrete distribution from `(value, weight)` pairs.
    ///
    /// Values must be finite, strictly increasing and nonnegative; weights
    /// must be nonnegative with a positive sum. Zero-weight entries are
    /// dropped.
    pub fn new(values: Vec<f64>, weights: Vec<f64>) -> Result<Self> {
        if values.len() != weights.len() {
            return Err(DistError::DegenerateSample {
                reason: "values and weights have different lengths",
            });
        }
        if values.is_empty() {
            return Err(DistError::DegenerateSample {
                reason: "empty discrete distribution",
            });
        }
        let mut v = Vec::with_capacity(values.len());
        let mut p = Vec::with_capacity(values.len());
        let mut prev = f64::NEG_INFINITY;
        let mut total = 0.0;
        for (&x, &w) in values.iter().zip(&weights) {
            if !x.is_finite() || x < 0.0 {
                return Err(DistError::InvalidParameter {
                    name: "value",
                    value: x,
                    requirement: "must be finite and nonnegative",
                });
            }
            if !w.is_finite() || w < 0.0 {
                return Err(DistError::InvalidParameter {
                    name: "weight",
                    value: w,
                    requirement: "must be finite and nonnegative",
                });
            }
            if x <= prev {
                return Err(DistError::InvalidParameter {
                    name: "value",
                    value: x,
                    requirement: "values must be strictly increasing",
                });
            }
            prev = x;
            if w > 0.0 {
                v.push(x);
                p.push(w);
                total += w;
            }
        }
        if total <= 0.0 || v.is_empty() {
            return Err(DistError::DegenerateSample {
                reason: "all weights are zero",
            });
        }
        for w in &mut p {
            *w /= total;
        }
        Ok(Self {
            values: v,
            probs: p,
            raw_mass: total,
        })
    }

    /// Number of support points `n`.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the distribution has no support points (never true after
    /// construction; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The strictly increasing execution times `v₁ < … < vₙ`.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The normalized probabilities `f₁, …, fₙ` (sum to 1).
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Pre-normalization probability mass (equals `F(b) = 1 - ε` when built
    /// by truncating an unbounded distribution).
    pub fn raw_mass(&self) -> f64 {
        self.raw_mass
    }

    /// Largest support point `vₙ` (the value any optimal DP sequence ends
    /// with, cf. Theorem 5).
    pub fn max_value(&self) -> f64 {
        *self.values.last().expect("non-empty by construction")
    }

    /// Expected value `Σ fᵢ vᵢ`.
    pub fn mean(&self) -> f64 {
        self.values
            .iter()
            .zip(&self.probs)
            .map(|(v, p)| v * p)
            .sum()
    }

    /// Survival mass `P(X ≥ vᵢ) = Σ_{k ≥ i} f_k` for each index, plus a
    /// trailing 0 (suffix sums, used by the DP and the evaluators).
    pub fn suffix_masses(&self) -> Vec<f64> {
        let n = self.values.len();
        let mut s = vec![0.0; n + 1];
        for i in (0..n).rev() {
            s[i] = s[i + 1] + self.probs[i];
        }
        s
    }

    /// CDF of the discrete law: `P(X ≤ t)`.
    pub fn cdf(&self, t: f64) -> f64 {
        let mut acc = 0.0;
        for (v, p) in self.values.iter().zip(&self.probs) {
            if *v <= t {
                acc += p;
            } else {
                break;
            }
        }
        acc
    }
}

/// Truncation + discretization of a continuous distribution (§4.2.1).
///
/// For unbounded supports, the upper bound is `b = Q(1 - epsilon)`; for
/// bounded supports, the distribution's own upper endpoint is used and
/// `epsilon` is ignored. `n` is the number of sampled points (the paper
/// uses `n = 1000`, `ε = 1e-7`).
pub fn discretize(
    dist: &dyn ContinuousDistribution,
    scheme: DiscretizationScheme,
    n: usize,
    epsilon: f64,
) -> Result<DiscreteDistribution> {
    if n == 0 {
        return Err(DistError::InvalidParameter {
            name: "n",
            value: 0.0,
            requirement: "must be positive",
        });
    }
    if !(0.0..1.0).contains(&epsilon) {
        return Err(DistError::InvalidParameter {
            name: "epsilon",
            value: epsilon,
            requirement: "must be in (0, 1) for unbounded supports",
        });
    }
    let support = dist.support();
    let a = support.lower();
    let (b, fb) = match support.upper() {
        Some(b) => (b, 1.0),
        None => (dist.quantile(1.0 - epsilon), 1.0 - epsilon),
    };

    let (mut values, mut weights) = (Vec::with_capacity(n), Vec::with_capacity(n));
    match scheme {
        DiscretizationScheme::EqualProbability => {
            let step = fb / n as f64;
            for i in 1..=n {
                // Clamp: i·(fb/n) can exceed fb by a rounding ulp at i = n,
                // which steep heavy-tailed quantiles amplify past b.
                let p = (i as f64 * step).min(fb);
                values.push(dist.quantile(p));
                weights.push(step);
            }
        }
        DiscretizationScheme::EqualTime => {
            let step = (b - a) / n as f64;
            let mut prev_cdf = dist.cdf(a);
            for i in 1..=n {
                let v = a + i as f64 * step;
                let c = dist.cdf(v);
                values.push(v);
                weights.push((c - prev_cdf).max(0.0));
                prev_cdf = c;
            }
        }
    }

    // Quantile plateaus can produce duplicate values (e.g. coarse grids on
    // spiky densities); merge them, keeping the combined mass.
    let mut merged_v: Vec<f64> = Vec::with_capacity(values.len());
    let mut merged_w: Vec<f64> = Vec::with_capacity(values.len());
    for (v, w) in values.into_iter().zip(weights) {
        match merged_v.last() {
            Some(&last) if v <= last + f64::EPSILON * last.abs().max(1.0) => {
                *merged_w.last_mut().expect("nonempty") += w;
            }
            _ => {
                merged_v.push(v);
                merged_w.push(w);
            }
        }
    }

    DiscreteDistribution::new(merged_v, merged_w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::continuous::{Exponential, Uniform};

    #[test]
    fn scheme_parses_all_spellings() {
        for s in ["equal_time", "Equal-time", "EQUAL TIME", "equal-Time"] {
            assert_eq!(
                s.parse::<DiscretizationScheme>().unwrap(),
                DiscretizationScheme::EqualTime,
                "{s}"
            );
        }
        for s in ["equal_probability", "Equal-probability"] {
            assert_eq!(
                s.parse::<DiscretizationScheme>().unwrap(),
                DiscretizationScheme::EqualProbability,
                "{s}"
            );
        }
        // Display output round-trips through the parser.
        for scheme in [
            DiscretizationScheme::EqualTime,
            DiscretizationScheme::EqualProbability,
        ] {
            assert_eq!(
                scheme.to_string().parse::<DiscretizationScheme>(),
                Ok(scheme)
            );
        }
        let err = "nope".parse::<DiscretizationScheme>().unwrap_err();
        assert!(err.to_string().contains("nope"), "{err}");
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(DiscreteDistribution::new(vec![], vec![]).is_err());
        assert!(DiscreteDistribution::new(vec![1.0, 1.0], vec![0.5, 0.5]).is_err());
        assert!(DiscreteDistribution::new(vec![2.0, 1.0], vec![0.5, 0.5]).is_err());
        assert!(DiscreteDistribution::new(vec![1.0], vec![-1.0]).is_err());
        assert!(DiscreteDistribution::new(vec![1.0], vec![0.0]).is_err());
    }

    #[test]
    fn normalizes_weights() {
        let d = DiscreteDistribution::new(vec![1.0, 2.0, 3.0], vec![1.0, 1.0, 2.0]).unwrap();
        assert!((d.probs().iter().sum::<f64>() - 1.0).abs() < 1e-15);
        assert!((d.probs()[2] - 0.5).abs() < 1e-15);
        assert!((d.raw_mass() - 4.0).abs() < 1e-15);
    }

    #[test]
    fn drops_zero_weight_points() {
        let d = DiscreteDistribution::new(vec![1.0, 2.0, 3.0], vec![0.5, 0.0, 0.5]).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.values(), &[1.0, 3.0]);
    }

    #[test]
    fn suffix_masses_are_survival() {
        let d = DiscreteDistribution::new(vec![1.0, 2.0, 3.0], vec![0.2, 0.3, 0.5]).unwrap();
        let s = d.suffix_masses();
        assert!((s[0] - 1.0).abs() < 1e-15);
        assert!((s[1] - 0.8).abs() < 1e-15);
        assert!((s[2] - 0.5).abs() < 1e-15);
        assert_eq!(s[3], 0.0);
    }

    #[test]
    fn equal_probability_on_uniform() {
        let u = Uniform::new(10.0, 20.0).unwrap();
        let d = discretize(&u, DiscretizationScheme::EqualProbability, 10, 1e-7).unwrap();
        assert_eq!(d.len(), 10);
        // vᵢ = Q(i/10) = 10 + i; all masses 1/10.
        for (i, (&v, &p)) in d.values().iter().zip(d.probs()).enumerate() {
            assert!((v - (11.0 + i as f64)).abs() < 1e-12, "v[{i}]={v}");
            assert!((p - 0.1).abs() < 1e-12);
        }
        assert_eq!(d.max_value(), 20.0);
    }

    #[test]
    fn equal_time_on_uniform_matches_equal_probability() {
        let u = Uniform::new(10.0, 20.0).unwrap();
        let a = discretize(&u, DiscretizationScheme::EqualTime, 25, 1e-7).unwrap();
        let b = discretize(&u, DiscretizationScheme::EqualProbability, 25, 1e-7).unwrap();
        for (x, y) in a.values().iter().zip(b.values()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn equal_time_masses_sum_to_truncated_mass() {
        let e = Exponential::new(1.0).unwrap();
        let d = discretize(&e, DiscretizationScheme::EqualTime, 100, 1e-7).unwrap();
        // Raw mass should be F(b) = 1 - ε.
        assert!((d.raw_mass() - (1.0 - 1e-7)).abs() < 1e-9);
        // Normalized probabilities sum to 1.
        assert!((d.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn truncation_upper_bound_is_quantile() {
        let e = Exponential::new(1.0).unwrap();
        let d = discretize(&e, DiscretizationScheme::EqualProbability, 50, 1e-4).unwrap();
        // b = Q(1 - 1e-4) = -ln(1e-4) ≈ 9.2103.
        assert!((d.max_value() - (-(1e-4f64).ln())).abs() < 1e-6);
    }

    #[test]
    fn discrete_mean_approaches_continuous_mean() {
        let e = Exponential::new(1.0).unwrap();
        let d = discretize(&e, DiscretizationScheme::EqualProbability, 4000, 1e-9).unwrap();
        assert!((d.mean() - 1.0).abs() < 0.01, "mean {}", d.mean());
    }

    #[test]
    fn discrete_cdf() {
        let d = DiscreteDistribution::new(vec![1.0, 2.0], vec![0.4, 0.6]).unwrap();
        assert_eq!(d.cdf(0.5), 0.0);
        assert!((d.cdf(1.0) - 0.4).abs() < 1e-15);
        assert!((d.cdf(5.0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn rejects_bad_epsilon() {
        let e = Exponential::new(1.0).unwrap();
        assert!(discretize(&e, DiscretizationScheme::EqualTime, 10, 0.0).is_err());
        assert!(discretize(&e, DiscretizationScheme::EqualTime, 0, 1e-7).is_err());
    }
}
