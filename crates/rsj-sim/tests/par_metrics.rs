//! Metrics snapshots are part of the determinism contract: a serial and a
//! four-thread batch record identical `rsj_sim_*` counter increments,
//! histogram merges and gauge values.
//!
//! Lives in its own integration-test binary (= its own process) so the
//! global registry starts empty and no other test records into it; the
//! single `#[test]` keeps the recording sequence strictly ordered.

use rsj_core::{CostModel, MeanDoubling, Strategy};
use rsj_dist::LogNormal;
use rsj_obs::export::{HistogramSample, MetricsSnapshot};
use rsj_par::Parallelism;
use rsj_sim::run_batch_seeded;

fn sim_histogram<'a>(snap: &'a MetricsSnapshot, name: &str) -> &'a HistogramSample {
    snap.histograms
        .iter()
        .find(|h| h.name == name)
        .unwrap_or_else(|| panic!("histogram {name} missing from snapshot"))
}

fn counter(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .find(|c| c.name == name)
        .map(|c| c.value)
        .unwrap_or_else(|| panic!("counter {name} missing from snapshot"))
}

/// Runs the same seeded batch once on one worker and once on four, and
/// asserts the second run's metric deltas exactly replay the first's:
/// counters double, histograms double bucket-by-bucket (sums bit-exactly,
/// since `x + x` is exact in binary floating point), quantile summaries
/// and gauges are unchanged. Pool-internal `rsj_par_*` metrics are
/// excluded — they legitimately differ with worker count.
#[test]
fn metric_deltas_identical_across_thread_counts() {
    rsj_obs::set_metrics_enabled(true);
    let dist = LogNormal::new(1.0, 0.8).unwrap();
    let cost = CostModel::new(1.0, 0.5, 0.2).unwrap();
    let seq = MeanDoubling::default().sequence(&dist, &cost).unwrap();

    let serial = Parallelism::new(1).unwrap();
    let stats_serial = run_batch_seeded(&seq, &dist, &cost, 4000, 42, &serial).unwrap();
    let snap1 = rsj_obs::global_registry().snapshot();

    let wide = Parallelism::new(4).unwrap();
    let stats_wide = run_batch_seeded(&seq, &dist, &cost, 4000, 42, &wide).unwrap();
    let snap2 = rsj_obs::global_registry().snapshot();

    assert_eq!(stats_serial, stats_wide);

    // Counters: the second run adds exactly what the first did.
    assert_eq!(counter(&snap1, "rsj_sim_batches_total"), 1);
    assert_eq!(counter(&snap2, "rsj_sim_batches_total"), 2);
    assert_eq!(counter(&snap1, "rsj_sim_jobs_total"), 4000);
    assert_eq!(counter(&snap2, "rsj_sim_jobs_total"), 8000);

    // Histograms: identical samples merged again — every bucket count and
    // the sum double, while min/max/quantiles stay identical.
    for name in [
        "rsj_sim_job_cost",
        "rsj_sim_job_reservations",
        "rsj_sim_job_waste",
    ] {
        let h1 = sim_histogram(&snap1, name);
        let h2 = sim_histogram(&snap2, name);
        assert_eq!(h2.count, 2 * h1.count, "{name} count");
        assert_eq!(h2.sum, h1.sum + h1.sum, "{name} sum");
        assert_eq!(h2.min, h1.min, "{name} min");
        assert_eq!(h2.max, h1.max, "{name} max");
        assert_eq!(
            (h2.p50, h2.p95, h2.p99),
            (h1.p50, h1.p95, h1.p99),
            "{name} quantiles"
        );
        assert_eq!(h1.buckets.len(), h2.buckets.len(), "{name} bucket layout");
        for (b1, b2) in h1.buckets.iter().zip(&h2.buckets) {
            assert_eq!(
                (b1.lower, b1.upper),
                (b2.lower, b2.upper),
                "{name} bucket bounds"
            );
            assert_eq!(b2.count, 2 * b1.count, "{name} bucket count");
        }
    }

    // Gauges: last-set-wins semantics, and both runs set the same value.
    let gauge = |snap: &MetricsSnapshot| {
        snap.gauges
            .iter()
            .find(|g| g.name == "rsj_sim_waste_fraction")
            .map(|g| g.value)
            .expect("waste-fraction gauge missing")
    };
    assert_eq!(gauge(&snap1), gauge(&snap2));
    assert_eq!(gauge(&snap2), stats_serial.waste_fraction);
}
