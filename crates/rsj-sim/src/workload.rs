//! Synthetic batch workloads: Poisson arrivals, weighted processor-count
//! choices, runtimes from any [`ContinuousDistribution`] and user walltime
//! over-estimation.
//!
//! This is the substrate replacing the Intrepid logs behind Figure 2 (see
//! DESIGN.md §4.2): the paper only consumes the affine wait-vs-request
//! relation, which the generator + EASY queue reproduce.

use crate::job::{Job, JobId, Time};
use rand::Rng;
use rand::RngCore;
use rsj_dist::ContinuousDistribution;
use serde::{Deserialize, Serialize};

/// Temporal shape of the arrival process.
///
/// The paper's §6 notes that HPC centers dividing resources into *seasons*
/// see users "submit more jobs toward the end of a season causing
/// contention … which results in even longer waiting times"; the
/// [`ArrivalPattern::SeasonEnd`] variant models exactly that with a
/// piecewise-homogeneous Poisson process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalPattern {
    /// Homogeneous Poisson arrivals.
    Poisson,
    /// Seasonal arrivals: within each season of `season_length` hours, the
    /// final `rush_fraction` of the season runs at `rush_ratio ×` the base
    /// rate (the rest is scaled down to keep the season's mean rate equal
    /// to the configured `arrival_rate`).
    SeasonEnd {
        /// Season length in hours.
        season_length: Time,
        /// Fraction of the season forming the end-of-season rush, in (0, 1).
        rush_fraction: f64,
        /// Rate multiplier during the rush (`> 1`).
        rush_ratio: f64,
    },
}

impl ArrivalPattern {
    fn validate(&self) -> Result<(), String> {
        match *self {
            ArrivalPattern::Poisson => Ok(()),
            ArrivalPattern::SeasonEnd {
                season_length,
                rush_fraction,
                rush_ratio,
            } => {
                if !(season_length > 0.0) {
                    return Err("season_length must be > 0".into());
                }
                if !(0.0 < rush_fraction && rush_fraction < 1.0) {
                    return Err("rush_fraction must be in (0, 1)".into());
                }
                if !(rush_ratio > 1.0) {
                    return Err("rush_ratio must exceed 1".into());
                }
                Ok(())
            }
        }
    }

    /// Instantaneous rate multiplier at time `t` (mean 1 over a season).
    pub fn intensity(&self, t: Time) -> f64 {
        match *self {
            ArrivalPattern::Poisson => 1.0,
            ArrivalPattern::SeasonEnd {
                season_length,
                rush_fraction,
                rush_ratio,
            } => {
                // Normalize so the season-average multiplier is 1:
                // base·(1-f) + base·r·f = 1.
                let base = 1.0 / (1.0 - rush_fraction + rush_ratio * rush_fraction);
                let phase = (t / season_length).fract();
                if phase >= 1.0 - rush_fraction {
                    base * rush_ratio
                } else {
                    base
                }
            }
        }
    }
}

/// Workload generator configuration.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Mean job arrival rate (jobs/hour); inter-arrivals are exponential.
    pub arrival_rate: f64,
    /// Weighted processor-count choices, e.g. `[(204, 0.3), (409, 0.2), …]`.
    pub processor_choices: Vec<(usize, f64)>,
    /// Multiplicative walltime over-estimation factor range `[lo, hi]`
    /// (users rarely request exactly their runtime; \[17\] reports heavy
    /// over-estimation). Sampled uniformly per job.
    pub overestimate: (f64, f64),
    /// Number of jobs to generate.
    pub count: usize,
}

impl WorkloadConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.arrival_rate > 0.0) {
            return Err(format!(
                "arrival_rate must be > 0, got {}",
                self.arrival_rate
            ));
        }
        if self.processor_choices.is_empty()
            || self
                .processor_choices
                .iter()
                .any(|&(p, w)| p == 0 || w < 0.0)
            || self.processor_choices.iter().map(|&(_, w)| w).sum::<f64>() <= 0.0
        {
            return Err("processor_choices must be non-empty with positive total weight".into());
        }
        let (lo, hi) = self.overestimate;
        if !(lo >= 1.0 && hi >= lo) {
            return Err(format!(
                "overestimate range must satisfy 1 ≤ lo ≤ hi, got ({lo}, {hi})"
            ));
        }
        if self.count == 0 {
            return Err("count must be positive".into());
        }
        Ok(())
    }
}

/// Generates a job stream whose *actual* runtimes are drawn from `runtime`
/// with homogeneous Poisson arrivals.
pub fn generate_workload(
    config: &WorkloadConfig,
    runtime: &dyn ContinuousDistribution,
    rng: &mut dyn RngCore,
) -> Vec<Job> {
    generate_workload_with_pattern(config, ArrivalPattern::Poisson, runtime, rng)
}

/// Generates a job stream with a configurable arrival pattern
/// (non-homogeneous arrivals are produced by Lewis–Shedler thinning).
pub fn generate_workload_with_pattern(
    config: &WorkloadConfig,
    pattern: ArrivalPattern,
    runtime: &dyn ContinuousDistribution,
    rng: &mut dyn RngCore,
) -> Vec<Job> {
    config.validate().expect("invalid workload configuration");
    pattern.validate().expect("invalid arrival pattern");
    let max_intensity = match pattern {
        ArrivalPattern::Poisson => 1.0,
        ArrivalPattern::SeasonEnd {
            rush_fraction,
            rush_ratio,
            ..
        } => rush_ratio / (1.0 - rush_fraction + rush_ratio * rush_fraction),
    };
    let max_rate = config.arrival_rate * max_intensity;
    let total_weight: f64 = config.processor_choices.iter().map(|&(_, w)| w).sum();
    let mut jobs = Vec::with_capacity(config.count);
    let mut clock: Time = 0.0;
    for i in 0..config.count {
        // Next arrival: exponential candidates at the max rate, thinned by
        // the instantaneous intensity.
        loop {
            let u: f64 = rng.gen();
            clock += -(1.0 - u).ln() / max_rate;
            let accept = pattern.intensity(clock) / max_intensity;
            if rng.gen::<f64>() < accept {
                break;
            }
        }

        // Weighted processor choice.
        let mut pick = rng.gen::<f64>() * total_weight;
        let mut processors = config.processor_choices[0].0;
        for &(p, w) in &config.processor_choices {
            if pick < w {
                processors = p;
                break;
            }
            pick -= w;
        }

        let actual = runtime.sample(rng).max(1e-6);
        let (lo, hi) = config.overestimate;
        let factor = lo + rng.gen::<f64>() * (hi - lo);
        jobs.push(Job {
            id: JobId(i as u64),
            arrival: clock,
            processors,
            requested: actual * factor,
            actual,
        });
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rsj_dist::LogNormal;

    fn config() -> WorkloadConfig {
        WorkloadConfig {
            arrival_rate: 10.0,
            processor_choices: vec![(204, 0.5), (409, 0.5)],
            overestimate: (1.2, 3.0),
            count: 2000,
        }
    }

    #[test]
    fn validates_config() {
        let mut bad = config();
        bad.arrival_rate = 0.0;
        assert!(bad.validate().is_err());
        let mut bad = config();
        bad.overestimate = (0.5, 2.0);
        assert!(bad.validate().is_err());
        let mut bad = config();
        bad.processor_choices.clear();
        assert!(bad.validate().is_err());
        assert!(config().validate().is_ok());
    }

    #[test]
    fn arrivals_are_increasing_with_poisson_rate() {
        let runtime = LogNormal::new(0.0, 0.5).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let jobs = generate_workload(&config(), &runtime, &mut rng);
        assert_eq!(jobs.len(), 2000);
        for w in jobs.windows(2) {
            assert!(w[1].arrival >= w[0].arrival);
        }
        // Mean inter-arrival ≈ 1/rate = 0.1 h.
        let span = jobs.last().unwrap().arrival - jobs[0].arrival;
        let mean_gap = span / (jobs.len() - 1) as f64;
        assert!((mean_gap - 0.1).abs() < 0.01, "mean gap {mean_gap}");
    }

    #[test]
    fn requested_always_covers_actual() {
        let runtime = LogNormal::new(0.0, 0.5).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let jobs = generate_workload(&config(), &runtime, &mut rng);
        for j in &jobs {
            assert!(j.requested >= j.actual);
            assert!(j.processors == 204 || j.processors == 409);
        }
    }

    #[test]
    fn arrival_pattern_validation() {
        assert!(ArrivalPattern::Poisson.validate().is_ok());
        assert!(ArrivalPattern::SeasonEnd {
            season_length: 0.0,
            rush_fraction: 0.2,
            rush_ratio: 3.0
        }
        .validate()
        .is_err());
        assert!(ArrivalPattern::SeasonEnd {
            season_length: 100.0,
            rush_fraction: 1.5,
            rush_ratio: 3.0
        }
        .validate()
        .is_err());
        assert!(ArrivalPattern::SeasonEnd {
            season_length: 100.0,
            rush_fraction: 0.2,
            rush_ratio: 0.5
        }
        .validate()
        .is_err());
    }

    #[test]
    fn season_intensity_averages_to_one() {
        let p = ArrivalPattern::SeasonEnd {
            season_length: 100.0,
            rush_fraction: 0.25,
            rush_ratio: 4.0,
        };
        let n = 100_000;
        let mean: f64 = (0..n)
            .map(|i| p.intensity(i as f64 * 100.0 / n as f64))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0).abs() < 1e-3, "mean intensity {mean}");
        // The rush really is rush_ratio× the quiet period.
        let quiet = p.intensity(10.0);
        let rush = p.intensity(90.0);
        assert!((rush / quiet - 4.0).abs() < 1e-12);
    }

    #[test]
    fn season_end_concentrates_arrivals() {
        let runtime = LogNormal::new(0.0, 0.5).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        let season = 100.0;
        let pattern = ArrivalPattern::SeasonEnd {
            season_length: season,
            rush_fraction: 0.2,
            rush_ratio: 5.0,
        };
        let mut cfg = config();
        cfg.count = 20_000;
        let jobs = generate_workload_with_pattern(&cfg, pattern, &runtime, &mut rng);
        // The final 20% of each season should hold roughly
        // 5·0.2/(0.8 + 5·0.2) = 55.6% of arrivals.
        let in_rush = jobs
            .iter()
            .filter(|j| (j.arrival / season).fract() >= 0.8)
            .count();
        let frac = in_rush as f64 / jobs.len() as f64;
        assert!(
            (frac - 0.556).abs() < 0.03,
            "rush fraction {frac} should be ≈ 0.556"
        );
        // The paper's §6 observation: end-of-season contention raises waits.
        let records = crate::cluster::simulate(
            &crate::cluster::ClusterConfig {
                processors: 2048,
                policy: crate::scheduler::SchedulerPolicy::EasyBackfill,
            },
            &jobs,
        );
        let mean_wait = |pred: &dyn Fn(f64) -> bool| {
            let sel: Vec<f64> = records
                .iter()
                .filter(|r| pred((r.job.arrival / season).fract()))
                .map(|r| r.wait)
                .collect();
            sel.iter().sum::<f64>() / sel.len() as f64
        };
        let rush_wait = mean_wait(&|phase| phase >= 0.8);
        let quiet_wait = mean_wait(&|phase| phase < 0.8);
        assert!(
            rush_wait > quiet_wait,
            "end-of-season jobs should wait longer: {rush_wait} vs {quiet_wait}"
        );
    }

    #[test]
    fn processor_mix_roughly_balanced() {
        let runtime = LogNormal::new(0.0, 0.5).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let jobs = generate_workload(&config(), &runtime, &mut rng);
        let big = jobs.iter().filter(|j| j.processors == 409).count();
        let frac = big as f64 / jobs.len() as f64;
        assert!((frac - 0.5).abs() < 0.05, "409-proc fraction {frac}");
    }
}
