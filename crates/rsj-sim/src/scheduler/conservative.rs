//! Conservative backfilling: *every* waiting job receives a start-time
//! reservation (not just the queue head, as in EASY), and a job may only
//! jump ahead if it delays none of them.
//!
//! Implemented the standard way: rebuild the future availability profile
//! from the running jobs' requested ends, then walk the queue in order,
//! assigning each job the earliest profile slot that fits it for its full
//! requested duration and carving that slot out of the profile. Jobs whose
//! assigned slot begins *now* start immediately.

use super::{Running, SchedulerState};
use crate::job::Time;

/// A step function of free processors over future time: `points[i]` is
/// `(tᵢ, free processors during [tᵢ, tᵢ₊₁))`, with a trailing entry open
/// to infinity.
#[derive(Debug, Clone)]
struct Profile {
    points: Vec<(Time, usize)>,
}

impl Profile {
    /// Builds the profile at time `now` from the running set.
    fn new(state: &SchedulerState, now: Time) -> Self {
        // Capacity change events: running jobs free processors at their
        // *planned* (requested) ends — the scheduler cannot see actuals.
        let mut events: Vec<(Time, usize)> = state
            .running
            .iter()
            .map(|r| (r.planned_end.max(now), r.job.processors))
            .collect();
        events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
        let mut points = vec![(now, state.free_processors())];
        for (t, procs) in events {
            let last = *points.last().expect("non-empty");
            if (t - last.0).abs() < 1e-12 {
                points.last_mut().expect("non-empty").1 = last.1 + procs;
            } else {
                points.push((t, last.1 + procs));
            }
        }
        Self { points }
    }

    /// Earliest start `s ≥ now` such that `procs` processors are free over
    /// the whole window `[s, s + duration)`.
    fn earliest_start(&self, procs: usize, duration: Time) -> Time {
        'candidates: for i in 0..self.points.len() {
            let s = self.points[i].0;
            let end = s + duration;
            for &(t, free) in &self.points[i..] {
                if t >= end {
                    break;
                }
                if free < procs {
                    continue 'candidates;
                }
            }
            return s;
        }
        unreachable!("the final profile segment has the whole machine free")
    }

    /// Removes `procs` processors over `[start, start + duration)`.
    fn reserve(&mut self, procs: usize, start: Time, duration: Time) {
        let end = start + duration;
        // Ensure boundary points exist.
        for boundary in [start, end] {
            let pos = self.points.partition_point(|&(t, _)| t < boundary - 1e-12);
            let exists = self
                .points
                .get(pos)
                .is_some_and(|&(t, _)| (t - boundary).abs() < 1e-12);
            if !exists {
                let free_before = if pos == 0 {
                    self.points[0].1
                } else {
                    self.points[pos - 1].1
                };
                self.points.insert(pos, (boundary, free_before));
            }
        }
        for p in &mut self.points {
            if p.0 >= start - 1e-12 && p.0 < end - 1e-12 {
                p.1 =
                    p.1.checked_sub(procs)
                        .expect("reservation fits the profile");
            }
        }
    }
}

/// One conservative-backfilling pass at time `now`; returns jobs started.
pub fn schedule_conservative(state: &mut SchedulerState, now: Time) -> Vec<Running> {
    // Drop impossible jobs so they cannot wedge the queue.
    state
        .waiting
        .retain(|j| j.processors <= state.total_processors);

    let mut profile = Profile::new(state, now);
    let mut start_now: Vec<usize> = Vec::new();
    for (idx, job) in state.waiting.iter().enumerate() {
        let s = profile.earliest_start(job.processors, job.requested);
        profile.reserve(job.processors, s, job.requested);
        if (s - now).abs() < 1e-12 {
            start_now.push(idx);
        }
    }
    // Start the selected jobs (remove back-to-front to keep indices valid).
    let mut started = Vec::with_capacity(start_now.len());
    for &idx in start_now.iter().rev() {
        let job = state.waiting.remove(idx).expect("index valid");
        started.push(state.start_job(job, now));
    }
    started.reverse(); // queue order
    started
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Job, JobId};

    fn job(id: u64, procs: usize, requested: Time) -> Job {
        Job {
            id: JobId(id),
            arrival: 0.0,
            processors: procs,
            requested,
            actual: requested,
        }
    }

    /// Machine of 10; a 6-proc job runs until t=5; first waiting job needs 8.
    fn blocked_state() -> SchedulerState {
        let mut st = SchedulerState::new(10);
        st.start_job(job(1, 6, 5.0), 0.0);
        st.waiting.push_back(job(2, 8, 1.0));
        st
    }

    #[test]
    fn starts_fitting_head_immediately() {
        let mut st = SchedulerState::new(10);
        st.start_job(job(1, 2, 5.0), 0.0);
        st.waiting.push_back(job(2, 8, 1.0));
        let started = schedule_conservative(&mut st, 0.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job.id, JobId(2));
    }

    #[test]
    fn backfills_short_narrow_job() {
        let mut st = blocked_state();
        st.waiting.push_back(job(3, 4, 3.0)); // fits now, ends before t=5
        let started = schedule_conservative(&mut st, 0.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job.id, JobId(3));
    }

    #[test]
    fn refuses_backfill_that_delays_any_reservation() {
        let mut st = blocked_state();
        st.waiting.push_back(job(3, 4, 7.0)); // would overlap the head's slot at t=5
        let started = schedule_conservative(&mut st, 0.0);
        assert!(started.is_empty());
    }

    #[test]
    fn protects_second_job_reservation_too() {
        // EASY only reserves for the head; conservative also protects job 3.
        // Machine 10; running: 6 procs until t=5.
        // Queue: job2 (8 procs, 1h → reserved [5,6)), job3 (10 procs, 1h →
        // reserved [6,7)), job4 (2 procs, 1.5h): starting job4 now would end
        // at 1.5 ≤ 5, fine for both → started. job5 (2 procs, 10h): ends at
        // 10, overlapping job3's all-machine slot [6,7) → refused even
        // though EASY's head-only rule (extra = 2 at shadow 5) would allow
        // it via the extra-processors clause… check it is refused here.
        let mut st = blocked_state();
        st.waiting.push_back(job(3, 10, 1.0));
        st.waiting.push_back(job(4, 2, 1.5));
        st.waiting.push_back(job(5, 2, 10.0));
        let started = schedule_conservative(&mut st, 0.0);
        let ids: Vec<JobId> = started.iter().map(|r| r.job.id).collect();
        assert_eq!(ids, vec![JobId(4)]);
    }

    #[test]
    fn drops_impossible_jobs() {
        let mut st = SchedulerState::new(10);
        st.waiting.push_back(job(1, 64, 1.0));
        st.waiting.push_back(job(2, 4, 1.0));
        let started = schedule_conservative(&mut st, 0.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job.id, JobId(2));
    }

    #[test]
    fn profile_reserve_and_query() {
        let mut st = SchedulerState::new(10);
        st.start_job(job(1, 6, 5.0), 0.0);
        let mut p = Profile::new(&st, 0.0);
        // 4 free now, 10 free from t=5.
        assert_eq!(p.earliest_start(4, 2.0), 0.0);
        assert_eq!(p.earliest_start(8, 1.0), 5.0);
        p.reserve(8, 5.0, 1.0);
        // After reserving [5,6) for 8 procs, an 8-proc job next fits at 6.
        assert_eq!(p.earliest_start(8, 1.0), 6.0);
        // A 2-proc job still fits at t=0.
        assert_eq!(p.earliest_start(2, 10.0), 0.0);
    }
}
