//! Appendix C: reservation strategies under *convex* (non-affine)
//! reservation costs — e.g. a platform that charges quadratically to
//! discourage very long requests.
//!
//! The generalized recurrence (Eq. 37) characterizes the optimal sequence
//! via `G`, `G'`, `G⁻¹`; the affine case must reduce to Eq. 11.
//!
//! Run with: `cargo run --release --example convex_cost`

use reservation_strategies::prelude::*;
use rsj_core::{
    expected_cost_analytic_convex, sequence_from_t1_convex, AffineConvexCost, RecurrenceConfig,
};
use rsj_dist::LogNormal;

fn main() {
    let dist = LogNormal::new(3.0, 0.5).unwrap();
    let config = RecurrenceConfig::default();

    // Sanity: the affine cost seen through the convex interface reproduces
    // the plain Eq. 11 sequence.
    let affine = CostModel::reservation_only();
    let via_affine = sequence_from_t1(&dist, &affine, 30.0, &config).unwrap();
    let via_convex =
        sequence_from_t1_convex(&dist, &AffineConvexCost(affine), 30.0, &config).unwrap();
    println!(
        "affine vs convex-affine first steps: {:?} vs {:?}",
        &via_affine.times()[..3],
        &via_convex.times()[..3]
    );

    // A quadratic platform: G(R) = 0.02·R² + R + 0.5.
    let quad = QuadraticCost::new(0.02, 1.0, 0.5, 0.0).unwrap();
    println!("\nquadratic platform: G(R) = 0.02·R² + R + 0.5");

    // Sweep t1 to find the best quadratic-cost sequence (the Appendix C
    // analogue of the Brute-Force procedure).
    let mut best: Option<(f64, f64)> = None;
    let m = 2000;
    let hi = dist.quantile(0.999);
    for k in 1..=m {
        let t1 = k as f64 * hi / m as f64;
        if let Ok(seq) = sequence_from_t1_convex(&dist, &quad, t1, &config) {
            let e = expected_cost_analytic_convex(&seq, &dist, &quad);
            if best.is_none_or(|(_, b)| e < b) {
                best = Some((t1, e));
            }
        }
    }
    let (t1, e) = best.expect("some candidate is valid");
    let seq = sequence_from_t1_convex(&dist, &quad, t1, &config).unwrap();
    println!(
        "best t1 = {t1:.2}, expected cost {e:.2}, sequence starts ({:.2}, {:.2}, {:.2}, …)",
        seq.times()[0],
        seq.times()[1],
        seq.times()[2]
    );

    // The convexity penalty shifts the optimum: compare the same job under
    // the affine cost G(R) = R (same marginal price at R = 0).
    let affine_seq = sequence_from_t1(&dist, &affine, t1, &config);
    match affine_seq {
        Ok(s) => {
            println!(
                "under the affine platform the same t1 yields E(S) = {:.2}",
                expected_cost_analytic(&s, &dist, &affine)
            );
        }
        Err(e) => println!("(same t1 invalid under the affine platform: {e})"),
    }

    // Quadratic platforms favour *more, shorter* reservations: show the
    // request ladders side by side.
    let affine_best = BruteForce::new(2000, 1000, EvalMethod::Analytic, 5)
        .unwrap()
        .sequence(&dist, &affine)
        .unwrap();
    println!(
        "\nrequest ladders (first 5):\n  affine:    {:?}\n  quadratic: {:?}",
        &affine_best.times()[..5.min(affine_best.len())]
            .iter()
            .map(|t| (t * 100.0).round() / 100.0)
            .collect::<Vec<_>>(),
        &seq.times()[..5.min(seq.len())]
            .iter()
            .map(|t| (t * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
}
