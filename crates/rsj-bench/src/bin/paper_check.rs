//! Reproduction self-test: re-derives the paper's headline quantitative
//! claims at reduced fidelity and prints PASS/FAIL per claim. Exits
//! nonzero if any claim fails — usable as a CI gate for the reproduction.

use rsj_bench::scenarios::{paper_distributions, Fidelity};
use rsj_core::exact::{exp_optimal_cost, exp_optimal_s1};
use rsj_core::{
    normalized_cost_analytic, BruteForce, CostModel, DiscretizedDp, EvalMethod, Strategy,
};
use rsj_dist::{ContinuousDistribution, DiscretizationScheme, LogNormal, Uniform};

struct Checker {
    failures: usize,
}

impl Checker {
    fn check(&mut self, name: &str, ok: bool, detail: String) {
        if ok {
            println!("PASS  {name}  ({detail})");
        } else {
            println!("FAIL  {name}  ({detail})");
            self.failures += 1;
        }
    }
}

fn main() -> std::process::ExitCode {
    let mut c = Checker { failures: 0 };
    let cost = CostModel::reservation_only();

    // §3.5: optimal exponential first reservation ≈ 0.74219, cost ≈ 2.36.
    let s1 = exp_optimal_s1();
    c.check(
        "exp s1 ≈ 0.742",
        (s1 - 0.74219).abs() < 0.02,
        format!("s1 = {s1:.5}"),
    );
    let e1 = exp_optimal_cost(1.0);
    c.check(
        "exp E1 ≈ 2.36",
        (e1 - 2.3645).abs() < 0.01,
        format!("E1 = {e1:.4}"),
    );

    // Theorem 4: uniform optimum is the single reservation (b), ratio 4/3.
    let uni = Uniform::new(10.0, 20.0).unwrap();
    let bf = BruteForce::new(500, 1000, EvalMethod::Analytic, 1).unwrap();
    match bf.best(&uni, &cost) {
        Ok(r) => {
            c.check(
                "uniform t1 = b",
                (r.t1 - 20.0).abs() < 0.05 && r.sequence.len() == 1,
                format!("t1 = {:.3}, len {}", r.t1, r.sequence.len()),
            );
            c.check(
                "uniform ratio = 4/3",
                (r.normalized_cost - 4.0 / 3.0).abs() < 1e-6,
                format!("ratio = {:.4}", r.normalized_cost),
            );
        }
        Err(e) => c.check("uniform optimum", false, e.to_string()),
    }

    // Table 2 headline: every heuristic on every distribution beats the
    // AWS break-even ratio of 4 (checked analytically with the DP).
    let mut worst: (f64, String) = (0.0, String::new());
    for nd in paper_distributions() {
        let dp = DiscretizedDp::new(DiscretizationScheme::EqualProbability, 400, 1e-7).unwrap();
        let seq = dp.sequence(nd.dist.as_ref(), &cost).unwrap();
        let ratio = normalized_cost_analytic(&seq, nd.dist.as_ref(), &cost);
        if ratio > worst.0 {
            worst = (ratio, nd.name.to_string());
        }
    }
    c.check(
        "all ratios < 4 (RI vs OD)",
        worst.0 < 4.0,
        format!("worst: {} at {:.2}", worst.1, worst.0),
    );

    // Table 2 ordering: structured heuristics ≤ simple rules on LogNormal.
    let logn = LogNormal::new(3.0, 0.5).unwrap();
    let dp_ratio = {
        let dp = DiscretizedDp::new(DiscretizationScheme::EqualTime, 500, 1e-7).unwrap();
        normalized_cost_analytic(&dp.sequence(&logn, &cost).unwrap(), &logn, &cost)
    };
    let mbm_ratio = {
        let seq = rsj_core::MeanByMean::default()
            .sequence(&logn, &cost)
            .unwrap();
        normalized_cost_analytic(&seq, &logn, &cost)
    };
    c.check(
        "DP beats Mean-by-Mean on LogNormal",
        dp_ratio <= mbm_ratio,
        format!("DP {dp_ratio:.3} vs MbM {mbm_ratio:.3}"),
    );

    // Figure 1: the VBMQA law's published moments.
    let vbmqa = LogNormal::new(7.1128, 0.2039).unwrap();
    c.check(
        "VBMQA mean ≈ 1253 s",
        (vbmqa.mean() - 1253.37).abs() < 1.0,
        format!("mean = {:.2}", vbmqa.mean()),
    );

    // Fidelity note + verdict.
    println!(
        "\n{} claim(s) failed (fidelity: {:?})",
        c.failures,
        Fidelity::from_env()
    );
    if c.failures == 0 {
        std::process::ExitCode::SUCCESS
    } else {
        std::process::ExitCode::FAILURE
    }
}
