//! Checkpointed reservations — the first §7 future-work direction:
//! "include checkpoint snapshots at the end of some, if not all,
//! reservations … a complicated trade-off between doing useful work
//! through the reservations and sacrificing some time/budget in order to
//! avoid restarting the job".
//!
//! We implement the *all-checkpoint* policy: every non-final reservation
//! ends with a checkpoint of duration `C`, and every reservation after the
//! first begins with a restart of duration `R`. A job with (sequential)
//! work `X` then completes in reservation `k` as soon as the accumulated
//! *useful* work covers `X`:
//!
//! * progress after a failed reservation of length `tₖ`:
//!   `Pₖ = Pₖ₋₁ + (tₖ - Rₖ - C)` with `R₁ = 0`;
//! * the job finishes inside reservation `k` iff
//!   `X ≤ Pₖ₋₁ + tₖ - Rₖ` (no final checkpoint is taken).
//!
//! Without checkpoints (`R = C = ∞` conceptually) the model degrades to
//! the paper's base model, where every reservation restarts from scratch.
//!
//! For discrete distributions we give an exact `O(n²)` dynamic program in
//! the spirit of Theorem 5, over *completion thresholds*: state `i` means
//! "the job's work exceeds `vᵢ₋₁` and progress `vᵢ₋₁` is safely
//! checkpointed"; choosing threshold `vⱼ` next requires a reservation of
//! length `(vⱼ - vᵢ₋₁) + Rᵢ + C`.

use crate::cost::CostModel;
use crate::error::{CoreError, Result};
use crate::eval::RunOutcome;
use crate::sequence::ReservationSequence;
use rsj_dist::{ContinuousDistribution, DiscreteDistribution};
use serde::{Deserialize, Serialize};

/// Checkpoint/restart overheads, in job-time units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointConfig {
    /// Time to write a checkpoint at the end of a non-final reservation.
    pub checkpoint_cost: f64,
    /// Time to restore state at the start of reservations 2, 3, ….
    pub restart_cost: f64,
}

impl CheckpointConfig {
    /// Creates a configuration; both overheads must be finite and `≥ 0`.
    pub fn new(checkpoint_cost: f64, restart_cost: f64) -> Result<Self> {
        if !(checkpoint_cost >= 0.0) || !checkpoint_cost.is_finite() {
            return Err(CoreError::InvalidCostParameter {
                name: "checkpoint_cost",
                value: checkpoint_cost,
                requirement: "must be >= 0 and finite",
            });
        }
        if !(restart_cost >= 0.0) || !restart_cost.is_finite() {
            return Err(CoreError::InvalidCostParameter {
                name: "restart_cost",
                value: restart_cost,
                requirement: "must be >= 0 and finite",
            });
        }
        Ok(Self {
            checkpoint_cost,
            restart_cost,
        })
    }

    /// Restart overhead of reservation `k` (0-based): the first reservation
    /// has nothing to restore.
    fn restart(&self, k: usize) -> f64 {
        if k == 0 {
            0.0
        } else {
            self.restart_cost
        }
    }
}

/// Runs a job of work `x` through a checkpointed sequence of reservation
/// *lengths*, paying Eq. 1 per reservation. Reservations too short to make
/// progress (`t ≤ R + C`) are still paid but advance nothing; the
/// sequence's geometric extension guarantees termination.
pub fn run_job_checkpointed(
    seq: &ReservationSequence,
    cost: &CostModel,
    ckpt: &CheckpointConfig,
    x: f64,
) -> RunOutcome {
    assert!(
        x >= 0.0 && x.is_finite(),
        "job work must be finite, got {x}"
    );
    let mut progress = 0.0;
    let mut total = 0.0;
    let mut reserved = 0.0;
    let mut k = 0usize;
    loop {
        let t = seq.reservation(k);
        let restart = ckpt.restart(k);
        reserved += t;
        let remaining = x - progress;
        if remaining + restart <= t {
            // Completes here: uses restart + remaining work.
            let used = restart + remaining;
            total += cost.alpha * t + cost.beta * used + cost.gamma;
            return RunOutcome {
                cost: total,
                reservations: k + 1,
                reserved_time: reserved,
                wasted_time: t - used,
            };
        }
        // Failed reservation: fully used (work then checkpoint).
        total += cost.failed(t);
        progress += (t - restart - ckpt.checkpoint_cost).max(0.0);
        k += 1;
        assert!(
            k < 10_000_000,
            "checkpointed run diverged: every reservation shorter than R + C"
        );
    }
}

/// Exact expected cost of a checkpointed sequence (the Eq. 3 analogue).
///
/// Requires finishing the whole support: beyond the materialized prefix
/// the sequence's geometric extension is used, truncated at the tail
/// cutoff `P(X ≥ threshold) < 1e-15`.
pub fn expected_cost_checkpointed(
    seq: &ReservationSequence,
    dist: &dyn ContinuousDistribution,
    cost: &CostModel,
    ckpt: &CheckpointConfig,
) -> f64 {
    let mut total = 0.0;
    let mut progress = 0.0; // checkpointed progress before reservation k
    let mut prefix_fail_cost = 0.0; // Σ failed costs of reservations < k
    let mut k = 0usize;
    let mut lower = 0.0; // completion threshold of reservation k-1
    loop {
        let t = seq.reservation(k);
        let restart = ckpt.restart(k);
        let upper = progress + (t - restart).max(0.0); // finish iff X ≤ upper
        if upper > lower {
            // P(X ∈ (lower, upper]) branch: success in reservation k.
            let p_here = (dist.survival(lower) - dist.survival(upper)).max(0.0);
            if p_here > 0.0 {
                // E[X · 1{lower < X ≤ upper}] via the conditional-mean
                // identity M(τ) = E[X | X > τ]·P(X > τ).
                let m_lower = dist.conditional_mean_above(lower) * dist.survival(lower);
                let m_upper = dist.conditional_mean_above(upper) * dist.survival(upper);
                let e_x_here = (m_lower - m_upper).max(0.0);
                let used = restart * p_here + (e_x_here - progress * p_here);
                total += prefix_fail_cost * p_here
                    + (cost.alpha * t + cost.gamma) * p_here
                    + cost.beta * used;
            }
            lower = upper;
        }
        let surv = dist.survival(lower);
        if surv < 1e-15 {
            return total;
        }
        prefix_fail_cost += cost.failed(t);
        progress += (t - restart - ckpt.checkpoint_cost).max(0.0);
        k += 1;
        if k > 1_000_000 {
            // Degenerate sequence (never progresses): report the partial sum
            // plus an infinite-tail marker.
            return f64::INFINITY;
        }
    }
}

/// Optimal all-checkpoint strategy for a discrete distribution: the
/// Theorem 5 analogue over completion thresholds.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointDpSolution {
    /// Optimal expected cost.
    pub expected_cost: f64,
    /// Chosen completion thresholds (a subsequence of the support).
    pub thresholds: Vec<f64>,
    /// The implied reservation lengths `tₖ = (vⱼ - prev) + Rₖ + C`
    /// (final reservation included; it also carries `+ C` slack, a
    /// conservative convention so that a kill-at-wall still has a valid
    /// checkpoint).
    pub reservation_lengths: Vec<f64>,
}

impl CheckpointDpSolution {
    /// Executes the plan for a job of work `x`, returning the Eq. 2-style
    /// accounting. Jobs beyond the last threshold extend the plan
    /// geometrically (doubling the last threshold gap), mirroring
    /// [`ReservationSequence::reservation`]'s safety valve.
    pub fn run_job(&self, cost: &CostModel, ckpt: &CheckpointConfig, x: f64) -> RunOutcome {
        assert!(
            x >= 0.0 && x.is_finite(),
            "job work must be finite, got {x}"
        );
        let mut total = 0.0;
        let mut reserved = 0.0;
        let mut prev = 0.0;
        let mut k = 0usize;
        let mut last_gap = self.thresholds[0];
        loop {
            let (threshold, t) = if k < self.thresholds.len() {
                if k > 0 {
                    last_gap = self.thresholds[k] - self.thresholds[k - 1];
                }
                (self.thresholds[k], self.reservation_lengths[k])
            } else {
                // Geometric extension past the plan.
                last_gap *= 2.0;
                let threshold = prev + last_gap;
                let restart = ckpt.restart(k);
                (threshold, last_gap + restart + ckpt.checkpoint_cost)
            };
            reserved += t;
            let restart = ckpt.restart(k);
            if x <= threshold {
                let used = restart + (x - prev);
                total += cost.alpha * t + cost.beta * used + cost.gamma;
                return RunOutcome {
                    cost: total,
                    reservations: k + 1,
                    reserved_time: reserved,
                    wasted_time: t - used,
                };
            }
            total += cost.failed(t);
            prev = threshold;
            k += 1;
            assert!(k < 10_000_000, "checkpoint plan diverged");
        }
    }
}

/// Solves the all-checkpoint STOCHASTIC problem exactly on a discrete
/// distribution in `O(n²)`.
pub fn optimal_discrete_checkpointed(
    dist: &DiscreteDistribution,
    cost: &CostModel,
    ckpt: &CheckpointConfig,
) -> Result<CheckpointDpSolution> {
    let v = dist.values();
    let f = dist.probs();
    let n = v.len();
    let s = dist.suffix_masses();

    // Prefix sums of fₖ·vₖ for the usage term.
    let mut a = vec![0.0; n + 1];
    for i in 0..n {
        a[i + 1] = a[i] + f[i] * v[i];
    }

    // w[i] = unnormalized optimal cost-to-go from state i (progress v[i-1]
    // checkpointed, job work > v[i-1]); w[n] = 0.
    let mut w = vec![0.0; n + 1];
    let mut choice = vec![0usize; n];
    for i in (0..n).rev() {
        let prev = if i == 0 { 0.0 } else { v[i - 1] };
        let restart = if i == 0 { 0.0 } else { ckpt.restart_cost };
        let mut best = f64::INFINITY;
        let mut best_j = i;
        for j in i..n {
            // Reservation length to reach threshold v[j] from `prev`.
            let t = (v[j] - prev) + restart + ckpt.checkpoint_cost;
            // Success usage: restart + (x - prev) for x in (v[i-1], v[j]].
            let e_work = a[j + 1] - a[i] - prev * (s[i] - s[j + 1]);
            let used = restart * (s[i] - s[j + 1]) + e_work;
            let cand = (cost.alpha * t + cost.gamma) * s[i]
                + cost.beta * used
                + cost.beta * t * s[j + 1] // failures use the whole slot
                + w[j + 1];
            if cand < best {
                best = cand;
                best_j = j;
            }
        }
        w[i] = best;
        choice[i] = best_j;
    }

    let mut thresholds = Vec::new();
    let mut reservation_lengths = Vec::new();
    let mut i = 0;
    while i < n {
        let j = choice[i];
        let prev = if i == 0 { 0.0 } else { v[i - 1] };
        let restart = if i == 0 { 0.0 } else { ckpt.restart_cost };
        thresholds.push(v[j]);
        reservation_lengths.push((v[j] - prev) + restart + ckpt.checkpoint_cost);
        i = j + 1;
    }
    if thresholds.is_empty() {
        return Err(CoreError::EmptySequence);
    }
    Ok(CheckpointDpSolution {
        expected_cost: w[0] / s[0],
        thresholds,
        reservation_lengths,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::run_job;
    use crate::heuristics::optimal_discrete;
    use rsj_dist::{DiscreteDistribution, LogNormal};

    fn seq(v: &[f64]) -> ReservationSequence {
        ReservationSequence::new(v.to_vec(), false).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(CheckpointConfig::new(-1.0, 0.0).is_err());
        assert!(CheckpointConfig::new(0.0, f64::NAN).is_err());
        assert!(CheckpointConfig::new(0.1, 0.2).is_ok());
    }

    #[test]
    fn zero_overhead_checkpointing_never_reexecutes() {
        // With C = R = 0, work accumulates for free: a job of 5 under
        // (2, 3, 4, …) finishes in the second slot (2 + 3 ≥ 5).
        let c = CostModel::reservation_only();
        let ck = CheckpointConfig::new(0.0, 0.0).unwrap();
        let out = run_job_checkpointed(&seq(&[2.0, 3.0, 4.0]), &c, &ck, 5.0);
        assert_eq!(out.reservations, 2);
        assert!((out.cost - 5.0).abs() < 1e-12);
        // Base model: 5 only fits the 8-extension… compare directly:
        let base = run_job(&seq(&[2.0, 3.0, 4.0]), &c, 5.0);
        assert!(base.cost > out.cost);
    }

    #[test]
    fn overheads_delay_completion() {
        let c = CostModel::reservation_only();
        let ck = CheckpointConfig::new(0.5, 0.5).unwrap();
        // Slot 1 provides 2 - 0 - 0.5 = 1.5 work; slot 2 needs
        // 0.5 + (5 - 1.5) = 4 > 3 → fails, progress 1.5 + (3-0.5-0.5) = 3.5;
        // slot 3: 0.5 + 1.5 = 2 ≤ 4 → success.
        let out = run_job_checkpointed(&seq(&[2.0, 3.0, 4.0]), &c, &ck, 5.0);
        assert_eq!(out.reservations, 3);
    }

    #[test]
    fn useless_reservations_still_terminate_via_extension() {
        let c = CostModel::reservation_only();
        let ck = CheckpointConfig::new(2.0, 2.0).unwrap();
        // First slots shorter than R + C make no progress; the geometric
        // extension eventually does.
        let out = run_job_checkpointed(&seq(&[1.0, 2.0]), &c, &ck, 10.0);
        assert!(out.reservations > 2);
        assert!(out.cost.is_finite());
    }

    #[test]
    fn analytic_matches_monte_carlo() {
        use rand::SeedableRng;
        let d = LogNormal::new(1.0, 0.5).unwrap();
        let c = CostModel::new(1.0, 0.5, 0.2).unwrap();
        let ck = CheckpointConfig::new(0.2, 0.3).unwrap();
        let s = seq(&[2.0, 3.5, 5.5, 8.0, 12.0, 18.0, 27.0, 40.0]);
        let analytic = expected_cost_checkpointed(&s, &d, &c, &ck);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let n = 200_000;
        let mc: f64 = (0..n)
            .map(|_| run_job_checkpointed(&s, &c, &ck, d.sample(&mut rng)).cost)
            .sum::<f64>()
            / n as f64;
        assert!(
            (analytic - mc).abs() / mc < 0.01,
            "analytic {analytic} vs MC {mc}"
        );
    }

    #[test]
    fn checkpoint_dp_beats_plain_dp_when_overheads_are_small() {
        // High-variance discrete law: re-execution is expensive, so cheap
        // checkpoints must win.
        let d = DiscreteDistribution::new(vec![1.0, 5.0, 25.0, 125.0], vec![0.4, 0.3, 0.2, 0.1])
            .unwrap();
        let c = CostModel::reservation_only();
        let ck = CheckpointConfig::new(0.01, 0.01).unwrap();
        let plain = optimal_discrete(&d, &c).unwrap();
        let ckpt = optimal_discrete_checkpointed(&d, &c, &ck).unwrap();
        assert!(
            ckpt.expected_cost < plain.expected_cost,
            "checkpointed {} should beat plain {}",
            ckpt.expected_cost,
            plain.expected_cost
        );
    }

    #[test]
    fn checkpoint_dp_degrades_gracefully_with_huge_overheads() {
        // With overheads dwarfing the work, a single big reservation is
        // chosen and the cost approaches the plain single-shot cost + C.
        let d = DiscreteDistribution::new(vec![1.0, 2.0], vec![0.5, 0.5]).unwrap();
        let c = CostModel::reservation_only();
        let ck = CheckpointConfig::new(50.0, 50.0).unwrap();
        let sol = optimal_discrete_checkpointed(&d, &c, &ck).unwrap();
        assert_eq!(sol.thresholds, vec![2.0], "one threshold: the max");
        // t = 2 + 0 + 50 (checkpoint slack on the single reservation).
        assert!((sol.reservation_lengths[0] - 52.0).abs() < 1e-12);
    }

    #[test]
    fn checkpoint_dp_value_matches_simulation() {
        use rand::Rng;
        use rand::SeedableRng;
        let d =
            DiscreteDistribution::new(vec![1.0, 3.0, 9.0, 27.0], vec![0.4, 0.3, 0.2, 0.1]).unwrap();
        let c = CostModel::new(1.0, 0.7, 0.3).unwrap();
        let ck = CheckpointConfig::new(0.2, 0.4).unwrap();
        let sol = optimal_discrete_checkpointed(&d, &c, &ck).unwrap();

        // Simulate the DP's plan directly on the discrete law.
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let n = 400_000;
        let mut total = 0.0;
        for _ in 0..n {
            // Sample a discrete work value.
            let u: f64 = rng.gen();
            let mut acc = 0.0;
            let mut x = *d.values().last().unwrap();
            for (val, p) in d.values().iter().zip(d.probs()) {
                acc += p;
                if u < acc {
                    x = *val;
                    break;
                }
            }
            // Walk the plan.
            let mut prev = 0.0;
            for (k, (&thr, &t)) in sol
                .thresholds
                .iter()
                .zip(&sol.reservation_lengths)
                .enumerate()
            {
                let restart = if k == 0 { 0.0 } else { ck.restart_cost };
                if x <= thr {
                    total += c.alpha * t + c.beta * (restart + x - prev) + c.gamma;
                    break;
                }
                total += c.failed(t);
                prev = thr;
            }
        }
        let mc = total / n as f64;
        assert!(
            (sol.expected_cost - mc).abs() / mc < 0.01,
            "dp {} vs simulated {mc}",
            sol.expected_cost
        );
    }

    #[test]
    fn plan_run_job_matches_dp_value() {
        use rand::Rng;
        use rand::SeedableRng;
        let d =
            DiscreteDistribution::new(vec![1.0, 3.0, 9.0, 27.0], vec![0.4, 0.3, 0.2, 0.1]).unwrap();
        let c = CostModel::new(1.0, 0.7, 0.3).unwrap();
        let ck = CheckpointConfig::new(0.2, 0.4).unwrap();
        let sol = optimal_discrete_checkpointed(&d, &c, &ck).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let n = 300_000;
        let mut total = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            let mut acc = 0.0;
            let mut x = *d.values().last().unwrap();
            for (val, p) in d.values().iter().zip(d.probs()) {
                acc += p;
                if u < acc {
                    x = *val;
                    break;
                }
            }
            total += sol.run_job(&c, &ck, x).cost;
        }
        let mc = total / n as f64;
        assert!(
            (sol.expected_cost - mc).abs() / mc < 0.01,
            "dp {} vs run_job MC {mc}",
            sol.expected_cost
        );
    }

    #[test]
    fn plan_run_job_extends_past_thresholds() {
        let d = DiscreteDistribution::new(vec![1.0, 2.0], vec![0.5, 0.5]).unwrap();
        let c = CostModel::reservation_only();
        let ck = CheckpointConfig::new(0.1, 0.1).unwrap();
        let sol = optimal_discrete_checkpointed(&d, &c, &ck).unwrap();
        // A job bigger than the plan's last threshold still terminates.
        let out = sol.run_job(&c, &ck, 50.0);
        assert!(out.cost.is_finite());
        assert!(out.reservations > sol.thresholds.len());
    }

    #[test]
    fn checkpointing_tradeoff_flips_with_overhead() {
        // The §7 trade-off: as C = R grows, the checkpointed optimum's
        // advantage over the plain optimum shrinks and eventually inverts.
        let d = DiscreteDistribution::new(
            vec![2.0, 4.0, 8.0, 16.0, 32.0],
            vec![0.3, 0.25, 0.2, 0.15, 0.1],
        )
        .unwrap();
        let c = CostModel::reservation_only();
        let plain = optimal_discrete(&d, &c).unwrap().expected_cost;
        let cheap =
            optimal_discrete_checkpointed(&d, &c, &CheckpointConfig::new(0.01, 0.01).unwrap())
                .unwrap()
                .expected_cost;
        let pricey =
            optimal_discrete_checkpointed(&d, &c, &CheckpointConfig::new(20.0, 20.0).unwrap())
                .unwrap()
                .expected_cost;
        assert!(
            cheap < plain,
            "cheap checkpoints must win: {cheap} vs {plain}"
        );
        assert!(
            pricey > plain,
            "expensive checkpoints must lose: {pricey} vs {plain}"
        );
        assert!(cheap < pricey);
    }
}
