//! # rsj-sim — platform simulation substrates
//!
//! Systems S9–S11 of `DESIGN.md`: everything the paper's evaluation needed
//! from real platforms, rebuilt as simulators:
//!
//! * [`event`] / [`job`] / [`scheduler`] / [`cluster`] — a deterministic
//!   discrete-event batch-queue simulator with FCFS and EASY-backfilling
//!   policies, standing in for the Intrepid logs behind Figure 2;
//! * [`workload`] — synthetic job streams (Poisson arrivals, weighted job
//!   widths, walltime over-estimation);
//! * [`wait_time`] — the 20-group wait-vs-request analysis and affine fit
//!   of Figure 2;
//! * [`cloud`] — Reserved-Instance vs On-Demand pricing and the §5.2
//!   break-even analysis;
//! * [`runner`] — batch execution of reservation strategies with Eq. 2
//!   accounting, and the queue-fit → NeuroHPC cost-model bridge;
//! * [`fault`] / [`resilient`] — seed-reproducible failure processes
//!   (exponential-MTBF crashes, spot preemptions, walltime jitter) and the
//!   resilient reservation executor with checkpoint-restart and retry
//!   policies (system S18);
//! * [`adaptive`] — the online learn-while-scheduling loop: plan on a
//!   prior, observe (possibly censored) durations, refit and replan under
//!   guardrails (system S19).
//!
//! ## Example: derive a NeuroHPC cost model from a simulated queue
//!
//! ```
//! use rsj_sim::prelude::*;
//! use rsj_dist::LogNormal;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let runtime = LogNormal::new(0.0, 0.6).unwrap();
//! let workload = WorkloadConfig {
//!     arrival_rate: 40.0,
//!     processor_choices: vec![(204, 0.6), (409, 0.4)],
//!     overestimate: (1.2, 3.0),
//!     count: 3000,
//! };
//! let jobs = generate_workload(&workload, &runtime, &mut rng);
//! let records = simulate(&ClusterConfig::intrepid_like(), &jobs);
//! if let Some(analysis) = analyze_wait_times(&records, 204, 20) {
//!     let cost_model = cost_model_from_queue(&analysis);
//!     assert!(cost_model.alpha > 0.0);
//! }
//! ```

#![warn(missing_docs)]
// `!(x > 0.0)`-style guards deliberately reject NaN together with
// out-of-range values; clippy's partial_cmp suggestion obscures that.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod adaptive;
pub mod cloud;
pub mod cluster;
pub mod error;
pub mod event;
pub mod fault;
pub mod job;
pub mod resilient;
pub mod runner;
pub mod scheduler;
pub mod wait_time;
pub mod workload;

pub use adaptive::{
    run_adaptive, AdaptiveConfig, AdaptiveJob, AdaptiveReport, ModelFamily, RefitRecord,
};
pub use cloud::CloudPricing;
pub use cluster::{simulate, simulate_with_faults, summarize, ClusterConfig, SimSummary};
pub use error::SimError;
pub use fault::{FaultConfig, FaultEvent, FaultInjector, FaultKind};
pub use job::{Job, JobId, JobRecord, Time};
pub use resilient::{
    run_batch_resilient, run_batch_resilient_seeded, run_job_resilient, ResilienceConfig,
    ResilientOutcome, RetryPolicy,
};
pub use runner::{aggregate, cost_model_from_queue, run_batch, run_batch_seeded, BatchStats};
pub use scheduler::{PriorityConfig, SchedulerPolicy, SchedulerState};
pub use wait_time::{analyze_wait_times, WaitGroup, WaitTimeAnalysis};
pub use workload::{
    generate_workload, generate_workload_with_pattern, ArrivalPattern, WorkloadConfig,
};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::adaptive::{run_adaptive, AdaptiveConfig, AdaptiveReport, ModelFamily};
    pub use crate::cloud::CloudPricing;
    pub use crate::cluster::{
        simulate, simulate_with_faults, summarize, ClusterConfig, SimSummary,
    };
    pub use crate::fault::{FaultConfig, FaultKind};
    pub use crate::job::{Job, JobId, JobRecord};
    pub use crate::resilient::{
        run_batch_resilient, run_batch_resilient_seeded, ResilienceConfig, RetryPolicy,
    };
    pub use crate::runner::{cost_model_from_queue, run_batch, run_batch_seeded, BatchStats};
    pub use crate::scheduler::SchedulerPolicy;
    pub use crate::wait_time::{analyze_wait_times, WaitTimeAnalysis};
    pub use crate::workload::{generate_workload, WorkloadConfig};
}
