//! Slurm-like two-queue priority scheduling (paper §6): "the Slurm
//! scheduler uses two queues, one for high-priority jobs and the other for
//! low-priority jobs. A job is placed in a queue based on its resource
//! requirement, generally with long-running jobs that require a large
//! amount of resources having higher priorities. Jobs that are kept in the
//! waiting queue for a long period of time could also be upgraded."
//!
//! Implementation: before every scheduling pass, the waiting queue is
//! stably reordered into (high-priority, low-priority) classes — a job is
//! high-priority if its requested processor-hours exceed a threshold, or
//! if it has aged past the upgrade limit — then the EASY pass runs on the
//! reordered queue (Slurm backfills too).

use super::{schedule_easy, Running, SchedulerState};
use crate::job::{Job, Time};
use serde::{Deserialize, Serialize};

/// Parameters of the two-queue policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriorityConfig {
    /// Jobs requesting at least this many processor-hours are
    /// high-priority.
    pub high_priority_proc_hours: f64,
    /// Jobs waiting longer than this (hours) are upgraded to high priority.
    pub upgrade_after: Time,
}

impl PriorityConfig {
    /// Whether `job` is (currently) high-priority at time `now`.
    pub fn is_high_priority(&self, job: &Job, now: Time) -> bool {
        let proc_hours = job.processors as f64 * job.requested;
        proc_hours >= self.high_priority_proc_hours || now - job.arrival >= self.upgrade_after
    }
}

/// One Slurm-like pass: reorder by priority class (stable within a class,
/// preserving arrival order), then EASY-backfill.
pub fn schedule_priority(
    state: &mut SchedulerState,
    config: &PriorityConfig,
    now: Time,
) -> Vec<Running> {
    let mut high: Vec<Job> = Vec::new();
    let mut low: Vec<Job> = Vec::new();
    for job in state.waiting.drain(..) {
        if config.is_high_priority(&job, now) {
            high.push(job);
        } else {
            low.push(job);
        }
    }
    state.waiting.extend(high);
    state.waiting.extend(low);
    schedule_easy(state, now)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;

    fn job(id: u64, arrival: Time, procs: usize, requested: Time) -> Job {
        Job {
            id: JobId(id),
            arrival,
            processors: procs,
            requested,
            actual: requested,
        }
    }

    fn config() -> PriorityConfig {
        PriorityConfig {
            high_priority_proc_hours: 100.0,
            upgrade_after: 24.0,
        }
    }

    #[test]
    fn classification() {
        let cfg = config();
        // 8 procs × 20 h = 160 proc-hours: high priority.
        assert!(cfg.is_high_priority(&job(1, 0.0, 8, 20.0), 0.0));
        // 2 procs × 10 h = 20: low.
        assert!(!cfg.is_high_priority(&job(2, 0.0, 2, 10.0), 0.0));
        // …until it ages past 24 h.
        assert!(cfg.is_high_priority(&job(2, 0.0, 2, 10.0), 25.0));
    }

    #[test]
    fn big_job_jumps_the_queue() {
        let mut st = SchedulerState::new(10);
        st.start_job(job(0, 0.0, 10, 1.0), 0.0); // machine fully busy until t=1
        st.waiting.push_back(job(1, 0.1, 2, 10.0)); // low (20 proc-h), arrived first
        st.waiting.push_back(job(2, 0.2, 8, 20.0)); // high (160 proc-h)
        schedule_priority(&mut st, &config(), 0.5);
        // Machine is full: nothing starts, but the queue is reordered with
        // the high-priority job at the head.
        let ids: Vec<JobId> = st.waiting.iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![JobId(2), JobId(1)]);
    }

    #[test]
    fn aging_upgrades_preserve_arrival_order_within_class() {
        let mut st = SchedulerState::new(10);
        st.start_job(job(0, 0.0, 10, 50.0), 0.0);
        st.waiting.push_back(job(1, 0.0, 1, 1.0)); // low, old
        st.waiting.push_back(job(2, 1.0, 1, 1.0)); // low, newer
        st.waiting.push_back(job(3, 26.0, 8, 20.0)); // high by size
                                                     // At t = 30: job1 (waited 30 h) and job2 (29 h) both upgraded.
        schedule_priority(&mut st, &config(), 30.0);
        let ids: Vec<JobId> = st.waiting.iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![JobId(1), JobId(2), JobId(3)]);
    }

    #[test]
    fn low_priority_jobs_still_backfill() {
        // High-priority head blocked; a small low-priority job that cannot
        // delay it backfills (Slurm behaviour the paper describes: "smaller
        // jobs … are usually scheduled quickly thanks to the backfilling").
        let mut st = SchedulerState::new(10);
        st.start_job(job(0, 0.0, 6, 5.0), 0.0); // 6 procs until t=5
        st.waiting.push_back(job(1, 0.0, 8, 20.0)); // high, blocked
        st.waiting.push_back(job(2, 0.1, 4, 3.0)); // low, fits before t=5
        let started = schedule_priority(&mut st, &config(), 0.5);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job.id, JobId(2));
    }
}
