//! Seed-reproducible chaos suite: a fixed [`ChaosPolicy`] drives worker
//! panics and dispatch delays inside the server plus connection faults in
//! a [`ChaosProxy`] in front of it, while a deterministic serial client
//! workload runs through the proxy.
//!
//! Because every injection decision is a pure function of
//! `(seed, stream, index)` and connection ids are assigned in accept
//! order, the test can compute an exact per-connection oracle: which
//! connections must fail (panic / drop / truncate) and which must succeed
//! with a plan bit-identical to the offline solver.

use std::time::Duration;

use reservation_strategies::plan_digest;
use rsj_core::{CostModel, DiscretizedDp, SolverSpec, Strategy};
use rsj_dist::{DiscretizationScheme, DistSpec};
use rsj_serve::chaos::ConnFault;
use rsj_serve::{ChaosPolicy, ChaosProxy, Client, Request, Response, Server, ServerConfig};

/// Serial connections per suite run; each sends exactly one plan request.
const CONNS: u64 = 24;

fn policy() -> ChaosPolicy {
    ChaosPolicy {
        seed: 1,
        worker_panic_every: 5,
        delay_every: 4,
        delay_ms: 25,
        drop_conn_every: 6,
        stall_every: 5,
        stall_ms: 100,
        partial_write_every: 7,
    }
}

/// The request served on connection `conn` — a small rotating set so the
/// suite exercises cold solves and cache hits alike.
fn request_for(conn: u64) -> (DistSpec, SolverSpec) {
    let dists = [
        DistSpec::LogNormal {
            mu: 3.0,
            sigma: 0.5,
        },
        DistSpec::LogNormal {
            mu: 2.0,
            sigma: 0.8,
        },
        DistSpec::LogNormal {
            mu: 1.5,
            sigma: 0.3,
        },
    ];
    let solver = SolverSpec::Dp {
        scheme: DiscretizationScheme::EqualProbability,
        n: 150,
        epsilon: 1e-6,
        monotone: true,
    };
    (dists[(conn % 3) as usize].clone(), solver)
}

fn offline_digest(dist: &DistSpec) -> String {
    let sequence = DiscretizedDp::new(DiscretizationScheme::EqualProbability, 150, 1e-6)
        .unwrap()
        .sequence(
            dist.clone().build().unwrap().as_ref(),
            &CostModel::reservation_only(),
        )
        .unwrap();
    plan_digest(sequence.times().iter().copied())
}

/// What one connection observed, compressed to the deterministic part.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Outcome {
    /// A plan response with this digest.
    Plan(String),
    /// A typed error response of this kind.
    ServerError(String),
    /// A transport-level failure (torn line, reset, clean close, …).
    Fault,
}

/// The oracle: does the schedule doom connection `conn`?
fn must_fail(policy: &ChaosPolicy, conn: u64) -> bool {
    policy.worker_panics(conn, 0)
        || matches!(
            policy.conn_fault(conn),
            Some(ConnFault::DropAfter(_)) | Some(ConnFault::TruncateFirstChunk)
        )
}

/// Boot a chaotic server + proxy, run the serial workload, tear down.
fn run_suite() -> Vec<Outcome> {
    let server = Server::bind(ServerConfig {
        workers: 2,
        chaos: Some(policy()),
        ..ServerConfig::default()
    })
    .expect("bind server");
    let server_addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let server_join = std::thread::spawn(move || server.run());

    let proxy = ChaosProxy::bind(server_addr, policy()).expect("bind proxy");
    let proxy_addr = proxy.local_addr();
    let proxy_stop = proxy.stop_handle();
    let proxy_join = std::thread::spawn(move || proxy.run());

    let outcomes: Vec<Outcome> = (0..CONNS)
        .map(|conn| {
            let (dist, solver) = request_for(conn);
            let request = Request::plan_with(dist, solver);
            let client = match Client::connect(proxy_addr) {
                Ok(c) => c,
                Err(_) => return Outcome::Fault,
            };
            client
                .set_timeout(Some(Duration::from_secs(5)))
                .expect("set timeout");
            let mut client = client;
            match client.call(&request) {
                Ok(Response::Plan { plan, .. }) => Outcome::Plan(plan.digest),
                Ok(Response::Error { kind, .. }) => Outcome::ServerError(kind.to_string()),
                Ok(other) => panic!("conn {conn}: unexpected response {other:?}"),
                Err(_) => Outcome::Fault,
            }
        })
        .collect();

    // The pool must have survived every injected panic: a fresh direct
    // connection (skipping the proxy) still gets served. The server's
    // chaos schedule keeps running for these conn ids, so tolerate a
    // doomed one and retry.
    let mut revived = false;
    for _ in 0..3 {
        if let Ok(mut client) = Client::connect(server_addr) {
            let _ = client.set_timeout(Some(Duration::from_secs(5)));
            if client.ping().is_ok() {
                revived = true;
                break;
            }
        }
    }
    assert!(revived, "server must keep serving after injected panics");

    shutdown.signal();
    proxy_stop.stop();
    server_join
        .join()
        .expect("server thread")
        .expect("clean server exit");
    proxy_join
        .join()
        .expect("proxy thread")
        .expect("clean proxy exit");
    outcomes
}

#[test]
fn fixed_seed_chaos_is_survivable_reproducible_and_bit_identical() {
    let policy = policy();

    // The fixed seed must actually exercise every fault family within the
    // workload — otherwise the suite is vacuous.
    let panics = (0..CONNS).filter(|&c| policy.worker_panics(c, 0)).count();
    let drops = (0..CONNS)
        .filter(|&c| matches!(policy.conn_fault(c), Some(ConnFault::DropAfter(_))))
        .count();
    let truncates = (0..CONNS)
        .filter(|&c| matches!(policy.conn_fault(c), Some(ConnFault::TruncateFirstChunk)))
        .count();
    let stalls = (0..CONNS)
        .filter(|&c| matches!(policy.conn_fault(c), Some(ConnFault::StallFirstByte(_))))
        .count();
    let delays = (0..CONNS)
        .filter(|&c| policy.dispatch_delay(c, 0).is_some())
        .count();
    assert!(
        panics >= 1 && drops >= 1 && truncates >= 1 && stalls >= 1 && delays >= 1,
        "seed {} must schedule every fault family: \
         panics={panics} drops={drops} truncates={truncates} stalls={stalls} delays={delays}",
        policy.seed
    );

    let panics_before = rsj_obs::global_registry()
        .counter("rsj_serve_worker_panics_total")
        .get();
    let outcomes = run_suite();

    // Every connection matches the oracle: doomed ones fail at the
    // transport (never a protocol-level lie), the rest get plans that are
    // bit-identical to the offline solver. Stalled and delayed
    // connections land in the success column — slower, not wrong.
    let mut successes = 0;
    for (conn, outcome) in outcomes.iter().enumerate() {
        let conn = conn as u64;
        if must_fail(&policy, conn) {
            assert_eq!(
                outcome,
                &Outcome::Fault,
                "conn {conn} is doomed by the schedule"
            );
        } else {
            let (dist, _) = request_for(conn);
            assert_eq!(
                outcome,
                &Outcome::Plan(offline_digest(&dist)),
                "conn {conn} must get the offline solver's exact bits"
            );
            successes += 1;
        }
    }
    assert!(
        successes >= CONNS as usize / 2,
        "most connections must still be served: {successes}/{CONNS}"
    );

    // The injected panics were absorbed by the pool and counted.
    let panics_after = rsj_obs::global_registry()
        .counter("rsj_serve_worker_panics_total")
        .get();
    assert!(
        panics_after >= panics_before + panics as u64,
        "worker panic counter must record the injected panics \
         (before={panics_before}, after={panics_after}, scheduled={panics})"
    );

    // Seed-reproducibility: a second run from scratch sees the exact same
    // outcome sequence.
    let rerun = run_suite();
    assert_eq!(outcomes, rerun, "same seed, same chaos, same outcomes");
}
