//! Serializable distribution specifications.
//!
//! Experiment configurations (`rsj-bench`) and user-facing tools describe
//! job-runtime laws declaratively; [`DistSpec::build`] turns a spec into a
//! boxed [`ContinuousDistribution`].

use crate::continuous::{
    BetaDist, BoundedPareto, Exponential, GammaDist, LogNormal, Pareto, TruncatedNormal, Uniform,
    Weibull,
};
use crate::error::Result;
use crate::traits::ContinuousDistribution;
use serde::{Deserialize, Serialize};

/// Declarative description of one of the nine supported distributions, with
/// the same parameter names as the paper's Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "family", rename_all = "snake_case")]
pub enum DistSpec {
    /// `Exponential(λ)`.
    Exponential {
        /// Rate `λ > 0`.
        lambda: f64,
    },
    /// `Weibull(λ, κ)`.
    Weibull {
        /// Scale `λ > 0`.
        lambda: f64,
        /// Shape `κ > 0`.
        kappa: f64,
    },
    /// `Gamma(α, β)` (shape, rate).
    Gamma {
        /// Shape `α > 0`.
        alpha: f64,
        /// Rate `β > 0`.
        beta: f64,
    },
    /// `LogNormal(μ, σ)` in log-space parameters.
    LogNormal {
        /// Log-space location.
        mu: f64,
        /// Log-space standard deviation `σ > 0`.
        sigma: f64,
    },
    /// `TruncatedNormal(μ, σ², a)`; `sigma` is the standard deviation.
    TruncatedNormal {
        /// Parent location `μ`.
        mu: f64,
        /// Parent standard deviation `σ > 0`.
        sigma: f64,
        /// Lower truncation point `a ≥ 0`.
        a: f64,
    },
    /// `Pareto(ν, α)`.
    Pareto {
        /// Scale `ν > 0`.
        nu: f64,
        /// Tail index `α > 2`.
        alpha: f64,
    },
    /// `Uniform(a, b)`.
    Uniform {
        /// Left endpoint `a ≥ 0`.
        a: f64,
        /// Right endpoint `b > a`.
        b: f64,
    },
    /// `Beta(α, β)` on `[0, 1]`.
    Beta {
        /// First shape `α > 0`.
        alpha: f64,
        /// Second shape `β > 0`.
        beta: f64,
    },
    /// `BoundedPareto(L, H, α)`.
    BoundedPareto {
        /// Left endpoint `L > 0`.
        l: f64,
        /// Right endpoint `H > L`.
        h: f64,
        /// Tail index `α ∉ {1, 2}`.
        alpha: f64,
    },
}

impl DistSpec {
    /// Instantiates the described distribution, validating parameters.
    pub fn build(&self) -> Result<Box<dyn ContinuousDistribution>> {
        Ok(match *self {
            DistSpec::Exponential { lambda } => Box::new(Exponential::new(lambda)?),
            DistSpec::Weibull { lambda, kappa } => Box::new(Weibull::new(lambda, kappa)?),
            DistSpec::Gamma { alpha, beta } => Box::new(GammaDist::new(alpha, beta)?),
            DistSpec::LogNormal { mu, sigma } => Box::new(LogNormal::new(mu, sigma)?),
            DistSpec::TruncatedNormal { mu, sigma, a } => {
                Box::new(TruncatedNormal::new(mu, sigma, a)?)
            }
            DistSpec::Pareto { nu, alpha } => Box::new(Pareto::new(nu, alpha)?),
            DistSpec::Uniform { a, b } => Box::new(Uniform::new(a, b)?),
            DistSpec::Beta { alpha, beta } => Box::new(BetaDist::new(alpha, beta)?),
            DistSpec::BoundedPareto { l, h, alpha } => Box::new(BoundedPareto::new(l, h, alpha)?),
        })
    }

    /// The nine paper instantiations of Table 1, in table order.
    pub fn paper_table1() -> Vec<(&'static str, DistSpec)> {
        vec![
            ("Exponential", DistSpec::Exponential { lambda: 1.0 }),
            (
                "Weibull",
                DistSpec::Weibull {
                    lambda: 1.0,
                    kappa: 0.5,
                },
            ),
            (
                "Gamma",
                DistSpec::Gamma {
                    alpha: 2.0,
                    beta: 2.0,
                },
            ),
            (
                "Lognormal",
                DistSpec::LogNormal {
                    mu: 3.0,
                    sigma: 0.5,
                },
            ),
            (
                "TruncatedNormal",
                DistSpec::TruncatedNormal {
                    mu: 8.0,
                    sigma: std::f64::consts::SQRT_2, // σ² = 2
                    a: 0.0,
                },
            ),
            (
                "Pareto",
                DistSpec::Pareto {
                    nu: 1.5,
                    alpha: 3.0,
                },
            ),
            ("Uniform", DistSpec::Uniform { a: 10.0, b: 20.0 }),
            (
                "Beta",
                DistSpec::Beta {
                    alpha: 2.0,
                    beta: 2.0,
                },
            ),
            (
                "BoundedPareto",
                DistSpec::BoundedPareto {
                    l: 1.0,
                    h: 20.0,
                    alpha: 2.1,
                },
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_all_paper_instantiations() {
        for (name, spec) in DistSpec::paper_table1() {
            let dist = spec.build().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(dist.mean().is_finite(), "{name} mean");
            assert!(dist.variance().is_finite(), "{name} variance");
        }
    }

    #[test]
    fn serde_round_trip() {
        for (_, spec) in DistSpec::paper_table1() {
            let json = serde_json::to_string(&spec).unwrap();
            let back: DistSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec, back);
        }
    }

    #[test]
    fn invalid_spec_fails_to_build() {
        let bad = DistSpec::Exponential { lambda: -1.0 };
        assert!(bad.build().is_err());
    }
}
