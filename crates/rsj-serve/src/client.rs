//! A blocking line-protocol client for the planning server.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use reservation_strategies::PlanRequest;

use crate::protocol::{encode, BatchItem, ErrorKind, HealthInfo, Request, Response};

/// Longest response line the client will buffer before giving up with
/// [`ClientError::ResponseTooLarge`] — the client-side mirror of the
/// server's `max_line_bytes` bounded read. Plans embed their sequences,
/// so this is far roomier than the request cap.
pub const DEFAULT_MAX_RESPONSE_BYTES: usize = 64 << 20;

/// What can go wrong on the client side of a call.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server's reply was not a valid protocol line.
    Protocol(String),
    /// The server closed the connection without replying.
    ConnectionClosed,
    /// The server closed the connection mid-response: bytes arrived but
    /// the line never terminated. Distinct from [`ConnectionClosed`]
    /// because a torn response proves the request *was* dispatched.
    ///
    /// [`ConnectionClosed`]: ClientError::ConnectionClosed
    UnexpectedEof {
        /// How many bytes of the torn response had arrived.
        received: usize,
    },
    /// The response line exceeded the client's size cap.
    ResponseTooLarge {
        /// The cap that was exceeded.
        limit: usize,
    },
    /// The circuit breaker is open; the request was not sent.
    CircuitOpen,
    /// A [`ResilientClient`](crate::retry::ResilientClient) exhausted its
    /// retry budget. Carries the trace id of the final attempt so the
    /// failure can be correlated with server-side timelines and logs.
    /// Match on [`root_cause`](ClientError::root_cause) to see through
    /// this wrapping to the underlying transport error.
    RetriesExhausted {
        /// How many attempts were made.
        attempts: u32,
        /// The trace id the final attempt carried.
        trace_id: String,
        /// The error the final attempt failed with.
        last: Box<ClientError>,
    },
}

impl ClientError {
    /// The innermost failure, unwrapping any [`RetriesExhausted`]
    /// layers. A `ResilientClient` whose retries run out wraps the final
    /// attempt's error; callers that match on concrete transport
    /// variants (`Io`, `ConnectionClosed`, `UnexpectedEof`, ...) should
    /// match on `root_cause()` so the wrapping never hides them.
    ///
    /// [`RetriesExhausted`]: ClientError::RetriesExhausted
    pub fn root_cause(&self) -> &ClientError {
        match self {
            ClientError::RetriesExhausted { last, .. } => last.root_cause(),
            other => other,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::ConnectionClosed => f.write_str("server closed the connection"),
            ClientError::UnexpectedEof { received } => write!(
                f,
                "server closed the connection mid-response ({received} bytes received)"
            ),
            ClientError::ResponseTooLarge { limit } => {
                write!(f, "response line exceeds {limit} bytes")
            }
            ClientError::CircuitOpen => f.write_str("circuit breaker open; request not sent"),
            ClientError::RetriesExhausted {
                attempts,
                trace_id,
                last,
            } => write!(
                f,
                "retries exhausted after {attempts} attempts (trace_id={trace_id}): {last}"
            ),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A persistent connection to an `rsj-serve` instance; requests pipeline
/// over one TCP stream, one JSON line each way per call.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    max_response_bytes: usize,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        // Requests are single small lines; Nagle would stall each one
        // behind the server's delayed ACK.
        let _ = writer.set_nodelay(true);
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self {
            reader,
            writer,
            max_response_bytes: DEFAULT_MAX_RESPONSE_BYTES,
        })
    }

    /// Bounds how long [`call`](Self::call) waits for a reply.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.writer.set_read_timeout(timeout)
    }

    /// Caps the accepted response line (default
    /// [`DEFAULT_MAX_RESPONSE_BYTES`]).
    pub fn set_max_response_bytes(&mut self, limit: usize) {
        self.max_response_bytes = limit.max(1);
    }

    /// Sends one request and reads its response.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let mut line = encode(request).map_err(|e| ClientError::Protocol(e.to_string()))?;
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let reply = self.read_response_line()?;
        serde_json::from_str(reply.trim()).map_err(|e| {
            ClientError::Protocol(format!("unparsable response: {e} (line: {reply:?})"))
        })
    }

    /// Reads one `\n`-terminated response line, bounded at
    /// `max_response_bytes`, distinguishing a clean pre-reply close from
    /// a torn mid-response one.
    fn read_response_line(&mut self) -> Result<String, ClientError> {
        let mut reply = String::new();
        loop {
            // One byte of headroom past the cap makes an overlong line
            // detectable without unbounded buffering — the same idiom as
            // the server's bounded request read.
            let room = (self.max_response_bytes + 1).saturating_sub(reply.len());
            let n = Read::by_ref(&mut self.reader)
                .take(room as u64)
                .read_line(&mut reply)?;
            if reply.len() > self.max_response_bytes {
                return Err(ClientError::ResponseTooLarge {
                    limit: self.max_response_bytes,
                });
            }
            if n == 0 {
                return if reply.is_empty() {
                    Err(ClientError::ConnectionClosed)
                } else {
                    Err(ClientError::UnexpectedEof {
                        received: reply.len(),
                    })
                };
            }
            if reply.ends_with('\n') {
                return Ok(reply);
            }
        }
    }

    /// Solves a whole batch of plan requests in one round trip (protocol
    /// v2 `plan_batch`). Returns the per-item results in input order;
    /// each item is independently a plan or a typed error, so a batch
    /// with one bad distribution still yields plans for the rest. A
    /// batch-level server error (shed, not ready, …) surfaces as
    /// [`ClientError::Protocol`]; use
    /// [`ResilientClient::plan_batch`](crate::retry::ResilientClient::plan_batch)
    /// for retries that re-send only the failed items.
    pub fn plan_batch(&mut self, items: Vec<PlanRequest>) -> Result<Vec<BatchItem>, ClientError> {
        match self.call(&Request::plan_batch(items))? {
            Response::PlanBatch { results, .. } => Ok(results),
            Response::Error { kind, message, .. } => Err(ClientError::Protocol(format!(
                "plan_batch failed: {kind}: {message}"
            ))),
            other => Err(ClientError::Protocol(format!(
                "expected plan_batch, got {other:?}"
            ))),
        }
    }

    /// Liveness probe; `Ok(())` when the server answered `pong`.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::ping())? {
            Response::Pong { .. } => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected pong, got {other:?}"
            ))),
        }
    }

    /// Fetches the server's health report (answered even mid-recovery).
    pub fn health(&mut self) -> Result<HealthInfo, ClientError> {
        match self.call(&Request::health())? {
            Response::Health { health, .. } => Ok(health),
            other => Err(ClientError::Protocol(format!(
                "expected health, got {other:?}"
            ))),
        }
    }

    /// Readiness probe: `Ok(true)` when the server is ready, `Ok(false)`
    /// when it answered a typed `not_ready`, an error otherwise.
    pub fn ready(&mut self) -> Result<bool, ClientError> {
        match self.call(&Request::ready())? {
            Response::Ready { .. } => Ok(true),
            Response::Error {
                kind: ErrorKind::NotReady,
                ..
            } => Ok(false),
            other => Err(ClientError::Protocol(format!(
                "expected ready/not_ready, got {other:?}"
            ))),
        }
    }

    /// Fetches the server's Prometheus metrics exposition.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::metrics())? {
            Response::Metrics { prometheus, .. } => Ok(prometheus),
            other => Err(ClientError::Protocol(format!(
                "expected metrics, got {other:?}"
            ))),
        }
    }

    /// Fetches recent request timelines from the server's trace ring:
    /// the newest `last` (server default when `None`), optionally kept
    /// only when at least `min_duration_ms` long or matching an exact
    /// `trace_id`.
    pub fn trace(
        &mut self,
        last: Option<usize>,
        min_duration_ms: Option<f64>,
        trace_id: Option<&str>,
    ) -> Result<Vec<rsj_obs::TimelineRecord>, ClientError> {
        let request = Request::trace_query(last, min_duration_ms, trace_id.map(str::to_owned));
        match self.call(&request)? {
            Response::Trace { timelines, .. } => Ok(timelines),
            Response::Error { kind, message, .. } => Err(ClientError::Protocol(format!(
                "trace query failed: {kind}: {message}"
            ))),
            other => Err(ClientError::Protocol(format!(
                "expected trace, got {other:?}"
            ))),
        }
    }

    /// Requests a graceful shutdown; `Ok(())` once acknowledged.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::shutdown())? {
            Response::ShuttingDown { .. } => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected shutting_down, got {other:?}"
            ))),
        }
    }
}
