//! Property tests of constructor validation across the nine Table 1
//! families: NaN and out-of-range parameters are rejected with a typed
//! error, while valid parameters build distributions whose quantiles land
//! inside the declared support.

use proptest::prelude::*;
use rsj_dist::DistSpec;

/// The nine families instantiated from randomized valid parameters.
fn valid_specs(s1: f64, s2: f64, loc: f64) -> Vec<DistSpec> {
    vec![
        DistSpec::Exponential { lambda: s1 },
        DistSpec::Weibull {
            lambda: s1,
            kappa: s2,
        },
        DistSpec::Gamma {
            alpha: s1,
            beta: s2,
        },
        DistSpec::LogNormal { mu: loc, sigma: s1 },
        DistSpec::TruncatedNormal {
            mu: loc,
            sigma: s1,
            a: 0.0,
        },
        DistSpec::Pareto {
            nu: s1,
            alpha: 2.0 + s2,
        },
        DistSpec::Uniform {
            a: loc.abs(),
            b: loc.abs() + s1,
        },
        DistSpec::Beta {
            alpha: s1,
            beta: s2,
        },
        DistSpec::BoundedPareto {
            l: s1,
            h: s1 * 100.0,
            alpha: 2.5 + s2,
        },
    ]
}

/// Every family with a NaN planted in each parameter slot in turn.
fn nan_specs() -> Vec<DistSpec> {
    let nan = f64::NAN;
    vec![
        DistSpec::Exponential { lambda: nan },
        DistSpec::Weibull {
            lambda: nan,
            kappa: 1.0,
        },
        DistSpec::Weibull {
            lambda: 1.0,
            kappa: nan,
        },
        DistSpec::Gamma {
            alpha: nan,
            beta: 1.0,
        },
        DistSpec::Gamma {
            alpha: 1.0,
            beta: nan,
        },
        DistSpec::LogNormal {
            mu: nan,
            sigma: 1.0,
        },
        DistSpec::LogNormal {
            mu: 0.0,
            sigma: nan,
        },
        DistSpec::TruncatedNormal {
            mu: 0.0,
            sigma: nan,
            a: 0.0,
        },
        DistSpec::TruncatedNormal {
            mu: 0.0,
            sigma: 1.0,
            a: nan,
        },
        DistSpec::Pareto {
            nu: nan,
            alpha: 3.0,
        },
        DistSpec::Pareto {
            nu: 1.0,
            alpha: nan,
        },
        DistSpec::Uniform { a: nan, b: 1.0 },
        DistSpec::Uniform { a: 0.0, b: nan },
        DistSpec::Beta {
            alpha: nan,
            beta: 1.0,
        },
        DistSpec::Beta {
            alpha: 1.0,
            beta: nan,
        },
        DistSpec::BoundedPareto {
            l: nan,
            h: 10.0,
            alpha: 2.5,
        },
        DistSpec::BoundedPareto {
            l: 1.0,
            h: nan,
            alpha: 2.5,
        },
        DistSpec::BoundedPareto {
            l: 1.0,
            h: 10.0,
            alpha: nan,
        },
    ]
}

#[test]
fn nan_parameters_are_rejected_everywhere() {
    for spec in nan_specs() {
        let built = spec.build();
        assert!(built.is_err(), "{spec:?} must reject NaN");
        let msg = built.err().unwrap().to_string();
        assert!(msg.contains("invalid parameter"), "{spec:?}: {msg}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Valid randomized parameters always build, and the quantile
    /// function maps central probabilities into the declared support.
    #[test]
    fn valid_parameters_build_with_quantiles_in_support(
        s1 in 0.1..5.0f64,
        s2 in 0.1..3.0f64,
        loc in -2.0..4.0f64,
        p in 0.01..0.99f64,
    ) {
        for spec in valid_specs(s1, s2, loc) {
            let d = spec.build();
            prop_assert!(d.is_ok(), "{spec:?} should build");
            let d = d.unwrap();
            let q = d.quantile(p);
            prop_assert!(q.is_finite(), "{spec:?}: quantile({p}) = {q}");
            prop_assert!(
                d.support().contains(q),
                "{spec:?}: quantile({p}) = {q} outside support"
            );
            prop_assert!(d.mean().is_finite() && d.mean() > 0.0, "{spec:?}");
        }
    }

    /// Non-positive scale/shape parameters are rejected across families.
    #[test]
    fn non_positive_scales_are_rejected(bad in -3.0..0.0f64) {
        let specs = vec![
            DistSpec::Exponential { lambda: bad },
            DistSpec::Weibull { lambda: bad, kappa: 1.0 },
            DistSpec::Weibull { lambda: 1.0, kappa: bad },
            DistSpec::Gamma { alpha: bad, beta: 1.0 },
            DistSpec::Gamma { alpha: 1.0, beta: bad },
            DistSpec::LogNormal { mu: 0.0, sigma: bad },
            DistSpec::TruncatedNormal { mu: 0.0, sigma: bad, a: 0.0 },
            DistSpec::Pareto { nu: bad, alpha: 3.0 },
            DistSpec::Beta { alpha: bad, beta: 1.0 },
            DistSpec::Beta { alpha: 1.0, beta: bad },
            DistSpec::BoundedPareto { l: bad, h: 10.0, alpha: 2.5 },
        ];
        for spec in specs {
            prop_assert!(spec.build().is_err(), "{spec:?} must reject {bad}");
        }
    }

    /// Inverted or empty intervals are rejected for the bounded families.
    #[test]
    fn inverted_intervals_are_rejected(a in 0.5..5.0f64, shrink in 0.0..1.0f64) {
        let b = a * shrink; // b <= a
        prop_assert!(DistSpec::Uniform { a, b }.build().is_err());
        prop_assert!(
            DistSpec::BoundedPareto { l: a, h: b, alpha: 2.5 }.build().is_err()
        );
    }
}
