//! Snapshot tests pinning the exporters' exact output for a fixed
//! registry, so format drift is a deliberate diff rather than an
//! accident, plus the bit-for-bit JSON round-trip guarantee.

use rsj_obs::{MetricsSnapshot, Registry};

fn fixed_registry() -> Registry {
    let reg = Registry::new();
    reg.counter("rsj_sim_jobs_total").add(250);
    reg.counter("rsj_core_dp_states_total").add(1_000);
    reg.gauge("rsj_sim_waste_fraction").set(0.125);
    let h = reg.histogram("rsj_core_solve_wall_seconds");
    // Powers of two are bucket boundaries: quantiles come out exact and
    // the snapshot below is stable across platforms.
    h.observe_all(&[0.25, 0.25, 0.25, 0.5, 0.5, 1.0, 2.0, 4.0]);
    reg
}

#[test]
fn prometheus_snapshot_is_stable() {
    let text = fixed_registry().snapshot().to_prometheus();
    let expected = "\
# TYPE rsj_core_dp_states_total counter
rsj_core_dp_states_total 1000
# TYPE rsj_sim_jobs_total counter
rsj_sim_jobs_total 250
# TYPE rsj_sim_waste_fraction gauge
rsj_sim_waste_fraction 0.125
# TYPE rsj_core_solve_wall_seconds summary
rsj_core_solve_wall_seconds{quantile=\"0.5\"} 0.5078125
rsj_core_solve_wall_seconds{quantile=\"0.95\"} 4
rsj_core_solve_wall_seconds{quantile=\"0.99\"} 4
rsj_core_solve_wall_seconds_sum 8.75
rsj_core_solve_wall_seconds_count 8
rsj_core_solve_wall_seconds_min 0.25
rsj_core_solve_wall_seconds_max 4
";
    assert_eq!(text, expected);
}

#[test]
fn json_snapshot_round_trips_bit_for_bit() {
    let snap = fixed_registry().snapshot();
    let json = snap.to_json();
    let back: MetricsSnapshot = serde_json::from_str(&json).expect("snapshot JSON parses");
    assert_eq!(back, snap, "value round-trip");
    assert_eq!(back.to_json(), json, "textual round-trip is bit-for-bit");
}

#[test]
fn json_snapshot_contains_quantiles_and_buckets() {
    let json = fixed_registry().snapshot().to_json();
    for needle in [
        "\"rsj_core_solve_wall_seconds\"",
        "\"p50\"",
        "\"p95\"",
        "\"p99\"",
        "\"buckets\"",
        "\"rsj_sim_jobs_total\"",
    ] {
        assert!(json.contains(needle), "missing {needle} in:\n{json}");
    }
}

#[test]
fn empty_snapshot_deserializes_from_empty_object() {
    // #[serde(default)] on every field: "{}" is a valid (empty) snapshot,
    // keeping old perf manifests readable as fields are added.
    let snap: MetricsSnapshot = serde_json::from_str("{}").unwrap();
    assert!(snap.is_empty());
}
