//! Declarative solver specifications.
//!
//! [`SolverSpec`] is the one description of "which heuristic, with which
//! parameters" shared by every entry point: `rsj-cli` JSON configs, the
//! `rsj-serve` wire protocol and the `Planner` facade all deserialize the
//! same shape and call [`SolverSpec::build`]. Short textual names
//! (`brute_force`, `dp_equal_time`, …) parse via [`FromStr`] with the
//! paper's default parameters, so flag-style interfaces share the same
//! vocabulary as the structured configs.
//!
//! [`FromStr`]: std::str::FromStr

use super::{
    BruteForce, DiscretizedDp, EvalMethod, MeanByMean, MeanDoubling, MeanStdev, MedianByMedian,
    Strategy,
};
use crate::error::{CoreError, Result};
use rsj_dist::DiscretizationScheme;
use serde::{Deserialize, Serialize};

/// The paper's brute-force grid size `M`.
pub const DEFAULT_GRID: usize = 5000;
/// The paper's Monte-Carlo sample count `N` (also the DP's default `n`).
pub const DEFAULT_SAMPLES: usize = 1000;
/// The paper's truncation quantile ε.
pub const DEFAULT_EPSILON: f64 = 1e-7;

fn default_grid() -> usize {
    DEFAULT_GRID
}
fn default_samples() -> usize {
    DEFAULT_SAMPLES
}
fn default_epsilon() -> f64 {
    DEFAULT_EPSILON
}
fn default_true() -> bool {
    true
}

/// Which reservation strategy to run, with its parameters.
///
/// The serde shape (`kind` tag, snake_case names) is the wire format of
/// both `rsj plan` configs and `rsj-serve` requests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum SolverSpec {
    /// §4.1 Brute-Force.
    BruteForce {
        /// Grid size `M` (default 5000).
        #[serde(default = "default_grid")]
        grid: usize,
        /// Monte-Carlo samples `N` (default 1000).
        #[serde(default = "default_samples")]
        samples: usize,
        /// Score candidates analytically instead of by Monte Carlo.
        #[serde(default)]
        analytic: bool,
        /// RNG seed (default 0).
        #[serde(default)]
        seed: u64,
    },
    /// §4.2 discretization + dynamic programming.
    Dp {
        /// `equal_time` or `equal_probability`.
        scheme: DiscretizationScheme,
        /// Sample count `n` (default 1000).
        #[serde(default = "default_samples")]
        n: usize,
        /// Truncation quantile ε (default 1e-7).
        #[serde(default = "default_epsilon")]
        epsilon: f64,
        /// Whether the `O(n log n)` monotone fast path may be used
        /// (default true). The output is bit-identical either way; set
        /// false to force the exact `O(n²)` pass for A/B runs.
        #[serde(default = "default_true")]
        monotone: bool,
    },
    /// §4.3 Mean-by-Mean.
    MeanByMean,
    /// §4.3 Mean-Stdev.
    MeanStdev,
    /// §4.3 Mean-Doubling.
    MeanDoubling,
    /// §4.3 Median-by-Median.
    MedianByMedian,
}

impl SolverSpec {
    /// Instantiates the described strategy, validating parameters.
    pub fn build(&self) -> Result<Box<dyn Strategy>> {
        Ok(match *self {
            SolverSpec::BruteForce {
                grid,
                samples,
                analytic,
                seed,
            } => {
                let method = if analytic {
                    EvalMethod::Analytic
                } else {
                    EvalMethod::MonteCarlo
                };
                Box::new(BruteForce::new(grid, samples, method, seed)?)
            }
            SolverSpec::Dp {
                scheme,
                n,
                epsilon,
                monotone,
            } => Box::new(DiscretizedDp::new(scheme, n, epsilon)?.with_monotone(monotone)),
            SolverSpec::MeanByMean => Box::new(MeanByMean::default()),
            SolverSpec::MeanStdev => Box::new(MeanStdev::default()),
            SolverSpec::MeanDoubling => Box::new(MeanDoubling::default()),
            SolverSpec::MedianByMedian => Box::new(MedianByMedian::default()),
        })
    }

    /// The solver's canonical short name — what [`FromStr`] accepts and
    /// [`Display`] prints.
    ///
    /// [`FromStr`]: std::str::FromStr
    /// [`Display`]: std::fmt::Display
    pub fn name(&self) -> &'static str {
        match self {
            SolverSpec::BruteForce { .. } => "brute_force",
            SolverSpec::Dp {
                scheme: DiscretizationScheme::EqualTime,
                ..
            } => "dp_equal_time",
            SolverSpec::Dp {
                scheme: DiscretizationScheme::EqualProbability,
                ..
            } => "dp_equal_probability",
            SolverSpec::MeanByMean => "mean_by_mean",
            SolverSpec::MeanStdev => "mean_stdev",
            SolverSpec::MeanDoubling => "mean_doubling",
            SolverSpec::MedianByMedian => "median_by_median",
        }
    }

    /// A deterministic key encoding the solver *and every parameter* —
    /// two specs produce the same key iff they configure the same solve.
    /// Plan caches (`rsj-serve`) key on this.
    pub fn config_key(&self) -> String {
        match *self {
            SolverSpec::BruteForce {
                grid,
                samples,
                analytic,
                seed,
            } => format!(
                "brute_force(grid={grid},samples={samples},analytic={analytic},seed={seed})"
            ),
            SolverSpec::Dp {
                scheme,
                n,
                epsilon,
                monotone,
            } => format!(
                "{}(n={n},epsilon={epsilon},monotone={monotone})",
                self.name_for(scheme)
            ),
            _ => format!("{}()", self.name()),
        }
    }

    fn name_for(&self, scheme: DiscretizationScheme) -> &'static str {
        match scheme {
            DiscretizationScheme::EqualTime => "dp_equal_time",
            DiscretizationScheme::EqualProbability => "dp_equal_probability",
        }
    }

    /// Re-seeds the solver where a seed applies (Brute-Force's Monte-Carlo
    /// scoring); deterministic solvers are returned unchanged. `rsj-serve`
    /// uses this to honor a request's top-level `seed` field.
    pub fn with_seed(self, seed: u64) -> Self {
        match self {
            SolverSpec::BruteForce {
                grid,
                samples,
                analytic,
                ..
            } => SolverSpec::BruteForce {
                grid,
                samples,
                analytic,
                seed,
            },
            other => other,
        }
    }

    /// All seven paper solvers with default parameters, in Table 2 column
    /// order.
    pub fn paper_specs(seed: u64) -> Vec<SolverSpec> {
        vec![
            SolverSpec::BruteForce {
                grid: DEFAULT_GRID,
                samples: DEFAULT_SAMPLES,
                analytic: false,
                seed,
            },
            SolverSpec::MeanByMean,
            SolverSpec::MeanStdev,
            SolverSpec::MeanDoubling,
            SolverSpec::MedianByMedian,
            SolverSpec::Dp {
                scheme: DiscretizationScheme::EqualTime,
                n: DEFAULT_SAMPLES,
                epsilon: DEFAULT_EPSILON,
                monotone: true,
            },
            SolverSpec::Dp {
                scheme: DiscretizationScheme::EqualProbability,
                n: DEFAULT_SAMPLES,
                epsilon: DEFAULT_EPSILON,
                monotone: true,
            },
        ]
    }
}

impl std::fmt::Display for SolverSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for SolverSpec {
    type Err = CoreError;

    /// Parses a canonical solver name into a spec with the paper's default
    /// parameters (`M = 5000`, `N = n = 1000`, `ε = 1e-7`, seed 0).
    /// Matching is case-insensitive and treats `-` and spaces as `_`.
    fn from_str(s: &str) -> Result<Self> {
        let canon: String = s
            .chars()
            .map(|c| match c {
                '-' | ' ' => '_',
                c => c.to_ascii_lowercase(),
            })
            .collect();
        Ok(match canon.as_str() {
            "brute_force" => SolverSpec::BruteForce {
                grid: DEFAULT_GRID,
                samples: DEFAULT_SAMPLES,
                analytic: false,
                seed: 0,
            },
            "brute_force_analytic" => SolverSpec::BruteForce {
                grid: DEFAULT_GRID,
                samples: DEFAULT_SAMPLES,
                analytic: true,
                seed: 0,
            },
            "dp_equal_time" | "equal_time" => SolverSpec::Dp {
                scheme: DiscretizationScheme::EqualTime,
                n: DEFAULT_SAMPLES,
                epsilon: DEFAULT_EPSILON,
                monotone: true,
            },
            "dp_equal_probability" | "equal_probability" => SolverSpec::Dp {
                scheme: DiscretizationScheme::EqualProbability,
                n: DEFAULT_SAMPLES,
                epsilon: DEFAULT_EPSILON,
                monotone: true,
            },
            "mean_by_mean" => SolverSpec::MeanByMean,
            "mean_stdev" => SolverSpec::MeanStdev,
            "mean_doubling" => SolverSpec::MeanDoubling,
            "median_by_median" => SolverSpec::MedianByMedian,
            _ => {
                return Err(CoreError::UnknownName {
                    what: "solver",
                    input: s.to_string(),
                    expected: "`brute_force[_analytic]`, `dp_equal_time`, \
                               `dp_equal_probability`, `mean_by_mean`, `mean_stdev`, \
                               `mean_doubling` or `median_by_median`",
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsj_dist::DistSpec;

    #[test]
    fn wire_shape_matches_legacy_heuristic_configs() {
        // The `kind`-tagged JSON written for the pre-SolverSpec CLI must
        // keep parsing unchanged, defaults included.
        let spec: SolverSpec =
            serde_json::from_str(r#"{ "kind": "brute_force", "grid": 100 }"#).unwrap();
        assert_eq!(
            spec,
            SolverSpec::BruteForce {
                grid: 100,
                samples: DEFAULT_SAMPLES,
                analytic: false,
                seed: 0
            }
        );
        let spec: SolverSpec =
            serde_json::from_str(r#"{ "kind": "dp", "scheme": "equal_time" }"#).unwrap();
        assert_eq!(
            spec,
            SolverSpec::Dp {
                scheme: DiscretizationScheme::EqualTime,
                n: DEFAULT_SAMPLES,
                epsilon: DEFAULT_EPSILON,
                monotone: true,
            }
        );
    }

    #[test]
    fn serde_round_trip() {
        for spec in SolverSpec::paper_specs(7) {
            let json = serde_json::to_string(&spec).unwrap();
            let back: SolverSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec, back, "{json}");
        }
    }

    #[test]
    fn unknown_scheme_is_a_typed_parse_error() {
        let err = serde_json::from_str::<SolverSpec>(r#"{ "kind": "dp", "scheme": "nope" }"#)
            .unwrap_err();
        assert!(err.to_string().contains("nope"), "{err}");
    }

    #[test]
    fn names_round_trip_through_from_str() {
        for spec in SolverSpec::paper_specs(0) {
            let back: SolverSpec = spec.name().parse().unwrap();
            assert_eq!(back.name(), spec.name());
        }
        assert!("warp_drive".parse::<SolverSpec>().is_err());
    }

    #[test]
    fn config_keys_separate_distinct_parameterizations() {
        let a: SolverSpec = "brute_force".parse().unwrap();
        let b = SolverSpec::BruteForce {
            grid: DEFAULT_GRID,
            samples: DEFAULT_SAMPLES,
            analytic: false,
            seed: 1,
        };
        assert_ne!(a.config_key(), b.config_key());
        assert_eq!(
            a.config_key(),
            "brute_force".parse::<SolverSpec>().unwrap().config_key()
        );
    }

    #[test]
    fn every_spec_builds_and_solves() {
        let cost = crate::CostModel::reservation_only();
        let dist = DistSpec::Exponential { lambda: 1.0 }.build().unwrap();
        for name in [
            "mean_by_mean",
            "mean_stdev",
            "mean_doubling",
            "median_by_median",
        ] {
            let solver = name.parse::<SolverSpec>().unwrap().build().unwrap();
            assert!(!solver.sequence(dist.as_ref(), &cost).unwrap().is_empty());
        }
        // Parameterized solvers build; solving at paper scale is exercised
        // by the suite tests.
        assert!("brute_force".parse::<SolverSpec>().unwrap().build().is_ok());
        assert!("dp_equal_time"
            .parse::<SolverSpec>()
            .unwrap()
            .build()
            .is_ok());
    }

    #[test]
    fn eval_method_parses_and_displays() {
        assert_eq!("analytic".parse::<EvalMethod>(), Ok(EvalMethod::Analytic));
        assert_eq!(
            "Monte-Carlo".parse::<EvalMethod>(),
            Ok(EvalMethod::MonteCarlo)
        );
        for m in [EvalMethod::MonteCarlo, EvalMethod::Analytic] {
            assert_eq!(m.to_string().parse::<EvalMethod>(), Ok(m));
        }
        assert!("exact".parse::<EvalMethod>().is_err());
    }
}
