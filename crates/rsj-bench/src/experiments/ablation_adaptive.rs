//! Ablation (beyond the paper's evaluation): cold-start regret of the
//! online adaptive replanner (system S19). For each Table 1 truth, run the
//! prior → plan → observe → refit → replan loop with (a) the truth itself
//! as prior and (b) a deliberately misspecified prior (a LogNormal
//! moment-matched to *half* the truth's mean and spread), refitting a
//! LogNormal — the paper's §5.3 family — on the censored observation
//! stream. Reported: the cumulative cost ratio vs the known-distribution
//! oracle after 25%, 50% and 100% of the jobs, plus guardrail activity.

use crate::report::Table;
use crate::scenarios::{paper_distributions, Fidelity};
use rand::SeedableRng;
use rsj_core::{CostModel, MeanByMean};
use rsj_dist::{ContinuousDistribution, LogNormal};
use rsj_par::Parallelism;
use rsj_sim::adaptive::{run_adaptive, AdaptiveConfig, AdaptiveReport};

/// One adaptive run's summary: cumulative oracle ratios at checkpoints.
#[derive(Debug, Clone)]
pub struct Row {
    /// Truth distribution label.
    pub distribution: String,
    /// `"correct"` or `"misspecified"`.
    pub prior: &'static str,
    /// Cumulative cost ratio after 25% of the jobs (cold start).
    pub ratio_early: Option<f64>,
    /// Cumulative cost ratio after 50% of the jobs.
    pub ratio_mid: Option<f64>,
    /// Cumulative cost ratio at the end of the run.
    pub ratio_final: Option<f64>,
    /// Replans accepted past the hysteresis threshold.
    pub replans: usize,
    /// Refit rounds that degraded to the empirical fallback.
    pub fallbacks: usize,
    /// Refits rejected by a guardrail.
    pub rejected: usize,
    /// Right-censored observations recorded.
    pub censored: usize,
}

/// Jobs per adaptive run at the given fidelity.
pub fn jobs(fidelity: Fidelity) -> usize {
    match fidelity {
        Fidelity::Paper => 400,
        Fidelity::Quick => 120,
    }
}

/// Cumulative cost ratio vs the oracle after the first `k` jobs.
fn ratio_after(report: &AdaptiveReport, k: usize) -> f64 {
    let k = k.clamp(1, report.jobs.len());
    let cost: f64 = report.jobs[..k].iter().map(|j| j.cost).sum();
    let oracle: f64 = report.jobs[..k].iter().map(|j| j.oracle_cost).sum();
    cost / oracle
}

fn run_one(
    truth: &dyn ContinuousDistribution,
    prior: &dyn ContinuousDistribution,
    label: &'static str,
    name: &str,
    n_jobs: usize,
    seed: u64,
) -> Row {
    let cost = CostModel::reservation_only();
    let strategy = MeanByMean::default();
    let config = AdaptiveConfig {
        censor_after: Some(8),
        ..AdaptiveConfig::default()
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    match run_adaptive(truth, prior, &strategy, &cost, n_jobs, &config, &mut rng) {
        Ok(report) => Row {
            distribution: name.to_string(),
            prior: label,
            ratio_early: Some(ratio_after(&report, n_jobs / 4)),
            ratio_mid: Some(ratio_after(&report, n_jobs / 2)),
            ratio_final: Some(report.mean_cost_ratio),
            replans: report.replans,
            fallbacks: report.fallbacks,
            rejected: report.rejected_refits,
            censored: report.censored_observations,
        },
        Err(_) => Row {
            distribution: name.to_string(),
            prior: label,
            ratio_early: None,
            ratio_mid: None,
            ratio_final: None,
            replans: 0,
            fallbacks: 0,
            rejected: 0,
            censored: 0,
        },
    }
}

/// Computes the ablation: two priors per Table 1 truth.
pub fn compute(fidelity: Fidelity, seed: u64) -> Vec<Row> {
    let n_jobs = jobs(fidelity);
    let dists = paper_distributions();
    Parallelism::current()
        .par_map(&dists, |i, nd| {
            let run_seed = seed.wrapping_mul(601).wrapping_add(i as u64);
            let correct = run_one(
                nd.dist.as_ref(),
                nd.dist.as_ref(),
                "correct",
                nd.name,
                n_jobs,
                run_seed,
            );
            // Half the mean and spread: the §5.3 pipeline handed a stale
            // or under-sampled trace archive.
            let misspecified = LogNormal::from_moments(
                nd.dist.mean() / 2.0,
                (nd.dist.variance().sqrt() / 2.0).max(1e-6),
            )
            .map(|prior| {
                run_one(
                    nd.dist.as_ref(),
                    &prior,
                    "misspecified",
                    nd.name,
                    n_jobs,
                    run_seed,
                )
            })
            .unwrap_or_else(|_| Row {
                distribution: nd.name.to_string(),
                prior: "misspecified",
                ratio_early: None,
                ratio_mid: None,
                ratio_final: None,
                replans: 0,
                fallbacks: 0,
                rejected: 0,
                censored: 0,
            });
            vec![correct, misspecified]
        })
        .into_iter()
        .flatten()
        .collect()
}

fn fmt(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.3}"),
        None => "-".to_string(),
    }
}

/// Renders and writes `results/ablation_adaptive.{md,csv}`.
pub fn emit(fidelity: Fidelity, seed: u64) -> std::io::Result<Vec<Row>> {
    let rows = compute(fidelity, seed);
    let n_jobs = jobs(fidelity);
    let mut table = Table::new(vec![
        "Truth".to_string(),
        "Prior".to_string(),
        format!("ratio@{}", n_jobs / 4),
        format!("ratio@{}", n_jobs / 2),
        format!("ratio@{n_jobs}"),
        "replans".to_string(),
        "fallbacks".to_string(),
        "rejected".to_string(),
        "censored".to_string(),
    ]);
    for r in &rows {
        table.push_row(vec![
            r.distribution.clone(),
            r.prior.to_string(),
            fmt(r.ratio_early),
            fmt(r.ratio_mid),
            fmt(r.ratio_final),
            r.replans.to_string(),
            r.fallbacks.to_string(),
            r.rejected.to_string(),
            r.censored.to_string(),
        ])?;
    }
    table.emit(
        "ablation_adaptive",
        "Ablation — online adaptive replanning under censored observations: cumulative cost ratio vs the known-distribution oracle (1.0 = oracle-equal), cold start to warm",
    )?;
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_truth_produces_both_rows() {
        let rows = compute(Fidelity::Quick, 17);
        assert_eq!(rows.len(), 18);
        for r in &rows {
            let f = r
                .ratio_final
                .unwrap_or_else(|| panic!("{}/{}: run failed", r.distribution, r.prior));
            assert!(
                f > 0.5 && f < 2.0,
                "{}/{}: final ratio {f} implausible",
                r.distribution,
                r.prior
            );
        }
    }

    #[test]
    fn correct_priors_stay_near_the_oracle() {
        let rows = compute(Fidelity::Quick, 17);
        for r in rows.iter().filter(|r| r.prior == "correct") {
            let f = r.ratio_final.unwrap();
            assert!(
                (0.8..1.2).contains(&f),
                "{}: correct prior should track the oracle, got {f}",
                r.distribution
            );
        }
    }

    #[test]
    fn misspecified_priors_converge_not_diverge() {
        let rows = compute(Fidelity::Quick, 17);
        for r in rows.iter().filter(|r| r.prior == "misspecified") {
            let (early, fin) = (r.ratio_early.unwrap(), r.ratio_final.unwrap());
            assert!(
                fin <= early + 0.1,
                "{}: ratio grew from {early} to {fin}",
                r.distribution
            );
        }
    }
}
