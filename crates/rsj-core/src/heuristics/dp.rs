//! Discretization-based dynamic programming (§4.2 / Theorem 5).
//!
//! For a finite discrete distribution `X ~ (vᵢ, fᵢ)` the STOCHASTIC problem
//! is solved *optimally* in `O(n²)`: with `E*ᵢ` the optimal expected cost
//! conditioned on `X ≥ vᵢ`,
//!
//! ```text
//! E*ᵢ = min_{i ≤ j ≤ n} [ α·vⱼ + γ + Σ_{k=i..j} f'ₖ·β·vₖ
//!                         + (Σ_{k>j} f'ₖ)·(β·vⱼ + E*ⱼ₊₁) ]
//! ```
//!
//! We work with the *unnormalized* `Wᵢ = E*ᵢ · Sᵢ` (`Sᵢ = Σ_{k≥i} fₖ`),
//! which removes the per-state renormalization and keeps the whole program
//! at two prefix-sum arrays.
//!
//! ## Fast path
//!
//! The per-state minimization is totally monotone (see `dp_monotone`), so
//! [`optimal_discrete`] first attempts the `O(n log n)` envelope pass and
//! falls back to the exact `O(n²)` scan when the runtime gate declines or
//! a comparison is too close to trust. Whenever the fast path completes it
//! is bit-for-bit identical to the exact pass; [`optimal_discrete_exact`]
//! forces the `O(n²)` pass for A/B runs and verification.

use super::dp_monotone;
use super::{Strategy, TailPolicy};
use crate::cancel::CancelToken;
use crate::cost::CostModel;
use crate::error::{CoreError, Result};
use crate::sequence::ReservationSequence;
use rsj_dist::{
    discretize_eval, ContinuousDistribution, DiscreteDistribution, DiscretizationScheme,
};
use rsj_par::Parallelism;

/// Minimum inner-loop span before the per-state minimization fans out to
/// the worker pool. Below this the spawn overhead dwarfs the arithmetic;
/// the paper's `n = 1000` grids always stay serial.
const DP_PAR_MIN_SPAN: usize = 4096;

/// States of the backward pass between cancellation polls (shared with
/// the monotone fast path so both react on the same cadence).
pub(super) const DP_CANCEL_STRIDE: usize = 64;

/// Which pass produced the most recent DP solution on this thread.
///
/// Solvers record this as a side channel so callers that only hold a
/// `Box<dyn Strategy>` (the CLI's `--explain-solver`, the planner's
/// trace-timeline annotation) can attribute a solve to the fast path or
/// the exact fallback without threading a new return type through every
/// entry point. Thread-local, so concurrent server requests cannot read
/// each other's attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DpPath {
    /// The `O(n log n)` monotone envelope pass completed (gate fired).
    Monotone,
    /// The gate declined (or a comparison was too close to trust) and the
    /// exact `O(n²)` pass ran as the fallback.
    ExactDeclined,
    /// The exact `O(n²)` pass was forced — `monotone: false` in the
    /// solver spec, or a direct call to an `optimal_discrete_exact*`
    /// entry point.
    ExactForced,
}

impl DpPath {
    /// Short stable label for trace args and CLI output.
    pub fn as_str(self) -> &'static str {
        match self {
            DpPath::Monotone => "monotone",
            DpPath::ExactDeclined => "exact_gate_declined",
            DpPath::ExactForced => "exact_forced",
        }
    }
}

thread_local! {
    static LAST_DP_PATH: std::cell::Cell<Option<DpPath>> =
        const { std::cell::Cell::new(None) };
}

fn record_dp_path(path: DpPath) {
    LAST_DP_PATH.with(|c| c.set(Some(path)));
}

/// Discards any previously recorded path so a following
/// [`last_dp_path`] cannot read attribution left over from an earlier,
/// unrelated solve on this thread. Call before dispatching a solver.
pub fn clear_last_dp_path() {
    LAST_DP_PATH.with(|c| c.set(None));
}

/// The path recorded by the most recent `optimal_discrete*` call on this
/// thread, without clearing it (several observers — the trace timeline,
/// the CLI explanation — may read the same solve). `None` when no
/// discretized DP has run since [`clear_last_dp_path`] — e.g. a
/// closed-form heuristic solved the plan.
pub fn last_dp_path() -> Option<DpPath> {
    LAST_DP_PATH.with(|c| c.get())
}

/// Optimal solution of STOCHASTIC for a discrete distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DpSolution {
    /// Optimal expected cost `E*₁`.
    pub expected_cost: f64,
    /// The optimal reservation values (a subsequence of the support).
    pub values: Vec<f64>,
    /// Indices of the chosen values within the support.
    pub indices: Vec<usize>,
}

/// Solves STOCHASTIC exactly for a discrete distribution (Theorem 5),
/// using the process-wide [`Parallelism::current`] pool for large grids.
/// Dispatches to the `O(n log n)` monotone fast path when its gate
/// accepts (the common case), falling back to the exact `O(n²)` pass
/// otherwise; either way the result is the same bits.
pub fn optimal_discrete(dist: &DiscreteDistribution, cost: &CostModel) -> Result<DpSolution> {
    optimal_discrete_par(dist, cost, &Parallelism::current())
}

/// [`optimal_discrete`] with an explicit worker pool (used only by the
/// exact fallback — the envelope pass is inherently sequential and needs
/// no workers, which also makes it trivially thread-count-deterministic).
pub fn optimal_discrete_par(
    dist: &DiscreteDistribution,
    cost: &CostModel,
    par: &Parallelism,
) -> Result<DpSolution> {
    optimal_discrete_cancellable(dist, cost, par, &CancelToken::none())
}

/// [`optimal_discrete_par`] with cooperative cancellation, polled every
/// `DP_CANCEL_STRIDE` states of the backward pass. An uncancelled run
/// is bit-for-bit identical to the uncancellable entry points.
pub fn optimal_discrete_cancellable(
    dist: &DiscreteDistribution,
    cost: &CostModel,
    par: &Parallelism,
    cancel: &CancelToken,
) -> Result<DpSolution> {
    let _wall = rsj_obs::ScopedTimer::global("rsj_core_dp_wall_seconds");
    let _span = rsj_obs::span!("dp.optimal_discrete");
    let v = dist.values();
    let f = dist.probs();
    let s = dist.suffix_masses();
    let a = prefix_weighted_values(v, f);
    if let Some(m) = dp_monotone::try_solve(v, f, &s, &a, cost, cancel)? {
        if rsj_obs::metrics_enabled() {
            let reg = rsj_obs::global_registry();
            reg.counter("rsj_core_dp_solves_total").inc();
            reg.counter("rsj_core_dp_states_total").add(v.len() as u64);
            reg.counter("rsj_core_dp_monotone_solves_total").inc();
            reg.counter("rsj_core_dp_monotone_evals_total").add(m.evals);
        }
        rsj_obs::debug!(
            "dp monotone fast path solved {} states in {} candidate evals",
            v.len(),
            m.evals
        );
        record_dp_path(DpPath::Monotone);
        return solution_from(&m.w, &m.choice, v, &s);
    }
    if rsj_obs::metrics_enabled() {
        rsj_obs::global_registry()
            .counter("rsj_core_dp_monotone_declined_total")
            .inc();
    }
    rsj_obs::debug!(
        "dp monotone gate declined on {} states; running exact O(n²) pass",
        v.len()
    );
    record_dp_path(DpPath::ExactDeclined);
    exact_pass(v, &s, &a, cost, par, cancel)
}

/// The exact `O(n²)` Theorem 5 pass, bypassing the monotone gate. This is
/// the reference implementation the fast path must match bit-for-bit;
/// keep it for A/B runs (`SolverSpec::Dp { monotone: false, .. }`), for
/// the equivalence suite, and as the fallback when the gate declines.
pub fn optimal_discrete_exact(dist: &DiscreteDistribution, cost: &CostModel) -> Result<DpSolution> {
    optimal_discrete_exact_par(dist, cost, &Parallelism::current())
}

/// [`optimal_discrete_exact`] with an explicit worker pool.
///
/// The per-state minimization over `j ∈ [i, n)` evaluates a pure
/// function of precomputed prefix arrays, so it fans out as a chunked
/// min-reduction once the span exceeds `DP_PAR_MIN_SPAN`. Ties keep
/// the smallest `j` (serial scan used strict `<`; the reduction keeps
/// the left operand on ties and chunks are combined in index order), so
/// the solution is bit-for-bit identical at any thread count.
pub fn optimal_discrete_exact_par(
    dist: &DiscreteDistribution,
    cost: &CostModel,
    par: &Parallelism,
) -> Result<DpSolution> {
    optimal_discrete_exact_cancellable(dist, cost, par, &CancelToken::none())
}

/// [`optimal_discrete_exact_par`] with cooperative cancellation.
pub fn optimal_discrete_exact_cancellable(
    dist: &DiscreteDistribution,
    cost: &CostModel,
    par: &Parallelism,
    cancel: &CancelToken,
) -> Result<DpSolution> {
    let _wall = rsj_obs::ScopedTimer::global("rsj_core_dp_wall_seconds");
    let _span = rsj_obs::span!("dp.optimal_discrete_exact");
    let v = dist.values();
    let f = dist.probs();
    let s = dist.suffix_masses();
    let a = prefix_weighted_values(v, f);
    record_dp_path(DpPath::ExactForced);
    exact_pass(v, &s, &a, cost, par, cancel)
}

/// Attempts the monotone fast path *without* the exact fallback:
/// `Ok(None)` when the gate declines or a comparison aborts. Benchmarks
/// and the equivalence suite use this to time and verify the envelope
/// pass in isolation; production callers want [`optimal_discrete`],
/// which never returns `None`.
pub fn optimal_discrete_monotone(
    dist: &DiscreteDistribution,
    cost: &CostModel,
    cancel: &CancelToken,
) -> Result<Option<DpSolution>> {
    let _wall = rsj_obs::ScopedTimer::global("rsj_core_dp_wall_seconds");
    let _span = rsj_obs::span!("dp.optimal_discrete_monotone");
    let v = dist.values();
    let f = dist.probs();
    let s = dist.suffix_masses();
    let a = prefix_weighted_values(v, f);
    match dp_monotone::try_solve(v, f, &s, &a, cost, cancel)? {
        Some(m) => {
            if rsj_obs::metrics_enabled() {
                let reg = rsj_obs::global_registry();
                reg.counter("rsj_core_dp_solves_total").inc();
                reg.counter("rsj_core_dp_states_total").add(v.len() as u64);
                reg.counter("rsj_core_dp_monotone_solves_total").inc();
                reg.counter("rsj_core_dp_monotone_evals_total").add(m.evals);
            }
            record_dp_path(DpPath::Monotone);
            solution_from(&m.w, &m.choice, v, &s).map(Some)
        }
        None => {
            if rsj_obs::metrics_enabled() {
                rsj_obs::global_registry()
                    .counter("rsj_core_dp_monotone_declined_total")
                    .inc();
            }
            Ok(None)
        }
    }
}

/// Prefix sums of `fₖ·vₖ`: `a[i] = Σ_{k<i} fₖ·vₖ`. Together with the
/// suffix masses these hoist every distribution evaluation out of the
/// inner loop — each candidate is pure arithmetic on the precomputed
/// arrays (no `cdf`/survival calls per `(i, j)` pair). Shared by both
/// passes so their candidate values are computed from identical inputs.
fn prefix_weighted_values(v: &[f64], f: &[f64]) -> Vec<f64> {
    let n = v.len();
    let mut a = vec![0.0; n + 1];
    for i in 0..n {
        a[i + 1] = a[i] + f[i] * v[i];
    }
    a
}

/// The exact `O(n²)` backward pass over precomputed arrays.
fn exact_pass(
    v: &[f64],
    s: &[f64],
    a: &[f64],
    cost: &CostModel,
    par: &Parallelism,
    cancel: &CancelToken,
) -> Result<DpSolution> {
    let n = v.len();
    // w[i] = Wᵢ = E*ᵢ·Sᵢ; choice[i] = minimizing j.
    let mut w = vec![0.0; n + 1];
    let mut choice = vec![0usize; n];
    for i in (0..n).rev() {
        // Each state costs O(n - i); polling by stride keeps the check
        // off the inner arithmetic while bounding reaction latency to a
        // few thousand transitions.
        if (n - i).is_multiple_of(DP_CANCEL_STRIDE) {
            cancel.check()?;
        }
        let span = n - i;
        let cand_at = |j: usize| {
            (cost.alpha * v[j] + cost.gamma) * s[i]
                + cost.beta * (a[j + 1] - a[i])
                + cost.beta * v[j] * s[j + 1]
                + w[j + 1]
        };
        // Branch on the span alone — never the thread count — so even
        // degenerate inputs (NaN candidates) reduce identically at any
        // parallelism: the pool's single-thread path uses the same chunked
        // fold as its multi-thread path. The range-based reduction shares
        // the slice variant's chunk shape and association exactly, so
        // dropping the per-state index vector changed no output bits.
        let (best, best_j) = if span >= DP_PAR_MIN_SPAN {
            par.try_par_reduce_range(
                span,
                |k| {
                    let j = i + k;
                    (cand_at(j), j)
                },
                |a, b| if b.0 < a.0 { b } else { a },
            )
            .map_err(|e| CoreError::InvalidHeuristicParameter {
                name: "parallelism",
                reason: match e {
                    rsj_par::ParError::WorkerPanicked { .. } => "worker panicked in DP inner loop",
                    _ => "invalid worker-pool configuration",
                },
            })?
            .expect("span >= 1")
        } else {
            let mut best = f64::INFINITY;
            let mut best_j = i;
            for j in i..n {
                let cand = cand_at(j);
                if cand < best {
                    best = cand;
                    best_j = j;
                }
            }
            (best, best_j)
        };
        w[i] = best;
        choice[i] = best_j;
    }

    if rsj_obs::metrics_enabled() {
        let reg = rsj_obs::global_registry();
        reg.counter("rsj_core_dp_solves_total").inc();
        reg.counter("rsj_core_dp_states_total").add(n as u64);
        // The O(n²) inner minimization: Σ_{i} (n - i) transitions.
        reg.counter("rsj_core_dp_transitions_total")
            .add((n as u64 * (n as u64 + 1)) / 2);
    }
    rsj_obs::debug!(
        "dp solved {} states: cost {:.6}",
        n,
        if s[0] > 0.0 { w[0] / s[0] } else { f64::NAN }
    );
    solution_from(&w, &choice, v, s)
}

/// Backtracks the chosen reservations and packages the solution — shared
/// verbatim by both passes so the output shape (and the `w[0] / s[0]`
/// normalization) is computed identically.
fn solution_from(w: &[f64], choice: &[usize], v: &[f64], s: &[f64]) -> Result<DpSolution> {
    let n = v.len();
    let mut indices = Vec::new();
    let mut i = 0;
    while i < n {
        let j = choice[i];
        indices.push(j);
        i = j + 1;
    }
    let values: Vec<f64> = indices.iter().map(|&j| v[j]).collect();
    if values.is_empty() {
        return Err(CoreError::EmptySequence);
    }
    Ok(DpSolution {
        expected_cost: w[0] / s[0],
        values,
        indices,
    })
}

/// Expected cost of an *arbitrary* increasing subsequence of reservation
/// indices for a discrete distribution — the exact discrete analogue of
/// Eq. 4. Used to verify DP optimality in tests and benches.
pub fn discrete_sequence_cost(
    dist: &DiscreteDistribution,
    cost: &CostModel,
    indices: &[usize],
) -> f64 {
    let v = dist.values();
    let f = dist.probs();
    let n = v.len();
    assert!(
        indices.last() == Some(&(n - 1)),
        "sequence must end at the largest support value"
    );
    // E = Σ over jobs k of f_k · C(job k), with C per Eq. 2.
    let mut total = 0.0;
    for k in 0..n {
        let t = v[k];
        let mut c = 0.0;
        for &j in indices {
            if t <= v[j] {
                c += cost.single(v[j], t);
                break;
            }
            c += cost.failed(v[j]);
        }
        total += f[k] * c;
    }
    total
}

/// The §4.2 heuristic for continuous distributions: truncate + discretize
/// (`Equal-time` or `Equal-probability`), solve the discrete instance by DP,
/// and use the resulting reservation values.
///
/// For unbounded supports the DP sequence ends at `vₙ = Q(1-ε)`; per §4.2.2
/// "additional values can be appended … by using other heuristics", the
/// sequence is extended with conditional-mean steps until the tail cutoff.
#[derive(Debug, Clone)]
pub struct DiscretizedDp {
    scheme: DiscretizationScheme,
    n: usize,
    epsilon: f64,
    monotone: bool,
    /// Tail policy for the unbounded-support extension.
    pub policy: TailPolicy,
}

impl DiscretizedDp {
    /// Creates the heuristic; the paper uses `n = 1000`, `ε = 1e-7`. The
    /// monotone fast path is on by default (it changes no output bits);
    /// see [`with_monotone`](Self::with_monotone) for A/B runs.
    pub fn new(scheme: DiscretizationScheme, n: usize, epsilon: f64) -> Result<Self> {
        if n == 0 {
            return Err(CoreError::InvalidHeuristicParameter {
                name: "n",
                reason: "number of discretization samples must be positive",
            });
        }
        if !(0.0..1.0).contains(&epsilon) {
            return Err(CoreError::InvalidHeuristicParameter {
                name: "epsilon",
                reason: "truncation quantile must be in (0, 1)",
            });
        }
        Ok(Self {
            scheme,
            n,
            epsilon,
            monotone: true,
            policy: TailPolicy::default(),
        })
    }

    /// Paper parameters: `n = 1000`, `ε = 1e-7`.
    pub fn paper(scheme: DiscretizationScheme) -> Self {
        Self::new(scheme, 1000, 1e-7).expect("paper parameters are valid")
    }

    /// Enables or disables the `O(n log n)` monotone fast path (on by
    /// default). Disabling forces the exact `O(n²)` pass on every solve —
    /// the output is identical either way; the knob exists for A/B timing
    /// runs and for pinning down a suspected fast-path discrepancy.
    pub fn with_monotone(mut self, on: bool) -> Self {
        self.monotone = on;
        self
    }

    /// Whether the monotone fast path is enabled.
    pub fn monotone(&self) -> bool {
        self.monotone
    }

    /// The configured discretization scheme.
    pub fn scheme(&self) -> DiscretizationScheme {
        self.scheme
    }

    /// The configured sample count.
    pub fn samples(&self) -> usize {
        self.n
    }
}

impl Strategy for DiscretizedDp {
    fn name(&self) -> &str {
        match self.scheme {
            DiscretizationScheme::EqualTime => "Equal-time",
            DiscretizationScheme::EqualProbability => "Equal-probability",
        }
    }

    fn sequence(
        &self,
        dist: &dyn ContinuousDistribution,
        cost: &CostModel,
    ) -> Result<ReservationSequence> {
        self.sequence_cancellable(dist, cost, &CancelToken::none())
    }

    fn sequence_cancellable(
        &self,
        dist: &dyn ContinuousDistribution,
        cost: &CostModel,
        cancel: &CancelToken,
    ) -> Result<ReservationSequence> {
        cancel.check()?;
        // Cached discretization + evaluation table: repeated solves over
        // the same (dist, scheme, n, ε) skip every quantile/cdf call.
        let eval = discretize_eval(dist, self.scheme, self.n, self.epsilon)?;
        let solution = if self.monotone {
            optimal_discrete_cancellable(&eval.discrete, cost, &Parallelism::current(), cancel)?
        } else {
            optimal_discrete_exact_cancellable(
                &eval.discrete,
                cost,
                &Parallelism::current(),
                cancel,
            )?
        };
        let mut times = solution.values;
        let bounded = dist.support().is_bounded();
        if bounded {
            return ReservationSequence::new(times, true);
        }
        // Unbounded: extend past v_n = Q(1-ε) with conditional-mean steps.
        // The DP always ends at v_n, whose survival and conditional mean
        // sit precomputed (exactly — the table's last entry is the same
        // quadrature a direct call performs) in the evaluation table;
        // deeper steps leave the grid and fall back to direct calls.
        let mut t = *times.last().expect("DP sequence non-empty");
        let last = eval.table.len() - 1;
        let mut table_entry = (t == eval.table.points()[last])
            .then(|| (eval.table.survival()[last], eval.table.cond_mean()[last]));
        while times.len() < self.policy.max_len {
            // Off-grid steps cost a quadrature each; stay responsive here.
            cancel.check()?;
            let (survival, cached_cm) = match table_entry.take() {
                Some((survival, cm)) => (survival, Some(cm)),
                None => (dist.survival(t), None),
            };
            if survival < self.policy.tail_cutoff {
                break;
            }
            let cm = cached_cm.unwrap_or_else(|| dist.conditional_mean_above(t));
            let next = if cm > t * (1.0 + 1e-9) { cm } else { t * 1.5 };
            times.push(next);
            t = next;
        }
        ReservationSequence::new(times, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsj_dist::{Exponential, Uniform};

    fn d3() -> DiscreteDistribution {
        DiscreteDistribution::new(vec![1.0, 2.0, 4.0], vec![0.5, 0.3, 0.2]).unwrap()
    }

    #[test]
    fn dp_single_point() {
        let d = DiscreteDistribution::new(vec![3.0], vec![1.0]).unwrap();
        let c = CostModel::new(1.0, 1.0, 0.5).unwrap();
        let sol = optimal_discrete(&d, &c).unwrap();
        assert_eq!(sol.values, vec![3.0]);
        // E* = α·3 + β·3 + γ.
        assert!((sol.expected_cost - 6.5).abs() < 1e-12);
    }

    #[test]
    fn dp_matches_exhaustive_enumeration() {
        // Enumerate all 2^{n-1} increasing subsequences ending at vₙ and
        // check the DP's cost is minimal.
        let d = d3();
        let c = CostModel::new(1.0, 0.5, 0.25).unwrap();
        let sol = optimal_discrete(&d, &c).unwrap();
        let n = d.len();
        let mut best = f64::INFINITY;
        for mask in 0..(1u32 << (n - 1)) {
            let mut indices: Vec<usize> = (0..n - 1).filter(|&i| mask & (1 << i) != 0).collect();
            indices.push(n - 1);
            let cost_val = discrete_sequence_cost(&d, &c, &indices);
            best = best.min(cost_val);
        }
        assert!(
            (sol.expected_cost - best).abs() < 1e-12,
            "dp {} vs exhaustive {best}",
            sol.expected_cost
        );
        // Cross-check the DP's own sequence cost agrees with its value.
        let direct = discrete_sequence_cost(&d, &c, &sol.indices);
        assert!((direct - sol.expected_cost).abs() < 1e-12);
    }

    #[test]
    fn dp_reservation_only_picks_last_only_when_cheap() {
        // RESERVATIONONLY with near-uniform masses on close values: one
        // big reservation is optimal.
        let d = DiscreteDistribution::new(vec![9.0, 10.0], vec![0.5, 0.5]).unwrap();
        let c = CostModel::reservation_only();
        let sol = optimal_discrete(&d, &c).unwrap();
        // Option A: reserve 10 once → cost 10.
        // Option B: reserve 9 then 10 → 9 + 0.5·10 = 14.
        assert_eq!(sol.values, vec![10.0]);
        assert!((sol.expected_cost - 10.0).abs() < 1e-12);
    }

    #[test]
    fn dp_splits_when_gap_is_large() {
        // A tiny value with high mass and a huge value with low mass: two
        // reservations win under RESERVATIONONLY.
        let d = DiscreteDistribution::new(vec![1.0, 100.0], vec![0.99, 0.01]).unwrap();
        let c = CostModel::reservation_only();
        let sol = optimal_discrete(&d, &c).unwrap();
        // Reserve 1 then 100: 1 + 0.01·100 = 2 ≪ 100.
        assert_eq!(sol.values, vec![1.0, 100.0]);
        assert!((sol.expected_cost - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dp_always_ends_at_max_value() {
        let d = d3();
        for cost in [
            CostModel::reservation_only(),
            CostModel::new(0.95, 1.0, 1.05).unwrap(),
            CostModel::new(2.0, 0.0, 10.0).unwrap(),
        ] {
            let sol = optimal_discrete(&d, &cost).unwrap();
            assert_eq!(*sol.values.last().unwrap(), 4.0);
        }
    }

    #[test]
    fn heuristic_on_uniform_reproduces_theorem4() {
        // Discretized Uniform + DP must find the single reservation (b)
        // (Table 2: normalized cost 1.33 for both schemes).
        let d = Uniform::new(10.0, 20.0).unwrap();
        let c = CostModel::reservation_only();
        for scheme in [
            DiscretizationScheme::EqualTime,
            DiscretizationScheme::EqualProbability,
        ] {
            let h = DiscretizedDp::new(scheme, 500, 1e-7).unwrap();
            let s = h.sequence(&d, &c).unwrap();
            assert_eq!(s.times(), &[20.0], "{scheme:?}");
            assert!(s.is_complete());
        }
    }

    #[test]
    fn heuristic_on_exponential_extends_past_truncation() {
        let d = Exponential::new(1.0).unwrap();
        let c = CostModel::reservation_only();
        let h = DiscretizedDp::new(DiscretizationScheme::EqualProbability, 200, 1e-5).unwrap();
        let s = h.sequence(&d, &c).unwrap();
        // Truncation point is Q(1 - 1e-5) ≈ 11.5; the extension must go
        // deeper (survival < 1e-12 ⇒ t > 27.6).
        assert!(s.last() > 20.0, "last {}", s.last());
        assert!(d.survival(s.last()) < 1e-11);
        for w in s.times().windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(DiscretizedDp::new(DiscretizationScheme::EqualTime, 0, 1e-7).is_err());
        assert!(DiscretizedDp::new(DiscretizationScheme::EqualTime, 10, 1.5).is_err());
    }

    /// The pre-EvalTable reference implementation of
    /// [`DiscretizedDp::sequence`]: fresh discretization, serial DP, and
    /// direct `survival`/`conditional_mean_above` calls in the tail
    /// extension. Kept in tests as the before/after oracle for the
    /// grid-hoisting change.
    fn sequence_reference(
        dp: &DiscretizedDp,
        dist: &dyn rsj_dist::ContinuousDistribution,
        cost: &CostModel,
    ) -> ReservationSequence {
        let discrete = rsj_dist::discretize(dist, dp.scheme(), dp.samples(), 1e-7).unwrap();
        let solution =
            optimal_discrete_par(&discrete, cost, &rsj_par::Parallelism::serial()).unwrap();
        let mut times = solution.values;
        if dist.support().is_bounded() {
            return ReservationSequence::new(times, true).unwrap();
        }
        let mut t = *times.last().unwrap();
        while dist.survival(t) >= dp.policy.tail_cutoff && times.len() < dp.policy.max_len {
            let cm = dist.conditional_mean_above(t);
            let next = if cm > t * (1.0 + 1e-9) { cm } else { t * 1.5 };
            times.push(next);
            t = next;
        }
        ReservationSequence::new(times, false).unwrap()
    }

    #[test]
    fn eval_table_path_is_bit_identical_to_direct_path() {
        // The satellite guarantee for the cdf/survival hoisting: the
        // cached-table strategy equals the direct-evaluation strategy
        // bit-for-bit, bounded and unbounded supports alike.
        rsj_dist::clear_eval_cache();
        let c = CostModel::new(0.95, 1.0, 1.05).unwrap();
        let dists: Vec<Box<dyn rsj_dist::ContinuousDistribution>> = vec![
            Box::new(Exponential::new(1.0).unwrap()),
            Box::new(rsj_dist::LogNormal::new(3.0, 0.5).unwrap()),
            Box::new(Uniform::new(10.0, 20.0).unwrap()),
        ];
        for scheme in [
            DiscretizationScheme::EqualTime,
            DiscretizationScheme::EqualProbability,
        ] {
            let dp = DiscretizedDp::new(scheme, 300, 1e-7).unwrap();
            for dist in &dists {
                let reference = sequence_reference(&dp, dist.as_ref(), &c);
                // Run the table path twice: cold cache and warm cache.
                for pass in ["cold", "warm"] {
                    let cached = dp.sequence(dist.as_ref(), &c).unwrap();
                    assert_eq!(
                        reference.times().len(),
                        cached.times().len(),
                        "{scheme:?}/{}/{pass}",
                        dist.name()
                    );
                    for (a, b) in reference.times().iter().zip(cached.times()) {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "{scheme:?}/{}/{pass}: {a} vs {b}",
                            dist.name()
                        );
                    }
                }
            }
        }
        rsj_dist::clear_eval_cache();
    }

    #[test]
    fn parallel_dp_matches_serial_bit_for_bit() {
        // Large enough that inner spans exceed DP_PAR_MIN_SPAN and the
        // chunked min-reduction actually runs multi-threaded. Forces the
        // exact pass: the monotone fast path never uses the pool.
        let d = rsj_dist::discretize(
            &Exponential::new(1.0).unwrap(),
            DiscretizationScheme::EqualProbability,
            6000,
            1e-7,
        )
        .unwrap();
        let c = CostModel::new(0.95, 1.0, 1.05).unwrap();
        let serial = optimal_discrete_exact_par(&d, &c, &rsj_par::Parallelism::serial()).unwrap();
        let par4 =
            optimal_discrete_exact_par(&d, &c, &rsj_par::Parallelism::new(4).unwrap()).unwrap();
        assert_eq!(serial.indices, par4.indices);
        assert_eq!(serial.expected_cost.to_bits(), par4.expected_cost.to_bits());
        for (a, b) in serial.values.iter().zip(&par4.values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // The auto-dispatch path (which takes the monotone branch here)
        // produces the very same bits.
        let auto = optimal_discrete(&d, &c).unwrap();
        assert_eq!(auto.indices, serial.indices);
        assert_eq!(auto.expected_cost.to_bits(), serial.expected_cost.to_bits());
    }

    #[test]
    fn monotone_knob_changes_no_bits() {
        let d = Exponential::new(1.0).unwrap();
        let c = CostModel::new(0.95, 1.0, 1.05).unwrap();
        let fast = DiscretizedDp::new(DiscretizationScheme::EqualProbability, 400, 1e-7).unwrap();
        let slow = fast.clone().with_monotone(false);
        assert!(fast.monotone() && !slow.monotone());
        let a = fast.sequence(&d, &c).unwrap();
        let b = slow.sequence(&d, &c).unwrap();
        assert_eq!(a.times().len(), b.times().len());
        for (x, y) in a.times().iter().zip(b.times()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
