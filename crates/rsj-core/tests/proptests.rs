//! Property-based tests of rsj-core invariants beyond the unit suites:
//! recurrence structure, risk-profile consistency, DP dominance relations
//! and checkpoint accounting.

use proptest::prelude::*;
use rsj_core::extensions::{optimal_discrete_checkpointed, CheckpointConfig};
use rsj_core::heuristics::Strategy as _;
use rsj_core::{
    expected_cost_analytic, optimal_discrete, risk_profile, sequence_from_t1, CostModel,
    MeanByMean, RecurrenceConfig,
};
use rsj_dist::{ContinuousDistribution, DiscreteDistribution, Exponential, LogNormal};

fn discrete(values: Vec<f64>, weights: Vec<f64>) -> Option<DiscreteDistribution> {
    let mut v = values;
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
    let n = v.len().min(weights.len());
    if n < 2 {
        return None;
    }
    DiscreteDistribution::new(v[..n].to_vec(), weights[..n].to_vec()).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Valid recurrence sequences are strictly increasing and cover the
    /// configured horizon.
    #[test]
    fn recurrence_output_is_well_formed(
        t1 in 0.05..4.0f64,
        lambda in 0.3..3.0f64,
        beta in 0.0..1.5f64,
        gamma in 0.0..1.0f64,
    ) {
        let d = Exponential::new(lambda).unwrap();
        let c = CostModel::new(1.0, beta, gamma).unwrap();
        let cfg = RecurrenceConfig::default();
        if let Ok(seq) = sequence_from_t1(&d, &c, t1, &cfg) {
            for w in seq.times().windows(2) {
                prop_assert!(w[1] > w[0]);
            }
            prop_assert!(seq.last() >= d.quantile(cfg.coverage_quantile) * (1.0 - 1e-9));
            // Tail covered to the cutoff for unbounded supports.
            prop_assert!(d.survival(seq.last()) < cfg.tail_cutoff * 10.0);
        }
    }

    /// Risk-profile bracket probabilities sum to ~1 and the profile's
    /// expected cost matches the Eq. 4 series.
    #[test]
    fn risk_profile_is_a_distribution(
        (mu, sigma) in (-0.5..3.0f64, 0.2..0.9f64),
        beta in 0.0..1.5f64,
    ) {
        let d = LogNormal::new(mu, sigma).unwrap();
        let c = CostModel::new(1.0, beta, 0.1).unwrap();
        let seq = MeanByMean::default().sequence(&d, &c).unwrap();
        let p = risk_profile(&seq, &d, &c);
        let mass: f64 = p.brackets().iter().map(|b| b.probability).sum();
        prop_assert!((mass - 1.0).abs() < 1e-9, "mass {mass}");
        let e_profile = p.expected_cost(&d);
        let e_series = expected_cost_analytic(&seq, &d, &c);
        prop_assert!((e_profile - e_series).abs() / e_series < 1e-6);
        // Quantiles are nondecreasing in q.
        let mut prev = f64::NEG_INFINITY;
        for q in [0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
            let v = p.cost_quantile(&d, q);
            prop_assert!(v >= prev - 1e-9);
            prev = v;
        }
    }

    /// Free checkpoints never lose to the plain optimum; expensive
    /// checkpoints never beat free ones.
    #[test]
    fn checkpoint_dp_dominance(
        values in proptest::collection::vec(0.1..80.0f64, 3..8),
        weights in proptest::collection::vec(0.05..1.0f64, 3..8),
        alpha in 0.3..2.0f64,
        beta in 0.0..1.5f64,
        overhead in 0.01..5.0f64,
    ) {
        let Some(d) = discrete(values, weights) else { return Ok(()) };
        let c = CostModel::new(alpha, beta, 0.2).unwrap();
        let plain = optimal_discrete(&d, &c).unwrap().expected_cost;
        let free = optimal_discrete_checkpointed(
            &d, &c, &CheckpointConfig::new(0.0, 0.0).unwrap()).unwrap().expected_cost;
        let priced = optimal_discrete_checkpointed(
            &d, &c, &CheckpointConfig::new(overhead, overhead).unwrap()).unwrap().expected_cost;
        prop_assert!(free <= plain + 1e-9, "free checkpoints {free} vs plain {plain}");
        prop_assert!(free <= priced + 1e-9, "free {free} vs priced {priced}");
    }

    /// The checkpoint plan's executable accounting is internally
    /// consistent: running the exact support values reproduces the DP
    /// value when weighted by the probabilities.
    #[test]
    fn checkpoint_plan_accounting_consistent(
        values in proptest::collection::vec(0.5..40.0f64, 2..6),
        weights in proptest::collection::vec(0.1..1.0f64, 2..6),
        overhead in 0.0..2.0f64,
    ) {
        let Some(d) = discrete(values, weights) else { return Ok(()) };
        let c = CostModel::new(1.0, 0.5, 0.1).unwrap();
        let ck = CheckpointConfig::new(overhead, overhead).unwrap();
        let sol = optimal_discrete_checkpointed(&d, &c, &ck).unwrap();
        let weighted: f64 = d
            .values()
            .iter()
            .zip(d.probs())
            .map(|(&x, &p)| p * sol.run_job(&c, &ck, x).cost)
            .sum();
        prop_assert!(
            (weighted - sol.expected_cost).abs() / sol.expected_cost < 1e-9,
            "weighted {weighted} vs dp {}",
            sol.expected_cost
        );
    }

    /// Adding a superfluous early reservation never helps (the Theorem 4
    /// proof's suppression argument, generalized numerically).
    #[test]
    fn suppressing_a_prefix_element_helps_or_ties(
        (mu, sigma) in (0.0..3.0f64, 0.2..0.8f64),
        cut in 0.05..0.5f64,
    ) {
        let d = LogNormal::new(mu, sigma).unwrap();
        let c = CostModel::reservation_only();
        let seq = MeanByMean::default().sequence(&d, &c).unwrap();
        // Insert an extra reservation below t₁.
        let mut with_extra = vec![seq.times()[0] * cut];
        with_extra.extend_from_slice(seq.times());
        let extended =
            rsj_core::ReservationSequence::new(with_extra, seq.is_complete()).unwrap();
        let base = expected_cost_analytic(&seq, &d, &c);
        let padded = expected_cost_analytic(&extended, &d, &c);
        prop_assert!(padded >= base - 1e-9, "padding helped: {padded} < {base}");
    }
}
