//! Property tests of the censored-observation machinery (system S19):
//! with zero censoring every censored MLE reduces to the uncensored fit,
//! and the Kaplan–Meier estimator stays a valid survival curve under
//! arbitrary censoring patterns.

use proptest::prelude::*;
use rsj_dist::{
    fit_exponential_censored, fit_lognormal, fit_lognormal_censored, fit_weibull_censored,
    KaplanMeier, Observation,
};

fn exact_obs(values: &[f64]) -> Vec<Observation> {
    values.iter().map(|&v| Observation::exact(v)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// With zero censored observations the censored LogNormal MLE is the
    /// plain `fit_lognormal` answer to 1e-9.
    #[test]
    fn uncensored_lognormal_reduction(
        values in proptest::collection::vec(0.05..50.0f64, 3..40)
    ) {
        let censored = fit_lognormal_censored(&exact_obs(&values)).unwrap();
        let plain = fit_lognormal(&values).unwrap();
        prop_assert!((censored.dist.mu() - plain.mu).abs() <= 1e-9,
            "mu {} vs {}", censored.dist.mu(), plain.mu);
        prop_assert!((censored.dist.sigma() - plain.sigma).abs() <= 1e-9,
            "sigma {} vs {}", censored.dist.sigma(), plain.sigma);
        prop_assert_eq!(censored.n_censored, 0);
    }

    /// With zero censoring the Exponential MLE is the closed form n/Σx.
    #[test]
    fn uncensored_exponential_reduction(
        values in proptest::collection::vec(0.05..50.0f64, 2..40)
    ) {
        let fit = fit_exponential_censored(&exact_obs(&values)).unwrap();
        let lambda = values.len() as f64 / values.iter().sum::<f64>();
        prop_assert!((fit.dist.lambda() - lambda).abs() <= 1e-9 * lambda,
            "{} vs {}", fit.dist.lambda(), lambda);
    }

    /// With zero censoring the Weibull estimate satisfies the uncensored
    /// maximum-likelihood stationarity conditions: the profile equation
    /// A(κ̂) − 1/κ̂ − mean(ln x) = 0 and λ̂^κ̂ = Σ x^κ̂ / n.
    #[test]
    fn uncensored_weibull_stationarity(
        values in proptest::collection::vec(0.2..20.0f64, 5..40)
    ) {
        // Skip near-degenerate draws the solver rightfully refuses.
        prop_assume!(values.iter().any(|&v| (v - values[0]).abs() > 1e-6));
        let fit = fit_weibull_censored(&exact_obs(&values)).unwrap();
        let (kappa, lambda) = (fit.dist.kappa(), fit.dist.lambda());
        let n = values.len() as f64;
        let sum_k: f64 = values.iter().map(|&x| x.powf(kappa)).sum();
        let sum_k_ln: f64 = values.iter().map(|&x| x.powf(kappa) * x.ln()).sum();
        let mean_ln: f64 = values.iter().map(|&x| x.ln()).sum::<f64>() / n;
        let g = sum_k_ln / sum_k - 1.0 / kappa - mean_ln;
        prop_assert!(g.abs() <= 1e-6, "profile equation residual {g}");
        let rel = (lambda.powf(kappa) - sum_k / n).abs() / (sum_k / n);
        prop_assert!(rel <= 1e-9, "scale equation residual {rel}");
    }

    /// Kaplan–Meier survival stays in [0,1] and is monotone non-increasing
    /// under arbitrary censoring patterns, including at ties.
    #[test]
    fn km_survival_is_monotone_in_unit_interval(
        data in proptest::collection::vec((0.01..100.0f64, 0u32..2), 1..60)
    ) {
        let obs: Vec<Observation> = data
            .iter()
            .map(|&(v, c)| if c == 1 { Observation::censored(v) } else { Observation::exact(v) })
            .collect();
        let km = KaplanMeier::fit(&obs).unwrap();
        let max = data.iter().map(|&(v, _)| v).fold(0.0f64, f64::max);
        prop_assert_eq!(km.survival(0.0), 1.0);
        let mut prev = 1.0;
        for k in 0..=200 {
            let t = max * 1.2 * k as f64 / 200.0;
            let s = km.survival(t);
            prop_assert!((0.0..=1.0).contains(&s), "S({t}) = {s} out of range");
            prop_assert!(s <= prev + 1e-12, "S({t}) = {s} rose above {prev}");
            prev = s;
        }
    }

    /// Duplicating every observation leaves the Kaplan–Meier curve
    /// unchanged: the estimator depends on proportions at risk, not counts.
    #[test]
    fn km_is_invariant_under_sample_duplication(
        data in proptest::collection::vec((0.01..100.0f64, 0u32..2), 1..30)
    ) {
        let obs: Vec<Observation> = data
            .iter()
            .map(|&(v, c)| if c == 1 { Observation::censored(v) } else { Observation::exact(v) })
            .collect();
        let doubled: Vec<Observation> = obs.iter().chain(obs.iter()).copied().collect();
        let km1 = KaplanMeier::fit(&obs).unwrap();
        let km2 = KaplanMeier::fit(&doubled).unwrap();
        for &(v, _) in &data {
            for t in [v * 0.5, v, v * 1.5] {
                prop_assert!((km1.survival(t) - km2.survival(t)).abs() <= 1e-12);
            }
        }
    }
}
