//! Empirical distributions built from observed runtimes (system S4).
//!
//! Used by the trace pipeline (`rsj-traces`): an archive of job runtimes is
//! loaded into an [`Empirical`] distribution for descriptive statistics and
//! Kolmogorov–Smirnov comparison against a fitted parametric law.

use crate::error::{DistError, Result};
use crate::traits::ContinuousDistribution;

/// Empirical distribution of a sample: step-function CDF, order-statistic
/// quantiles and plug-in moments.
#[derive(Debug, Clone, PartialEq)]
pub struct Empirical {
    /// Sorted observations.
    sorted: Vec<f64>,
}

impl Empirical {
    /// Builds an empirical distribution from a sample of nonnegative,
    /// finite runtimes. The sample is copied and sorted.
    pub fn from_samples(samples: &[f64]) -> Result<Self> {
        if samples.is_empty() {
            return Err(DistError::DegenerateSample {
                reason: "empty sample",
            });
        }
        if samples.iter().any(|x| !x.is_finite() || *x < 0.0) {
            return Err(DistError::DegenerateSample {
                reason: "sample contains negative or non-finite values",
            });
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite by validation"));
        Ok(Self { sorted })
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted observations.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }

    /// Empirical CDF `F̂(t) = #{xᵢ ≤ t} / n`.
    pub fn cdf(&self, t: f64) -> f64 {
        let n = self.sorted.len();
        let idx = self.sorted.partition_point(|&x| x <= t);
        idx as f64 / n as f64
    }

    /// Empirical quantile (inverse CDF, lower order statistic):
    /// `Q̂(p) = x_{⌈np⌉}`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile: p out of [0,1]: {p}");
        let n = self.sorted.len();
        if p == 0.0 {
            return self.sorted[0];
        }
        let k = ((p * n as f64).ceil() as usize).clamp(1, n);
        self.sorted[k - 1]
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Unbiased sample variance (`n-1` denominator); 0 for singletons.
    pub fn variance(&self) -> f64 {
        let n = self.sorted.len();
        if n < 2 {
            return 0.0;
        }
        let m = self.mean();
        self.sorted.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (n - 1) as f64
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum observation.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// Kolmogorov–Smirnov statistic `D_n = sup_t |F̂(t) - F(t)|` against a
    /// continuous reference distribution.
    pub fn ks_statistic(&self, reference: &dyn ContinuousDistribution) -> f64 {
        let n = self.sorted.len() as f64;
        let mut d: f64 = 0.0;
        for (i, &x) in self.sorted.iter().enumerate() {
            let f = reference.cdf(x);
            let ecdf_hi = (i + 1) as f64 / n;
            let ecdf_lo = i as f64 / n;
            d = d.max((ecdf_hi - f).abs()).max((f - ecdf_lo).abs());
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::continuous::{Exponential, Uniform};
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_samples() {
        assert!(Empirical::from_samples(&[]).is_err());
        assert!(Empirical::from_samples(&[1.0, -2.0]).is_err());
        assert!(Empirical::from_samples(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn basic_statistics() {
        let e = Empirical::from_samples(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(e.len(), 3);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 3.0);
        assert!((e.mean() - 2.0).abs() < 1e-15);
        assert!((e.variance() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn cdf_step_function() {
        let e = Empirical::from_samples(&[1.0, 2.0, 2.0, 4.0]).unwrap();
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.0), 0.75);
        assert_eq!(e.cdf(3.9), 0.75);
        assert_eq!(e.cdf(4.0), 1.0);
    }

    #[test]
    fn quantile_order_statistics() {
        let e = Empirical::from_samples(&[10.0, 20.0, 30.0, 40.0]).unwrap();
        assert_eq!(e.quantile(0.0), 10.0);
        assert_eq!(e.quantile(0.25), 10.0);
        assert_eq!(e.quantile(0.5), 20.0);
        assert_eq!(e.quantile(1.0), 40.0);
    }

    #[test]
    fn ks_small_for_matching_law() {
        let dist = Exponential::new(1.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let samples: Vec<f64> = (0..5000).map(|_| dist.sample(&mut rng)).collect();
        let e = Empirical::from_samples(&samples).unwrap();
        let d = e.ks_statistic(&dist);
        // 99.9% KS critical value ≈ 1.95/√n ≈ 0.0276 for n = 5000.
        assert!(d < 0.0276, "KS statistic {d} too large for matching law");
    }

    #[test]
    fn ks_large_for_wrong_law() {
        let gen = Exponential::new(1.0).unwrap();
        let wrong = Uniform::new(10.0, 20.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let samples: Vec<f64> = (0..1000).map(|_| gen.sample(&mut rng)).collect();
        let e = Empirical::from_samples(&samples).unwrap();
        assert!(e.ks_statistic(&wrong) > 0.5);
    }
}
