//! Theorem 4: for `Uniform(a, b)` the optimal strategy is the single
//! reservation `S° = (b)`, for any cost parameters `α, β, γ`.

use crate::cost::CostModel;
use crate::error::Result;
use crate::sequence::ReservationSequence;
use rsj_dist::Uniform;

/// The optimal sequence `(b)` for a uniform distribution.
pub fn uniform_optimal_sequence(dist: &Uniform) -> Result<ReservationSequence> {
    ReservationSequence::single(dist.upper())
}

/// Expected cost of the optimal single reservation:
/// `E(S°) = α·b + β·(a+b)/2 + γ`.
pub fn uniform_optimal_cost(dist: &Uniform, cost: &CostModel) -> f64 {
    cost.alpha * dist.upper() + cost.beta * (dist.lower() + dist.upper()) / 2.0 + cost.gamma
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::expected_cost_analytic;

    #[test]
    fn closed_form_matches_series() {
        let d = Uniform::new(10.0, 20.0).unwrap();
        for cost in [
            CostModel::reservation_only(),
            CostModel::new(0.95, 1.0, 1.05).unwrap(),
            CostModel::new(2.0, 0.5, 3.0).unwrap(),
        ] {
            let s = uniform_optimal_sequence(&d).unwrap();
            let series = expected_cost_analytic(&s, &d, &cost);
            let closed = uniform_optimal_cost(&d, &cost);
            assert!(
                (series - closed).abs() < 1e-10,
                "series {series} vs closed {closed}"
            );
        }
    }

    #[test]
    fn single_reservation_beats_two_step_strategies() {
        // Theorem 4's statement: (b) is optimal; in particular it beats the
        // intuitive ((a+b)/2, b) for any parameters.
        let d = Uniform::new(10.0, 20.0).unwrap();
        for cost in [
            CostModel::reservation_only(),
            CostModel::new(1.0, 1.0, 0.0).unwrap(),
            CostModel::new(1.0, 0.0, 5.0).unwrap(),
            CostModel::new(0.5, 2.0, 1.0).unwrap(),
        ] {
            let optimal = uniform_optimal_cost(&d, &cost);
            let two_step = ReservationSequence::new(vec![15.0, 20.0], true).unwrap();
            let alt = expected_cost_analytic(&two_step, &d, &cost);
            assert!(
                optimal < alt,
                "α={} β={} γ={}: optimal {optimal} vs two-step {alt}",
                cost.alpha,
                cost.beta,
                cost.gamma
            );
        }
    }

    #[test]
    fn suppressing_t1_always_helps() {
        // The proof's core step: dropping the first element of any
        // multi-step sequence strictly lowers the cost.
        let d = Uniform::new(10.0, 20.0).unwrap();
        let cost = CostModel::new(1.0, 1.0, 1.0).unwrap();
        let with_t1 = ReservationSequence::new(vec![12.0, 16.0, 20.0], true).unwrap();
        let without = ReservationSequence::new(vec![16.0, 20.0], true).unwrap();
        assert!(
            expected_cost_analytic(&without, &d, &cost)
                < expected_cost_analytic(&with_t1, &d, &cost)
        );
    }

    #[test]
    fn normalized_cost_is_4_over_3_reservation_only() {
        // Table 2's Uniform row: 1.33.
        let d = Uniform::new(10.0, 20.0).unwrap();
        let c = CostModel::reservation_only();
        use rsj_dist::ContinuousDistribution;
        let ratio = uniform_optimal_cost(&d, &c) / c.omniscient(&d);
        assert!((ratio - 4.0 / 3.0).abs() < 1e-12);
        let _ = d.mean();
    }
}
