//! Criterion bench `par_scaling`: throughput of the seeded batch
//! simulator ([`rsj_sim::run_batch_seeded`]) on the `rsj-par` worker pool
//! at 1, 2 and 4 threads. The per-job substream seeding makes every
//! thread count produce bit-for-bit identical statistics, so this bench
//! measures pure scheduling overhead and scaling — on a multi-core box
//! jobs/s should grow with the thread count; on a single hardware thread
//! it quantifies the (small) cost of the chunked pool vs a serial loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rsj_core::{CostModel, Strategy};
use rsj_dist::LogNormal;
use rsj_par::Parallelism;
use rsj_sim::run_batch_seeded;

const JOBS: usize = 20_000;

fn bench_par_scaling(c: &mut Criterion) {
    let dist = LogNormal::new(3.0, 0.5).unwrap();
    let cost = CostModel::reservation_only();
    let seq = rsj_core::MeanDoubling::default()
        .sequence(&dist, &cost)
        .unwrap();

    let mut group = c.benchmark_group("batch_sim_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(JOBS as u64));
    for threads in [1usize, 2, 4] {
        let par = Parallelism::new(threads).unwrap();
        group.bench_with_input(BenchmarkId::new("threads", threads), &par, |b, par| {
            b.iter(|| run_batch_seeded(&seq, &dist, &cost, JOBS, 11, par).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_par_scaling);
criterion_main!(benches);
