//! The full NeuroHPC pipeline (§5.3): archived neuroscience runtimes →
//! LogNormal fit (Figure 1) → reservation strategy under the HPC
//! waiting-time cost model → expected turnaround.
//!
//! The Vanderbilt archive is private, so the archive is synthesized from
//! the published VBMQA fit (see rsj-traces docs) — the pipeline downstream
//! of the archive is exactly the paper's.
//!
//! Run with: `cargo run --release --example neuroscience_pipeline`

use rand::SeedableRng;
use reservation_strategies::prelude::*;

fn main() {
    // 1. Load (here: synthesize) the runtime archive — 5000 VBMQA runs.
    let mut rng = rand::rngs::StdRng::seed_from_u64(2019);
    let archive = synthesize(&SynthConfig::vbmqa(5000), &mut rng);
    println!(
        "archive: {} runs of {:?}",
        archive.records.len(),
        archive.apps()
    );

    // 2. Fit a LogNormal per application (Figure 1's procedure).
    let reports = fit_archive(&archive).expect("clean archive");
    for r in &reports {
        println!(
            "{}: LogNormal(μ={:.4}, σ={:.4}), mean {:.1}s, std {:.1}s, KS {:.4} ({})",
            r.app,
            r.mu,
            r.sigma,
            r.natural_mean,
            r.natural_std,
            r.ks_statistic,
            if r.acceptable() {
                "fit OK"
            } else {
                "fit rejected"
            }
        );
    }

    // 3. Build the NeuroHPC scenario: runtimes in hours, cost = queue wait
    //    (α·R + γ from the Intrepid fit of Figure 2) + execution time.
    let cost = CostModel::neuro_hpc(0.95, 1.05).unwrap();
    let scenario = NeuroHpcScenario::from_archive(&archive, "VBMQA", cost).expect("VBMQA present");
    println!(
        "\nNeuroHPC scenario: {} (hours), cost = {:.2}·R + min(R,t) + {:.2}",
        scenario.dist.name(),
        scenario.cost.alpha,
        scenario.cost.gamma
    );

    // 4. Compute reservation strategies and compare.
    let omniscient = scenario.cost.omniscient(&scenario.dist);
    println!("omniscient turnaround: {:.3} h\n", omniscient);
    let heuristics: Vec<Box<dyn Strategy>> = vec![
        Box::new(BruteForce::new(2000, 1000, EvalMethod::Analytic, 9).unwrap()),
        Box::new(DiscretizedDp::paper(DiscretizationScheme::EqualProbability)),
        Box::new(MeanByMean::default()),
        Box::new(MeanDoubling::default()),
    ];
    for h in &heuristics {
        let seq = h.sequence(&scenario.dist, &scenario.cost).unwrap();
        let expected = expected_cost_analytic(&seq, &scenario.dist, &scenario.cost);
        println!(
            "{:<20} expected turnaround {:.3} h ({:.2}× omniscient), first request {:.3} h",
            h.name(),
            expected,
            expected / omniscient,
            seq.first()
        );
    }

    // 5. Sanity: walltime advice for the sysadmin.
    let dp = DiscretizedDp::paper(DiscretizationScheme::EqualProbability);
    let seq = dp.sequence(&scenario.dist, &scenario.cost).unwrap();
    println!(
        "\nrecommended request ladder (hours): {:?}",
        seq.times()
            .iter()
            .take(4)
            .map(|t| (t * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
}
