//! Table 3: the best `t₁ᵇᶠ` found by Brute-Force versus probing `t₁` at
//! the distribution's 0.25/0.5/0.75/0.99 quantiles (invalid candidates
//! print `-`, the paper's dashes).

use crate::report::Table;
use crate::scenarios::{paper_distributions, Fidelity};
use rsj_core::{BruteForce, CostModel, EvalMethod};
use rsj_par::Parallelism;

/// Quantiles probed by the paper.
pub const QUANTILES: [f64; 4] = [0.25, 0.5, 0.75, 0.99];

/// One distribution's Table 3 row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Distribution label.
    pub distribution: String,
    /// Best first reservation found.
    pub t1_bf: f64,
    /// Its normalized cost.
    pub cost_bf: f64,
    /// Per-quantile `(t₁, normalized cost or None)` probes.
    pub probes: Vec<(f64, Option<f64>)>,
}

/// Computes the Table 3 data.
pub fn compute(fidelity: Fidelity, seed: u64) -> Vec<Row> {
    let cost = CostModel::reservation_only();
    let dists = paper_distributions();
    Parallelism::current().par_map(&dists, |i, nd| {
        let bf = BruteForce::new(
            fidelity.grid(),
            fidelity.samples(),
            EvalMethod::MonteCarlo,
            seed.wrapping_add(i as u64),
        )
        .expect("valid parameters");
        let best = bf
            .best(nd.dist.as_ref(), &cost)
            .expect("every Table 1 distribution has a valid candidate");
        let probes = QUANTILES
            .iter()
            .map(|&q| {
                let t1 = nd.dist.quantile(q);
                (t1, bf.score_t1(nd.dist.as_ref(), &cost, t1))
            })
            .collect();
        Row {
            distribution: nd.name.to_string(),
            t1_bf: best.t1,
            cost_bf: best.normalized_cost,
            probes,
        }
    })
}

/// Renders the paper's layout.
pub fn render(rows: &[Row]) -> Result<Table, crate::report::ReportError> {
    let mut header = vec!["Distribution".to_string(), "t1_bf (cost)".to_string()];
    header.extend(QUANTILES.iter().map(|q| format!("Q({q})")));
    let mut table = Table::new(header);
    for row in rows {
        let mut cells = vec![
            row.distribution.clone(),
            format!("{:.2} ({:.2})", row.t1_bf, row.cost_bf),
        ];
        for (t1, c) in &row.probes {
            match c {
                Some(v) => cells.push(format!("{t1:.2} ({v:.2})")),
                None => cells.push(format!("{t1:.2} (-)")),
            }
        }
        table.push_row(cells)?;
    }
    Ok(table)
}

/// Runs the experiment and writes `results/table3.{md,csv}`.
pub fn emit(fidelity: Fidelity, seed: u64) -> std::io::Result<Vec<Row>> {
    let rows = compute(fidelity, seed);
    render(&rows)?.emit(
        "table3",
        "Table 3 — Brute-Force best t1 vs quantile probes, RESERVATIONONLY ('-' = invalid sequence)",
    )?;
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_shape() {
        let rows = compute(Fidelity::Quick, 11);
        assert_eq!(rows.len(), 9);
        for r in &rows {
            assert_eq!(r.probes.len(), 4);
            assert!(r.cost_bf >= 0.95, "{}: {}", r.distribution, r.cost_bf);
        }
    }

    #[test]
    fn uniform_probes_are_all_invalid() {
        // Table 3's Uniform row: every quantile probe shows '-'.
        let rows = compute(Fidelity::Quick, 11);
        let uniform = rows.iter().find(|r| r.distribution == "Uniform").unwrap();
        for (t1, c) in &uniform.probes {
            assert!(c.is_none(), "t1={t1} should be invalid for Uniform");
        }
        // And the best t₁ is at the top of the grid, ≈ b = 20.
        assert!(
            (uniform.t1_bf - 20.0).abs() < 0.1,
            "t1_bf {}",
            uniform.t1_bf
        );
    }

    #[test]
    fn valid_probes_never_beat_brute_force_badly() {
        let rows = compute(Fidelity::Quick, 11);
        for r in &rows {
            for (t1, c) in &r.probes {
                if let Some(v) = c {
                    assert!(
                        *v >= r.cost_bf * 0.9,
                        "{}: probe {t1} = {v} far below bf {}",
                        r.distribution,
                        r.cost_bf
                    );
                }
            }
        }
    }

    #[test]
    fn exponential_q99_is_expensive() {
        // Table 3: Exponential at Q(0.99) = 4.61 costs 4.83 ≫ optimum 2.13.
        let rows = compute(Fidelity::Quick, 11);
        let exp = rows
            .iter()
            .find(|r| r.distribution == "Exponential")
            .unwrap();
        let (t1, c) = exp.probes[3];
        assert!((t1 - 4.605).abs() < 0.01);
        let v = c.expect("Q(0.99) is a valid candidate");
        assert!(
            v > exp.cost_bf * 1.5,
            "Q(0.99) cost {v} vs bf {}",
            exp.cost_bf
        );
    }
}
