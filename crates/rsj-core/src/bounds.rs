//! Theorem 2: upper bounds on the optimal first reservation `t₁°` and on the
//! optimal expected cost, for unbounded supports with finite `E[X²]`.

use crate::cost::CostModel;
use rsj_dist::ContinuousDistribution;

/// Upper bound `A₁` on the optimal first reservation (Eq. 6):
///
/// ```text
/// A₁ = E[X] + 1 + (α+β)/(2α)·(E[X²] - a²) + (α+β+γ)/α·(E[X] - a)
/// ```
///
/// For bounded supports the natural bound is the upper endpoint `b` itself;
/// this function returns `min(A₁, b)` in that case so it is usable as a
/// search-interval end uniformly.
pub fn upper_bound_t1(dist: &dyn ContinuousDistribution, cost: &CostModel) -> f64 {
    let a = dist.support().lower();
    let mean = dist.mean();
    let m2 = dist.second_moment();
    let a1 = mean
        + 1.0
        + (cost.alpha + cost.beta) / (2.0 * cost.alpha) * (m2 - a * a)
        + (cost.alpha + cost.beta + cost.gamma) / cost.alpha * (mean - a);
    match dist.support().upper() {
        Some(b) => a1.min(b),
        None => a1,
    }
}

/// Upper bound `A₂` on the optimal expected cost (Eq. 7):
/// `A₂ = β·E[X] + α·A₁ + γ`.
pub fn upper_bound_expected_cost(dist: &dyn ContinuousDistribution, cost: &CostModel) -> f64 {
    cost.beta * dist.mean() + cost.alpha * upper_bound_t1(dist, cost) + cost.gamma
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::expected_cost_analytic;
    use crate::sequence::ReservationSequence;
    use rsj_dist::{Exponential, LogNormal, Uniform};

    #[test]
    fn exponential_reservation_only_bound() {
        // Exp(1), RESERVATIONONLY: A₁ = 1 + 1 + (1/2)·2 + 1·1 = 4.
        let d = Exponential::new(1.0).unwrap();
        let c = CostModel::reservation_only();
        assert!((upper_bound_t1(&d, &c) - 4.0).abs() < 1e-12);
        assert!((upper_bound_expected_cost(&d, &c) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn bounded_support_capped_at_b() {
        let d = Uniform::new(10.0, 20.0).unwrap();
        let c = CostModel::reservation_only();
        assert_eq!(upper_bound_t1(&d, &c), 20.0);
    }

    #[test]
    fn theorem2_witness_sequence_respects_a2() {
        // The proof's witness tᵢ = a + i must itself cost at most A₂.
        let d = Exponential::new(1.0).unwrap();
        let c = CostModel::new(1.0, 1.0, 0.5).unwrap();
        let witness: Vec<f64> = (1..200).map(|i| i as f64).collect();
        let s = ReservationSequence::new(witness, false).unwrap();
        let cost = expected_cost_analytic(&s, &d, &c);
        let a2 = upper_bound_expected_cost(&d, &c);
        assert!(cost <= a2 + 1e-9, "witness {cost} exceeds A₂ {a2}");
    }

    #[test]
    fn bound_grows_with_gamma() {
        let d = LogNormal::new(3.0, 0.5).unwrap();
        let c0 = CostModel::new(1.0, 0.0, 0.0).unwrap();
        let c1 = CostModel::new(1.0, 0.0, 5.0).unwrap();
        assert!(upper_bound_t1(&d, &c1) > upper_bound_t1(&d, &c0));
    }
}
