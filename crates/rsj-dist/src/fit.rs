//! Distribution fitting (system S4): the LogNormal fits behind Figure 1 and
//! the NeuroHPC scenario, plus simple least-squares helpers.

use crate::continuous::LogNormal;
use crate::error::{DistError, Result};

/// Result of a LogNormal fit: the fitted law plus descriptive statistics in
/// natural units, mirroring what Figure 1 of the paper displays on top of
/// each histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct LogNormalFit {
    /// The fitted distribution.
    pub dist: LogNormal,
    /// Log-space location estimate `μ̂`.
    pub mu: f64,
    /// Log-space scale estimate `σ̂`.
    pub sigma: f64,
    /// Implied mean in natural units `e^{μ̂ + σ̂²/2}`.
    pub natural_mean: f64,
    /// Implied standard deviation in natural units.
    pub natural_std: f64,
    /// Number of observations used.
    pub n: usize,
}

/// Maximum-likelihood fit of a LogNormal: `μ̂, σ̂` are the sample mean and
/// (population) standard deviation of `ln xᵢ`.
///
/// Non-positive observations are rejected — they have zero likelihood under
/// any LogNormal.
pub fn fit_lognormal(samples: &[f64]) -> Result<LogNormalFit> {
    if samples.len() < 2 {
        return Err(DistError::DegenerateSample {
            reason: "need at least two observations to fit a LogNormal",
        });
    }
    if samples.iter().any(|&x| !(x > 0.0) || !x.is_finite()) {
        return Err(DistError::DegenerateSample {
            reason: "LogNormal fit requires strictly positive finite observations",
        });
    }
    let n = samples.len() as f64;
    let logs: Vec<f64> = samples.iter().map(|x| x.ln()).collect();
    let mu = logs.iter().sum::<f64>() / n;
    let var = logs.iter().map(|l| (l - mu) * (l - mu)).sum::<f64>() / n;
    if var <= 0.0 {
        return Err(DistError::DegenerateSample {
            reason: "all observations identical; log-variance is zero",
        });
    }
    let sigma = var.sqrt();
    let dist = LogNormal::new(mu, sigma)?;
    let natural_mean = (mu + var / 2.0).exp();
    let natural_std = ((var.exp() - 1.0) * (2.0 * mu + var).exp()).sqrt();
    Ok(LogNormalFit {
        dist,
        mu,
        sigma,
        natural_mean,
        natural_std,
        n: samples.len(),
    })
}

/// Affine least-squares fit `y ≈ slope · x + intercept`.
///
/// This is the procedure behind Figure 2: the average wait times of 20
/// request-size groups are fitted with an affine function whose coefficients
/// become the `(α, γ)` of the NeuroHPC cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffineFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination `R²` (1 for a perfect fit).
    pub r_squared: f64,
}

/// Ordinary least squares on paired observations.
pub fn fit_affine(xs: &[f64], ys: &[f64]) -> Result<AffineFit> {
    if xs.len() != ys.len() {
        return Err(DistError::DegenerateSample {
            reason: "x and y have different lengths",
        });
    }
    if xs.len() < 2 {
        return Err(DistError::DegenerateSample {
            reason: "need at least two points for an affine fit",
        });
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    if sxx <= 0.0 {
        return Err(DistError::DegenerateSample {
            reason: "x values are all identical",
        });
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let syy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let r_squared = if syy <= 0.0 {
        1.0
    } else {
        let ss_res: f64 = xs
            .iter()
            .zip(ys)
            .map(|(x, y)| {
                let e = y - (slope * x + intercept);
                e * e
            })
            .sum();
        1.0 - ss_res / syy
    };
    Ok(AffineFit {
        slope,
        intercept,
        r_squared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::ContinuousDistribution;
    use rand::SeedableRng;

    #[test]
    fn lognormal_fit_recovers_parameters() {
        let truth = LogNormal::new(7.1128, 0.2039).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(123);
        let samples: Vec<f64> = (0..5000).map(|_| truth.sample(&mut rng)).collect();
        let fit = fit_lognormal(&samples).unwrap();
        assert!((fit.mu - 7.1128).abs() < 0.02, "mu {}", fit.mu);
        assert!((fit.sigma - 0.2039).abs() < 0.01, "sigma {}", fit.sigma);
        // Natural-unit mean should be near the paper's 1253.37 s.
        assert!(
            (fit.natural_mean - 1253.37).abs() < 30.0,
            "natural mean {}",
            fit.natural_mean
        );
    }

    #[test]
    fn lognormal_fit_rejects_bad_samples() {
        assert!(fit_lognormal(&[1.0]).is_err());
        assert!(fit_lognormal(&[1.0, 0.0]).is_err());
        assert!(fit_lognormal(&[2.0, 2.0, 2.0]).is_err());
    }

    #[test]
    fn affine_fit_exact_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.5, 4.5, 6.5, 8.5]; // y = 2x + 0.5
        let fit = fit_affine(&xs, &ys).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 0.5).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn affine_fit_noisy_line() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let xs: Vec<f64> = (0..200).map(|i| i as f64 / 10.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 0.95 * x + 1.05 + (rand::Rng::gen::<f64>(&mut rng) - 0.5) * 0.2)
            .collect();
        let fit = fit_affine(&xs, &ys).unwrap();
        assert!((fit.slope - 0.95).abs() < 0.02, "slope {}", fit.slope);
        assert!(
            (fit.intercept - 1.05).abs() < 0.1,
            "intercept {}",
            fit.intercept
        );
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn affine_fit_rejects_degenerate() {
        assert!(fit_affine(&[1.0], &[2.0]).is_err());
        assert!(fit_affine(&[1.0, 1.0], &[1.0, 2.0]).is_err());
        assert!(fit_affine(&[1.0, 2.0], &[1.0]).is_err());
    }
}
