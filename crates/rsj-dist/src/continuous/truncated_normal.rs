//! One-sided (lower-tail) truncated normal `TruncatedNormal(μ, σ², a)`
//! (Table 1 / Table 5 / Theorem 9).

use crate::error::{check_param, Result};
use crate::special::normal::{norm_cdf, norm_pdf, norm_quantile, norm_sf};
use crate::traits::{ContinuousDistribution, Support};

/// Normal distribution truncated to `[a, ∞)`.
///
/// Paper instantiation: `μ = 8.0`, `σ² = 2.0`, `a = 0.0`.
///
/// Note: Table 5 of the paper states the variance as `σ²(1 + α·η − η²)` with
/// `η = e^{-α²/2} / erfc(α/√2)`; the standard result uses the hazard
/// `λ(α) = φ(α)/(1-Φ(α)) = √(2/π)·η` instead of `η`. We implement the
/// standard (correct) formula — see DESIGN.md §4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedNormal {
    mu: f64,
    sigma: f64,
    a: f64,
    /// Cached truncation mass `1 - Φ((a-μ)/σ)`.
    tail_mass: f64,
}

impl TruncatedNormal {
    /// Creates a normal distribution with location `μ`, *variance* `σ²`
    /// given through its standard deviation `σ > 0`, truncated below at
    /// `a ≥ 0` (execution times are nonnegative).
    pub fn new(mu: f64, sigma: f64, a: f64) -> Result<Self> {
        check_param("mu", mu, "must be finite", mu.is_finite())?;
        check_param("sigma", sigma, "must be > 0", sigma > 0.0)?;
        check_param("a", a, "must be >= 0 and finite", a >= 0.0)?;
        let tail_mass = norm_sf((a - mu) / sigma);
        if tail_mass <= 0.0 {
            return Err(crate::error::DistError::InvalidParameter {
                name: "a",
                value: a,
                requirement: "truncation point leaves no probability mass",
            });
        }
        Ok(Self {
            mu,
            sigma,
            a,
            tail_mass,
        })
    }

    /// Location parameter `μ` of the parent normal.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale parameter `σ` of the parent normal.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Truncation point `a`.
    pub fn truncation(&self) -> f64 {
        self.a
    }

    /// Standardized hazard (inverse Mills ratio) `λ(z) = φ(z) / (1 - Φ(z))`,
    /// computed stably for large `z` via an asymptotic expansion.
    fn hazard(z: f64) -> f64 {
        if z > 30.0 {
            // φ(z)/(1-Φ(z)) → z + 1/z - 2/z³ + O(z⁻⁵).
            return z + 1.0 / z - 2.0 / (z * z * z);
        }
        let sf = norm_sf(z);
        norm_pdf(z) / sf
    }
}

impl ContinuousDistribution for TruncatedNormal {
    fn name(&self) -> String {
        format!(
            "TruncatedNormal(μ={}, σ²={}, a={})",
            self.mu,
            self.sigma * self.sigma,
            self.a
        )
    }

    fn cache_key(&self) -> Option<String> {
        Some(self.name())
    }

    fn support(&self) -> Support {
        Support::Unbounded { lower: self.a }
    }

    fn pdf(&self, t: f64) -> f64 {
        if t < self.a {
            return 0.0;
        }
        let z = (t - self.mu) / self.sigma;
        norm_pdf(z) / (self.sigma * self.tail_mass)
    }

    fn cdf(&self, t: f64) -> f64 {
        if t <= self.a {
            return 0.0;
        }
        let z = (t - self.mu) / self.sigma;
        let za = (self.a - self.mu) / self.sigma;
        ((norm_cdf(z) - norm_cdf(za)) / self.tail_mass).clamp(0.0, 1.0)
    }

    fn survival(&self, t: f64) -> f64 {
        if t <= self.a {
            return 1.0;
        }
        let z = (t - self.mu) / self.sigma;
        (norm_sf(z) / self.tail_mass).clamp(0.0, 1.0)
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile: p out of [0,1]: {p}");
        if p == 0.0 {
            return self.a;
        }
        if p == 1.0 {
            return f64::INFINITY;
        }
        // Table 5: Q(x) = μ + σ Φ⁻¹(Φ(α) + x·(1 - Φ(α))) with α = (a-μ)/σ.
        let fa = norm_cdf((self.a - self.mu) / self.sigma);
        self.mu + self.sigma * norm_quantile(fa + p * self.tail_mass)
    }

    fn mean(&self) -> f64 {
        let za = (self.a - self.mu) / self.sigma;
        self.mu + self.sigma * Self::hazard(za)
    }

    fn variance(&self) -> f64 {
        let za = (self.a - self.mu) / self.sigma;
        let lam = Self::hazard(za);
        self.sigma * self.sigma * (1.0 + za * lam - lam * lam)
    }

    fn conditional_mean_above(&self, tau: f64) -> f64 {
        // A normal truncated at `a`, conditioned on `X > τ ≥ a`, is the
        // parent normal truncated at τ: E[X | X > τ] = μ + σ λ((τ-μ)/σ)
        // (Theorem 9 in standardized form).
        let tau = tau.max(self.a);
        let z = (tau - self.mu) / self.sigma;
        self.mu + self.sigma * Self::hazard(z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_instance() -> TruncatedNormal {
        // Table 1: μ = 8, σ² = 2 (σ = √2), a = 0.
        TruncatedNormal::new(8.0, 2.0f64.sqrt(), 0.0).unwrap()
    }

    #[test]
    fn rejects_bad_params() {
        assert!(TruncatedNormal::new(8.0, 0.0, 0.0).is_err());
        assert!(TruncatedNormal::new(8.0, 1.0, -1.0).is_err());
        // Truncation point 40σ above the mean leaves no mass.
        assert!(TruncatedNormal::new(0.0, 1.0, 40.0).is_err());
    }

    #[test]
    fn nearly_untruncated_matches_normal() {
        // a = 0 is 5.66σ below μ = 8: truncation is negligible.
        let d = paper_instance();
        assert!((d.mean() - 8.0).abs() < 1e-6, "mean {}", d.mean());
        assert!((d.variance() - 2.0).abs() < 1e-5, "var {}", d.variance());
    }

    #[test]
    fn heavily_truncated_moments_vs_quadrature() {
        // Truncate right at the mean: exact half-normal shift applies.
        let d = TruncatedNormal::new(0.0, 1.0, 0.0).unwrap();
        // E = √(2/π), Var = 1 - 2/π.
        let e = (2.0 / std::f64::consts::PI).sqrt();
        assert!((d.mean() - e).abs() < 1e-12, "mean {}", d.mean());
        assert!(
            (d.variance() - (1.0 - 2.0 / std::f64::consts::PI)).abs() < 1e-12,
            "var {}",
            d.variance()
        );
    }

    #[test]
    fn cdf_quantile_inverse() {
        let d = paper_instance();
        for &p in &[0.001, 0.2, 0.5, 0.8, 0.999] {
            let t = d.quantile(p);
            assert!((d.cdf(t) - p).abs() < 1e-10, "p={p}");
        }
    }

    #[test]
    fn pdf_integrates_to_one() {
        let d = TruncatedNormal::new(1.0, 2.0, 0.5).unwrap();
        let q = crate::quadrature::integrate_to_inf(|t| d.pdf(t), 0.5, 1e-12);
        assert!((q.value - 1.0).abs() < 1e-7, "mass {}", q.value);
    }

    #[test]
    fn conditional_mean_matches_quadrature() {
        let d = paper_instance();
        for &tau in &[5.0, 8.0, 10.0, 12.0] {
            let closed = d.conditional_mean_above(tau);
            let s = d.survival(tau);
            let numeric =
                tau + crate::quadrature::integrate_to_inf(|t| d.survival(t), tau, 1e-13).value / s;
            assert!(
                (closed - numeric).abs() / numeric < 1e-7,
                "tau={tau}: closed {closed}, numeric {numeric}"
            );
        }
    }

    #[test]
    fn hazard_stable_for_large_z() {
        // Far-tail hazard must stay finite and ≈ z.
        let h = TruncatedNormal::hazard(40.0);
        assert!(h.is_finite() && (h - 40.0).abs() < 0.1, "hazard {h}");
    }

    #[test]
    fn conditional_mean_monotone_in_tau() {
        let d = paper_instance();
        let mut prev = d.mean();
        for i in 1..50 {
            let tau = i as f64 * 0.5;
            let cm = d.conditional_mean_above(tau);
            assert!(cm >= prev - 1e-9, "tau={tau}: {cm} < {prev}");
            prev = cm;
        }
    }
}
