//! The planning server: a fixed accept loop feeding a bounded pool of
//! connection-handler threads.
//!
//! Life of a request:
//!
//! 1. the accept loop (non-blocking, polling the shutdown flag) hands the
//!    connection to a worker over an `mpsc` channel;
//! 2. the worker reads one line, decodes it ([`crate::decode_request`])
//!    and dispatches: `ping`/`metrics` answer immediately, `plan` goes
//!    through the LRU cache or the [`Planner`] facade, `shutdown` raises
//!    the flag;
//! 3. once the flag is up the accept loop stops accepting, the channel is
//!    closed, and workers drain: every connection already accepted gets
//!    an answer to the request it is processing before its worker exits.
//!
//! Determinism: solvers run on the caller thread via the facade, and every
//! internally parallel stage goes through `rsj-par`, which is bit-identical
//! at any thread count — so concurrent clients asking the same question
//! get byte-identical plans whether computed, recomputed, or cached.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use reservation_strategies::{Plan, Planner, SimulateOptions};
use rsj_core::{CostModel, SolverSpec};
use rsj_dist::DistSpec;

use crate::cache::PlanCache;
use crate::protocol::{
    classify, decode_request, encode, ErrorKind, Provenance, Request, Response, Timings,
    PROTOCOL_VERSION,
};

/// Tunables for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (read it back with
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Connection-handler threads.
    pub workers: usize,
    /// Requests served on one connection before it is closed with a
    /// `too_many_requests` error.
    pub max_requests_per_conn: usize,
    /// Idle-read timeout per connection; an idle client is disconnected.
    pub read_timeout: Duration,
    /// Total plans held by the LRU cache (0 disables caching).
    pub cache_capacity: usize,
    /// Lock shards for the cache.
    pub cache_shards: usize,
    /// Longest accepted request line, in bytes.
    pub max_line_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            max_requests_per_conn: 1024,
            read_timeout: Duration::from_secs(30),
            cache_capacity: 256,
            cache_shards: 8,
            max_line_bytes: 1 << 20,
        }
    }
}

/// Signals a running [`Server`] to drain and exit, from any thread.
#[derive(Debug, Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Raises the shutdown flag. Idempotent.
    pub fn signal(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_signaled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

struct Shared {
    config: ServerConfig,
    cache: PlanCache,
    shutdown: Arc<AtomicBool>,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A bound (but not yet running) planning server.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and prepares the cache; call [`run`](Self::run)
    /// to start serving.
    pub fn bind(config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let cache = PlanCache::new(config.cache_capacity, config.cache_shards);
        let shared = Arc::new(Shared {
            config,
            cache,
            shutdown: Arc::new(AtomicBool::new(false)),
        });
        Ok(Self {
            local_addr,
            listener,
            shared,
        })
    }

    /// The address the server actually listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that can signal shutdown from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shared.shutdown))
    }

    /// Serves until shutdown is signaled (by a `shutdown` request or a
    /// [`ShutdownHandle`]), then drains in-flight connections and returns.
    pub fn run(self) -> std::io::Result<()> {
        let Server {
            listener,
            local_addr,
            shared,
        } = self;
        listener.set_nonblocking(true)?;
        rsj_obs::info!("rsj-serve listening on {local_addr}");

        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<_> = (0..shared.config.workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rsj-serve-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only while receiving so workers
                        // pull connections one at a time.
                        let stream = match rx.lock().expect("rx poisoned").recv() {
                            Ok(stream) => stream,
                            Err(_) => break, // channel closed: drain done
                        };
                        if let Err(e) = handle_connection(stream, &shared) {
                            rsj_obs::debug!("connection ended with I/O error: {e}");
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();

        while !shared.shutting_down() {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    counter("rsj_serve_connections_total").inc();
                    // A receiver outlives us until drop(tx) below, so the
                    // send only fails if every worker panicked.
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Graceful drain: stop accepting, let every queued/in-flight
        // connection finish its current request, then join the pool.
        rsj_obs::info!("rsj-serve draining {} workers", workers.len());
        drop(tx);
        for w in workers {
            let _ = w.join();
        }
        rsj_obs::info!("rsj-serve stopped");
        Ok(())
    }
}

fn counter(name: &str) -> rsj_obs::Counter {
    rsj_obs::global_registry().counter(name)
}

/// How often a blocked read wakes up to check the shutdown flag; bounds
/// how long a drain can wait on idle connections.
const READ_POLL: Duration = Duration::from_millis(100);

/// Reading one line can end the connection (EOF, idle timeout, drain) or
/// yield a line — possibly one that overflowed the size cap.
enum LineRead {
    Line(String),
    TooLarge,
    Closed,
}

/// Reads one `\n`-terminated line, waking every [`READ_POLL`] to honor
/// shutdown and the idle deadline, and capping the length at
/// `max_line_bytes`.
fn read_line_bounded(
    reader: &mut BufReader<TcpStream>,
    shared: &Shared,
) -> std::io::Result<LineRead> {
    let deadline = Instant::now() + shared.config.read_timeout;
    let mut line = String::new();
    loop {
        // `take` caps this call at one byte over the limit so an
        // overlong line is detectable without unbounded buffering.
        let room = (shared.config.max_line_bytes + 1).saturating_sub(line.len());
        match Read::by_ref(reader).take(room as u64).read_line(&mut line) {
            // EOF: a partial unterminated line is still one request.
            Ok(0) if line.trim().is_empty() => return Ok(LineRead::Closed),
            Ok(n) => {
                if line.len() > shared.config.max_line_bytes {
                    return Ok(LineRead::TooLarge);
                }
                if n == 0 || line.ends_with('\n') {
                    return Ok(LineRead::Line(line));
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Partial bytes (if any) stay in `line`; decide whether
                // this connection should keep waiting.
                if shared.shutting_down() {
                    rsj_obs::debug!("dropping idle connection for drain");
                    return Ok(LineRead::Closed);
                }
                if Instant::now() >= deadline {
                    rsj_obs::debug!("closing idle connection");
                    return Ok(LineRead::Closed);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Serves one connection: a loop of read line → dispatch → write line.
fn handle_connection(stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_POLL))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut served: usize = 0;

    loop {
        let line = match read_line_bounded(&mut reader, shared)? {
            LineRead::Line(line) => line,
            LineRead::Closed => return Ok(()),
            LineRead::TooLarge => {
                write_response(
                    &mut writer,
                    &Response::error(
                        ErrorKind::RequestTooLarge,
                        format!("request exceeds {} bytes", shared.config.max_line_bytes),
                    ),
                )?;
                counter("rsj_serve_errors_total").inc();
                return Ok(());
            }
        };
        if line.trim().is_empty() {
            continue;
        }

        served += 1;
        if served > shared.config.max_requests_per_conn {
            write_response(
                &mut writer,
                &Response::error(
                    ErrorKind::TooManyRequests,
                    format!(
                        "connection exceeded {} requests; reconnect to continue",
                        shared.config.max_requests_per_conn
                    ),
                ),
            )?;
            counter("rsj_serve_errors_total").inc();
            return Ok(());
        }

        let started = Instant::now();
        counter("rsj_serve_requests_total").inc();
        let (response, is_shutdown) = dispatch(shared, &line);
        if matches!(response, Response::Error { .. }) {
            counter("rsj_serve_errors_total").inc();
        }
        rsj_obs::global_registry()
            .histogram("rsj_serve_request_seconds")
            .observe(started.elapsed().as_secs_f64());
        write_response(&mut writer, &response)?;
        if is_shutdown {
            shared.shutdown.store(true, Ordering::SeqCst);
        }
        // During a drain, finish the request being processed but take no
        // further work from this connection.
        if shared.shutting_down() {
            return Ok(());
        }
    }
}

fn write_response<W: Write>(writer: &mut W, response: &Response) -> std::io::Result<()> {
    let body = encode(response).map_err(|e| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, format!("encode: {e}"))
    })?;
    writer.write_all(body.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Decodes and answers one request line. The bool is "shutdown requested".
fn dispatch(shared: &Shared, line: &str) -> (Response, bool) {
    let request = match decode_request(line) {
        Ok(request) => request,
        Err((kind, message)) => return (Response::error(kind, message), false),
    };
    match request {
        Request::Ping { .. } => (
            Response::Pong {
                v: PROTOCOL_VERSION,
            },
            false,
        ),
        Request::Metrics { .. } => (
            Response::Metrics {
                v: PROTOCOL_VERSION,
                prometheus: rsj_obs::global_registry().snapshot().to_prometheus(),
            },
            false,
        ),
        Request::Shutdown { .. } => (
            Response::ShuttingDown {
                v: PROTOCOL_VERSION,
            },
            true,
        ),
        Request::Plan {
            distribution,
            cost,
            solver,
            seed,
            simulate,
            ..
        } => (
            handle_plan(shared, distribution, cost, solver, seed, simulate),
            false,
        ),
    }
}

/// The composite cache key: the planner's own `(dist, cost, solver)` key
/// plus the simulate options, which also shape the returned [`Plan`].
fn full_cache_key(planner: &Planner, simulate: Option<SimulateOptions>) -> Option<String> {
    let base = planner.cache_key()?;
    let sim = match simulate {
        Some(s) => format!("jobs={},seed={}", s.jobs, s.seed),
        None => "none".to_string(),
    };
    Some(format!("{base}|sim={sim}"))
}

fn handle_plan(
    shared: &Shared,
    distribution: DistSpec,
    cost: Option<CostModel>,
    solver: SolverSpec,
    seed: Option<u64>,
    simulate: Option<SimulateOptions>,
) -> Response {
    let started = Instant::now();
    let solver = match seed {
        Some(seed) => solver.with_seed(seed),
        None => solver,
    };
    let mut builder = Planner::builder().distribution(distribution).solver(solver);
    if let Some(cost) = cost {
        builder = builder.cost_rates(cost.alpha, cost.beta, cost.gamma);
    }
    if let Some(simulate) = simulate {
        builder = builder.simulate(simulate);
    }
    let planner = match builder.build() {
        Ok(planner) => planner,
        Err(e) => return Response::error(classify(&e), e.to_string()),
    };
    let build_seconds = started.elapsed().as_secs_f64();

    let key = full_cache_key(&planner, simulate);
    if let Some(key) = key.as_deref() {
        if let Some(cached) = shared.cache.get(key) {
            counter("rsj_serve_cache_hits_total").inc();
            return plan_response(
                &planner,
                (*cached).clone(),
                true,
                build_seconds,
                0.0,
                started,
            );
        }
    }
    counter("rsj_serve_cache_misses_total").inc();

    let solve_started = Instant::now();
    counter("rsj_serve_solver_invocations_total").inc();
    let plan = match planner.plan() {
        Ok(plan) => plan,
        Err(e) => return Response::error(classify(&e), e.to_string()),
    };
    let solve_seconds = solve_started.elapsed().as_secs_f64();
    if let Some(key) = key {
        shared.cache.insert(key, Arc::new(plan.clone()));
    }
    plan_response(&planner, plan, false, build_seconds, solve_seconds, started)
}

fn plan_response(
    planner: &Planner,
    plan: Plan,
    cached: bool,
    build_seconds: f64,
    solve_seconds: f64,
    started: Instant,
) -> Response {
    Response::Plan {
        v: PROTOCOL_VERSION,
        provenance: Provenance {
            server: concat!("rsj-serve/", env!("CARGO_PKG_VERSION")).to_string(),
            protocol: PROTOCOL_VERSION,
            solver: planner.solver_spec().name().to_string(),
            threads: rsj_par::Parallelism::current().threads(),
            cached,
        },
        timings: Timings {
            build_seconds,
            solve_seconds,
            total_seconds: started.elapsed().as_secs_f64(),
        },
        plan,
    }
}
