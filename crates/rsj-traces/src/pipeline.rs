//! The Figure 1 fitting pipeline: archive → LogNormal fit → goodness
//! report.

use crate::format::TraceArchive;
use rsj_dist::{fit_lognormal, Empirical, LogNormalFit};
use serde::{Deserialize, Serialize};

/// The per-application result of the fitting pipeline, i.e. what Figure 1
/// prints on top of each histogram (fitted law, natural-unit moments) plus
/// a Kolmogorov–Smirnov goodness measure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FitReport {
    /// Application name.
    pub app: String,
    /// Number of runs used.
    pub runs: usize,
    /// Fitted log-space location `μ̂`.
    pub mu: f64,
    /// Fitted log-space scale `σ̂`.
    pub sigma: f64,
    /// Implied mean runtime (seconds).
    pub natural_mean: f64,
    /// Implied runtime standard deviation (seconds).
    pub natural_std: f64,
    /// KS distance between the empirical runtimes and the fitted law.
    pub ks_statistic: f64,
    /// The `≈1.63/√n` KS acceptance threshold at the 1% level.
    pub ks_threshold_1pct: f64,
}

impl FitReport {
    /// Whether the fit passes the 1%-level KS test.
    pub fn acceptable(&self) -> bool {
        self.ks_statistic <= self.ks_threshold_1pct
    }
}

/// Fits a LogNormal to every application in the archive (Figure 1's
/// procedure) and reports goodness of fit.
pub fn fit_archive(archive: &TraceArchive) -> Result<Vec<FitReport>, String> {
    let mut reports = Vec::new();
    for app in archive.apps() {
        let runtimes = archive.runtimes_of(&app);
        let fit: LogNormalFit = fit_lognormal(&runtimes).map_err(|e| format!("{app}: {e}"))?;
        let empirical = Empirical::from_samples(&runtimes).map_err(|e| format!("{app}: {e}"))?;
        let ks = empirical.ks_statistic(&fit.dist);
        reports.push(FitReport {
            app,
            runs: runtimes.len(),
            mu: fit.mu,
            sigma: fit.sigma,
            natural_mean: fit.natural_mean,
            natural_std: fit.natural_std,
            ks_statistic: ks,
            ks_threshold_1pct: 1.63 / (runtimes.len() as f64).sqrt(),
        });
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{figure1_archive, SynthConfig, VBMQA_MU, VBMQA_SIGMA};
    use rand::SeedableRng;

    #[test]
    fn recovers_published_vbmqa_parameters() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let archive = crate::synth::synthesize(&SynthConfig::vbmqa(5000), &mut rng);
        let reports = fit_archive(&archive).unwrap();
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(r.app, "VBMQA");
        assert!((r.mu - VBMQA_MU).abs() < 0.02, "mu {}", r.mu);
        assert!((r.sigma - VBMQA_SIGMA).abs() < 0.01, "sigma {}", r.sigma);
        assert!(
            (r.natural_mean - 1253.37).abs() < 25.0,
            "mean {}",
            r.natural_mean
        );
        assert!(
            r.acceptable(),
            "KS {} vs {}",
            r.ks_statistic,
            r.ks_threshold_1pct
        );
    }

    #[test]
    fn fits_both_figure1_apps() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(32);
        let archive = figure1_archive(3000, &mut rng);
        let reports = fit_archive(&archive).unwrap();
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(r.acceptable(), "{}: KS {}", r.app, r.ks_statistic);
        }
    }

    #[test]
    fn contaminated_archive_degrades_ks() {
        let mut cfg = SynthConfig::vbmqa(5000);
        cfg.contamination = 0.4;
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let archive = crate::synth::synthesize(&cfg, &mut rng);
        let reports = fit_archive(&archive).unwrap();
        assert!(
            reports[0].ks_statistic > reports[0].ks_threshold_1pct,
            "heavy contamination should fail the KS test (got {})",
            reports[0].ks_statistic
        );
    }

    #[test]
    fn empty_archive_errors() {
        let archive = TraceArchive { records: vec![] };
        assert!(fit_archive(&archive).unwrap().is_empty());
    }
}
