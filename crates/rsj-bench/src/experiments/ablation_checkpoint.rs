//! Ablation (beyond the paper's evaluation): the §7 checkpointing
//! trade-off, quantified. For each Table 1 distribution, the optimal
//! all-checkpoint cost (discrete DP over completion thresholds) is swept
//! against the checkpoint/restart overhead and compared with the plain
//! Theorem 5 optimum.

use crate::report::Table;
use crate::scenarios::{paper_distributions, Fidelity, EPSILON};
use rsj_core::extensions::{optimal_discrete_checkpointed, CheckpointConfig};
use rsj_core::{optimal_discrete, CostModel};
use rsj_dist::{discretize, DiscretizationScheme};
use rsj_par::Parallelism;

/// Overheads swept, expressed as a fraction of the distribution's mean.
pub const OVERHEAD_FRACTIONS: [f64; 5] = [0.001, 0.01, 0.1, 0.5, 2.0];

/// One distribution's ablation row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Distribution label.
    pub distribution: String,
    /// Plain (Theorem 5) optimal normalized cost.
    pub plain: f64,
    /// Checkpointed optimal normalized cost per overhead fraction.
    pub checkpointed: Vec<(f64, f64)>,
}

/// Computes the ablation.
pub fn compute(fidelity: Fidelity) -> Vec<Row> {
    let cost = CostModel::reservation_only();
    let n = fidelity.discretization().min(500); // DP is O(n²) per overhead
    let dists = paper_distributions();
    Parallelism::current().par_map(&dists, |_, nd| {
        let discrete = discretize(
            nd.dist.as_ref(),
            DiscretizationScheme::EqualProbability,
            n,
            EPSILON,
        )
        .expect("paper distributions discretize");
        let omniscient = cost.omniscient(nd.dist.as_ref());
        let plain = optimal_discrete(&discrete, &cost)
            .expect("DP succeeds")
            .expected_cost
            / omniscient;
        let mean = nd.dist.mean();
        let checkpointed = OVERHEAD_FRACTIONS
            .iter()
            .map(|&frac| {
                let ck =
                    CheckpointConfig::new(frac * mean, frac * mean).expect("nonnegative overheads");
                let sol = optimal_discrete_checkpointed(&discrete, &cost, &ck)
                    .expect("checkpoint DP succeeds");
                (frac, sol.expected_cost / omniscient)
            })
            .collect();
        Row {
            distribution: nd.name.to_string(),
            plain,
            checkpointed,
        }
    })
}

/// Renders and writes `results/ablation_checkpoint.{md,csv}`.
pub fn emit(fidelity: Fidelity) -> std::io::Result<Vec<Row>> {
    let rows = compute(fidelity);
    let mut header = vec!["Distribution".to_string(), "no ckpt".to_string()];
    header.extend(OVERHEAD_FRACTIONS.iter().map(|f| format!("C=R={}·mean", f)));
    let mut table = Table::new(header);
    for r in &rows {
        let mut cells = vec![r.distribution.clone(), format!("{:.2}", r.plain)];
        cells.extend(r.checkpointed.iter().map(|&(_, c)| format!("{c:.2}")));
        table.push_row(cells)?;
    }
    table.emit(
        "ablation_checkpoint",
        "Ablation — §7 checkpointing: optimal normalized cost vs checkpoint/restart overhead (RESERVATIONONLY)",
    )?;
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cheap_checkpoints_never_lose() {
        let rows = compute(Fidelity::Quick);
        assert_eq!(rows.len(), 9);
        for r in &rows {
            let cheapest = r.checkpointed[0].1;
            assert!(
                cheapest <= r.plain + 1e-6,
                "{}: near-free checkpoints ({cheapest}) must not lose to plain ({})",
                r.distribution,
                r.plain
            );
        }
    }

    #[test]
    fn cost_is_monotone_in_overhead() {
        let rows = compute(Fidelity::Quick);
        for r in &rows {
            for w in r.checkpointed.windows(2) {
                assert!(
                    w[1].1 >= w[0].1 - 1e-9,
                    "{}: cost must grow with overhead: {:?}",
                    r.distribution,
                    r.checkpointed
                );
            }
        }
    }

    #[test]
    fn heavy_tails_benefit_most() {
        // Weibull(1, 0.5) re-executes enormous amounts of work without
        // checkpoints; its relative gain at tiny overhead should exceed
        // the uniform distribution's (which gains nothing: one reservation
        // is already optimal).
        let rows = compute(Fidelity::Quick);
        let gain = |name: &str| {
            let r = rows.iter().find(|r| r.distribution == name).unwrap();
            r.plain - r.checkpointed[0].1
        };
        assert!(
            gain("Weibull") > gain("Uniform") + 0.1,
            "Weibull gain {} vs Uniform gain {}",
            gain("Weibull"),
            gain("Uniform")
        );
    }
}
