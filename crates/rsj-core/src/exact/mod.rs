//! Closed-form optimal solutions (system S8): the uniform single-reservation
//! optimum (Theorem 4) and the scale-free exponential solution (§3.5,
//! Proposition 2).

pub mod exponential;
pub mod uniform;

pub use exponential::{exp_e1, exp_optimal_cost, exp_optimal_s1, exp_optimal_sequence};
pub use uniform::{uniform_optimal_cost, uniform_optimal_sequence};
