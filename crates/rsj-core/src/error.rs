//! Error types for the reservation-strategy layer.

use std::fmt;

/// Errors produced while constructing cost models, generating reservation
/// sequences or running heuristics.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A cost-model parameter violated its constraint (§2.2: `α > 0`,
    /// `β ≥ 0`, `γ ≥ 0`).
    InvalidCostParameter {
        /// Parameter name (`alpha`, `beta`, `gamma`, …).
        name: &'static str,
        /// Offending value.
        value: f64,
        /// Requirement description.
        requirement: &'static str,
    },
    /// The Eq. 11 recurrence produced a non-increasing step before reaching
    /// the required coverage point — the candidate `t₁` is invalid (the
    /// "gaps" of Figure 3).
    NonIncreasingSequence {
        /// Index (1-based, paper convention) of the offending term.
        index: usize,
        /// The previous reservation length.
        t_prev: f64,
        /// The newly computed (non-increasing) reservation length.
        t_next: f64,
    },
    /// A sequence was empty or otherwise unusable.
    EmptySequence,
    /// A reservation sequence violated strict monotonicity at construction.
    NotStrictlyIncreasing {
        /// Index of the offending element.
        index: usize,
    },
    /// A heuristic parameter was invalid (`M = 0`, `n = 0`, …).
    InvalidHeuristicParameter {
        /// Parameter name.
        name: &'static str,
        /// Description of the violation.
        reason: &'static str,
    },
    /// The brute-force sweep found no valid candidate sequence.
    NoValidCandidate,
    /// An evaluator produced a non-finite or non-positive quantity where a
    /// meaningful baseline was required (e.g. an oracle cost of zero would
    /// turn a penalty ratio into `inf`/`NaN`).
    DegenerateEvaluation {
        /// Which quantity degenerated.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A cooperative cancellation token fired mid-solve (explicit cancel
    /// or deadline); the partial result was discarded.
    Cancelled,
    /// A textual name (CLI flag, wire-protocol field) did not match any
    /// known variant of an enumeration.
    UnknownName {
        /// What kind of thing was being parsed (e.g. `solver`).
        what: &'static str,
        /// The unrecognized input.
        input: String,
        /// The accepted spellings, for the error message.
        expected: &'static str,
    },
    /// Propagated distribution-layer error.
    Dist(rsj_dist::DistError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidCostParameter {
                name,
                value,
                requirement,
            } => write!(f, "invalid cost parameter {name} = {value}: {requirement}"),
            CoreError::NonIncreasingSequence {
                index,
                t_prev,
                t_next,
            } => write!(
                f,
                "recurrence produced non-increasing step at index {index}: t[{}] = {t_prev} ≥ t[{index}] = {t_next}",
                index - 1
            ),
            CoreError::EmptySequence => write!(f, "reservation sequence is empty"),
            CoreError::NotStrictlyIncreasing { index } => {
                write!(f, "sequence not strictly increasing at index {index}")
            }
            CoreError::InvalidHeuristicParameter { name, reason } => {
                write!(f, "invalid heuristic parameter {name}: {reason}")
            }
            CoreError::NoValidCandidate => {
                write!(f, "brute-force sweep found no valid candidate sequence")
            }
            CoreError::DegenerateEvaluation { what, value } => {
                write!(f, "degenerate evaluation: {what} = {value}")
            }
            CoreError::Cancelled => {
                write!(f, "solve cancelled (deadline or explicit cancellation)")
            }
            CoreError::UnknownName {
                what,
                input,
                expected,
            } => write!(f, "unknown {what} `{input}` (expected {expected})"),
            CoreError::Dist(e) => write!(f, "distribution error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Dist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rsj_dist::DistError> for CoreError {
    fn from(e: rsj_dist::DistError) -> Self {
        CoreError::Dist(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, CoreError>;
