//! Batch jobs and their execution records.

use crate::fault::FaultKind;
use serde::{Deserialize, Serialize};

/// Simulation clock time (hours).
pub type Time = f64;

/// Identifier of a job within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u64);

/// A batch job as submitted to the queue.
///
/// The scheduler sees `requested` (the user's walltime request) but never
/// `actual` — exactly the information asymmetry the paper's reservation
/// problem is built on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Unique id.
    pub id: JobId,
    /// Submission time (hours).
    pub arrival: Time,
    /// Number of processors required.
    pub processors: usize,
    /// Requested walltime (hours); the job is killed when it elapses.
    pub requested: Time,
    /// Actual runtime (hours), unknown to the scheduler.
    pub actual: Time,
}

impl Job {
    /// Time the job will actually occupy the machine once started:
    /// `min(actual, requested)` — it is killed at the walltime limit.
    pub fn occupancy(&self) -> Time {
        self.actual.min(self.requested)
    }

    /// Whether the job will be killed by the walltime limit.
    pub fn will_be_killed(&self) -> bool {
        self.actual > self.requested
    }
}

/// The outcome of one job's passage through the simulated queue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// The job as submitted.
    pub job: Job,
    /// Time the job started executing.
    pub start: Time,
    /// Time the job left the machine (completion or kill).
    pub end: Time,
    /// Queue wait `start - arrival`.
    pub wait: Time,
    /// Whether the walltime limit killed it before completion.
    pub killed: bool,
    /// The fault that interrupted it, if any (defaults to `None` when
    /// deserializing pre-fault-layer records).
    #[serde(default)]
    pub fault: Option<FaultKind>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_and_kill() {
        let ok = Job {
            id: JobId(1),
            arrival: 0.0,
            processors: 4,
            requested: 2.0,
            actual: 1.5,
        };
        assert_eq!(ok.occupancy(), 1.5);
        assert!(!ok.will_be_killed());

        let killed = Job {
            id: JobId(2),
            arrival: 0.0,
            processors: 4,
            requested: 1.0,
            actual: 1.5,
        };
        assert_eq!(killed.occupancy(), 1.0);
        assert!(killed.will_be_killed());
    }
}
