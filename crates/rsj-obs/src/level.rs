//! Verbosity levels shared by the tracing layer and its subscribers.

use std::fmt;
use std::str::FromStr;

/// Severity / verbosity of an event, ordered from most to least severe.
///
/// The numeric representation is load-bearing: the global fast-path filter
/// stores the installed subscriber's maximum level as a `u8` and compares
/// with a single relaxed atomic load (`0` means "no subscriber").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Level {
    /// The operation failed; output is wrong or missing.
    Error = 1,
    /// Something degraded (clamped parameter, rejected refit, low R²).
    Warn = 2,
    /// Progress milestones (experiment started, batch finished).
    Info = 3,
    /// Solver internals (chosen t₁, candidate counts, refit decisions).
    Debug = 4,
    /// Per-span enter/exit and high-volume diagnostics.
    Trace = 5,
}

impl Level {
    /// All levels, most severe first.
    pub const ALL: [Level; 5] = [
        Level::Error,
        Level::Warn,
        Level::Info,
        Level::Debug,
        Level::Trace,
    ];

    /// Lower-case name as used by `RSJ_LOG` and the exporters.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Fixed-width upper-case tag for the stderr logger.
    pub fn tag(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN ",
            Level::Info => "INFO ",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error returned when parsing an unknown level name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLevelError(pub String);

impl fmt::Display for ParseLevelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown log level: {:?} (use error|warn|info|debug|trace|off)",
            self.0
        )
    }
}

impl std::error::Error for ParseLevelError {}

impl FromStr for Level {
    type Err = ParseLevelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(ParseLevelError(other.to_string())),
        }
    }
}

/// Parses an `RSJ_LOG`-style value: a [`Level`], or `off`/`none`/`0` for
/// "no logging" (`None`).
pub fn parse_filter(s: &str) -> Result<Option<Level>, ParseLevelError> {
    match s.to_ascii_lowercase().as_str() {
        "off" | "none" | "0" | "" => Ok(None),
        _ => s.parse().map(Some),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_severity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
    }

    #[test]
    fn parse_round_trips() {
        for lvl in Level::ALL {
            assert_eq!(lvl.as_str().parse::<Level>().unwrap(), lvl);
        }
        assert_eq!("WARNING".parse::<Level>().unwrap(), Level::Warn);
        assert!("verbose".parse::<Level>().is_err());
    }

    #[test]
    fn filter_accepts_off() {
        assert_eq!(parse_filter("off").unwrap(), None);
        assert_eq!(parse_filter("").unwrap(), None);
        assert_eq!(parse_filter("debug").unwrap(), Some(Level::Debug));
        assert!(parse_filter("nope").is_err());
    }
}
