//! A fixed-capacity ring buffer of completed request timelines.
//!
//! Writers claim a slot with one `fetch_add` on the shared cursor and
//! then swap the record in under that slot's own mutex — the lock guards
//! two word-sized stores, is never held across allocation or I/O, and is
//! only ever contended when two writers are a full lap apart on the same
//! slot. Slots are *versioned* by their claiming ticket: a writer that
//! stalls between claiming and storing long enough to be lapped finds a
//! newer ticket in the slot and drops its stale record instead of
//! clobbering a fresher one. Readers lock each slot just long enough to
//! clone the `Arc`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::timeline::TimelineRecord;

/// One versioned slot: the cursor ticket that installed the record
/// (meaningless while `record` is `None`, when `seq` is 0 and any ticket
/// wins).
#[derive(Debug, Default)]
struct Slot {
    seq: u64,
    record: Option<Arc<TimelineRecord>>,
}

/// A bounded, concurrently writable buffer of the most recent
/// [`TimelineRecord`]s. See the module docs for the locking discipline.
#[derive(Debug)]
pub struct TraceRing {
    slots: Box<[Mutex<Slot>]>,
    /// Total records ever pushed; `cursor % capacity` is the next slot.
    cursor: AtomicU64,
}

impl TraceRing {
    /// A ring holding the last `capacity` records (`capacity >= 1`).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            slots: (0..capacity).map(|_| Mutex::new(Slot::default())).collect(),
            cursor: AtomicU64::new(0),
        }
    }

    /// How many records the ring retains.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// How many records are currently held (saturates at capacity).
    pub fn len(&self) -> usize {
        (self.cursor.load(Ordering::Acquire) as usize).min(self.capacity())
    }

    /// Whether nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.cursor.load(Ordering::Acquire) == 0
    }

    /// Total records ever pushed (monotone; exceeds capacity once the
    /// ring has wrapped).
    pub fn pushed_total(&self) -> u64 {
        self.cursor.load(Ordering::Acquire)
    }

    /// Stores `record`, evicting the oldest entry once full.
    pub fn push(&self, record: TimelineRecord) {
        let ticket = self.cursor.fetch_add(1, Ordering::AcqRel);
        self.store(ticket, Arc::new(record));
    }

    /// Installs `record` under `ticket` unless the slot already holds a
    /// newer one: a writer lapped between claiming its ticket and
    /// storing loses to the fresher occupants rather than overwriting
    /// them (last-ticket-wins, not last-locker-wins).
    fn store(&self, ticket: u64, record: Arc<TimelineRecord>) {
        let slot = (ticket % self.capacity() as u64) as usize;
        let mut slot = self.slots[slot].lock().expect("trace ring slot poisoned");
        if ticket >= slot.seq {
            slot.seq = ticket;
            slot.record = Some(record);
        }
    }

    /// The most recent `n` records, newest first. Under concurrent
    /// writers this is a best-effort snapshot: each slot is read
    /// atomically, but a racing lap may reorder neighbours.
    pub fn recent(&self, n: usize) -> Vec<Arc<TimelineRecord>> {
        let cursor = self.cursor.load(Ordering::Acquire);
        let take = n.min(self.capacity()).min(cursor as usize);
        let mut out = Vec::with_capacity(take);
        for back in 1..=take as u64 {
            let slot = ((cursor - back) % self.capacity() as u64) as usize;
            let slot = self.slots[slot].lock().expect("trace ring slot poisoned");
            if let Some(record) = &slot.record {
                out.push(Arc::clone(record));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(tag: u64) -> TimelineRecord {
        TimelineRecord {
            trace_id: format!("{tag:032x}"),
            op: "test".to_string(),
            total_us: tag,
            stages: Vec::new(),
        }
    }

    #[test]
    fn recent_returns_newest_first() {
        let ring = TraceRing::new(4);
        assert!(ring.is_empty());
        assert!(ring.recent(10).is_empty());
        for i in 0..3 {
            ring.push(record(i));
        }
        let got = ring.recent(10);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].total_us, 2);
        assert_eq!(got[2].total_us, 0);
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn wraparound_keeps_the_last_capacity_records() {
        let ring = TraceRing::new(3);
        for i in 0..10 {
            ring.push(record(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.pushed_total(), 10);
        let got: Vec<u64> = ring.recent(10).iter().map(|r| r.total_us).collect();
        assert_eq!(got, vec![9, 8, 7]);
    }

    #[test]
    fn lapped_stale_writer_cannot_clobber_newer_records() {
        let ring = TraceRing::new(3);
        for i in 0..4 {
            ring.push(record(i)); // slot 0 now holds ticket 3
        }
        // A writer that claimed ticket 0, then stalled for a full lap,
        // finally stores: it must lose to slot 0's newer occupant.
        ring.store(0, Arc::new(record(99)));
        let got: Vec<u64> = ring.recent(10).iter().map(|r| r.total_us).collect();
        assert_eq!(got, vec![3, 2, 1]);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let ring = TraceRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.push(record(5));
        assert_eq!(ring.recent(1)[0].total_us, 5);
    }
}
