//! The reservation heuristics of §4 (system S7 of DESIGN.md).
//!
//! * [`BruteForce`] — §4.1: grid search over `t₁`, sequences completed via
//!   the optimal recurrence (Eq. 11);
//! * [`DiscretizedDp`] — §4.2: truncate + discretize the distribution, then
//!   solve the discrete problem exactly by dynamic programming (Theorem 5);
//! * [`MeanByMean`], [`MeanStdev`], [`MeanDoubling`], [`MedianByMedian`] —
//!   §4.3: measure-based incremental rules.
//!
//! All heuristics implement the common [`Strategy`] trait and produce a
//! [`ReservationSequence`] for a distribution/cost-model pair.

mod brute_force;
mod dp;
mod dp_monotone;
mod simple;
mod spec;

pub use brute_force::{BruteForce, EvalMethod, SweepPoint};
pub use dp::{
    clear_last_dp_path, discrete_sequence_cost, last_dp_path, optimal_discrete,
    optimal_discrete_cancellable, optimal_discrete_exact, optimal_discrete_exact_cancellable,
    optimal_discrete_exact_par, optimal_discrete_monotone, optimal_discrete_par, DiscretizedDp,
    DpPath, DpSolution,
};
pub use dp_monotone::monotone_gate;
pub use simple::{MeanByMean, MeanDoubling, MeanStdev, MedianByMedian};
pub use spec::{SolverSpec, DEFAULT_EPSILON, DEFAULT_GRID, DEFAULT_SAMPLES};

use crate::cancel::CancelToken;
use crate::cost::CostModel;
use crate::error::Result;
use crate::sequence::ReservationSequence;
use rsj_dist::ContinuousDistribution;

/// A reservation strategy: computes an increasing sequence of reservation
/// lengths for a given job-time distribution and cost model.
pub trait Strategy: Send + Sync {
    /// Display name, matching the paper's table headers where applicable.
    fn name(&self) -> &str;

    /// Computes the reservation sequence.
    fn sequence(
        &self,
        dist: &dyn ContinuousDistribution,
        cost: &CostModel,
    ) -> Result<ReservationSequence>;

    /// [`sequence`](Self::sequence) with cooperative cancellation: returns
    /// [`CoreError::Cancelled`](crate::CoreError::Cancelled) once `cancel`
    /// fires. The default checks once up front and then runs to
    /// completion — right for the O(1)-ish §4.3 rules; the expensive
    /// solvers ([`BruteForce`], [`DiscretizedDp`]) override it to poll at
    /// loop granularity so a deadline can interrupt a solve mid-flight.
    fn sequence_cancellable(
        &self,
        dist: &dyn ContinuousDistribution,
        cost: &CostModel,
        cancel: &CancelToken,
    ) -> Result<ReservationSequence> {
        cancel.check()?;
        self.sequence(dist, cost)
    }
}

/// Parameters shared by the sequence generators of the simple heuristics:
/// how deep into the tail a materialized prefix must reach.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailPolicy {
    /// Stop extending once `P(X ≥ tᵢ)` falls below this.
    pub tail_cutoff: f64,
    /// Hard cap on the number of reservations.
    pub max_len: usize,
}

impl Default for TailPolicy {
    fn default() -> Self {
        Self {
            tail_cutoff: 1e-12,
            max_len: 100_000,
        }
    }
}

/// Configurable construction of the §4 heuristic suite.
///
/// Replaces the fixed `paper_suite(seed)` entry point: every evaluation
/// parameter is adjustable (`M`, `N`, the brute-force scoring method, the
/// DP's `n` and ε) and each of the seven heuristics can be toggled off,
/// while the default configuration reproduces the paper's Table 2 suite
/// exactly — [`paper_suite`] is now a thin wrapper over this builder.
///
/// ```
/// use rsj_core::heuristics::SuiteBuilder;
///
/// // The Table 2 suite at reduced fidelity, without the brute force.
/// let suite = SuiteBuilder::new(42)
///     .grid(500)
///     .samples(200)
///     .discretization(200)
///     .brute_force(false)
///     .build()
///     .unwrap();
/// assert_eq!(suite.len(), 6);
/// ```
#[derive(Debug, Clone)]
pub struct SuiteBuilder {
    seed: u64,
    grid: usize,
    samples: usize,
    eval: EvalMethod,
    discretization: usize,
    epsilon: f64,
    brute_force: bool,
    mean_by_mean: bool,
    mean_stdev: bool,
    mean_doubling: bool,
    median_by_median: bool,
    dp_equal_time: bool,
    dp_equal_probability: bool,
}

impl SuiteBuilder {
    /// All seven heuristics at the paper's evaluation parameters
    /// (`M = 5000`, `N = 1000`, Monte-Carlo scoring, `n = 1000`,
    /// `ε = 1e-7`).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            grid: spec::DEFAULT_GRID,
            samples: spec::DEFAULT_SAMPLES,
            eval: EvalMethod::MonteCarlo,
            discretization: spec::DEFAULT_SAMPLES,
            epsilon: spec::DEFAULT_EPSILON,
            brute_force: true,
            mean_by_mean: true,
            mean_stdev: true,
            mean_doubling: true,
            median_by_median: true,
            dp_equal_time: true,
            dp_equal_probability: true,
        }
    }

    /// Brute-force grid size `M`.
    pub fn grid(mut self, m: usize) -> Self {
        self.grid = m;
        self
    }

    /// Monte-Carlo sample count `N` (scoring and validity horizon).
    pub fn samples(mut self, n: usize) -> Self {
        self.samples = n;
        self
    }

    /// How brute-force candidates are scored (default Monte Carlo, as in
    /// the paper).
    pub fn eval(mut self, method: EvalMethod) -> Self {
        self.eval = method;
        self
    }

    /// Discretization sample count `n` for both DP schemes.
    pub fn discretization(mut self, n: usize) -> Self {
        self.discretization = n;
        self
    }

    /// Truncation quantile ε for the DP schemes.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Includes or excludes Brute-Force (§4.1).
    pub fn brute_force(mut self, on: bool) -> Self {
        self.brute_force = on;
        self
    }

    /// Includes or excludes Mean-by-Mean (§4.3).
    pub fn mean_by_mean(mut self, on: bool) -> Self {
        self.mean_by_mean = on;
        self
    }

    /// Includes or excludes Mean-Stdev (§4.3).
    pub fn mean_stdev(mut self, on: bool) -> Self {
        self.mean_stdev = on;
        self
    }

    /// Includes or excludes Mean-Doubling (§4.3).
    pub fn mean_doubling(mut self, on: bool) -> Self {
        self.mean_doubling = on;
        self
    }

    /// Includes or excludes Median-by-Median (§4.3).
    pub fn median_by_median(mut self, on: bool) -> Self {
        self.median_by_median = on;
        self
    }

    /// Includes or excludes the Equal-time DP (§4.2).
    pub fn dp_equal_time(mut self, on: bool) -> Self {
        self.dp_equal_time = on;
        self
    }

    /// Includes or excludes the Equal-probability DP (§4.2).
    pub fn dp_equal_probability(mut self, on: bool) -> Self {
        self.dp_equal_probability = on;
        self
    }

    /// Keeps only the measure-based §4.3 rules (no brute force, no DP).
    pub fn simple_only(self) -> Self {
        self.brute_force(false)
            .dp_equal_time(false)
            .dp_equal_probability(false)
    }

    /// Builds the enabled strategies in Table 2 column order, validating
    /// every parameter.
    pub fn build(&self) -> Result<Vec<Box<dyn Strategy>>> {
        let mut suite: Vec<Box<dyn Strategy>> = Vec::new();
        if self.brute_force {
            suite.push(Box::new(BruteForce::new(
                self.grid,
                self.samples,
                self.eval,
                self.seed,
            )?));
        }
        if self.mean_by_mean {
            suite.push(Box::new(MeanByMean::default()));
        }
        if self.mean_stdev {
            suite.push(Box::new(MeanStdev::default()));
        }
        if self.mean_doubling {
            suite.push(Box::new(MeanDoubling::default()));
        }
        if self.median_by_median {
            suite.push(Box::new(MedianByMedian::default()));
        }
        if self.dp_equal_time {
            suite.push(Box::new(DiscretizedDp::new(
                rsj_dist::DiscretizationScheme::EqualTime,
                self.discretization,
                self.epsilon,
            )?));
        }
        if self.dp_equal_probability {
            suite.push(Box::new(DiscretizedDp::new(
                rsj_dist::DiscretizationScheme::EqualProbability,
                self.discretization,
                self.epsilon,
            )?));
        }
        Ok(suite)
    }
}

/// The full §4 heuristic suite with the paper's evaluation parameters
/// (`M = 5000`, `N = 1000`, `ε = 1e-7`, `n = 1000`), in Table 2 column
/// order — a compatibility wrapper over [`SuiteBuilder`].
pub fn paper_suite(seed: u64) -> Vec<Box<dyn Strategy>> {
    SuiteBuilder::new(seed)
        .build()
        .expect("paper parameters are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsj_dist::DistSpec;

    #[test]
    fn suite_has_paper_names_in_order() {
        let suite = paper_suite(1);
        let names: Vec<&str> = suite.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "Brute-Force",
                "Mean-by-Mean",
                "Mean-Stdev",
                "Mean-Doubling",
                "Median-by-Median",
                "Equal-time",
                "Equal-probability",
            ]
        );
    }

    #[test]
    fn builder_toggles_and_parameters() {
        // Toggling off everything but the simple rules.
        let simple = SuiteBuilder::new(0).simple_only().build().unwrap();
        let names: Vec<&str> = simple.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "Mean-by-Mean",
                "Mean-Stdev",
                "Mean-Doubling",
                "Median-by-Median"
            ]
        );
        // Individual toggles preserve Table 2 column order.
        let suite = SuiteBuilder::new(0)
            .mean_stdev(false)
            .dp_equal_time(false)
            .build()
            .unwrap();
        let names: Vec<&str> = suite.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "Brute-Force",
                "Mean-by-Mean",
                "Mean-Doubling",
                "Median-by-Median",
                "Equal-probability",
            ]
        );
        // Invalid custom parameters surface as typed errors.
        assert!(SuiteBuilder::new(0).grid(0).build().is_err());
        assert!(SuiteBuilder::new(0).discretization(0).build().is_err());
    }

    #[test]
    fn every_heuristic_handles_every_paper_distribution() {
        let cost = CostModel::reservation_only();
        // Brute force is exercised with a small grid to keep this test fast.
        let mut suite: Vec<Box<dyn Strategy>> = vec![
            Box::new(BruteForce::new(200, 200, EvalMethod::Analytic, 7).unwrap()),
            Box::new(MeanByMean::default()),
            Box::new(MeanStdev::default()),
            Box::new(MeanDoubling::default()),
            Box::new(MedianByMedian::default()),
        ];
        suite.push(Box::new(
            DiscretizedDp::new(rsj_dist::DiscretizationScheme::EqualTime, 200, 1e-7).unwrap(),
        ));
        for (name, spec) in DistSpec::paper_table1() {
            let dist = spec.build().unwrap();
            for h in &suite {
                let seq = h
                    .sequence(dist.as_ref(), &cost)
                    .unwrap_or_else(|e| panic!("{} on {name}: {e}", h.name()));
                assert!(!seq.is_empty(), "{} on {name}", h.name());
            }
        }
    }
}
