//! Offline, API-compatible subset of `proptest`.
//!
//! Differences from upstream: cases are drawn from a deterministic
//! per-test RNG (seeded by hashing the test's module path and name), and
//! failing inputs are reported but **not shrunk**. `.proptest-regressions`
//! files are ignored. The macro surface (`proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `#![proptest_config(...)]`) and the strategy
//! surface (ranges, tuples, `collection::vec`) match upstream usage in
//! this workspace.

// Vendored stand-in for the crates.io crate; keep clippy out of it, as
// it would be for a registry dependency.
#![allow(clippy::all)]

use rand::SeedableRng;

/// Strategy abstraction: types that can draw values from an RNG.
pub mod strategy {
    use super::test_runner::TestRng;
    use rand::{Rng, RngCore};

    /// A source of generated values for property tests.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.gen::<f64>() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (a, b) = (*self.start(), *self.end());
            assert!(a <= b, "empty range strategy");
            a + rng.gen::<f64>() * (b - a)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.gen::<f32>() * (self.end - self.start)
        }
    }

    /// Draws uniformly from `[0, span)` without modulo bias worth caring
    /// about (multiply-shift).
    fn bounded(rng: &mut TestRng, span: u64) -> u64 {
        ((rng.next_u64() as u128 * span as u128) >> 64) as u64
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + bounded(rng, span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (a, b) = (*self.start(), *self.end());
                    assert!(a <= b, "empty range strategy");
                    let span = (b as i128 - a as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (a as i128 + bounded(rng, span + 1) as i128) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Strategy for `Vec`s of values with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner types: configuration and the deterministic RNG.
pub mod test_runner {
    /// The RNG handed to strategies (the vendored `StdRng`).
    pub type TestRng = rand::rngs::StdRng;

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// Builds the deterministic RNG for one named test (support for the
/// [`proptest!`] macro).
#[doc(hidden)]
pub fn __new_rng(test_path: &str) -> test_runner::TestRng {
    // FNV-1a over the fully qualified test name: stable across runs,
    // compilers, and platforms.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_path.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    SeedableRng::seed_from_u64(hash)
}

/// Declares property tests: `proptest! { fn name(x in strategy) { … } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::__new_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let __vals = ( $($crate::strategy::Strategy::generate(&($strat), &mut __rng),)* );
                let __trace = format!("{:?}", __vals);
                let __result: ::std::result::Result<(), ::std::string::String> = (|| {
                    #[allow(unused_variables, unused_mut)]
                    let ( $($pat,)* ) = __vals;
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__msg) = __result {
                    panic!(
                        "proptest case {}/{} failed with input {}: {}",
                        __case + 1,
                        __config.cases,
                        __trace,
                        __msg
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if __l != __r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?} == {:?}`", __l, __r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        if __l != __r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?} == {:?}`: {}", __l, __r, format!($($fmt)*)));
        }
    }};
}

/// Skips the current case unless `cond` holds (counts as a pass: the
/// stub does not re-draw).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// The usual proptest prelude.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::__new_rng("tests::bounds");
        for _ in 0..1000 {
            let x = (1.5..2.5f64).generate(&mut rng);
            assert!((1.5..2.5).contains(&x));
            let n = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&n));
            let i = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::__new_rng("x::y");
        let mut b = crate::__new_rng("x::y");
        let va: Vec<f64> = (0..10).map(|_| (0.0..1.0f64).generate(&mut a)).collect();
        let vb: Vec<f64> = (0..10).map(|_| (0.0..1.0f64).generate(&mut b)).collect();
        assert_eq!(va, vb);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        fn macro_smoke(x in 0.0..1.0f64, (a, b) in (0u32..10, 0u32..10),
            v in crate::collection::vec(0.0..1.0f64, 2..5)) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(v.len(), v.len(), "lengths agree");
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assume!(x > 0.0);
            if x > 2.0 {
                return Ok(());
            }
        }
    }
}
