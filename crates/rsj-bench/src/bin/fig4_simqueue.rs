//! Figure 4 variant: NeuroHPC under the cost model fitted from the
//! simulated queue (cross-substrate robustness check).

use rsj_bench::scenarios::Fidelity;

fn main() -> std::io::Result<()> {
    let fidelity = Fidelity::from_env();
    eprintln!("running fig4_simqueue at {fidelity:?} fidelity");
    rsj_bench::experiments::fig4_simqueue::emit(fidelity, rsj_bench::DEFAULT_SEED)?;
    Ok(())
}
