//! File persistence for trace archives: CSV (the interchange format the
//! CLI consumes) and JSON (lossless, via serde).

use crate::format::TraceArchive;
use std::path::Path;

/// Writes the archive as CSV.
pub fn save_csv(archive: &TraceArchive, path: &Path) -> Result<(), String> {
    std::fs::write(path, archive.to_csv()).map_err(|e| format!("cannot write {path:?}: {e}"))
}

/// Reads an archive from CSV.
pub fn load_csv(path: &Path) -> Result<TraceArchive, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    TraceArchive::from_csv(&text)
}

/// Writes the archive as pretty JSON.
pub fn save_json(archive: &TraceArchive, path: &Path) -> Result<(), String> {
    let text = serde_json::to_string_pretty(archive).map_err(|e| e.to_string())?;
    std::fs::write(path, text).map_err(|e| format!("cannot write {path:?}: {e}"))
}

/// Reads an archive from JSON.
pub fn load_json(path: &Path) -> Result<TraceArchive, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("invalid archive JSON: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synthesize, SynthConfig};
    use rand::SeedableRng;

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("rsj_traces_io_{}_{name}", std::process::id()))
    }

    #[test]
    fn csv_file_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(61);
        let archive = synthesize(&SynthConfig::vbmqa(200), &mut rng);
        let path = temp("a.csv");
        save_csv(&archive, &path).unwrap();
        let back = load_csv(&path).unwrap();
        assert_eq!(archive, back);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn json_file_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(62);
        let archive = synthesize(&SynthConfig::fmriqa(150), &mut rng);
        let path = temp("a.json");
        save_json(&archive, &path).unwrap();
        let back = load_json(&path).unwrap();
        assert_eq!(archive, back);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_errors_are_reported() {
        assert!(load_csv(Path::new("/nonexistent/file.csv")).is_err());
        assert!(load_json(Path::new("/nonexistent/file.json")).is_err());
        let path = temp("bad.json");
        std::fs::write(&path, "{ not json").unwrap();
        assert!(load_json(&path).is_err());
        std::fs::remove_file(path).ok();
    }
}
