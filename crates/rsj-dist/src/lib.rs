//! # rsj-dist — distributions for stochastic-job scheduling
//!
//! The probability substrate (systems S1–S5 of `DESIGN.md`) for the
//! reproduction of *Reservation Strategies for Stochastic Jobs* (Aupy,
//! Gainaru, Honoré, Raghavan, Robert, Sun — IPDPS 2019):
//!
//! * [`special`] — from-scratch special functions (`ln Γ`, incomplete
//!   gamma/beta and inverses, `erf`, normal CDF/quantile);
//! * [`continuous`] — the nine job-runtime distributions of Table 1 with the
//!   closed forms of Table 5 and the conditional expectations of Appendix B;
//! * [`discrete`] — finite discrete distributions plus the Equal-time /
//!   Equal-probability truncation-and-discretization schemes of §4.2.1;
//! * [`empirical`] / [`fit`] — empirical distributions, LogNormal MLE and
//!   affine least squares (the Figure 1 / Figure 2 fitting procedures);
//! * [`censored`] — Kaplan–Meier survival estimation and censored MLE fits
//!   for online learn-while-scheduling pipelines (system S19);
//! * [`quadrature`] — adaptive Simpson integration backing default trait
//!   implementations and cross-validation tests;
//! * [`spec`] — serializable distribution specifications for experiment
//!   configuration.
//!
//! Everything implements the object-safe [`ContinuousDistribution`] trait so
//! the scheduling layer (`rsj-core`) is distribution-agnostic.
//!
//! ## Example
//!
//! ```
//! use rsj_dist::prelude::*;
//!
//! let job_law = LogNormal::new(3.0, 0.5).unwrap();
//! assert!((job_law.mean() - (3.125f64).exp()).abs() < 1e-9);
//! // Conditional expectation drives the Mean-by-Mean heuristic:
//! let after_first_try = job_law.conditional_mean_above(job_law.mean());
//! assert!(after_first_try > job_law.mean());
//! ```

#![warn(missing_docs)]
// `!(x > 0.0)`-style guards deliberately reject NaN together with
// out-of-range values; clippy's partial_cmp suggestion obscures that.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod censored;
pub mod continuous;
pub mod discrete;
pub mod empirical;
pub mod error;
pub mod eval_table;
pub mod fit;
pub mod interpolated;
pub mod quadrature;
pub mod spec;
pub mod special;
pub mod traits;
pub mod transform;

pub use censored::{
    fit_exponential, fit_exponential_censored, fit_lognormal_censored, fit_weibull,
    fit_weibull_censored, CensorKind, CensoredFit, KaplanMeier, Observation,
};
pub use continuous::{
    BetaDist, BoundedPareto, Exponential, GammaDist, LogNormal, Pareto, TruncatedNormal, Uniform,
    Weibull,
};
pub use discrete::{discretize, DiscreteDistribution, DiscretizationScheme};
pub use empirical::Empirical;
pub use error::{DistError, Result};
pub use eval_table::{
    clear_eval_cache, clear_last_eval_source, discretize_eval, eval_cache_stats, last_eval_source,
    DiscretizedEval, EvalTable, EvalTableSource,
};
pub use fit::{fit_affine, fit_lognormal, AffineFit, LogNormalFit};
pub use interpolated::InterpolatedEmpirical;
pub use spec::DistSpec;
pub use traits::{sample_n, ContinuousDistribution, Support};
pub use transform::Scaled;

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::censored::{
        fit_exponential_censored, fit_lognormal_censored, fit_weibull_censored, CensorKind,
        KaplanMeier, Observation,
    };
    pub use crate::continuous::{
        BetaDist, BoundedPareto, Exponential, GammaDist, LogNormal, Pareto, TruncatedNormal,
        Uniform, Weibull,
    };
    pub use crate::discrete::{discretize, DiscreteDistribution, DiscretizationScheme};
    pub use crate::empirical::Empirical;
    pub use crate::interpolated::InterpolatedEmpirical;
    pub use crate::spec::DistSpec;
    pub use crate::traits::{ContinuousDistribution, Support};
}
