//! Property tests for the log-linear histogram: merge associativity /
//! commutativity and the advertised quantile error bound.

use proptest::collection::vec;
use proptest::prelude::*;
use rsj_obs::{Histogram, SUBBUCKETS};

fn sample() -> impl proptest::strategy::Strategy<Value = f64> {
    // Spans several binary orders of magnitude, the range real
    // measurements (seconds, costs) occupy.
    1e-6..1e6f64
}

fn hist_of(samples: &[f64]) -> Histogram {
    let mut h = Histogram::new();
    h.record_all(samples);
    h
}

type Fingerprint = (u64, f64, f64, Vec<(f64, f64, u64)>, Vec<f64>);

/// The observable state the merge laws promise to preserve exactly:
/// buckets, counts, extrema and therefore every quantile.
fn fingerprint(h: &Histogram) -> Fingerprint {
    let quantiles = [0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0]
        .iter()
        .map(|&q| h.quantile(q))
        .collect();
    (h.count(), h.min(), h.max(), h.nonzero_buckets(), quantiles)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (a ∪ b) ∪ c == a ∪ (b ∪ c): integer bucket counts make merge
    /// exactly associative.
    #[test]
    fn merge_is_associative(
        a in vec(sample(), 0..200),
        b in vec(sample(), 0..200),
        c in vec(sample(), 0..200),
    ) {
        let mut left = hist_of(&a);
        left.merge(&hist_of(&b));
        left.merge(&hist_of(&c));

        let mut bc = hist_of(&b);
        bc.merge(&hist_of(&c));
        let mut right = hist_of(&a);
        right.merge(&bc);

        prop_assert_eq!(fingerprint(&left), fingerprint(&right));
    }

    /// a ∪ b == b ∪ a.
    #[test]
    fn merge_is_commutative(
        a in vec(sample(), 0..300),
        b in vec(sample(), 0..300),
    ) {
        let mut ab = hist_of(&a);
        ab.merge(&hist_of(&b));
        let mut ba = hist_of(&b);
        ba.merge(&hist_of(&a));
        prop_assert_eq!(fingerprint(&ab), fingerprint(&ba));
    }

    /// Merging shards is indistinguishable from recording every sample
    /// into one histogram (the pattern the instrumented batch loops use).
    #[test]
    fn merge_equals_single_recording(
        a in vec(sample(), 1..300),
        b in vec(sample(), 1..300),
    ) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let mut single = Histogram::new();
        single.record_all(&a);
        single.record_all(&b);
        prop_assert_eq!(fingerprint(&merged), fingerprint(&single));
        prop_assert_eq!(merged.count(), (a.len() + b.len()) as u64);
    }

    /// Quantile estimates stay within the 1/SUBBUCKETS relative error
    /// bound of the exact order statistic.
    #[test]
    fn quantile_error_is_bounded(
        mut samples in vec(sample(), 10..500),
        q in 0.01..1.0f64,
    ) {
        let h = hist_of(&samples);
        samples.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        let exact = samples[rank - 1];
        let est = h.quantile(q);
        let rel = (est - exact).abs() / exact;
        prop_assert!(
            rel <= 1.0 / SUBBUCKETS as f64 + 1e-12,
            "q={}: estimate {} vs exact {} (rel {})", q, est, exact, rel
        );
    }
}
