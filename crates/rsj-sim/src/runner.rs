//! End-to-end reservation execution (system S11): replay a strategy
//! against batches of sampled jobs and aggregate the Eq. 2 accounting, plus
//! the bridge that turns a simulated queue into a NeuroHPC-style cost
//! model.

use crate::error::SimError;
use crate::wait_time::WaitTimeAnalysis;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use rsj_core::{run_job, CostModel, ReservationSequence, RunOutcome};
use rsj_dist::ContinuousDistribution;
use rsj_par::{substream_seed, Parallelism};
use serde::{Deserialize, Serialize};

/// Aggregate statistics of running many jobs through one sequence.
///
/// The robustness fields (`failures`, `restarts`, `mean_rework`,
/// `gave_up`) are zero for fault-free execution and are filled by
/// [`crate::resilient::run_batch_resilient`]; they default to zero when
/// deserializing pre-fault-layer JSON.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchStats {
    /// Number of jobs executed.
    pub jobs: usize,
    /// Mean total cost per job (the Eq. 13 estimator).
    pub mean_cost: f64,
    /// 95th percentile of per-job cost.
    pub p95_cost: f64,
    /// Maximum per-job cost.
    pub max_cost: f64,
    /// Mean number of reservations needed per job.
    pub mean_reservations: f64,
    /// Largest number of reservations any job needed.
    pub max_reservations: usize,
    /// Mean reserved-but-unused time per job.
    pub mean_waste: f64,
    /// Fraction of reserved time that was wasted, aggregated.
    pub waste_fraction: f64,
    /// Faults endured across the batch.
    #[serde(default)]
    pub failures: usize,
    /// Post-fault restarts (a job that gives up does not restart after
    /// its final fault).
    #[serde(default)]
    pub restarts: usize,
    /// Mean computation time lost to faults per job.
    #[serde(default)]
    pub mean_rework: f64,
    /// Jobs that exhausted the retry budget without completing.
    #[serde(default)]
    pub gave_up: usize,
}

/// Runs `n` jobs sampled from `dist` through `seq` and aggregates the
/// outcomes. Errors on an empty batch instead of panicking.
///
/// Durations are drawn from `rng` serially — one draw per job, in order,
/// exactly as a fully serial loop would — and then executed on the ambient
/// [`Parallelism`] (`run_job` is a pure function of the drawn duration),
/// so the statistics are bit-for-bit identical at any thread count.
pub fn run_batch(
    seq: &ReservationSequence,
    dist: &dyn ContinuousDistribution,
    cost: &CostModel,
    n: usize,
    rng: &mut dyn RngCore,
) -> Result<BatchStats, SimError> {
    if n == 0 {
        return Err(SimError::EmptyBatch);
    }
    let _wall = rsj_obs::ScopedTimer::global("rsj_sim_batch_wall_seconds");
    let _span = rsj_obs::span!("sim.run_batch");
    let durations: Vec<f64> = (0..n).map(|_| dist.sample(rng)).collect();
    let outcomes: Vec<RunOutcome> =
        Parallelism::current().try_par_map(&durations, |_, &t| run_job(seq, cost, t))?;
    let stats = aggregate(&outcomes)?;
    record_batch_metrics(&outcomes, &stats);
    Ok(stats)
}

/// Runs `n` jobs through `seq` with **per-job seeded RNG substreams**: job
/// `i` draws its duration from a fresh RNG seeded with
/// [`substream_seed`]`(seed, i)`, so the sampled workload is a function of
/// `(seed, i)` alone — independent of execution order — and serial and
/// parallel runs consume identical randomness. A non-finite or negative
/// draw is a typed [`SimError::NonFiniteSample`] naming the lowest
/// offending job index.
pub fn run_batch_seeded(
    seq: &ReservationSequence,
    dist: &dyn ContinuousDistribution,
    cost: &CostModel,
    n: usize,
    seed: u64,
    par: &Parallelism,
) -> Result<BatchStats, SimError> {
    if n == 0 {
        return Err(SimError::EmptyBatch);
    }
    let _wall = rsj_obs::ScopedTimer::global("rsj_sim_batch_wall_seconds");
    let _span = rsj_obs::span!("sim.run_batch_seeded");
    let results: Vec<Result<RunOutcome, SimError>> = par.try_par_run(n, |i| {
        let mut rng = StdRng::seed_from_u64(substream_seed(seed, i as u64));
        let t = dist.sample(&mut rng);
        if !t.is_finite() || t < 0.0 {
            return Err(SimError::NonFiniteSample { index: i, value: t });
        }
        Ok(run_job(seq, cost, t))
    })?;
    // Results are in job order, so the first Err is the lowest index.
    let outcomes = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    let stats = aggregate(&outcomes)?;
    record_batch_metrics(&outcomes, &stats);
    Ok(stats)
}

/// Feeds one batch's outcomes into the global metrics registry: per-job
/// cost and reservation-count histograms (accumulated locally, merged
/// under one lock — the shard pattern) plus batch-level counters. No-op
/// unless metrics are enabled.
pub(crate) fn record_batch_metrics(outcomes: &[RunOutcome], stats: &BatchStats) {
    if !rsj_obs::metrics_enabled() {
        return;
    }
    let mut cost_hist = rsj_obs::Histogram::new();
    let mut reservations_hist = rsj_obs::Histogram::new();
    let mut waste_hist = rsj_obs::Histogram::new();
    for o in outcomes {
        cost_hist.record(o.cost);
        reservations_hist.record(o.reservations as f64);
        waste_hist.record(o.wasted_time);
    }
    let reg = rsj_obs::global_registry();
    reg.counter("rsj_sim_batches_total").inc();
    reg.counter("rsj_sim_jobs_total").add(stats.jobs as u64);
    reg.histogram("rsj_sim_job_cost").merge_from(&cost_hist);
    reg.histogram("rsj_sim_job_reservations")
        .merge_from(&reservations_hist);
    reg.histogram("rsj_sim_job_waste").merge_from(&waste_hist);
    reg.gauge("rsj_sim_waste_fraction")
        .set(stats.waste_fraction);
}

/// Aggregates precomputed run outcomes. Errors on an empty slice or a
/// non-finite cost (order statistics would be undefined) instead of
/// panicking.
pub fn aggregate(outcomes: &[RunOutcome]) -> Result<BatchStats, SimError> {
    if outcomes.is_empty() {
        return Err(SimError::EmptyBatch);
    }
    if let Some((index, o)) = outcomes
        .iter()
        .enumerate()
        .find(|(_, o)| !o.cost.is_finite())
    {
        return Err(SimError::NonFiniteCost {
            index,
            value: o.cost,
        });
    }
    let n = outcomes.len();
    let mut costs: Vec<f64> = outcomes.iter().map(|o| o.cost).collect();
    costs.sort_by(f64::total_cmp);
    let mean_cost = costs.iter().sum::<f64>() / n as f64;
    let p95_cost = costs[((n as f64 * 0.95).ceil() as usize).clamp(1, n) - 1];
    let max_cost = *costs.last().expect("checked non-empty");
    let mean_reservations = outcomes.iter().map(|o| o.reservations as f64).sum::<f64>() / n as f64;
    let max_reservations = outcomes
        .iter()
        .map(|o| o.reservations)
        .max()
        .expect("checked non-empty");
    let total_waste: f64 = outcomes.iter().map(|o| o.wasted_time).sum();
    let total_reserved: f64 = outcomes.iter().map(|o| o.reserved_time).sum();
    Ok(BatchStats {
        jobs: n,
        mean_cost,
        p95_cost,
        max_cost,
        mean_reservations,
        max_reservations,
        mean_waste: total_waste / n as f64,
        waste_fraction: if total_reserved > 0.0 {
            total_waste / total_reserved
        } else {
            0.0
        },
        failures: 0,
        restarts: 0,
        mean_rework: 0.0,
        gave_up: 0,
    })
}

/// Builds the NeuroHPC cost model from a queue analysis: the total
/// turnaround of a reservation of length `R` is `wait(R) + min(R, t)` with
/// `wait(R) ≈ α·R + γ` from the Figure 2 fit, giving `CostModel(α, 1, γ)`
/// (§5.3).
///
/// Negative fitted coefficients are clamped to the model's validity domain
/// (`α > 0`, `γ ≥ 0`), which can occur on lightly-loaded simulated queues.
pub fn cost_model_from_queue(analysis: &WaitTimeAnalysis) -> CostModel {
    let alpha = analysis.fit.slope.max(1e-6);
    let gamma = analysis.fit.intercept.max(0.0);
    CostModel::new(alpha, 1.0, gamma).expect("clamped coefficients are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rsj_core::expected_cost_analytic;
    use rsj_dist::{fit_affine, LogNormal, Uniform};

    #[test]
    fn batch_mean_converges_to_analytic() {
        let d = LogNormal::new(3.0, 0.5).unwrap();
        let c = CostModel::reservation_only();
        let seq = rsj_core::MeanByMean::default().sequence(&d, &c).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let stats = run_batch(&seq, &d, &c, 100_000, &mut rng).unwrap();
        let analytic = expected_cost_analytic(&seq, &d, &c);
        assert!(
            (stats.mean_cost - analytic).abs() / analytic < 0.02,
            "batch {} vs analytic {analytic}",
            stats.mean_cost
        );
        use rsj_core::Strategy as _;
    }

    #[test]
    fn single_reservation_has_one_attempt() {
        let d = Uniform::new(10.0, 20.0).unwrap();
        let c = CostModel::reservation_only();
        let seq = ReservationSequence::single(20.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let stats = run_batch(&seq, &d, &c, 5000, &mut rng).unwrap();
        assert_eq!(stats.max_reservations, 1);
        assert!((stats.mean_cost - 20.0).abs() < 1e-9);
        // Waste = 20 - E[X] = 5 on average.
        assert!(
            (stats.mean_waste - 5.0).abs() < 0.2,
            "waste {}",
            stats.mean_waste
        );
    }

    #[test]
    fn percentiles_are_ordered() {
        let d = LogNormal::new(3.0, 0.5).unwrap();
        let c = CostModel::new(0.95, 1.0, 1.05).unwrap();
        let seq = rsj_core::Strategy::sequence(&rsj_core::MeanDoubling::default(), &d, &c).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let stats = run_batch(&seq, &d, &c, 10_000, &mut rng).unwrap();
        assert!(stats.mean_cost <= stats.p95_cost);
        assert!(stats.p95_cost <= stats.max_cost);
        assert!(stats.waste_fraction >= 0.0 && stats.waste_fraction <= 1.0);
    }

    #[test]
    fn empty_and_degenerate_batches_are_typed_errors() {
        let d = Uniform::new(10.0, 20.0).unwrap();
        let c = CostModel::reservation_only();
        let seq = ReservationSequence::single(20.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert_eq!(
            run_batch(&seq, &d, &c, 0, &mut rng),
            Err(SimError::EmptyBatch)
        );
        assert_eq!(aggregate(&[]), Err(SimError::EmptyBatch));
        let bad = RunOutcome {
            cost: f64::NAN,
            reservations: 1,
            reserved_time: 1.0,
            wasted_time: 0.0,
        };
        assert!(matches!(
            aggregate(&[bad]),
            Err(SimError::NonFiniteCost { index: 0, .. })
        ));
    }

    #[test]
    fn stats_deserialize_without_robustness_fields() {
        // Pre-fault-layer JSON lacks the robustness fields; they default.
        let json = r#"{
            "jobs": 2, "mean_cost": 1.0, "p95_cost": 1.5, "max_cost": 2.0,
            "mean_reservations": 1.0, "max_reservations": 1,
            "mean_waste": 0.1, "waste_fraction": 0.05
        }"#;
        let stats: BatchStats = serde_json::from_str(json).unwrap();
        assert_eq!(stats.failures, 0);
        assert_eq!(stats.restarts, 0);
        assert_eq!(stats.mean_rework, 0.0);
        assert_eq!(stats.gave_up, 0);
    }

    #[test]
    fn cost_model_from_queue_clamps() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [5.0, 4.0, 3.0]; // negative slope
        let fit = fit_affine(&xs, &ys).unwrap();
        let analysis = WaitTimeAnalysis {
            processors: 204,
            groups: vec![],
            fit,
        };
        let cm = cost_model_from_queue(&analysis);
        assert!(cm.alpha > 0.0);
        assert!(cm.gamma >= 0.0);
        assert_eq!(cm.beta, 1.0);
    }
}
