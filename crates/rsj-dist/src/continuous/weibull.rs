//! Weibull distribution `Weibull(λ, κ)` (Table 1 / Table 5 / Theorem 6).

use crate::error::{check_param, Result};
use crate::special::gamma::{gamma, upper_incomplete_gamma};
use crate::traits::{ContinuousDistribution, Support};

/// Weibull distribution with scale `λ > 0` and shape `κ > 0`, support `[0, ∞)`.
///
/// Paper instantiation: `λ = 1.0`, `κ = 0.5` (a heavy-tailed shape).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    lambda: f64,
    kappa: f64,
}

impl Weibull {
    /// Creates a `Weibull(λ, κ)` distribution.
    pub fn new(lambda: f64, kappa: f64) -> Result<Self> {
        check_param("lambda", lambda, "must be > 0", lambda > 0.0)?;
        check_param("kappa", kappa, "must be > 0", kappa > 0.0)?;
        Ok(Self { lambda, kappa })
    }

    /// Scale parameter `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Shape parameter `κ`.
    pub fn kappa(&self) -> f64 {
        self.kappa
    }
}

impl ContinuousDistribution for Weibull {
    fn name(&self) -> String {
        format!("Weibull(λ={}, κ={})", self.lambda, self.kappa)
    }

    fn cache_key(&self) -> Option<String> {
        Some(self.name())
    }

    fn support(&self) -> Support {
        Support::Unbounded { lower: 0.0 }
    }

    fn pdf(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 0.0;
        }
        if t == 0.0 {
            // κ < 1 has an integrable singularity at 0; κ = 1 gives λ⁻¹; κ > 1 gives 0.
            return match self.kappa.partial_cmp(&1.0).unwrap() {
                std::cmp::Ordering::Less => f64::INFINITY,
                std::cmp::Ordering::Equal => 1.0 / self.lambda,
                std::cmp::Ordering::Greater => 0.0,
            };
        }
        let z = t / self.lambda;
        (self.kappa / self.lambda) * z.powf(self.kappa - 1.0) * (-z.powf(self.kappa)).exp()
    }

    fn cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            0.0
        } else {
            -(-(t / self.lambda).powf(self.kappa)).exp_m1()
        }
    }

    fn survival(&self, t: f64) -> f64 {
        if t <= 0.0 {
            1.0
        } else {
            (-(t / self.lambda).powf(self.kappa)).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile: p out of [0,1]: {p}");
        if p == 1.0 {
            return f64::INFINITY;
        }
        self.lambda * (-(-p).ln_1p()).powf(1.0 / self.kappa)
    }

    fn mean(&self) -> f64 {
        self.lambda * gamma(1.0 + 1.0 / self.kappa)
    }

    fn variance(&self) -> f64 {
        let g1 = gamma(1.0 + 1.0 / self.kappa);
        let g2 = gamma(1.0 + 2.0 / self.kappa);
        self.lambda * self.lambda * (g2 - g1 * g1)
    }

    fn conditional_mean_above(&self, tau: f64) -> f64 {
        // Theorem 6 / Eq. 17: E[X | X > τ] = λ e^{(τ/λ)^κ} Γ(1 + 1/κ, (τ/λ)^κ).
        if tau <= 0.0 {
            return self.mean();
        }
        let z = (tau / self.lambda).powf(self.kappa);
        self.lambda * z.exp() * upper_incomplete_gamma(1.0 + 1.0 / self.kappa, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(Weibull::new(0.0, 1.0).is_err());
        assert!(Weibull::new(1.0, -0.5).is_err());
    }

    #[test]
    fn kappa_one_is_exponential() {
        let w = Weibull::new(2.0, 1.0).unwrap();
        let e = crate::continuous::Exponential::new(0.5).unwrap();
        for &t in &[0.1, 1.0, 3.0, 10.0] {
            assert!((w.cdf(t) - e.cdf(t)).abs() < 1e-13, "t={t}");
            assert!((w.pdf(t) - e.pdf(t)).abs() < 1e-13, "t={t}");
        }
        assert!((w.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn paper_instantiation_moments() {
        // Weibull(1, 0.5): mean = Γ(3) = 2, E[X²] = Γ(5) = 24, var = 20.
        let w = Weibull::new(1.0, 0.5).unwrap();
        assert!((w.mean() - 2.0).abs() < 1e-12, "mean {}", w.mean());
        assert!((w.variance() - 20.0).abs() < 1e-10, "var {}", w.variance());
    }

    #[test]
    fn cdf_quantile_inverse() {
        let w = Weibull::new(1.0, 0.5).unwrap();
        for &p in &[0.0, 0.01, 0.3, 0.7, 0.99, 1.0 - 1e-10] {
            let t = w.quantile(p);
            assert!((w.cdf(t) - p).abs() < 1e-11, "p={p}");
        }
    }

    #[test]
    fn conditional_mean_matches_quadrature() {
        let w = Weibull::new(1.0, 0.5).unwrap();
        for &tau in &[0.5, 2.0, 5.0] {
            let closed = w.conditional_mean_above(tau);
            let s = w.survival(tau);
            let numeric =
                tau + crate::quadrature::integrate_to_inf(|t| w.survival(t), tau, 1e-13).value / s;
            assert!(
                (closed - numeric).abs() / numeric < 1e-7,
                "tau={tau}: closed {closed}, numeric {numeric}"
            );
        }
    }

    #[test]
    fn conditional_mean_exceeds_threshold() {
        let w = Weibull::new(1.0, 0.5).unwrap();
        for &tau in &[0.1, 1.0, 4.0, 20.0] {
            assert!(w.conditional_mean_above(tau) > tau);
        }
    }

    #[test]
    fn pdf_at_zero_edge_cases() {
        assert!(Weibull::new(1.0, 0.5).unwrap().pdf(0.0).is_infinite());
        assert_eq!(Weibull::new(2.0, 1.0).unwrap().pdf(0.0), 0.5);
        assert_eq!(Weibull::new(1.0, 2.0).unwrap().pdf(0.0), 0.0);
    }

    #[test]
    fn cross_validate_against_statrs() {
        use statrs::distribution::{Continuous, ContinuousCDF};
        let ours = Weibull::new(1.0, 0.5).unwrap();
        let theirs = statrs::distribution::Weibull::new(0.5, 1.0).unwrap(); // (shape, scale)
        for &t in &[0.1, 0.5, 1.5, 4.0] {
            assert!((ours.pdf(t) - theirs.pdf(t)).abs() < 1e-12, "pdf t={t}");
            assert!((ours.cdf(t) - theirs.cdf(t)).abs() < 1e-12, "cdf t={t}");
        }
    }
}
