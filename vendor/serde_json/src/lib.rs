//! Offline, API-compatible subset of `serde_json`.
//!
//! [`Value`] is an alias for the vendored [`serde::Content`] tree, so
//! serialization is a pure text layer: [`to_string`] /
//! [`to_string_pretty`] render a tree, [`from_str`] / [`from_slice`]
//! parse one and hand it to [`serde::Deserialize`]. Floats print via
//! Rust's shortest-round-trip `Display` (the behavior serde_json's
//! `float_roundtrip` feature selects); non-finite floats serialize as
//! `null`, as in serde_json.

#![warn(missing_docs)]
// Vendored stand-in for the crates.io crate; keep clippy out of it, as
// it would be for a registry dependency.
#![allow(clippy::all)]

use serde::{Content, Deserialize, Serialize};

/// A parsed JSON value (the vendored serde's content tree).
pub type Value = Content;

/// Error from parsing or deserializing JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
    line: usize,
    column: usize,
}

impl Error {
    fn syntax(msg: impl Into<String>, line: usize, column: usize) -> Self {
        Self {
            msg: msg.into(),
            line,
            column,
        }
    }

    fn data(err: serde::DeError) -> Self {
        Self {
            msg: err.to_string(),
            line: 0,
            column: 0,
        }
    }

    /// The 1-based line of a syntax error (0 for data errors).
    pub fn line(&self) -> usize {
        self.line
    }

    /// The 1-based column of a syntax error (0 for data errors).
    pub fn column(&self) -> usize {
        self.column
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.msg)
        } else {
            write!(
                f,
                "{} at line {} column {}",
                self.msg, self.line, self.column
            )
        }
    }
}

impl std::error::Error for Error {}

/// A `Result` specialized to this crate's [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Content, indent: Option<usize>, level: usize) {
    match v {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(u) => out.push_str(&u.to_string()),
        Content::I64(i) => out.push_str(&i.to_string()),
        Content::F64(f) => write_f64(out, *f),
        Content::Str(s) => write_string(out, s),
        Content::Seq(items) => {
            write_compound(out, indent, level, '[', ']', items.len(), |out, i| {
                write_value(out, &items[i], indent, level + 1)
            })
        }
        Content::Map(entries) => {
            write_compound(out, indent, level, '{', '}', entries.len(), |out, i| {
                let (k, val) = &entries[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1)
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (level + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
    out.push(close);
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e16 {
        // Match serde_json: integral floats keep a ".0" marker.
        out.push_str(&format!("{f:.1}"));
    } else {
        // Rust's Display is the shortest decimal that round-trips.
        out.push_str(&f.to_string());
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------

/// Parses JSON text and deserializes it into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_complete(s)?;
    T::deserialize(&value).map_err(Error::data)
}

/// Parses JSON bytes (must be UTF-8) and deserializes them into `T`.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes)
        .map_err(|e| Error::syntax(format!("invalid UTF-8: {e}"), 1, 1))?;
    from_str(s)
}

fn parse_value_complete(s: &str) -> Result<Content> {
    let mut p = Parser::new(s);
    let value = p.value()?;
    p.skip_ws();
    if p.peek().is_some() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error::syntax(msg, self.line, self.col)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.bump();
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => {
                Err(self.err(format!("expected `{}`, found `{}`", b as char, got as char)))
            }
            None => Err(self.err(format!("expected `{}`, found end of input", b as char))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        for &b in kw.as_bytes() {
            self.expect(b)?;
        }
        Ok(())
    }

    fn value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Content::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Content::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Content::Bool(false))
            }
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected character `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Content::Seq(items)),
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Content::Map(entries)),
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| self.err("invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => {
                    return Err(self.err("control character in string"));
                }
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: input came from &str, so re-decode.
                    let start = self.pos - 1;
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    for _ in 1..width {
                        self.bump();
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + width])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            v = v * 16 + digit;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Content> {
        let start = self.pos;
        let mut integral = true;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        if self.peek() == Some(b'.') {
            integral = false;
            self.bump();
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        if integral {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Content::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Content::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

/// Serializes any value into a [`Value`] tree (support for the [`json!`]
/// macro; not part of serde_json's public API).
#[doc(hidden)]
pub fn __serialize<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize()
}

/// Builds a [`Value`] from JSON-like syntax with embedded Rust
/// expressions, e.g. `json!({"jobs": n, "stats": stats})`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Map(::std::vec![
            $(($key.to_string(), $crate::__serialize(&$value))),*
        ])
    };
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Seq(::std::vec![ $($crate::__serialize(&$value)),* ])
    };
    ($other:expr) => { $crate::__serialize(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(from_str::<Value>("null").unwrap(), Content::Null);
        assert_eq!(from_str::<Value>("true").unwrap(), Content::Bool(true));
        assert_eq!(from_str::<Value>("42").unwrap(), Content::U64(42));
        assert_eq!(from_str::<Value>("-7").unwrap(), Content::I64(-7));
        assert_eq!(from_str::<Value>("2.5e-1").unwrap(), Content::F64(0.25));
        assert_eq!(
            from_str::<Value>("\"a\\nb\\u00e9\"").unwrap(),
            Content::Str("a\nbé".to_string())
        );
    }

    #[test]
    fn parse_nested_and_index() {
        let v: Value = from_str(r#"{"a": [1, {"b": 2.5}], "c": "x"}"#).unwrap();
        assert_eq!(v["a"][1]["b"].as_f64(), Some(2.5));
        assert_eq!(v["c"].as_str(), Some("x"));
        assert_eq!(v["a"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn round_trip_text() {
        let text = r#"{"name":"run","values":[1,2.5,-3],"flag":true,"none":null}"#;
        let v: Value = from_str(text).unwrap();
        let back = to_string(&v).unwrap();
        let v2: Value = from_str(&back).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn integral_floats_keep_marker() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn pretty_printer_indents() {
        let v: Value = from_str(r#"{"a": [1], "b": {}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": [\n    1\n  ],\n  \"b\": {}\n}");
    }

    #[test]
    fn syntax_errors_carry_location() {
        let err = from_str::<Value>("{\n  \"a\": ?\n}").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn json_macro_builds_objects() {
        let n = 3usize;
        let v = json!({"count": n, "ratio": 0.5, "name": "x", "inner": json!({"k": 1})});
        assert_eq!(v["count"].as_u64(), Some(3));
        assert_eq!(v["ratio"].as_f64(), Some(0.5));
        assert_eq!(v["inner"]["k"].as_u64(), Some(1));
        let list = json!([1, 2, 3]);
        assert_eq!(list.as_array().unwrap().len(), 3);
    }
}
