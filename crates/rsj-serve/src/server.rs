//! The planning server: a single-threaded readiness reactor feeding a
//! bounded pool of solver workers through an admission-controlled queue.
//!
//! Life of a request:
//!
//! 1. the reactor thread ([`poll`](crate::poll): epoll on Linux,
//!    `poll(2)` elsewhere) owns the listener and every connection state:
//!    nonblocking reads assemble line-delimited frames in a per-connection
//!    buffer, partial writes park on writable interest, and an idle
//!    deadline evicts peers that stop making progress. A slowloris or
//!    byte-drip peer costs a buffer, not a thread — bytes without a
//!    newline never extend the idle deadline;
//! 2. only *complete decoded requests* cross the bounded MPMC
//!    [`AdmissionQueue`]. Above the high watermark the request is *shed*
//!    on the reactor thread with a typed [`ErrorKind::Overloaded`] line.
//!    Workers drain up to `batch` queued requests at once, grouping
//!    same-table plan requests adjacently so consecutive solves share one
//!    warm discretization table, and dispatch: `ping`/`metrics` answer
//!    immediately, `plan` goes through the LRU cache, the table-grouped
//!    single-flight, or the [`Planner`] facade, `plan_batch` solves a
//!    whole vector of plan requests sharing tables via
//!    [`Planner::plan_many`] semantics, `shutdown` raises the flag. A
//!    request carrying `deadline_ms` is shed at dequeue if already
//!    expired, and its solve is cancelled cooperatively (via
//!    [`CancelToken`]) if the deadline fires mid-flight;
//! 3. finished responses return to the reactor over an outbox (a queue
//!    plus a self-pipe waker) and are flushed with partial-write
//!    resumption. Once the shutdown flag is up the reactor stops
//!    accepting, the queue is closed, and in-flight requests drain:
//!    every request already admitted gets its answer before exit.
//!
//! Workers are panic-tolerant: a panicking request handler (a bug, or an
//! injected [`ChaosPolicy`] fault) kills that connection only — the
//! worker catches the unwind, counts it, and pulls the next request.
//!
//! Determinism: solvers run on the worker thread via the facade, and every
//! internally parallel stage goes through `rsj-par`, which is bit-identical
//! at any thread count — so concurrent clients asking the same question
//! get byte-identical plans whether computed, recomputed, cached, batched,
//! or coalesced onto another client's in-flight solve.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use reservation_strategies::{CancelToken, Plan, PlanRequest, Planner, SimulateOptions};
use rsj_core::{CostModel, SolverSpec};
use rsj_dist::DistSpec;

use crate::admission::{AdmissionConfig, AdmissionQueue, Pop};
use crate::cache::PlanCache;
use crate::chaos::ChaosPolicy;
use crate::journal::{JournalRecord, JournalWriter, JOURNAL_FILE};
use crate::poll::{Event, Interest, Poller};
use crate::protocol::{
    classify, decode_request, encode, sanitize_trace_id, BatchItem, ErrorKind, HealthInfo,
    Provenance, Request, Response, Timings, PROTOCOL_VERSION, PROTOCOL_VERSION_MAX,
};
use crate::recovery::{recover, RecoveryStats};
use crate::singleflight::{Flighted, SingleFlight};
use crate::snapshot::SnapshotStore;

/// Crash-safety settings: where the plan journal lives and how often it
/// compacts into a snapshot. See [`crate::journal`] / [`crate::snapshot`]
/// / [`crate::recovery`] for the machinery.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding `journal.log` and `snapshot-*.snap`; created if
    /// missing. Restarting against the same directory warm-fills the
    /// cache.
    pub dir: PathBuf,
    /// Compact the journal into a snapshot every this many appends
    /// (0 disables snapshots; the journal then grows unboundedly until
    /// restart).
    pub snapshot_every: u64,
    /// `sync_data` per append: extends the durability guarantee from
    /// process death (`kill -9`) to machine death, at a large per-append
    /// cost. Off by default.
    pub fsync: bool,
    /// Test-only: stall recovery by this long before it starts, to make
    /// the not-ready window observable. `None` in production.
    pub recovery_delay: Option<Duration>,
}

impl DurabilityConfig {
    /// Durability rooted at `dir` with the default snapshot cadence
    /// (every 64 appends) and no per-append fsync.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            snapshot_every: 64,
            fsync: false,
            recovery_delay: None,
        }
    }
}

/// Tunables for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (read it back with
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Solver worker threads (the reactor itself is one extra thread).
    pub workers: usize,
    /// Requests served on one connection before it is closed with a
    /// `too_many_requests` error.
    pub max_requests_per_conn: usize,
    /// Idle deadline per connection: a peer that neither completes a
    /// request line nor drains its response within this window is
    /// disconnected. Partial bytes do not extend it.
    pub read_timeout: Duration,
    /// Total plans held by the LRU cache (0 disables caching).
    pub cache_capacity: usize,
    /// Lock shards for the cache.
    pub cache_shards: usize,
    /// Longest accepted request line, in bytes.
    pub max_line_bytes: usize,
    /// Admission-queue sizing (capacity and shed watermarks).
    pub admission: AdmissionConfig,
    /// How many queued requests one worker drains per wakeup; same-table
    /// plan requests in a drained batch are grouped adjacently so their
    /// solves share one warm discretization table. 1 disables batching.
    pub batch: usize,
    /// Fault-injection schedule; `None` in production.
    pub chaos: Option<ChaosPolicy>,
    /// Crash-safety settings; `None` serves memory-only (a restart loses
    /// the cache).
    pub durability: Option<DurabilityConfig>,
    /// Retain the last this many request timelines in a ring buffer,
    /// served by the `trace` op (0 disables server-side tracing; requests
    /// asking `trace: true` still get a per-request timeline).
    pub trace_buffer: usize,
    /// Emit one warn-level event with the full stage breakdown for any
    /// request slower than this many milliseconds (`None` disables).
    pub slow_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            max_requests_per_conn: 1024,
            read_timeout: Duration::from_secs(30),
            cache_capacity: 256,
            cache_shards: 8,
            max_line_bytes: 1 << 20,
            admission: AdmissionConfig::default(),
            batch: 8,
            chaos: None,
            durability: None,
            trace_buffer: 0,
            slow_ms: None,
        }
    }
}

/// Signals a running [`Server`] to drain and exit, from any thread.
#[derive(Debug, Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Raises the shutdown flag. Idempotent: signalling an already
    /// draining (or even finished) server is a no-op, never an error.
    pub fn signal(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_signaled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// What one plan solve produced, as shared through the single-flight
/// group: the plan, or the typed error every coalesced caller should
/// echo.
type SolveOutcome = Result<Arc<Plan>, (ErrorKind, String)>;

/// One complete decoded request crossing from the reactor to a worker.
/// The socket never crosses: workers compute, the reactor does all I/O.
struct WorkItem {
    /// Reactor slab slot of the owning connection.
    token: usize,
    /// Guards against slab-slot reuse between enqueue and completion.
    conn_id: u64,
    /// Zero-based request ordinal on its connection (chaos keying).
    req_index: u64,
    decoded: Result<Request, (ErrorKind, String)>,
    /// Protocol version the client spoke; the response answers in kind.
    version: u32,
    /// Deadline anchor: accept time for a connection's first request,
    /// line-arrival time after that.
    base: Instant,
    client_trace_id: Option<String>,
    op: &'static str,
    /// When decoding began, anchoring the request-latency histograms.
    started: Instant,
    enqueued_at: Instant,
    timeline: rsj_obs::Timeline,
}

/// A finished response travelling back to the reactor.
struct WorkResult {
    token: usize,
    conn_id: u64,
    /// The encoded response line (newline included); `None` means the
    /// handler panicked and the connection must close unanswered.
    payload: Option<String>,
    /// Close the connection once the payload is flushed.
    close: bool,
    timeline: rsj_obs::Timeline,
    op: &'static str,
}

/// Worker→reactor return channel: a locked queue plus the poller's
/// self-pipe waker so a parked reactor notices completions immediately.
struct Outbox {
    queue: Mutex<VecDeque<WorkResult>>,
    waker: OnceLock<crate::poll::Waker>,
}

impl Outbox {
    fn new() -> Self {
        Self {
            queue: Mutex::new(VecDeque::new()),
            waker: OnceLock::new(),
        }
    }

    fn push(&self, result: WorkResult) {
        self.queue.lock().expect("outbox lock").push_back(result);
        if let Some(waker) = self.waker.get() {
            waker.wake();
        }
    }

    fn take(&self) -> VecDeque<WorkResult> {
        std::mem::take(&mut *self.queue.lock().expect("outbox lock"))
    }
}

/// The journal's write-side state, installed once recovery completes.
struct JournalState {
    writer: JournalWriter,
    store: SnapshotStore,
    appends_since_snapshot: u64,
    next_generation: u64,
    snapshot_every: u64,
}

struct Shared {
    config: ServerConfig,
    cache: PlanCache,
    flights: SingleFlight<SolveOutcome>,
    admission: AdmissionQueue<WorkItem>,
    outbox: Outbox,
    shutdown: Arc<AtomicBool>,
    /// Raised once startup recovery (if any) has finished; `plan`
    /// requests are shed with a typed `not_ready` until then.
    recovered: AtomicBool,
    /// What recovery found, for the `health` op.
    recovery: Mutex<Option<RecoveryStats>>,
    /// The journal writer; `None` until recovery installs it (and always
    /// `None` without a [`DurabilityConfig`]).
    journal: Mutex<Option<JournalState>>,
    /// Completed request timelines, served by the `trace` op; `None`
    /// when the server runs without `--trace-buffer`.
    trace: Option<rsj_obs::TraceRing>,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn is_recovered(&self) -> bool {
        self.recovered.load(Ordering::SeqCst)
    }

    /// Readiness: recovered, not draining, and the queue below its shed
    /// watermark — the same gate an orchestrator should route traffic on.
    fn is_ready(&self) -> bool {
        self.is_recovered()
            && !self.shutting_down()
            && self.admission.depth() < self.admission.config().high_watermark
    }

    fn health_info(&self) -> HealthInfo {
        HealthInfo {
            ready: self.is_ready(),
            recovered: self.is_recovered(),
            draining: self.shutting_down(),
            queue_depth: self.admission.depth(),
            cache_entries: self.cache.len(),
            recovery: self
                .recovery
                .lock()
                .expect("recovery lock poisoned")
                .clone(),
        }
    }

    /// Journals one solved plan (append-before-response, so anything a
    /// client heard back survives `kill -9`), compacting into a snapshot
    /// every `snapshot_every` appends. Journal failures are logged and
    /// counted, never propagated: serving degrades to memory-only rather
    /// than failing requests over a full disk.
    fn journal_append(&self, key: &str, plan: &Plan) {
        let mut guard = self.journal.lock().expect("journal lock poisoned");
        let Some(state) = guard.as_mut() else { return };
        let record = JournalRecord {
            key: key.to_string(),
            plan: plan.clone(),
        };
        match state.writer.append(&record) {
            Ok(_) => counter("rsj_serve_journal_appends_total").inc(),
            Err(e) => {
                counter("rsj_serve_journal_errors_total").inc();
                rsj_obs::warn!("journal append failed (serving continues memory-only): {e}");
                return;
            }
        }
        rsj_obs::global_registry()
            .gauge("rsj_serve_cache_entries")
            .set(self.cache.len() as f64);
        state.appends_since_snapshot += 1;
        if state.snapshot_every > 0 && state.appends_since_snapshot >= state.snapshot_every {
            let entries = self.cache.entries();
            let records: Vec<JournalRecord> = entries
                .into_iter()
                .map(|(key, plan)| JournalRecord {
                    key,
                    plan: (*plan).clone(),
                })
                .collect();
            match state.store.write(state.next_generation, &records) {
                Ok(path) => {
                    counter("rsj_serve_snapshots_total").inc();
                    rsj_obs::info!(
                        "snapshot generation {} written ({} records) to {}",
                        state.next_generation,
                        records.len(),
                        path.display()
                    );
                    state.next_generation += 1;
                    state.appends_since_snapshot = 0;
                    // The snapshot durably holds everything; the journal
                    // restarts empty. Order matters: truncating *before*
                    // the rename lands would open a loss window.
                    if let Err(e) = state.writer.reset() {
                        counter("rsj_serve_journal_errors_total").inc();
                        rsj_obs::warn!("journal truncate after snapshot failed: {e}");
                    }
                }
                Err(e) => {
                    counter("rsj_serve_journal_errors_total").inc();
                    rsj_obs::warn!("snapshot write failed (journal keeps growing): {e}");
                }
            }
        }
    }
}

/// A bound (but not yet running) planning server.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and prepares the cache; call [`run`](Self::run)
    /// to start serving.
    pub fn bind(config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let cache = PlanCache::new(config.cache_capacity, config.cache_shards);
        let admission = AdmissionQueue::new(config.admission);
        let trace = (config.trace_buffer > 0).then(|| rsj_obs::TraceRing::new(config.trace_buffer));
        let shared = Arc::new(Shared {
            config,
            cache,
            flights: SingleFlight::new(),
            admission,
            outbox: Outbox::new(),
            shutdown: Arc::new(AtomicBool::new(false)),
            recovered: AtomicBool::new(false),
            recovery: Mutex::new(None),
            journal: Mutex::new(None),
            trace,
        });
        Ok(Self {
            local_addr,
            listener,
            shared,
        })
    }

    /// The address the server actually listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that can signal shutdown from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shared.shutdown))
    }

    /// Serves until shutdown is signaled (by a `shutdown` request or a
    /// [`ShutdownHandle`]), then drains in-flight requests and returns.
    pub fn run(self) -> std::io::Result<()> {
        let Server {
            listener,
            local_addr,
            shared,
        } = self;
        listener.set_nonblocking(true)?;
        rsj_obs::info!("rsj-serve listening on {local_addr}");

        // Recovery runs concurrently with the reactor so the server
        // answers `ping`/`health` from the first instant; `plan` requests
        // get a typed `not_ready` until the cache is warm.
        let recovery_thread = match shared.config.durability.clone() {
            Some(durability) => {
                let shared = Arc::clone(&shared);
                Some(
                    std::thread::Builder::new()
                        .name("rsj-serve-recovery".to_string())
                        .spawn(move || run_recovery(&shared, &durability))
                        .expect("spawn recovery thread"),
                )
            }
            None => {
                // Nothing to recover: ready as soon as we listen.
                shared.recovered.store(true, Ordering::SeqCst);
                None
            }
        };

        // The waker must be installed before any worker can complete a
        // request, so every outbox push can interrupt the reactor's wait.
        let poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READABLE)?;
        let _ = shared.outbox.waker.set(poller.waker());

        let workers: Vec<_> = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rsj-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        let mut reactor = Reactor {
            poller,
            listener: Some(listener),
            shared: Arc::clone(&shared),
            conns: Vec::new(),
            free: Vec::new(),
            recycled: Vec::new(),
            next_conn_id: 0,
            draining: false,
            drain_deadline: None,
        };
        let result = reactor.run();
        drop(reactor);

        // Idempotent if the reactor already began the drain; on the error
        // path it is what wakes the workers so the join below can finish.
        shared.admission.close();
        for w in workers {
            let _ = w.join();
        }
        if let Some(t) = recovery_thread {
            let _ = t.join();
        }
        // Force the journal tail to disk on a clean exit: a graceful
        // drain should leave nothing for the OS page cache to lose.
        if let Some(state) = shared
            .journal
            .lock()
            .expect("journal lock poisoned")
            .as_mut()
        {
            if let Err(e) = state.writer.sync() {
                rsj_obs::warn!("journal sync on drain failed: {e}");
            }
        }
        rsj_obs::info!("rsj-serve stopped");
        result
    }
}

/// Slab token of the listener; connection tokens are slab indices, so
/// they stay far below this.
const TOKEN_LISTENER: usize = usize::MAX - 1;

/// Upper bound on how long the reactor parks in `wait` before rechecking
/// the shutdown flag and the idle deadlines.
const EVENT_LOOP_TICK: Duration = Duration::from_millis(25);

/// Complete-but-undispatched request lines buffered per connection before
/// its readable interest is paused (pipelining backpressure).
const PENDING_LINE_CAP: usize = 128;

/// How long a drain waits for in-flight requests and unflushed responses
/// before force-closing what remains.
const DRAIN_GRACE: Duration = Duration::from_secs(10);

/// How often a blocked worker `pop` wakes up to check the queue state;
/// bounds how long a drain can wait on idle workers.
const READ_POLL: Duration = Duration::from_millis(100);

/// Read chunk size for connection sockets.
const READ_CHUNK: usize = 16 * 1024;

/// A deferred timeline finish: the `write` span can only be recorded
/// once the response has fully reached the socket.
struct PendingFinish {
    timeline: rsj_obs::Timeline,
    op: &'static str,
    write_started: Instant,
}

/// Per-connection reactor state. All I/O for the connection happens on
/// the reactor thread; at most one request per connection is in flight
/// with the workers at a time, which preserves per-connection ordering.
struct Conn {
    stream: TcpStream,
    conn_id: u64,
    accepted_at: Instant,
    /// Raw bytes read but not yet split into lines.
    read_buf: Vec<u8>,
    /// Where the next newline scan resumes (everything before it has
    /// already been scanned).
    scan_from: usize,
    /// Complete request lines awaiting dispatch, with arrival times.
    lines: VecDeque<(String, Instant)>,
    /// The response currently being written, and how much has gone out.
    out: Vec<u8>,
    out_pos: usize,
    /// Whether a request from this connection is with the workers.
    in_flight: bool,
    /// Requests started on this connection (for `max_requests_per_conn`).
    served: usize,
    /// `Some(accept time)` until the first request dispatches: the first
    /// deadline counts time spent queued behind the reactor.
    first_base: Option<Instant>,
    /// Evict when now passes this with nothing in flight. Refreshed only
    /// by *complete* request lines and *fully flushed* responses — a
    /// byte-dripping peer never extends it.
    idle_at: Instant,
    eof: bool,
    close_after_write: bool,
    finish: Option<PendingFinish>,
    /// The interest currently registered, to dedupe `reregister` calls.
    interest: Interest,
}

/// How ingesting freshly read bytes ended.
enum Ingest {
    Ok,
    /// A line (or an unterminated partial) exceeded `max_line_bytes`.
    TooLarge,
    /// A line was not valid UTF-8; close without a reply, like the old
    /// buffered reader did on an invalid-data error.
    BadUtf8,
}

/// Splits `read_buf` into complete lines, enforcing the line-length cap
/// against partials too (so a peer cannot grow the buffer unboundedly by
/// never sending a newline). Blank lines are skipped without counting.
fn ingest_lines(conn: &mut Conn, max_line_bytes: usize, read_timeout: Duration) -> Ingest {
    loop {
        match conn.read_buf[conn.scan_from..]
            .iter()
            .position(|b| *b == b'\n')
        {
            Some(rel) => {
                let end = conn.scan_from + rel;
                let raw: Vec<u8> = conn.read_buf.drain(..=end).collect();
                conn.scan_from = 0;
                // The cap counts the newline, matching the old reader.
                if raw.len() > max_line_bytes {
                    return Ingest::TooLarge;
                }
                let Ok(line) = String::from_utf8(raw) else {
                    return Ingest::BadUtf8;
                };
                if line.trim().is_empty() {
                    continue;
                }
                conn.lines.push_back((line, Instant::now()));
                conn.idle_at = Instant::now() + read_timeout;
            }
            None => {
                conn.scan_from = conn.read_buf.len();
                if conn.read_buf.len() > max_line_bytes {
                    return Ingest::TooLarge;
                }
                if conn.eof && !conn.read_buf.is_empty() {
                    // EOF: a partial unterminated line is still one
                    // request.
                    let raw = std::mem::take(&mut conn.read_buf);
                    conn.scan_from = 0;
                    let Ok(line) = String::from_utf8(raw) else {
                        return Ingest::BadUtf8;
                    };
                    if !line.trim().is_empty() {
                        conn.lines.push_back((line, Instant::now()));
                    }
                }
                return Ingest::Ok;
            }
        }
    }
}

/// The event loop: owns the poller, the listener and every connection.
struct Reactor {
    poller: Poller,
    listener: Option<TcpListener>,
    shared: Arc<Shared>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Tokens freed this iteration; merged into `free` only at the next
    /// loop top so a stale event in the same batch cannot hit a new
    /// connection that reused the slot.
    recycled: Vec<usize>,
    next_conn_id: u64,
    draining: bool,
    drain_deadline: Option<Instant>,
}

impl Reactor {
    fn run(&mut self) -> io::Result<()> {
        let mut events: Vec<Event> = Vec::with_capacity(256);
        loop {
            self.free.append(&mut self.recycled);
            if self.shared.shutting_down() && !self.draining {
                self.begin_drain();
            }
            if self.draining {
                let done = self.conns.iter().all(Option::is_none);
                let expired = self
                    .drain_deadline
                    .is_some_and(|d| Instant::now() >= d);
                if done {
                    return Ok(());
                }
                if expired {
                    for token in 0..self.conns.len() {
                        self.close_conn(token);
                    }
                    return Ok(());
                }
            }
            self.poller.wait(&mut events, Some(EVENT_LOOP_TICK))?;
            for i in 0..events.len() {
                let ev = events[i];
                if ev.token == TOKEN_LISTENER {
                    self.accept_ready()?;
                    continue;
                }
                if ev.readable || ev.hangup {
                    self.read_conn(ev.token);
                }
                if ev.writable {
                    self.flush_conn(ev.token);
                }
            }
            for result in self.shared.outbox.take() {
                self.apply_result(result);
            }
            self.sweep_idle();
        }
    }

    /// Stop accepting, close the queue, and close every connection with
    /// nothing left to answer; the rest drain under [`DRAIN_GRACE`].
    fn begin_drain(&mut self) {
        self.draining = true;
        self.drain_deadline = Some(Instant::now() + DRAIN_GRACE);
        rsj_obs::info!(
            "rsj-serve draining {} workers",
            self.shared.config.workers.max(1)
        );
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.deregister(listener.as_raw_fd());
        }
        self.shared.admission.close();
        let idle: Vec<usize> = self
            .conns
            .iter()
            .enumerate()
            .filter_map(|(t, slot)| slot.as_ref().map(|c| (t, c)))
            .filter(|(_, c)| !c.in_flight && c.out.is_empty() && c.finish.is_none())
            .map(|(t, _)| t)
            .collect();
        for token in idle {
            rsj_obs::debug!("dropping idle connection for drain");
            self.close_conn(token);
        }
    }

    fn accept_ready(&mut self) -> io::Result<()> {
        loop {
            let Some(listener) = &self.listener else {
                return Ok(());
            };
            match listener.accept() {
                Ok((stream, _peer)) => {
                    counter("rsj_serve_connections_total").inc();
                    // Responses are single small lines; leaving Nagle on
                    // costs a delayed-ACK round trip (~40ms) per request.
                    let _ = stream.set_nodelay(true);
                    if let Err(e) = stream.set_nonblocking(true) {
                        rsj_obs::warn!("cannot make accepted socket nonblocking: {e}");
                        continue;
                    }
                    let now = Instant::now();
                    let conn_id = self.next_conn_id;
                    self.next_conn_id += 1;
                    let token = match self.free.pop() {
                        Some(t) => t,
                        None => {
                            self.conns.push(None);
                            self.conns.len() - 1
                        }
                    };
                    if let Err(e) =
                        self.poller
                            .register(stream.as_raw_fd(), token, Interest::READABLE)
                    {
                        rsj_obs::warn!("cannot register accepted socket: {e}");
                        self.free.push(token);
                        continue;
                    }
                    self.conns[token] = Some(Conn {
                        stream,
                        conn_id,
                        accepted_at: now,
                        read_buf: Vec::new(),
                        scan_from: 0,
                        lines: VecDeque::new(),
                        out: Vec::new(),
                        out_pos: 0,
                        in_flight: false,
                        served: 0,
                        first_base: Some(now),
                        idle_at: now + self.shared.config.read_timeout,
                        eof: false,
                        close_after_write: false,
                        finish: None,
                        interest: Interest::READABLE,
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Drain the socket to `WouldBlock`/EOF, split complete lines, and
    /// dispatch what became runnable.
    fn read_conn(&mut self, token: usize) {
        let max_line_bytes = self.shared.config.max_line_bytes;
        let read_timeout = self.shared.config.read_timeout;
        let ingest;
        {
            let Some(Some(conn)) = self.conns.get_mut(token) else {
                return;
            };
            let mut chunk = [0u8; READ_CHUNK];
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.eof = true;
                        break;
                    }
                    Ok(n) => conn.read_buf.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        rsj_obs::debug!("connection ended with I/O error: {e}");
                        self.close_conn(token);
                        return;
                    }
                }
            }
            ingest = ingest_lines(conn, max_line_bytes, read_timeout);
        }
        match ingest {
            Ingest::Ok => {}
            Ingest::BadUtf8 => {
                rsj_obs::debug!("connection sent a non-UTF-8 request line");
                self.close_conn(token);
                return;
            }
            Ingest::TooLarge => {
                counter("rsj_serve_errors_total").inc();
                let response = Response::error(
                    ErrorKind::RequestTooLarge,
                    format!("request exceeds {max_line_bytes} bytes"),
                );
                self.queue_direct_response(token, &response);
                return;
            }
        }
        self.pump(token);
        self.maybe_close_finished(token);
        self.update_interest(token);
    }

    /// Dispatch queued lines: decode on the reactor, then hand the
    /// complete decoded request to the workers (or shed it, or answer a
    /// connection-limit error directly). At most one request per
    /// connection is in flight at a time.
    fn pump(&mut self, token: usize) {
        if self.draining {
            return;
        }
        let shared = Arc::clone(&self.shared);
        loop {
            let (line, line_at, conn_id, served, is_first, base, accepted_at);
            {
                let Some(Some(conn)) = self.conns.get_mut(token) else {
                    return;
                };
                if conn.in_flight
                    || !conn.out.is_empty()
                    || conn.finish.is_some()
                    || conn.close_after_write
                {
                    return;
                }
                let Some((l, at)) = conn.lines.pop_front() else {
                    return;
                };
                conn.served += 1;
                conn_id = conn.conn_id;
                served = conn.served;
                is_first = conn.first_base.is_some();
                base = conn.first_base.take().unwrap_or(at);
                accepted_at = conn.accepted_at;
                line = l;
                line_at = at;
            }
            if served > shared.config.max_requests_per_conn {
                counter("rsj_serve_errors_total").inc();
                let response = Response::error(
                    ErrorKind::TooManyRequests,
                    format!(
                        "connection exceeded {} requests; reconnect to continue",
                        shared.config.max_requests_per_conn
                    ),
                );
                self.queue_direct_response(token, &response);
                return;
            }
            let started = Instant::now();
            let decoded = decode_request(&line);
            let decode_ended = Instant::now();
            let version = decoded
                .as_ref()
                .map(|r| r.version())
                .unwrap_or(PROTOCOL_VERSION);
            let (client_trace_id, want_trace) = match &decoded {
                Ok(
                    Request::Plan {
                        trace_id, trace, ..
                    }
                    | Request::PlanBatch {
                        trace_id, trace, ..
                    },
                ) => (sanitize_trace_id(trace_id.as_deref()), *trace),
                _ => (None, false),
            };
            let op = op_name(&decoded);
            // A timeline exists when the server retains traces, when slow
            // logging needs a breakdown, or when this request asked for
            // one. Otherwise the disabled timeline allocates nothing.
            let tracing = want_trace || shared.trace.is_some() || shared.config.slow_ms.is_some();
            let timeline = if tracing {
                let mut t = rsj_obs::Timeline::begin(rsj_obs::TraceContext::generate(), base);
                if let Some(id) = &client_trace_id {
                    t.adopt_trace_id(id.clone());
                }
                if is_first {
                    // The connection sat between accept and its first
                    // complete line: client think time, not server
                    // latency — recorded so the timeline has no
                    // unattributed gap, and named so the slow-warn gate
                    // can subtract it.
                    t.record_span("read_wait", accepted_at, line_at);
                }
                t.record_span("decode", started, decode_ended);
                t
            } else {
                rsj_obs::Timeline::disabled()
            };
            let item = WorkItem {
                token,
                conn_id,
                req_index: (served - 1) as u64,
                decoded,
                version,
                base,
                client_trace_id,
                op,
                started,
                enqueued_at: Instant::now(),
                timeline,
            };
            match shared.admission.try_admit(item) {
                Ok(()) => {
                    queue_depth_gauge(&shared);
                    if let Some(Some(conn)) = self.conns.get_mut(token) {
                        conn.in_flight = true;
                    }
                    return;
                }
                Err(rejected) => {
                    // Shed on the reactor thread: a typed fast-reject
                    // costs one encode and one buffered write, never a
                    // worker slot.
                    counter("rsj_serve_shed_total").inc();
                    let response = Response::error_traced(
                        ErrorKind::Overloaded,
                        format!(
                            "admission queue above its high watermark ({} queued ≥ {}); retry with backoff",
                            shared.admission.depth(),
                            shared.admission.config().high_watermark
                        ),
                        rejected.client_trace_id,
                    )
                    .with_version(rejected.version);
                    self.queue_direct_response(token, &response);
                    return;
                }
            }
        }
    }

    /// Queue a reactor-generated response (shed / limit / oversize) and
    /// close the connection once it is flushed.
    fn queue_direct_response(&mut self, token: usize, response: &Response) {
        let Ok(mut body) = encode(response) else {
            self.close_conn(token);
            return;
        };
        body.push('\n');
        {
            let Some(Some(conn)) = self.conns.get_mut(token) else {
                return;
            };
            conn.out = body.into_bytes();
            conn.out_pos = 0;
            conn.close_after_write = true;
        }
        self.flush_conn(token);
    }

    /// A worker finished a request: queue its response for writing (or
    /// close the connection if the handler panicked).
    fn apply_result(&mut self, result: WorkResult) {
        let token = result.token;
        {
            let Some(Some(conn)) = self.conns.get_mut(token) else {
                return;
            };
            if conn.conn_id != result.conn_id {
                return;
            }
            conn.in_flight = false;
        }
        let Some(payload) = result.payload else {
            self.close_conn(token);
            return;
        };
        {
            let Some(Some(conn)) = self.conns.get_mut(token) else {
                return;
            };
            conn.out = payload.into_bytes();
            conn.out_pos = 0;
            conn.idle_at = Instant::now() + self.shared.config.read_timeout;
            conn.finish = Some(PendingFinish {
                timeline: result.timeline,
                op: result.op,
                write_started: Instant::now(),
            });
            if result.close {
                conn.close_after_write = true;
            }
        }
        self.flush_conn(token);
    }

    /// Write as much of the pending response as the socket accepts; a
    /// short write parks on writable interest and resumes on the next
    /// readiness event.
    fn flush_conn(&mut self, token: usize) {
        loop {
            let Some(Some(conn)) = self.conns.get_mut(token) else {
                return;
            };
            if conn.out_pos >= conn.out.len() {
                break;
            }
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    self.close_conn(token);
                    return;
                }
                Ok(n) => {
                    let Some(Some(conn)) = self.conns.get_mut(token) else {
                        return;
                    };
                    conn.out_pos += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.update_interest(token);
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    rsj_obs::debug!("connection ended with I/O error: {e}");
                    self.close_conn(token);
                    return;
                }
            }
        }
        // Fully flushed: record the write span, finish the timeline, and
        // either close or look for the next pipelined request.
        let shared = Arc::clone(&self.shared);
        let finish;
        let close;
        {
            let Some(Some(conn)) = self.conns.get_mut(token) else {
                return;
            };
            if conn.out.is_empty() && conn.finish.is_none() && !conn.close_after_write {
                return; // nothing was pending (spurious writable event)
            }
            conn.out.clear();
            conn.out_pos = 0;
            conn.idle_at = Instant::now() + shared.config.read_timeout;
            finish = conn.finish.take();
            close = conn.close_after_write;
        }
        if let Some(pf) = finish {
            let mut timeline = pf.timeline;
            timeline.record_span("write", pf.write_started, Instant::now());
            if let Some(record) = timeline.finish(pf.op) {
                if let Some(slow_ms) = shared.config.slow_ms {
                    if attributable_us(&record) >= slow_ms.saturating_mul(1_000) {
                        warn_slow_request(&record, slow_ms);
                    }
                }
                if let Some(ring) = &shared.trace {
                    ring.push(record);
                }
            }
        }
        if close || self.draining {
            self.close_conn(token);
            return;
        }
        self.pump(token);
        self.maybe_close_finished(token);
        self.update_interest(token);
    }

    /// Close a connection that has reached EOF with nothing left to do.
    fn maybe_close_finished(&mut self, token: usize) {
        let done = {
            let Some(Some(conn)) = self.conns.get_mut(token) else {
                return;
            };
            conn.eof && conn.lines.is_empty() && !conn.in_flight && conn.out.is_empty()
        };
        if done {
            self.close_conn(token);
        }
    }

    /// Converge the registered interest with what the connection needs:
    /// readable unless paused (EOF, drain, or a full pipeline backlog),
    /// writable only while a response is partially written.
    fn update_interest(&mut self, token: usize) {
        let draining = self.draining;
        let Some(Some(conn)) = self.conns.get_mut(token) else {
            return;
        };
        let desired = Interest {
            readable: !conn.eof && !draining && conn.lines.len() < PENDING_LINE_CAP,
            writable: conn.out_pos < conn.out.len(),
        };
        if desired != conn.interest {
            conn.interest = desired;
            let fd = conn.stream.as_raw_fd();
            let _ = self.poller.reregister(fd, token, desired);
        }
    }

    /// Evict connections whose idle deadline passed. `in_flight` protects
    /// a slow solve; everything else — including a peer refusing to drain
    /// its response — is fair game.
    fn sweep_idle(&mut self) {
        let now = Instant::now();
        let idle: Vec<usize> = self
            .conns
            .iter()
            .enumerate()
            .filter_map(|(t, slot)| slot.as_ref().map(|c| (t, c)))
            .filter(|(_, c)| !c.in_flight && now >= c.idle_at)
            .map(|(t, _)| t)
            .collect();
        for token in idle {
            rsj_obs::debug!("closing idle connection");
            self.close_conn(token);
        }
    }

    fn close_conn(&mut self, token: usize) {
        let Some(slot) = self.conns.get_mut(token) else {
            return;
        };
        let Some(conn) = slot.take() else {
            return;
        };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        self.recycled.push(token);
        // Dropping `conn` closes the socket.
    }
}

/// The recovery thread body: warm the cache from disk, install the
/// journal writer, flip `recovered`. An unusable journal directory is
/// downgraded to memory-only serving with a warning — the server still
/// becomes ready (an operator losing durability beats an operator losing
/// serving).
fn run_recovery(shared: &Shared, durability: &DurabilityConfig) {
    if let Some(delay) = durability.recovery_delay {
        std::thread::sleep(delay);
    }
    match recover(&durability.dir, &shared.cache) {
        Ok(stats) => {
            *shared.recovery.lock().expect("recovery lock poisoned") = Some(stats);
        }
        Err(e) => {
            rsj_obs::warn!(
                "recovery failed for {}; serving memory-only: {e}",
                durability.dir.display()
            );
        }
    }
    match open_journal(durability) {
        Ok(state) => {
            *shared.journal.lock().expect("journal lock poisoned") = Some(state);
        }
        Err(e) => {
            rsj_obs::warn!(
                "cannot open journal in {}; serving memory-only: {e}",
                durability.dir.display()
            );
        }
    }
    shared.recovered.store(true, Ordering::SeqCst);
    rsj_obs::info!("rsj-serve ready ({} plans warm)", shared.cache.len());
}

fn open_journal(durability: &DurabilityConfig) -> std::io::Result<JournalState> {
    let store = SnapshotStore::open(&durability.dir)?;
    let next_generation = store.next_generation()?;
    let writer = JournalWriter::open(durability.dir.join(JOURNAL_FILE), durability.fsync)
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    Ok(JournalState {
        writer,
        store,
        appends_since_snapshot: 0,
        next_generation,
        snapshot_every: durability.snapshot_every,
    })
}

/// One worker: dequeue a batch, group same-table plans adjacently, and
/// handle each, absorbing handler panics so a poisoned request (or an
/// injected chaos panic) never shrinks the pool.
fn worker_loop(shared: &Shared) {
    let batch = shared.config.batch.max(1);
    loop {
        match shared.admission.pop(READ_POLL) {
            Pop::Item(first) => {
                let mut items = vec![first];
                while items.len() < batch {
                    match shared.admission.try_pop() {
                        Some(item) => items.push(item),
                        None => break,
                    }
                }
                queue_depth_gauge(shared);
                if items.len() > 1 {
                    // Stable decorate-sort: plan requests over the same
                    // (distribution, cost) land adjacently so consecutive
                    // solves reuse one warm discretization table;
                    // non-plan ops sort first in FIFO order.
                    let mut keyed: Vec<(Option<String>, usize, WorkItem)> = items
                        .into_iter()
                        .enumerate()
                        .map(|(i, item)| (table_order_key(&item), i, item))
                        .collect();
                    keyed.sort_by(|a, b| (a.0.as_deref(), a.1).cmp(&(b.0.as_deref(), b.1)));
                    items = keyed.into_iter().map(|(_, _, item)| item).collect();
                }
                for item in items {
                    process_item(shared, item);
                }
            }
            Pop::TimedOut => {}
            Pop::Closed => break,
        }
    }
}

/// The batch-grouping key: identical keys mean the solves share the same
/// discretized evaluation table (distribution + exact cost bits), so
/// running them back-to-back makes every solve after the first warm.
fn table_order_key(item: &WorkItem) -> Option<String> {
    match &item.decoded {
        Ok(Request::Plan {
            distribution, cost, ..
        }) => {
            let dist = serde_json::to_string(distribution).ok()?;
            let cost = match cost {
                Some(c) => format!(
                    "{:x},{:x},{:x}",
                    c.alpha.to_bits(),
                    c.beta.to_bits(),
                    c.gamma.to_bits()
                ),
                None => "default".to_string(),
            };
            Some(format!("{dist}|{cost}"))
        }
        _ => None,
    }
}

/// Handle one item behind a panic shield; a panic closes that connection
/// only (the reactor sees `payload: None`).
fn process_item(shared: &Shared, item: WorkItem) {
    let token = item.token;
    let conn_id = item.conn_id;
    let outcome =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handle_item(shared, item)));
    match outcome {
        Ok(result) => shared.outbox.push(result),
        Err(_) => {
            counter("rsj_serve_worker_panics_total").inc();
            rsj_obs::warn!("worker survived a connection-handler panic");
            shared.outbox.push(WorkResult {
                token,
                conn_id,
                payload: None,
                close: true,
                timeline: rsj_obs::Timeline::disabled(),
                op: "invalid",
            });
        }
    }
}

/// Worker-side request handling: chaos injection, dispatch, metrics, and
/// response encoding. Pure compute — no socket I/O happens here.
fn handle_item(shared: &Shared, item: WorkItem) -> WorkResult {
    let WorkItem {
        token,
        conn_id,
        req_index,
        decoded,
        version,
        base,
        client_trace_id,
        op,
        started,
        enqueued_at,
        mut timeline,
    } = item;
    let dequeued = Instant::now();
    rsj_obs::global_registry()
        .histogram("rsj_serve_queue_wait_seconds")
        .observe((dequeued - enqueued_at).as_secs_f64());
    timeline.record_span("queue_wait", enqueued_at, dequeued);
    if let Some(chaos) = &shared.config.chaos {
        if let Some(delay) = chaos.dispatch_delay(conn_id, req_index) {
            std::thread::sleep(delay);
        }
        if chaos.worker_panics(conn_id, req_index) {
            panic!("chaos: injected worker panic (conn {conn_id}, request {req_index})");
        }
    }
    counter("rsj_serve_requests_total").inc();
    // Generate-or-adopt: every response carries the client's id when it
    // sent one, or the server-minted id when tracing is on.
    let trace_id = timeline.trace_id().or_else(|| client_trace_id.clone());
    let (response, is_shutdown) = dispatch(shared, decoded, base, &mut timeline);
    let response = response.with_trace_id(trace_id.clone()).with_version(version);
    if let Response::Error { kind, .. } = &response {
        counter("rsj_serve_errors_total").inc();
        if *kind == ErrorKind::DeadlineExceeded {
            counter("rsj_serve_deadline_exceeded_total").inc();
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let registry = rsj_obs::global_registry();
    let aggregate = registry.histogram("rsj_serve_request_seconds");
    let per_op = registry.histogram(per_op_histogram(op));
    match &trace_id {
        Some(id) => {
            aggregate.observe_with_exemplar(elapsed, id);
            per_op.observe_with_exemplar(elapsed, id);
        }
        None => {
            aggregate.observe(elapsed);
            per_op.observe(elapsed);
        }
    }
    let encode_started = Instant::now();
    let mut payload = match encode(&response) {
        Ok(body) => body,
        Err(e) => {
            rsj_obs::warn!("response encoding failed: {e}");
            r#"{"status":"error","v":1,"kind":"internal","message":"response encoding failed"}"#
                .to_string()
        }
    };
    // One buffer per response: the reactor writes it in a single
    // (possibly resumed) stream, so Nagle never sees a lone `\n`.
    payload.push('\n');
    timeline.record_span("encode", encode_started, Instant::now());
    if is_shutdown {
        shared.shutdown.store(true, Ordering::SeqCst);
    }
    WorkResult {
        token,
        conn_id,
        payload: Some(payload),
        close: is_shutdown,
        timeline,
        op,
    }
}

fn counter(name: &str) -> rsj_obs::Counter {
    rsj_obs::global_registry().counter(name)
}

fn queue_depth_gauge(shared: &Shared) {
    rsj_obs::global_registry()
        .gauge("rsj_serve_queue_depth")
        .set(shared.admission.depth() as f64);
}

/// The request's op as a static label (for per-op metrics and timeline
/// records) — no allocation on the request path.
fn op_name(decoded: &Result<Request, (ErrorKind, String)>) -> &'static str {
    match decoded {
        Ok(Request::Plan { .. }) => "plan",
        Ok(Request::PlanBatch { .. }) => "plan_batch",
        Ok(Request::Trace { .. }) => "trace",
        Ok(Request::Metrics { .. }) => "metrics",
        Ok(Request::Ping { .. }) => "ping",
        Ok(Request::Health { .. }) => "health",
        Ok(Request::Ready { .. }) => "ready",
        Ok(Request::Shutdown { .. }) => "shutdown",
        Err(_) => "invalid",
    }
}

/// The per-op latency series: `rsj_serve_request_seconds_<op>`. Static
/// names (the registry is unlabelled) so the hot path never formats.
/// The aggregate `rsj_serve_request_seconds` series is kept alongside
/// for dashboard continuity.
fn per_op_histogram(op: &str) -> &'static str {
    match op {
        "plan" => "rsj_serve_request_seconds_plan",
        "plan_batch" => "rsj_serve_request_seconds_plan_batch",
        "trace" => "rsj_serve_request_seconds_trace",
        "metrics" => "rsj_serve_request_seconds_metrics",
        "ping" => "rsj_serve_request_seconds_ping",
        "health" => "rsj_serve_request_seconds_health",
        "ready" => "rsj_serve_request_seconds_ready",
        "shutdown" => "rsj_serve_request_seconds_shutdown",
        _ => "rsj_serve_request_seconds_invalid",
    }
}

/// The server-attributable share of a request's wall time: everything
/// except `read_wait`, the span spent waiting for the client's first
/// bytes after accept. That wait belongs to the client — a peer that
/// connects and sits idle before sending must not read as a slow
/// *request* — so the `--slow-ms` gate compares against this, not
/// `total_us`.
fn attributable_us(record: &rsj_obs::TimelineRecord) -> u64 {
    record
        .total_us
        .saturating_sub(record.stage_us("read_wait").unwrap_or(0))
}

/// The single warn-level slow-request event: trace id, op, total and the
/// full stage breakdown in one line, so log pipelines keep it atomic.
fn warn_slow_request(record: &rsj_obs::TimelineRecord, slow_ms: u64) {
    use std::fmt::Write as _;
    let mut stages = String::new();
    for s in &record.stages {
        let _ = write!(
            stages,
            " {}={:.3}ms",
            s.name,
            s.duration_us() as f64 / 1_000.0
        );
    }
    rsj_obs::warn!(
        "slow request trace_id={} op={} total={:.3}ms threshold={slow_ms}ms stages:{stages}",
        record.trace_id,
        record.op,
        record.total_us as f64 / 1_000.0,
    );
}

/// Answers a `trace` op: the ring's newest records, filtered, as wire
/// timelines. Filters apply across the whole ring; `last` caps the
/// filtered result.
fn handle_trace(
    shared: &Shared,
    last: Option<usize>,
    min_duration_ms: Option<f64>,
    trace_id: Option<String>,
) -> Response {
    const TRACE_DEFAULT_LAST: usize = 32;
    let Some(ring) = &shared.trace else {
        return Response::error(
            ErrorKind::TracingDisabled,
            "server runs without --trace-buffer; no timelines are retained",
        );
    };
    let timelines = ring
        .recent(ring.capacity())
        .into_iter()
        .filter(|r| min_duration_ms.is_none_or(|ms| r.total_us as f64 / 1_000.0 >= ms))
        .filter(|r| trace_id.as_deref().is_none_or(|id| r.trace_id == id))
        .take(last.unwrap_or(TRACE_DEFAULT_LAST))
        .map(|r| (*r).clone())
        .collect();
    Response::Trace {
        v: PROTOCOL_VERSION,
        timelines,
    }
}

/// Answers one decoded request; `base` anchors the request's deadline
/// and `timeline` accumulates its stage intervals. The bool is
/// "shutdown requested".
fn dispatch(
    shared: &Shared,
    decoded: Result<Request, (ErrorKind, String)>,
    base: Instant,
    timeline: &mut rsj_obs::Timeline,
) -> (Response, bool) {
    let request = match decoded {
        Ok(request) => request,
        Err((kind, message)) => return (Response::error(kind, message), false),
    };
    match request {
        Request::Ping { .. } => (
            Response::Pong {
                v: PROTOCOL_VERSION,
            },
            false,
        ),
        Request::Metrics { .. } => (
            Response::Metrics {
                v: PROTOCOL_VERSION,
                prometheus: rsj_obs::global_registry().snapshot().to_prometheus(),
            },
            false,
        ),
        Request::Health { .. } => (
            Response::Health {
                v: PROTOCOL_VERSION,
                health: shared.health_info(),
            },
            false,
        ),
        Request::Ready { .. } => {
            if shared.is_ready() {
                (
                    Response::Ready {
                        v: PROTOCOL_VERSION,
                    },
                    false,
                )
            } else {
                (
                    Response::error(ErrorKind::NotReady, not_ready_message(shared)),
                    false,
                )
            }
        }
        Request::Shutdown { .. } => (
            Response::ShuttingDown {
                v: PROTOCOL_VERSION,
            },
            true,
        ),
        Request::Trace {
            last,
            min_duration_ms,
            trace_id,
            ..
        } => (handle_trace(shared, last, min_duration_ms, trace_id), false),
        Request::Plan {
            distribution,
            cost,
            solver,
            seed,
            simulate,
            deadline_ms,
            trace,
            ..
        } => {
            // A recovering server sheds plan work with a typed
            // `not_ready`: answering from a half-warm cache would turn
            // guaranteed hits into misses and double-solve the backlog.
            if !shared.is_recovered() {
                counter("rsj_serve_not_ready_total").inc();
                return (
                    Response::error(ErrorKind::NotReady, not_ready_message(shared)),
                    false,
                );
            }
            let deadline = deadline_ms.map(|ms| base + Duration::from_millis(ms));
            let mut response = handle_plan(
                shared,
                distribution,
                cost,
                solver,
                seed,
                simulate,
                deadline,
                timeline,
            );
            // The `write` span can't be in this snapshot (the response is
            // serialized after it's built); the ring's copy of the same
            // trace, pushed after the write completes, has it.
            if trace {
                if let Response::Plan { timeline: slot, .. } = &mut response {
                    *slot = timeline.snapshot("plan");
                }
            }
            (response, false)
        }
        Request::PlanBatch {
            items,
            deadline_ms,
            trace,
            ..
        } => {
            if !shared.is_recovered() {
                counter("rsj_serve_not_ready_total").inc();
                return (
                    Response::error(ErrorKind::NotReady, not_ready_message(shared)),
                    false,
                );
            }
            // One batch-level deadline anchors every item's cancellation.
            let deadline = deadline_ms.map(|ms| base + Duration::from_millis(ms));
            let mut response = handle_plan_batch(shared, items, deadline, timeline);
            if trace {
                if let Response::PlanBatch { timeline: slot, .. } = &mut response {
                    *slot = timeline.snapshot("plan_batch");
                }
            }
            (response, false)
        }
    }
}

fn not_ready_message(shared: &Shared) -> String {
    if !shared.is_recovered() {
        "server is recovering its plan cache; retry shortly".to_string()
    } else if shared.shutting_down() {
        "server is draining".to_string()
    } else {
        format!(
            "admission queue at {} (high watermark {})",
            shared.admission.depth(),
            shared.admission.config().high_watermark
        )
    }
}

/// The composite cache key: the planner's own `(dist, cost, solver)` key
/// plus the simulate options, which also shape the returned [`Plan`].
fn full_cache_key(planner: &Planner, simulate: Option<SimulateOptions>) -> Option<String> {
    let base = planner.cache_key()?;
    let sim = match simulate {
        Some(s) => format!("jobs={},seed={}", s.jobs, s.seed),
        None => "none".to_string(),
    };
    Some(format!("{base}|sim={sim}"))
}

fn deadline_response(deadline: Instant) -> Response {
    Response::error(
        ErrorKind::DeadlineExceeded,
        format!("deadline expired {} ms ago", deadline.elapsed().as_millis()),
    )
}

#[allow(clippy::too_many_arguments)]
fn handle_plan(
    shared: &Shared,
    distribution: DistSpec,
    cost: Option<CostModel>,
    solver: SolverSpec,
    seed: Option<u64>,
    simulate: Option<SimulateOptions>,
    deadline: Option<Instant>,
    timeline: &mut rsj_obs::Timeline,
) -> Response {
    let started = Instant::now();
    // Shed-at-dequeue: a request whose deadline lapsed while queued is
    // dead on arrival; answering it would only waste a solver slot.
    if let Some(d) = deadline {
        if Instant::now() >= d {
            return deadline_response(d);
        }
    }
    let solver = match seed {
        Some(seed) => solver.with_seed(seed),
        None => solver,
    };
    let mut builder = Planner::builder().distribution(distribution).solver(solver);
    if let Some(cost) = cost {
        builder = builder.cost_rates(cost.alpha, cost.beta, cost.gamma);
    }
    if let Some(simulate) = simulate {
        builder = builder.simulate(simulate);
    }
    let planner = match builder.build() {
        Ok(planner) => planner,
        Err(e) => return Response::error(classify(&e), e.to_string()),
    };
    let build_ended = Instant::now();
    timeline.record_span("build", started, build_ended);
    let build_seconds = (build_ended - started).as_secs_f64();

    let key = full_cache_key(&planner, simulate);
    let cached = timeline.time("cache_lookup", || {
        key.as_deref().and_then(|key| shared.cache.get(key))
    });
    if let Some(cached) = cached {
        counter("rsj_serve_cache_hits_total").inc();
        return plan_response(
            &planner,
            (*cached).clone(),
            Origin::Cached,
            build_seconds,
            0.0,
            started,
        );
    }
    counter("rsj_serve_cache_misses_total").inc();

    let solve_started = Instant::now();
    let group = planner.group_key();
    let flighted = match key.as_deref() {
        // Identical concurrent misses coalesce onto one solver run, and
        // *same-table* concurrent misses (identical group key: same
        // distribution and cost, different solver) serialize so their
        // leaders share one warm discretization table. The abandoned
        // value is what followers see if the leader panics (e.g. an
        // injected chaos fault) — typed, not a hang.
        Some(key) => shared.flights.run_grouped(
            key,
            group.as_deref(),
            deadline,
            Err((ErrorKind::Internal, "in-flight solve abandoned".to_string())),
            || solve(shared, &planner, key, deadline, timeline),
        ),
        // Uncacheable requests have no stable identity to coalesce on.
        None => Flighted::Led(solve_uncached(&planner, deadline, timeline)),
    };
    let solve_seconds = solve_started.elapsed().as_secs_f64();
    let (outcome, origin) = match flighted {
        Flighted::Led(outcome) => {
            counter("rsj_serve_singleflight_leaders_total").inc();
            (outcome, Origin::Computed)
        }
        Flighted::Joined(outcome) => {
            counter("rsj_serve_singleflight_coalesced_total").inc();
            // A follower's wall time here is spent parked on the
            // leader's flight, not solving.
            timeline.record_span("singleflight_wait", solve_started, Instant::now());
            (outcome, Origin::Coalesced)
        }
        Flighted::TimedOut => {
            let d = deadline.expect("only a deadline can time a follower out");
            return deadline_response(d);
        }
    };
    match outcome {
        Ok(plan) => plan_response(
            &planner,
            (*plan).clone(),
            origin,
            build_seconds,
            solve_seconds,
            started,
        ),
        Err((kind, message)) => Response::error(kind, message),
    }
}

/// Answers a `plan_batch` op: cache hits answer per item, the misses
/// solve through [`Planner::plan_many_traced`] — which sorts them by
/// cache-key group so every same-table solve after the first reuses the
/// warm discretization table — and each solved plan is journaled before
/// the batch response is released.
fn handle_plan_batch(
    shared: &Shared,
    items: Vec<PlanRequest>,
    deadline: Option<Instant>,
    timeline: &mut rsj_obs::Timeline,
) -> Response {
    if let Some(d) = deadline {
        if Instant::now() >= d {
            return deadline_response(d);
        }
    }
    let count = items.len();
    let mut results: Vec<Option<BatchItem>> = (0..count).map(|_| None).collect();
    let mut misses: Vec<(usize, PlanRequest, Option<String>)> = Vec::new();
    let mut hits = 0u64;
    timeline.time("cache_lookup", || {
        for (i, item) in items.into_iter().enumerate() {
            match item.planner() {
                Err(e) => results[i] = Some(BatchItem::error(classify(&e), e.to_string())),
                Ok(planner) => {
                    let key = full_cache_key(&planner, item.simulate);
                    if let Some(hit) = key.as_deref().and_then(|k| shared.cache.get(k)) {
                        hits += 1;
                        results[i] = Some(BatchItem::Plan {
                            plan: (*hit).clone(),
                            provenance: make_provenance(item.solver.name(), true, false),
                        });
                        continue;
                    }
                    misses.push((i, item, key));
                }
            }
        }
    });
    // One registry lookup per counter for the whole batch, not per item.
    if hits > 0 {
        counter("rsj_serve_cache_hits_total").add(hits);
    }
    if !misses.is_empty() {
        counter("rsj_serve_cache_misses_total").add(misses.len() as u64);
        counter("rsj_serve_solver_invocations_total").add(misses.len() as u64);
        let cancel = match deadline {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::none(),
        };
        let requests: Vec<PlanRequest> = misses.iter().map(|(_, req, _)| req.clone()).collect();
        let solved = Planner::plan_many_traced(&requests, &cancel, timeline);
        // Append-before-response, exactly like the singleton path: every
        // plan in the batch is journaled before any client hears it.
        timeline.time("journal_append", || {
            for ((i, req, key), outcome) in misses.into_iter().zip(solved) {
                results[i] = Some(match outcome {
                    Ok(plan) => {
                        let plan = Arc::new(plan);
                        if let Some(key) = key {
                            shared.cache.insert(key.clone(), Arc::clone(&plan));
                            shared.journal_append(&key, &plan);
                        }
                        BatchItem::Plan {
                            plan: (*plan).clone(),
                            provenance: make_provenance(req.solver.name(), false, false),
                        }
                    }
                    Err(e) => BatchItem::error(classify(&e), e.to_string()),
                });
            }
        });
    }
    Response::PlanBatch {
        v: PROTOCOL_VERSION_MAX,
        results: results
            .into_iter()
            .map(|r| r.expect("every batch item answered"))
            .collect(),
        trace_id: None,
        timeline: None,
    }
}

/// Runs the solver as a single-flight leader: cancellable by `deadline`,
/// publishing into the cache on success.
fn solve(
    shared: &Shared,
    planner: &Planner,
    key: &str,
    deadline: Option<Instant>,
    timeline: &mut rsj_obs::Timeline,
) -> SolveOutcome {
    let plan = solve_uncached(planner, deadline, timeline)?;
    shared.cache.insert(key.to_string(), Arc::clone(&plan));
    // Append-before-response: once the client hears this answer, the
    // record is already flushed to the OS, so it survives `kill -9`.
    timeline.time("journal_append", || shared.journal_append(key, &plan));
    Ok(plan)
}

fn solve_uncached(
    planner: &Planner,
    deadline: Option<Instant>,
    timeline: &mut rsj_obs::Timeline,
) -> SolveOutcome {
    counter("rsj_serve_solver_invocations_total").inc();
    let cancel = match deadline {
        Some(d) => CancelToken::with_deadline(d),
        None => CancelToken::none(),
    };
    match planner.plan_traced(&cancel, timeline) {
        Ok(plan) => Ok(Arc::new(plan)),
        Err(e) => Err((classify(&e), e.to_string())),
    }
}

/// How a plan reached this response, for [`Provenance`].
#[derive(Clone, Copy)]
enum Origin {
    Cached,
    Computed,
    Coalesced,
}

/// Response provenance shared by the singleton and batch paths. The
/// protocol field is restamped by `with_version` to the client's
/// negotiated version before the response leaves the worker.
fn make_provenance(solver: &str, cached: bool, coalesced: bool) -> Provenance {
    Provenance {
        server: concat!("rsj-serve/", env!("CARGO_PKG_VERSION")).to_string(),
        protocol: PROTOCOL_VERSION,
        solver: solver.to_string(),
        threads: rsj_par::Parallelism::current().threads(),
        cached,
        coalesced,
    }
}

fn plan_response(
    planner: &Planner,
    plan: Plan,
    origin: Origin,
    build_seconds: f64,
    solve_seconds: f64,
    started: Instant,
) -> Response {
    Response::Plan {
        v: PROTOCOL_VERSION,
        provenance: make_provenance(
            planner.solver_spec().name(),
            matches!(origin, Origin::Cached),
            matches!(origin, Origin::Coalesced),
        ),
        timings: Timings {
            build_seconds,
            solve_seconds,
            total_seconds: started.elapsed().as_secs_f64(),
        },
        plan,
        trace_id: None,
        timeline: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Subscriber state is process-global; this is the only test in the
    // lib binary that installs one.
    #[test]
    fn slow_request_warns_once_with_trace_id_and_stage_breakdown() {
        let sink = Arc::new(rsj_obs::MemorySink::new(rsj_obs::Level::Warn));
        rsj_obs::set_subscriber(sink.clone());
        let record = rsj_obs::TimelineRecord {
            trace_id: "00000000000000000000000000c0ffee".to_string(),
            op: "plan".to_string(),
            total_us: 12_500,
            stages: vec![
                rsj_obs::StageRecord {
                    name: "queue_wait".to_string(),
                    start_us: 0,
                    end_us: 1_000,
                    args: Vec::new(),
                },
                rsj_obs::StageRecord {
                    name: "solve".to_string(),
                    start_us: 1_000,
                    end_us: 12_000,
                    args: Vec::new(),
                },
            ],
        };
        warn_slow_request(&record, 5);
        rsj_obs::clear_subscriber();
        let events = sink.events();
        assert_eq!(events.len(), 1, "exactly one warn event: {events:?}");
        let event = &events[0];
        assert!(event.contains("slow request"), "{event}");
        assert!(
            event.contains("trace_id=00000000000000000000000000c0ffee"),
            "{event}"
        );
        assert!(event.contains("op=plan"), "{event}");
        assert!(event.contains("total=12.500ms"), "{event}");
        assert!(event.contains("threshold=5ms"), "{event}");
        assert!(event.contains("queue_wait=1.000ms"), "{event}");
        assert!(event.contains("solve=11.000ms"), "{event}");
    }

    #[test]
    fn client_idle_before_the_first_line_is_not_slow() {
        // 12.5 ms wall, but 10 ms of it was waiting for the client's
        // first bytes: only the remaining 2.5 ms counts against a 5 ms
        // slow threshold.
        let record = rsj_obs::TimelineRecord {
            trace_id: "00000000000000000000000000c0ffee".to_string(),
            op: "plan".to_string(),
            total_us: 12_500,
            stages: vec![
                rsj_obs::StageRecord {
                    name: "read_wait".to_string(),
                    start_us: 0,
                    end_us: 10_000,
                    args: Vec::new(),
                },
                rsj_obs::StageRecord {
                    name: "solve".to_string(),
                    start_us: 10_000,
                    end_us: 12_000,
                    args: Vec::new(),
                },
            ],
        };
        assert_eq!(attributable_us(&record), 2_500);
        assert!(attributable_us(&record) < 5_000, "must not warn at 5ms");
        // Without a read_wait stage the full wall time is attributable.
        let no_wait = rsj_obs::TimelineRecord {
            stages: Vec::new(),
            ..record
        };
        assert_eq!(attributable_us(&no_wait), 12_500);
    }

    #[test]
    fn per_op_histogram_names_are_static_and_distinct() {
        let decoded: Result<Request, (ErrorKind, String)> = Ok(Request::ping());
        assert_eq!(op_name(&decoded), "ping");
        assert_eq!(per_op_histogram("ping"), "rsj_serve_request_seconds_ping");
        assert_eq!(per_op_histogram("plan"), "rsj_serve_request_seconds_plan");
        assert_eq!(
            per_op_histogram("plan_batch"),
            "rsj_serve_request_seconds_plan_batch"
        );
        assert_eq!(
            per_op_histogram("nonsense"),
            "rsj_serve_request_seconds_invalid"
        );
    }

    fn item_for(request: Request) -> WorkItem {
        WorkItem {
            token: 0,
            conn_id: 0,
            req_index: 0,
            decoded: Ok(request),
            version: PROTOCOL_VERSION,
            base: Instant::now(),
            client_trace_id: None,
            op: "plan",
            started: Instant::now(),
            enqueued_at: Instant::now(),
            timeline: rsj_obs::Timeline::disabled(),
        }
    }

    #[test]
    fn table_order_key_groups_by_distribution_and_cost_only() {
        let exp = DistSpec::Exponential { lambda: 1.0 };
        let logn = DistSpec::LogNormal {
            mu: 3.0,
            sigma: 0.5,
        };
        let a = table_order_key(&item_for(Request::plan(exp.clone())));
        let b = table_order_key(&item_for(Request::plan(exp)));
        let c = table_order_key(&item_for(Request::plan(logn)));
        assert!(a.is_some());
        assert_eq!(a, b, "same distribution and cost share a table group");
        assert_ne!(a, c, "different distributions never share");
        assert_eq!(table_order_key(&item_for(Request::ping())), None);
    }

    #[test]
    fn ingest_splits_lines_and_rejects_byte_drip_overflow() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (stream, _) = listener.accept().unwrap();
        let now = Instant::now();
        let mut conn = Conn {
            stream,
            conn_id: 0,
            accepted_at: now,
            read_buf: Vec::new(),
            scan_from: 0,
            lines: VecDeque::new(),
            out: Vec::new(),
            out_pos: 0,
            in_flight: false,
            served: 0,
            first_base: Some(now),
            idle_at: now,
            eof: false,
            close_after_write: false,
            finish: None,
            interest: Interest::READABLE,
        };
        conn.read_buf.extend_from_slice(b"{\"op\":\"ping\"}\n\n{\"op\":");
        assert!(matches!(
            ingest_lines(&mut conn, 64, Duration::from_secs(30)),
            Ingest::Ok
        ));
        assert_eq!(conn.lines.len(), 1, "blank line skipped, partial held");
        assert_eq!(conn.lines[0].0, "{\"op\":\"ping\"}\n");
        assert_eq!(conn.read_buf, b"{\"op\":");
        // A partial that outgrows the cap without ever sending a newline
        // is rejected instead of buffering forever.
        conn.read_buf.extend_from_slice(&[b'x'; 64]);
        assert!(matches!(
            ingest_lines(&mut conn, 64, Duration::from_secs(30)),
            Ingest::TooLarge
        ));
    }
}
