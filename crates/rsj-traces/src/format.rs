//! Runtime-trace records and a small CSV codec.
//!
//! Mirrors what the paper extracted from Vanderbilt's XNAT archive \[14\]:
//! one row per application run with its wall-clock runtime in seconds.

use serde::{Deserialize, Serialize};

/// One archived application run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Application name (`fMRIQA`, `VBMQA`, …).
    pub app: String,
    /// Days since the archive epoch (the paper's traces span July 2013 –
    /// October 2016, ~1200 days).
    pub day: f64,
    /// Measured runtime in seconds.
    pub runtime_secs: f64,
}

/// A named collection of runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceArchive {
    /// Records in archive order.
    pub records: Vec<TraceRecord>,
}

impl TraceArchive {
    /// Runtimes (seconds) of every record of `app`.
    pub fn runtimes_of(&self, app: &str) -> Vec<f64> {
        self.records
            .iter()
            .filter(|r| r.app == app)
            .map(|r| r.runtime_secs)
            .collect()
    }

    /// Distinct application names, in first-appearance order.
    pub fn apps(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for r in &self.records {
            if !seen.contains(&r.app) {
                seen.push(r.app.clone());
            }
        }
        seen
    }

    /// Serializes to the three-column CSV `app,day,runtime_secs` with a
    /// header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("app,day,runtime_secs\n");
        for r in &self.records {
            out.push_str(&format!("{},{},{}\n", r.app, r.day, r.runtime_secs));
        }
        out
    }

    /// Parses the CSV produced by [`TraceArchive::to_csv`].
    pub fn from_csv(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty CSV")?;
        if header.trim() != "app,day,runtime_secs" {
            return Err(format!("unexpected header: {header}"));
        }
        let mut records = Vec::new();
        for (lineno, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let mut parts = line.splitn(3, ',');
            let app = parts
                .next()
                .ok_or_else(|| format!("line {}: missing app", lineno + 2))?
                .to_string();
            let day: f64 = parts
                .next()
                .ok_or_else(|| format!("line {}: missing day", lineno + 2))?
                .trim()
                .parse()
                .map_err(|e| format!("line {}: bad day: {e}", lineno + 2))?;
            let runtime_secs: f64 = parts
                .next()
                .ok_or_else(|| format!("line {}: missing runtime", lineno + 2))?
                .trim()
                .parse()
                .map_err(|e| format!("line {}: bad runtime: {e}", lineno + 2))?;
            if !(runtime_secs > 0.0) || !runtime_secs.is_finite() {
                return Err(format!("line {}: runtime must be positive", lineno + 2));
            }
            records.push(TraceRecord {
                app,
                day,
                runtime_secs,
            });
        }
        Ok(Self { records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn archive() -> TraceArchive {
        TraceArchive {
            records: vec![
                TraceRecord {
                    app: "VBMQA".into(),
                    day: 0.5,
                    runtime_secs: 1200.0,
                },
                TraceRecord {
                    app: "fMRIQA".into(),
                    day: 1.25,
                    runtime_secs: 2000.0,
                },
                TraceRecord {
                    app: "VBMQA".into(),
                    day: 2.0,
                    runtime_secs: 1300.0,
                },
            ],
        }
    }

    #[test]
    fn csv_round_trip() {
        let a = archive();
        let csv = a.to_csv();
        let back = TraceArchive::from_csv(&csv).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn filters_by_app() {
        let a = archive();
        assert_eq!(a.runtimes_of("VBMQA"), vec![1200.0, 1300.0]);
        assert_eq!(a.runtimes_of("fMRIQA"), vec![2000.0]);
        assert!(a.runtimes_of("nope").is_empty());
        assert_eq!(a.apps(), vec!["VBMQA".to_string(), "fMRIQA".to_string()]);
    }

    #[test]
    fn rejects_malformed_csv() {
        assert!(TraceArchive::from_csv("").is_err());
        assert!(TraceArchive::from_csv("wrong,header,here\n").is_err());
        assert!(TraceArchive::from_csv("app,day,runtime_secs\nVBMQA,abc,1\n").is_err());
        assert!(TraceArchive::from_csv("app,day,runtime_secs\nVBMQA,1.0,-5\n").is_err());
        assert!(TraceArchive::from_csv("app,day,runtime_secs\nVBMQA,1.0\n").is_err());
    }

    #[test]
    fn skips_blank_lines() {
        let a = TraceArchive::from_csv("app,day,runtime_secs\n\nVBMQA,1,100\n\n").unwrap();
        assert_eq!(a.records.len(), 1);
    }
}
