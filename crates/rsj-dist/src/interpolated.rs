//! Trace-interpolating distribution: a continuous law built by linear
//! interpolation of an empirical CDF.
//!
//! The paper's abstract describes the NeuroHPC scenario as "based on
//! interpolating traces from a real neuroscience application": instead of
//! (or in addition to) fitting a parametric family, the archived runtimes
//! themselves define a piecewise-linear CDF — equivalently a
//! piecewise-constant density (a histogram on the inter-order-statistic
//! cells). This makes every reservation heuristic directly runnable on raw
//! trace data, with no distributional assumption.

use crate::error::{DistError, Result};
use crate::traits::{ContinuousDistribution, Support};

/// Continuous distribution obtained by linearly interpolating the
/// empirical CDF of a sample.
///
/// With sorted distinct observations `x₁ < … < xₙ`, the CDF rises linearly
/// from `0` at `x₁` to `1` at `xₙ` through the points
/// `F(xᵢ) = (i - 1)/(n - 1)`; the density is constant on each cell. (The
/// standard continuity correction: the sample's extremes bound the
/// support.) Duplicate observations are merged with their multiplicity
/// kept as extra mass on the adjoining cell boundary being collapsed —
/// i.e. duplicates simply steepen the CDF around that value.
#[derive(Debug, Clone, PartialEq)]
pub struct InterpolatedEmpirical {
    /// Sorted distinct knot positions.
    knots: Vec<f64>,
    /// CDF values at the knots (strictly increasing, first 0, last 1).
    cdf_at: Vec<f64>,
    /// Cached mean.
    mean: f64,
    /// Cached variance.
    variance: f64,
}

impl InterpolatedEmpirical {
    /// Builds the interpolated distribution from raw observations (at
    /// least two distinct, nonnegative, finite values).
    pub fn from_samples(samples: &[f64]) -> Result<Self> {
        if samples.len() < 2 {
            return Err(DistError::DegenerateSample {
                reason: "need at least two observations to interpolate",
            });
        }
        if samples.iter().any(|x| !x.is_finite() || *x < 0.0) {
            return Err(DistError::DegenerateSample {
                reason: "observations must be finite and nonnegative",
            });
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = sorted.len();

        // Plotting-position CDF with duplicates merged: each distinct value
        // keeps the *last* index where it occurs, so ties steepen the CDF.
        let mut knots: Vec<f64> = Vec::new();
        let mut cdf_at: Vec<f64> = Vec::new();
        for (i, &x) in sorted.iter().enumerate() {
            let p = i as f64 / (n - 1) as f64;
            match knots.last() {
                Some(&last) if x <= last + f64::EPSILON * last.abs().max(1.0) => {
                    *cdf_at.last_mut().expect("non-empty") = p;
                }
                _ => {
                    knots.push(x);
                    cdf_at.push(p);
                }
            }
        }
        if knots.len() < 2 {
            return Err(DistError::DegenerateSample {
                reason: "all observations identical; no spread to interpolate",
            });
        }
        // Normalize endpoints exactly.
        let first = cdf_at[0];
        let last = *cdf_at.last().expect("non-empty");
        for p in &mut cdf_at {
            *p = (*p - first) / (last - first);
        }
        Ok(Self::from_knots(knots, cdf_at))
    }

    /// Builds the interpolated distribution directly from CDF knots
    /// `(t, F(t))`: at least two points with strictly increasing,
    /// nonnegative, finite positions and non-decreasing CDF values
    /// starting at 0 and ending at 1 (cells of zero mass are allowed and
    /// simply carry no probability).
    ///
    /// This is the bridge from a Kaplan–Meier survival curve (or any other
    /// externally estimated CDF) to a plannable continuous law.
    pub fn from_cdf_points(points: &[(f64, f64)]) -> Result<Self> {
        if points.len() < 2 {
            return Err(DistError::DegenerateSample {
                reason: "need at least two CDF points to interpolate",
            });
        }
        if points
            .iter()
            .any(|(t, p)| !t.is_finite() || *t < 0.0 || !p.is_finite() || !(0.0..=1.0).contains(p))
        {
            return Err(DistError::DegenerateSample {
                reason: "CDF points must be finite, nonnegative, with F in [0, 1]",
            });
        }
        if points
            .windows(2)
            .any(|w| w[1].0 <= w[0].0 || w[1].1 < w[0].1)
        {
            return Err(DistError::DegenerateSample {
                reason: "CDF points must have strictly increasing t and non-decreasing F",
            });
        }
        if points[0].1 != 0.0 || points.last().expect("non-empty").1 != 1.0 {
            return Err(DistError::DegenerateSample {
                reason: "CDF must start at 0 and end at 1",
            });
        }
        let knots: Vec<f64> = points.iter().map(|(t, _)| *t).collect();
        let cdf_at: Vec<f64> = points.iter().map(|(_, p)| *p).collect();
        Ok(Self::from_knots(knots, cdf_at))
    }

    /// Moments of the piecewise-uniform law: on cell [a, b] with mass w,
    /// E = w·(a + b)/2 and E[X²] = w·(a² + ab + b²)/3.
    fn from_knots(knots: Vec<f64>, cdf_at: Vec<f64>) -> Self {
        let mut mean = 0.0;
        let mut m2 = 0.0;
        for i in 0..knots.len() - 1 {
            let (a, b) = (knots[i], knots[i + 1]);
            let w = cdf_at[i + 1] - cdf_at[i];
            mean += w * (a + b) / 2.0;
            m2 += w * (a * a + a * b + b * b) / 3.0;
        }
        Self {
            variance: (m2 - mean * mean).max(0.0),
            knots,
            cdf_at,
            mean,
        }
    }

    /// The interpolation knots (sorted distinct observations).
    pub fn knots(&self) -> &[f64] {
        &self.knots
    }

    fn cell_of(&self, t: f64) -> usize {
        // Largest i with knots[i] <= t, clamped to a valid cell index.
        match self
            .knots
            .binary_search_by(|x| x.partial_cmp(&t).expect("finite"))
        {
            Ok(i) => i.min(self.knots.len() - 2),
            Err(0) => 0,
            Err(i) => (i - 1).min(self.knots.len() - 2),
        }
    }
}

impl ContinuousDistribution for InterpolatedEmpirical {
    fn name(&self) -> String {
        format!(
            "InterpolatedEmpirical({} knots on [{:.3}, {:.3}])",
            self.knots.len(),
            self.knots[0],
            self.knots[self.knots.len() - 1]
        )
    }

    fn support(&self) -> Support {
        Support::Bounded {
            lower: self.knots[0],
            upper: *self.knots.last().expect("non-empty"),
        }
    }

    fn pdf(&self, t: f64) -> f64 {
        if t < self.knots[0] || t > *self.knots.last().expect("non-empty") {
            return 0.0;
        }
        let i = self.cell_of(t);
        let width = self.knots[i + 1] - self.knots[i];
        (self.cdf_at[i + 1] - self.cdf_at[i]) / width
    }

    fn cdf(&self, t: f64) -> f64 {
        if t <= self.knots[0] {
            return 0.0;
        }
        if t >= *self.knots.last().expect("non-empty") {
            return 1.0;
        }
        let i = self.cell_of(t);
        let frac = (t - self.knots[i]) / (self.knots[i + 1] - self.knots[i]);
        self.cdf_at[i] + frac * (self.cdf_at[i + 1] - self.cdf_at[i])
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile: p out of [0,1]: {p}");
        if p <= 0.0 {
            return self.knots[0];
        }
        if p >= 1.0 {
            return *self.knots.last().expect("non-empty");
        }
        let i = match self
            .cdf_at
            .binary_search_by(|x| x.partial_cmp(&p).expect("finite"))
        {
            Ok(i) => return self.knots[i],
            Err(i) => i - 1, // p strictly between cdf_at[i-1] and cdf_at[i]
        };
        let frac = (p - self.cdf_at[i]) / (self.cdf_at[i + 1] - self.cdf_at[i]);
        self.knots[i] + frac * (self.knots[i + 1] - self.knots[i])
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.variance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::continuous::LogNormal;
    use rand::SeedableRng;

    #[test]
    fn rejects_degenerate_samples() {
        assert!(InterpolatedEmpirical::from_samples(&[]).is_err());
        assert!(InterpolatedEmpirical::from_samples(&[1.0]).is_err());
        assert!(InterpolatedEmpirical::from_samples(&[2.0, 2.0, 2.0]).is_err());
        assert!(InterpolatedEmpirical::from_samples(&[1.0, -1.0]).is_err());
    }

    #[test]
    fn two_points_is_uniform() {
        let d = InterpolatedEmpirical::from_samples(&[10.0, 20.0]).unwrap();
        assert_eq!(d.support().lower(), 10.0);
        assert_eq!(d.support().upper(), Some(20.0));
        assert!((d.pdf(15.0) - 0.1).abs() < 1e-12);
        assert!((d.cdf(15.0) - 0.5).abs() < 1e-12);
        assert!((d.mean() - 15.0).abs() < 1e-12);
        assert!((d.variance() - 100.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_quantile_round_trip() {
        let d = InterpolatedEmpirical::from_samples(&[1.0, 2.0, 4.0, 8.0, 16.0]).unwrap();
        for k in 0..=100 {
            let p = k as f64 / 100.0;
            let t = d.quantile(p);
            assert!(
                (d.cdf(t) - p).abs() < 1e-10,
                "p={p}: Q={t}, F(Q)={}",
                d.cdf(t)
            );
        }
    }

    #[test]
    fn duplicates_steepen_not_break() {
        let d = InterpolatedEmpirical::from_samples(&[1.0, 2.0, 2.0, 2.0, 3.0]).unwrap();
        // Mass between 1 and 2 covers the first three plotting positions.
        assert!((d.cdf(2.0) - 0.75).abs() < 1e-12, "cdf(2) = {}", d.cdf(2.0));
        for w in d.knots().windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn approximates_the_generating_law() {
        let truth = LogNormal::new(0.0, 0.5).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let samples: Vec<f64> = (0..20_000).map(|_| truth.sample(&mut rng)).collect();
        let d = InterpolatedEmpirical::from_samples(&samples).unwrap();
        assert!((d.mean() - truth.mean()).abs() / truth.mean() < 0.02);
        for q in [0.1, 0.5, 0.9] {
            let a = d.quantile(q);
            let b = truth.quantile(q);
            assert!((a - b).abs() / b < 0.05, "q={q}: {a} vs {b}");
        }
        // CDF agreement at arbitrary points.
        for t in [0.5, 1.0, 2.0] {
            assert!((d.cdf(t) - truth.cdf(t)).abs() < 0.02, "t={t}");
        }
    }

    #[test]
    fn conditional_mean_default_works() {
        // The numeric default of the trait must handle the piecewise law.
        let d = InterpolatedEmpirical::from_samples(&[1.0, 2.0, 4.0, 8.0]).unwrap();
        let cm = d.conditional_mean_above(2.0);
        // Conditional on X > 2: uniform mass 1/3 on [2,4], 1/3 on [4,8]
        // renormalized: E = (1/2)·3 + (1/2)·6 = 4.5.
        assert!((cm - 4.5).abs() < 1e-6, "cm {cm}");
    }

    #[test]
    fn heuristics_run_directly_on_trace_data() {
        // The headline feature: reservation strategies on raw traces.
        let truth = LogNormal::new(0.0, 0.4).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let samples: Vec<f64> = (0..5_000).map(|_| truth.sample(&mut rng)).collect();
        let d = InterpolatedEmpirical::from_samples(&samples).unwrap();
        // A one-shot reservation at the sample max always succeeds.
        let b = d.support().upper().unwrap();
        assert!(d.cdf(b) == 1.0);
        assert!(d.quantile(1.0) == b);
    }
}
