//! Integration tests for the §7 future-work extensions, exercised through
//! the facade crate across crate boundaries.

use reservation_strategies::prelude::*;
use rsj_core::extensions::{
    expected_cost_checkpointed, optimal_discrete_checkpointed, run_job_checkpointed,
    CheckpointConfig, MultiResourcePlanner, SpeedupModel, WidthPolicy,
};
use rsj_core::{expected_cost_analytic, optimal_discrete};
use rsj_dist::{discretize, InterpolatedEmpirical, LogNormal};

/// Checkpointing on a *fitted trace* distribution: archive → interpolated
/// law → checkpointed vs plain cost.
#[test]
fn checkpointing_on_trace_interpolated_distribution() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(71);
    let archive = synthesize(&SynthConfig::vbmqa(3000), &mut rng);
    let runtimes = archive.runtimes_of("VBMQA");
    let dist = InterpolatedEmpirical::from_samples(&runtimes).unwrap();

    let cost = CostModel::reservation_only();
    let discrete = discretize(&dist, DiscretizationScheme::EqualTime, 300, 1e-7).unwrap();
    let plain = optimal_discrete(&discrete, &cost).unwrap();
    let ck = CheckpointConfig::new(5.0, 5.0).unwrap(); // 5s overheads on ~1250s jobs
    let ckpt = optimal_discrete_checkpointed(&discrete, &cost, &ck).unwrap();
    assert!(
        ckpt.expected_cost <= plain.expected_cost,
        "cheap checkpoints on trace data: {} vs {}",
        ckpt.expected_cost,
        plain.expected_cost
    );
}

/// The checkpointed analytic evaluator agrees with direct execution on a
/// continuous law, end to end through the facade.
#[test]
fn checkpointed_execution_consistency() {
    use rand::SeedableRng;
    let dist = LogNormal::new(2.0, 0.7).unwrap();
    let cost = CostModel::new(1.0, 1.0, 0.5).unwrap();
    let ck = CheckpointConfig::new(0.3, 0.4).unwrap();
    let ladder =
        ReservationSequence::new(vec![4.0, 7.0, 12.0, 20.0, 34.0, 58.0, 100.0], false).unwrap();
    let analytic = expected_cost_checkpointed(&ladder, &dist, &cost, &ck);
    let mut rng = rand::rngs::StdRng::seed_from_u64(72);
    let n = 150_000;
    let mc: f64 = (0..n)
        .map(|_| run_job_checkpointed(&ladder, &cost, &ck, dist.sample(&mut rng)).cost)
        .sum::<f64>()
        / n as f64;
    assert!(
        (analytic - mc).abs() / mc < 0.01,
        "analytic {analytic} vs MC {mc}"
    );
    // And checkpointing this ladder beats restart-from-scratch on it.
    let plain = expected_cost_analytic(&ladder, &dist, &cost);
    assert!(analytic < plain, "checkpointed {analytic} vs plain {plain}");
}

/// Multi-resource planning end to end: a trace-fitted law, a turnaround
/// objective derived from the queue simulator's wait model.
#[test]
fn multiresource_planning_with_simulated_queue_penalty() {
    let work = LogNormal::new(1.0, 0.5).unwrap(); // sequential work, hours
    let base = CostModel::new(0.95, 1.0, 1.05).unwrap();
    let strategy = MeanByMean::default();
    let planner = MultiResourcePlanner {
        candidates: &[1, 2, 4, 8, 16, 32, 64],
        speedup: SpeedupModel::Amdahl {
            serial_fraction: 0.03,
        },
        width_policy: WidthPolicy::Turnaround {
            wait_per_proc: 0.03,
        },
        strategy: &strategy,
    };
    let best = planner.best(&work, &base).unwrap();
    // Interior optimum, sane plan.
    assert!(
        best.processors >= 2 && best.processors <= 32,
        "{}",
        best.processors
    );
    assert!(best.expected_cost > 0.0);
    assert!(!best.sequence.is_empty());
    // The best beats both extremes.
    let narrow = planner.plan_at(&work, &base, 1).unwrap();
    let wide = planner.plan_at(&work, &base, 64).unwrap();
    assert!(best.expected_cost <= narrow.expected_cost);
    assert!(best.expected_cost <= wide.expected_cost);
}

/// Heuristics run directly on an interpolated trace law and produce
/// bounded-support-complete sequences.
#[test]
fn heuristics_on_interpolated_traces() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(73);
    let truth = LogNormal::new(0.0, 0.5).unwrap();
    let samples: Vec<f64> = (0..4000).map(|_| truth.sample(&mut rng)).collect();
    let dist = InterpolatedEmpirical::from_samples(&samples).unwrap();
    let cost = CostModel::reservation_only();

    for h in [
        Box::new(MeanByMean::default()) as Box<dyn Strategy>,
        Box::new(MedianByMedian::default()),
        Box::new(DiscretizedDp::new(DiscretizationScheme::EqualProbability, 200, 1e-7).unwrap()),
    ] {
        let seq = h.sequence(&dist, &cost).unwrap();
        assert!(
            seq.is_complete(),
            "{} must close the bounded support",
            h.name()
        );
        let ratio = normalized_cost_analytic(&seq, &dist, &cost);
        assert!(
            (1.0 - 1e-9..3.0).contains(&ratio),
            "{}: ratio {ratio}",
            h.name()
        );
        // The interpolated optimum should be close to the true law's.
        let true_seq = h.sequence(&truth, &cost).unwrap();
        let true_ratio = normalized_cost_analytic(&true_seq, &truth, &cost);
        assert!(
            (ratio - true_ratio).abs() < 0.3,
            "{}: trace {ratio} vs parametric {true_ratio}",
            h.name()
        );
    }
}
