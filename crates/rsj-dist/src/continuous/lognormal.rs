//! LogNormal distribution `LogNormal(μ, σ²)` (Table 1 / Table 5 / Theorem 8).
//!
//! This is the law the paper fits to the neuroscience traces of Figure 1 and
//! uses throughout the NeuroHPC scenario (§5.3).

use crate::error::{check_param, Result};
use crate::special::erf::erfc;
use crate::special::normal::{norm_cdf, norm_quantile, norm_sf};
use crate::traits::{ContinuousDistribution, Support};

/// LogNormal distribution: `ln X ~ Normal(μ, σ²)`, support `(0, ∞)`.
///
/// Paper instantiations: `(μ=3, σ=0.5)` for Table 1 and `(μ=7.1128,
/// σ=0.2039)` (seconds) for the VBMQA trace fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a `LogNormal(μ, σ²)` distribution from the log-space location
    /// `μ` and log-space standard deviation `σ > 0`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        check_param("mu", mu, "must be finite", mu.is_finite())?;
        check_param("sigma", sigma, "must be > 0", sigma > 0.0)?;
        Ok(Self { mu, sigma })
    }

    /// Builds the LogNormal with a *desired* mean `μ_d` and standard
    /// deviation `σ_d` in natural units (footnote 4 of the paper, §5.3).
    ///
    /// Uses the standard method of moments
    /// `σ² = ln(1 + (σ_d/μ_d)²)`, `μ = ln μ_d − σ²/2`
    /// (the footnote's `μ = ln(μ_d − σ_d²/2)` is inconsistent with the
    /// paper's own Figure 1 fit — see DESIGN.md §4.5).
    pub fn from_moments(desired_mean: f64, desired_std: f64) -> Result<Self> {
        check_param(
            "desired_mean",
            desired_mean,
            "must be > 0",
            desired_mean > 0.0,
        )?;
        check_param("desired_std", desired_std, "must be > 0", desired_std > 0.0)?;
        let ratio = desired_std / desired_mean;
        let sigma2 = (1.0 + ratio * ratio).ln();
        let mu = desired_mean.ln() - sigma2 / 2.0;
        Self::new(mu, sigma2.sqrt())
    }

    /// Log-space location `μ`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Log-space standard deviation `σ`.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    fn z(&self, t: f64) -> f64 {
        (t.ln() - self.mu) / self.sigma
    }
}

impl ContinuousDistribution for LogNormal {
    fn name(&self) -> String {
        format!("LogNormal(μ={}, σ={})", self.mu, self.sigma)
    }

    fn cache_key(&self) -> Option<String> {
        Some(self.name())
    }

    fn support(&self) -> Support {
        Support::Unbounded { lower: 0.0 }
    }

    fn pdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        let z = self.z(t);
        (-0.5 * z * z).exp() / (t * self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            0.0
        } else {
            norm_cdf(self.z(t))
        }
    }

    fn survival(&self, t: f64) -> f64 {
        if t <= 0.0 {
            1.0
        } else {
            norm_sf(self.z(t))
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile: p out of [0,1]: {p}");
        if p == 0.0 {
            return 0.0;
        }
        if p == 1.0 {
            return f64::INFINITY;
        }
        (self.mu + self.sigma * norm_quantile(p)).exp()
    }

    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }

    fn conditional_mean_above(&self, tau: f64) -> f64 {
        // Theorem 8 / Eq. 27, rewritten with erfc to stay accurate deep in
        // the tail:
        // E[X | X > τ] = e^{μ+σ²/2} · erfc((ln τ − μ − σ²)/(√2 σ))
        //                            / erfc((ln τ − μ)/(√2 σ)).
        if tau <= 0.0 {
            return self.mean();
        }
        let sqrt2 = std::f64::consts::SQRT_2;
        let ln_tau = tau.ln();
        let num = erfc((ln_tau - self.mu - self.sigma * self.sigma) / (sqrt2 * self.sigma));
        let den = erfc((ln_tau - self.mu) / (sqrt2 * self.sigma));
        if den <= 0.0 {
            // Conditioning mass underflowed (τ astronomically deep in the
            // tail); the conditional mean is ~τ there.
            return tau;
        }
        self.mean() * num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(LogNormal::new(0.0, 0.0).is_err());
        assert!(LogNormal::new(f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn paper_table1_moments() {
        // LogNormal(3, 0.5): mean = e^{3.125} ≈ 22.76.
        let d = LogNormal::new(3.0, 0.5).unwrap();
        assert!((d.mean() - (3.125f64).exp()).abs() < 1e-10);
    }

    #[test]
    fn vbmqa_fit_mean_matches_paper() {
        // Fig. 1(b)/§5.3: LogNormal(7.1128, 0.2039) has mean ≈ 1253.37 s.
        let d = LogNormal::new(7.1128, 0.2039).unwrap();
        assert!(
            (d.mean() - 1253.37).abs() < 0.5,
            "mean {} should be ≈ 1253.37 s",
            d.mean()
        );
        // and std ≈ 258.261 s.
        assert!(
            (d.std_dev() - 258.261).abs() < 0.5,
            "std {} should be ≈ 258.261 s",
            d.std_dev()
        );
    }

    #[test]
    fn from_moments_round_trip() {
        let d = LogNormal::from_moments(0.348, 0.072).unwrap();
        assert!((d.mean() - 0.348).abs() < 1e-12);
        assert!((d.std_dev() - 0.072).abs() < 1e-12);
    }

    #[test]
    fn cdf_quantile_inverse() {
        let d = LogNormal::new(3.0, 0.5).unwrap();
        for &p in &[0.001, 0.1, 0.5, 0.9, 0.999] {
            let t = d.quantile(p);
            assert!((d.cdf(t) - p).abs() < 1e-11, "p={p}");
        }
    }

    #[test]
    fn median_is_exp_mu() {
        let d = LogNormal::new(3.0, 0.5).unwrap();
        assert!((d.median() - (3.0f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn conditional_mean_matches_quadrature() {
        let d = LogNormal::new(3.0, 0.5).unwrap();
        for &tau in &[10.0, 22.0, 60.0] {
            let closed = d.conditional_mean_above(tau);
            let s = d.survival(tau);
            let numeric =
                tau + crate::quadrature::integrate_to_inf(|t| d.survival(t), tau, 1e-13).value / s;
            assert!(
                (closed - numeric).abs() / numeric < 1e-7,
                "tau={tau}: closed {closed}, numeric {numeric}"
            );
        }
    }

    #[test]
    fn conditional_mean_deep_tail_stays_finite() {
        let d = LogNormal::new(3.0, 0.5).unwrap();
        let tau = d.quantile(1.0 - 1e-12);
        let cm = d.conditional_mean_above(tau);
        assert!(cm.is_finite() && cm > tau);
    }

    #[test]
    fn cross_validate_against_statrs() {
        use statrs::distribution::{Continuous, ContinuousCDF};
        let ours = LogNormal::new(3.0, 0.5).unwrap();
        let theirs = statrs::distribution::LogNormal::new(3.0, 0.5).unwrap();
        // statrs' normal CDF is ~1e-10 accurate, hence the loose tolerance.
        for &t in &[1.0, 10.0, 20.0, 50.0] {
            assert!((ours.pdf(t) - theirs.pdf(t)).abs() < 1e-9, "pdf t={t}");
            assert!((ours.cdf(t) - theirs.cdf(t)).abs() < 1e-9, "cdf t={t}");
        }
    }
}
