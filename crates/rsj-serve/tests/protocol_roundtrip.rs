//! Wire-format round-trip tests over the public protocol API.

use reservation_strategies::{Plan, SimulateOptions};
use rsj_core::{CostModel, SolverSpec};
use rsj_dist::DistSpec;
use rsj_serve::{
    decode_request, encode, ErrorKind, Provenance, Request, Response, Timings, PROTOCOL_VERSION,
};

fn sample_plan() -> Plan {
    Plan {
        distribution: "LogNormal(3, 0.5)".to_string(),
        solver: "dp_equal_probability".to_string(),
        sequence: vec![21.5, 29.25, 40.125],
        complete: false,
        expected_cost: 31.0,
        omniscient_cost: 22.4,
        normalized_cost: 31.0 / 22.4,
        coverage_gap: 1.25e-7,
        digest: "0123456789abcdef".to_string(),
        simulation: None,
    }
}

#[test]
fn every_request_shape_round_trips() {
    let requests = vec![
        Request::ping(),
        Request::metrics(),
        Request::shutdown(),
        Request::plan(DistSpec::Exponential { lambda: 1.0 }),
        Request::plan_with(
            DistSpec::LogNormal {
                mu: 3.0,
                sigma: 0.5,
            },
            SolverSpec::Dp {
                scheme: rsj_dist::DiscretizationScheme::EqualTime,
                n: 500,
                epsilon: 1e-6,
                monotone: true,
            },
        ),
        Request::Plan {
            v: PROTOCOL_VERSION,
            distribution: DistSpec::Weibull {
                lambda: 1.0,
                kappa: 0.5,
            },
            cost: Some(CostModel {
                alpha: 1.0,
                beta: 0.5,
                gamma: 0.1,
            }),
            solver: SolverSpec::BruteForce {
                grid: 100,
                samples: 50,
                analytic: true,
                seed: 3,
            },
            seed: Some(17),
            simulate: Some(SimulateOptions { jobs: 32, seed: 4 }),
            deadline_ms: Some(1500),
            trace_id: Some("00000000000000000000000000c0ffee".to_string()),
            trace: true,
        },
        Request::trace_query(Some(8), Some(1.5), Some("beef".to_string())),
    ];
    for request in requests {
        let line = encode(&request).expect("encode");
        assert!(!line.contains('\n'), "wire lines are single-line: {line}");
        let back = decode_request(&line).expect("decode");
        assert_eq!(back, request, "{line}");
    }
}

#[test]
fn every_response_shape_round_trips() {
    let responses = vec![
        Response::Pong {
            v: PROTOCOL_VERSION,
        },
        Response::ShuttingDown {
            v: PROTOCOL_VERSION,
        },
        Response::Metrics {
            v: PROTOCOL_VERSION,
            prometheus: "# TYPE rsj_serve_requests_total counter\nrsj_serve_requests_total 3\n"
                .to_string(),
        },
        Response::error(ErrorKind::InvalidSolver, "unknown solver `warp_drive`"),
        Response::Plan {
            v: PROTOCOL_VERSION,
            plan: sample_plan(),
            provenance: Provenance {
                server: "rsj-serve/0.1.0".to_string(),
                protocol: PROTOCOL_VERSION,
                solver: "dp_equal_probability".to_string(),
                threads: 1,
                cached: true,
                coalesced: false,
            },
            timings: Timings {
                build_seconds: 0.0001,
                solve_seconds: 0.0,
                total_seconds: 0.00012,
            },
            trace_id: Some("00000000000000000000000000c0ffee".to_string()),
            timeline: Some(rsj_obs::TimelineRecord {
                trace_id: "00000000000000000000000000c0ffee".to_string(),
                op: "plan".to_string(),
                total_us: 1234,
                stages: vec![rsj_obs::StageRecord {
                    name: "solve".to_string(),
                    start_us: 10,
                    end_us: 1200,
                    args: Vec::new(),
                }],
            }),
        },
        Response::Trace {
            v: PROTOCOL_VERSION,
            timelines: vec![],
        },
    ];
    for response in responses {
        let line = encode(&response).expect("encode");
        assert!(!line.contains('\n'), "wire lines are single-line");
        let back: Response = serde_json::from_str(&line).expect("decode");
        assert_eq!(back, response, "{line}");
    }
}

#[test]
fn plan_sequences_round_trip_bit_exactly() {
    // The digest convention only works if the JSON layer preserves f64s
    // exactly (the vendored serde_json's float_roundtrip feature).
    let mut plan = sample_plan();
    plan.sequence = vec![
        f64::MIN_POSITIVE,
        1.0 + f64::EPSILON,
        1e308,
        0.1 + 0.2, // famously not 0.3
    ];
    let line = serde_json::to_string(&plan).expect("encode");
    let back: Plan = serde_json::from_str(&line).expect("decode");
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&back.sequence), bits(&plan.sequence));
}

#[test]
fn error_kinds_use_stable_snake_case_names() {
    let line = encode(&Response::error(ErrorKind::UnsupportedVersion, "v")).unwrap();
    assert!(line.contains(r#""kind":"unsupported_version""#), "{line}");
    let line = encode(&Response::error(ErrorKind::RequestTooLarge, "v")).unwrap();
    assert!(line.contains(r#""kind":"request_too_large""#), "{line}");
}
