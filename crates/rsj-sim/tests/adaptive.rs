//! Cross-layer guarantees of the adaptive replanning loop (system S19):
//! with the true distribution as prior and hysteresis on, the loop is the
//! static planner bit-for-bit; degenerate observation streams (all
//! censored, constant, two-point) travel the refit → replan path without a
//! panic, exercising the guardrailed fallback.

use rand::SeedableRng;
use rsj_core::{run_job, CostModel, MeanByMean, Strategy};
use rsj_dist::{ContinuousDistribution, LogNormal, Support, Uniform};
use rsj_sim::{run_adaptive, AdaptiveConfig};

/// A two-point law (mass `p_lo` at `lo`, rest at `hi`; `lo == hi` is a
/// point mass): the minimal degenerate truth for fuzzing the refit path.
#[derive(Debug)]
struct TwoPoint {
    lo: f64,
    hi: f64,
    p_lo: f64,
}

impl ContinuousDistribution for TwoPoint {
    fn name(&self) -> String {
        format!("TwoPoint({}, {})", self.lo, self.hi)
    }
    fn support(&self) -> Support {
        Support::Bounded {
            lower: 0.0,
            upper: self.hi,
        }
    }
    fn pdf(&self, _t: f64) -> f64 {
        0.0
    }
    fn cdf(&self, t: f64) -> f64 {
        if t < self.lo {
            0.0
        } else if t < self.hi {
            self.p_lo
        } else {
            1.0
        }
    }
    fn quantile(&self, p: f64) -> f64 {
        if p < self.p_lo {
            self.lo
        } else {
            self.hi
        }
    }
    fn mean(&self) -> f64 {
        self.p_lo * self.lo + (1.0 - self.p_lo) * self.hi
    }
    fn variance(&self) -> f64 {
        let m = self.mean();
        self.p_lo * (self.lo - m).powi(2) + (1.0 - self.p_lo) * (self.hi - m).powi(2)
    }
}

/// A correct prior plus hysteresis must reproduce the static planner's
/// sequence and per-job costs bit-for-bit, with no spurious replans.
#[test]
fn true_prior_reproduces_the_static_planner_bit_for_bit() {
    let truth = LogNormal::new(3.0, 0.5).unwrap();
    let cost = CostModel::reservation_only();
    let strategy = MeanByMean::default();
    let config = AdaptiveConfig {
        hysteresis: 0.10,
        ..AdaptiveConfig::default()
    };
    let n = 150;
    let seed = 11;

    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let report = run_adaptive(&truth, &truth, &strategy, &cost, n, &config, &mut rng).unwrap();

    // Replay the identical duration stream through the static plan.
    let plan = strategy.sequence(&truth, &cost).unwrap();
    let mut replay = rand::rngs::StdRng::seed_from_u64(seed);
    let mut static_total = 0.0;
    for (j, job) in report.jobs.iter().enumerate() {
        let t = truth.sample(&mut replay);
        assert_eq!(t.to_bits(), job.duration.to_bits(), "job {j} duration");
        let static_cost = run_job(&plan, &cost, t).cost;
        assert_eq!(
            static_cost.to_bits(),
            job.cost.to_bits(),
            "job {j}: adaptive diverged from the static planner"
        );
        assert_eq!(job.cost.to_bits(), job.oracle_cost.to_bits(), "job {j}");
        static_total += static_cost;
    }
    assert_eq!(report.replans, 0, "spurious replans: {:?}", report.refits);
    assert_eq!(report.total_cost.to_bits(), static_total.to_bits());
    assert_eq!(
        report.total_cost.to_bits(),
        report.oracle_total_cost.to_bits()
    );
    assert_eq!(report.mean_cost_ratio, 1.0);
    assert_eq!(report.cumulative_regret, 0.0);
}

/// All-censored stream: a prior that believes jobs are tiny plus a
/// one-reservation abandonment limit censors every observation. The refit
/// machinery must keep rejecting (or harmlessly absorbing) the degenerate
/// evidence without a panic.
#[test]
fn all_censored_stream_survives_refit_and_replan() {
    let truth = Uniform::new(10.0, 20.0).unwrap();
    let prior = LogNormal::new(-3.0, 0.3).unwrap();
    let cost = CostModel::reservation_only();
    let strategy = MeanByMean::default();
    let config = AdaptiveConfig {
        refit_interval: 1,
        min_observations: 2,
        hysteresis: 0.0,
        censor_after: Some(1),
        ..AdaptiveConfig::default()
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let report = run_adaptive(&truth, &prior, &strategy, &cost, 40, &config, &mut rng).unwrap();
    assert_eq!(report.censored_observations, 40, "every job is censored");
    assert!(
        !report.refits.is_empty(),
        "the refit path must actually run on the degenerate stream"
    );
    assert!(
        report.rejected_refits > 0,
        "all-censored evidence cannot produce an accepted model every round: {:?}",
        report.refits
    );
    for j in &report.jobs {
        assert!(j.cost.is_finite() && j.cost >= 0.0);
    }
}

/// Constant stream: every duration identical, so the parametric fit is
/// degenerate (zero log-variance) and the loop must degrade to the
/// Kaplan–Meier interpolated fallback rather than panic.
#[test]
fn constant_stream_degrades_to_the_empirical_fallback() {
    let truth = TwoPoint {
        lo: 10.0,
        hi: 10.0,
        p_lo: 1.0,
    };
    let prior = LogNormal::new(10.0f64.ln(), 0.4).unwrap();
    let cost = CostModel::reservation_only();
    let strategy = MeanByMean::default();
    let config = AdaptiveConfig {
        refit_interval: 5,
        min_observations: 5,
        hysteresis: 0.0,
        ..AdaptiveConfig::default()
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let report = run_adaptive(&truth, &prior, &strategy, &cost, 60, &config, &mut rng).unwrap();
    assert!(
        report.fallbacks >= 1,
        "zero-variance observations must exercise the empirical fallback: {:?}",
        report.refits
    );
    assert!(report.total_cost.is_finite());
    assert!(report.mean_cost_ratio.is_finite() && report.mean_cost_ratio > 0.0);
}

/// Constant stream with the fallback disabled: the loop keeps the
/// last-good model and every refit is rejected, still panic-free.
#[test]
fn constant_stream_without_fallback_keeps_the_last_good_model() {
    let truth = TwoPoint {
        lo: 10.0,
        hi: 10.0,
        p_lo: 1.0,
    };
    let prior = LogNormal::new(10.0f64.ln(), 0.4).unwrap();
    let cost = CostModel::reservation_only();
    let strategy = MeanByMean::default();
    let config = AdaptiveConfig {
        refit_interval: 5,
        min_observations: 5,
        hysteresis: 0.0,
        empirical_fallback: false,
        ..AdaptiveConfig::default()
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let report = run_adaptive(&truth, &prior, &strategy, &cost, 60, &config, &mut rng).unwrap();
    assert_eq!(report.fallbacks, 0);
    assert!(report.rejected_refits >= 1, "{:?}", report.refits);
    // With the fallback disabled the working model can only ever be the
    // prior or an accepted parametric refit — never the interpolated law.
    assert!(
        report.final_model.contains("prior") || report.final_model.contains("LogNormal"),
        "{}",
        report.final_model
    );
    assert!(report.total_cost.is_finite() && report.total_cost > 0.0);
}

/// Two-point stream (mixed with censoring): refits fit a genuine spread,
/// replans may fire, and everything stays finite and panic-free.
#[test]
fn two_point_stream_with_censoring_completes() {
    let truth = TwoPoint {
        lo: 2.0,
        hi: 12.0,
        p_lo: 0.5,
    };
    let prior = LogNormal::new(1.2, 0.8).unwrap();
    let cost = CostModel::new(1.0, 0.5, 0.1).unwrap();
    let strategy = MeanByMean::default();
    let config = AdaptiveConfig {
        refit_interval: 5,
        min_observations: 5,
        hysteresis: 0.0,
        censor_after: Some(2),
        ..AdaptiveConfig::default()
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let report = run_adaptive(&truth, &prior, &strategy, &cost, 80, &config, &mut rng).unwrap();
    assert_eq!(report.jobs.len(), 80);
    assert!(!report.refits.is_empty());
    assert!(report.total_cost.is_finite() && report.total_cost > 0.0);
    assert!(report.oracle_total_cost.is_finite() && report.oracle_total_cost > 0.0);
    for j in &report.jobs {
        assert!(j.cost.is_finite() && j.cost >= 0.0, "{j:?}");
    }
}
