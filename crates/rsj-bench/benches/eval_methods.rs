//! Criterion ablation: exact Eq. 4 series evaluation vs the paper's
//! Monte-Carlo estimator (Eq. 13) at several sample counts, plus the
//! sequential-vs-parallel brute-force sweep called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rsj_core::{
    draw_samples, expected_cost_analytic, expected_cost_monte_carlo, sequence_from_t1, BruteForce,
    CostModel, EvalMethod, RecurrenceConfig, Strategy,
};
use rsj_dist::LogNormal;
use rsj_par::Parallelism;

fn bench_eval_methods(c: &mut Criterion) {
    let dist = LogNormal::new(3.0, 0.5).unwrap();
    let cost = CostModel::reservation_only();
    let seq = sequence_from_t1(&dist, &cost, 30.0, &RecurrenceConfig::default()).unwrap();

    let mut group = c.benchmark_group("expected_cost");
    group.bench_function("analytic_eq4", |b| {
        b.iter(|| expected_cost_analytic(&seq, &dist, &cost));
    });
    for n in [100usize, 1000, 10_000] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let samples = draw_samples(&dist, n, &mut rng);
        group.bench_with_input(BenchmarkId::new("monte_carlo", n), &samples, |b, s| {
            b.iter(|| expected_cost_monte_carlo(&seq, &cost, s));
        });
    }
    group.finish();

    // Parallel vs sequential brute-force sweep on the rsj-par pool.
    let mut group = c.benchmark_group("brute_force_parallelism");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let bf = BruteForce::new(2000, 1000, EvalMethod::Analytic, 1)
            .unwrap()
            .with_parallelism(Parallelism::new(threads).unwrap());
        group.bench_with_input(BenchmarkId::new("threads", threads), &bf, |b, bf| {
            b.iter(|| bf.sequence(&dist, &cost).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eval_methods);
criterion_main!(benches);
