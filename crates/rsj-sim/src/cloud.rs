//! Cloud pricing models (system S10): the Reserved-Instance vs On-Demand
//! analysis of §5.2.
//!
//! With a per-hour Reserved-Instance price `c_RI` and On-Demand price
//! `c_OD`, reservations pay `c_RI · (requested time)` while On-Demand pays
//! `c_OD · (actual time)` — i.e. On-Demand behaves like the omniscient
//! scheduler at a higher rate. Using RI with a reservation sequence `S` is
//! beneficial iff `Ẽ(S)/E° ≤ c_OD/c_RI` (the paper cites a factor of up to
//! 4 on AWS).

use rsj_core::{expected_cost_analytic, CostModel, ReservationSequence};
use rsj_dist::ContinuousDistribution;
use serde::{Deserialize, Serialize};

/// Per-hour prices of the two service classes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CloudPricing {
    /// Reserved-Instance price per hour (pay for what you request).
    pub reserved_rate: f64,
    /// On-Demand price per hour (pay for what you use).
    pub on_demand_rate: f64,
}

impl CloudPricing {
    /// Creates a pricing scheme; both rates must be positive.
    pub fn new(reserved_rate: f64, on_demand_rate: f64) -> Result<Self, String> {
        if !(reserved_rate > 0.0 && on_demand_rate > 0.0) {
            return Err(format!(
                "rates must be positive, got RI={reserved_rate}, OD={on_demand_rate}"
            ));
        }
        Ok(Self {
            reserved_rate,
            on_demand_rate,
        })
    }

    /// AWS-like pricing with the paper's extreme ratio `c_OD/c_RI = 4`
    /// ("up to 75% cheaper", §1/§5.2).
    pub fn aws_like() -> Self {
        Self {
            reserved_rate: 1.0,
            on_demand_rate: 4.0,
        }
    }

    /// The break-even normalized cost `c_OD/c_RI`: Reserved Instances win
    /// whenever a strategy's `Ẽ(S)/E°` is below this.
    pub fn break_even_ratio(&self) -> f64 {
        self.on_demand_rate / self.reserved_rate
    }

    /// Expected *monetary* cost of running one job On-Demand: the job pays
    /// for its actual duration only.
    pub fn on_demand_expected_cost(&self, dist: &dyn ContinuousDistribution) -> f64 {
        self.on_demand_rate * dist.mean()
    }

    /// Expected monetary cost of running one job through a reservation
    /// sequence on Reserved Instances (RESERVATIONONLY cost scaled by the
    /// RI rate).
    pub fn reserved_expected_cost(
        &self,
        seq: &ReservationSequence,
        dist: &dyn ContinuousDistribution,
    ) -> f64 {
        let res_only = CostModel::reservation_only();
        self.reserved_rate * expected_cost_analytic(seq, dist, &res_only)
    }

    /// Whether the reservation strategy beats On-Demand for this job law.
    pub fn reserved_is_beneficial(
        &self,
        seq: &ReservationSequence,
        dist: &dyn ContinuousDistribution,
    ) -> bool {
        self.reserved_expected_cost(seq, dist) <= self.on_demand_expected_cost(dist)
    }

    /// The §5.2 decision quantity: a strategy's normalized expected cost
    /// `Ẽ(S)/E°` compared against the break-even ratio. Returns
    /// `(normalized_cost, break_even, beneficial)`.
    pub fn decision(
        &self,
        seq: &ReservationSequence,
        dist: &dyn ContinuousDistribution,
    ) -> (f64, f64, bool) {
        let res_only = CostModel::reservation_only();
        let normalized = expected_cost_analytic(seq, dist, &res_only) / dist.mean();
        let break_even = self.break_even_ratio();
        (normalized, break_even, normalized <= break_even)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsj_core::{MeanByMean, Strategy};
    use rsj_dist::{Exponential, Uniform};

    #[test]
    fn rejects_bad_rates() {
        assert!(CloudPricing::new(0.0, 1.0).is_err());
        assert!(CloudPricing::new(1.0, -1.0).is_err());
    }

    #[test]
    fn break_even_ratio_aws() {
        assert_eq!(CloudPricing::aws_like().break_even_ratio(), 4.0);
    }

    #[test]
    fn uniform_optimal_beats_on_demand_at_factor_4() {
        // Normalized cost of the optimal uniform strategy is 4/3 < 4.
        let d = Uniform::new(10.0, 20.0).unwrap();
        let seq = ReservationSequence::single(20.0).unwrap();
        let pricing = CloudPricing::aws_like();
        let (ratio, break_even, ok) = pricing.decision(&seq, &d);
        assert!((ratio - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(break_even, 4.0);
        assert!(ok);
        assert!(pricing.reserved_is_beneficial(&seq, &d));
    }

    #[test]
    fn narrow_price_gap_flips_decision() {
        // With c_OD/c_RI = 1.2 the uniform ratio 1.33 no longer pays off.
        let d = Uniform::new(10.0, 20.0).unwrap();
        let seq = ReservationSequence::single(20.0).unwrap();
        let pricing = CloudPricing::new(1.0, 1.2).unwrap();
        assert!(!pricing.reserved_is_beneficial(&seq, &d));
    }

    #[test]
    fn heuristic_sequences_stay_under_aws_break_even() {
        // Table 2's observation: all heuristics satisfy Ẽ(S)/E° < 4.
        let d = Exponential::new(1.0).unwrap();
        let seq = MeanByMean::default()
            .sequence(&d, &CostModel::reservation_only())
            .unwrap();
        let (ratio, _, ok) = CloudPricing::aws_like().decision(&seq, &d);
        assert!(ratio < 4.0, "ratio {ratio}");
        assert!(ok);
    }
}
