//! Seeds `results/BENCH_serve.json`: load numbers for the `rsj-serve`
//! planning daemon under three closed-loop regimes — a healthy baseline,
//! deliberate overload against a tiny admission queue, and the fixed-seed
//! chaos schedule behind a fault-injecting proxy with a retrying client —
//! plus two open-ended studies: an *open-loop Poisson* offered-rate sweep
//! across the saturation knee, and a batched-vs-singleton round-trip
//! comparison for the v2 `plan_batch` op.
//!
//! Reported per scenario: throughput, p50/p99 request latency, and the
//! shed/failure split. Future robustness PRs diff against this file
//! instead of folklore. Timings move with the host; the invariants the
//! suite *asserts* (typed sheds, bit-identical successes) are enforced by
//! the `rsj-serve` test suite, not here.
//!
//! The saturation sweep pins the per-request service time with an
//! injected dispatch delay (the chaos policy's deterministic slow-worker
//! fault), so the knee sits at a *known* offered rate — `workers ×
//! 1000/delay_ms` requests per second — instead of wherever the host's
//! solver happens to land. Past the knee the open-loop backlog must shed
//! with typed `overloaded`/`deadline_exceeded` answers, never resets.
//!
//! The batch comparison runs a cache-missing workload (one
//! distribution, per-item gamma jitter to defeat the plan cache while
//! sharing the eval table) through K singleton round trips and through
//! one `plan_batch` call, interleaved round by round against one server
//! with the resilient client both ways. On this 1-CPU container the
//! ~2x speedup is round-trip amortization (framing, syscalls, queue
//! crossings, per-request client bookkeeping), not parallelism —
//! multi-core hosts will see more.
//!
//! Honours `RSJ_FIDELITY` (`quick` shrinks the request counts), `RSJ_LOG`
//! and `RSJ_RESULTS_DIR`.

use reservation_strategies::PlanRequest;
use rsj_bench::perf::HostInfo;
use rsj_bench::scenarios::Fidelity;
use rsj_bench::{report, DEFAULT_SEED};
use rsj_core::{CostModel, SolverSpec};
use rsj_dist::{DiscretizationScheme, DistSpec};
use rsj_par::substream_seed;
use rsj_serve::{
    AdmissionConfig, BatchItem, BreakerConfig, ChaosPolicy, ChaosProxy, Client, Request,
    ResilientClient, Response, RetryPolicy, Server, ServerConfig,
};
use serde::{Deserialize, Serialize};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const SCHEMA_VERSION: u32 = 2;

/// Per-stage latency summary, computed from the server's own request
/// timelines (the `trace` op against a `trace_buffer` server), so the
/// numbers attribute time the way the server measured it rather than the
/// way the client observed it.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StageSummary {
    stage: String,
    count: usize,
    p50_ms: f64,
    p99_ms: f64,
}

/// One load regime's aggregate numbers.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ScenarioResult {
    name: String,
    /// Requests attempted (including ones that were shed or failed).
    requests: usize,
    /// Successful plan/pong responses.
    ok: usize,
    /// Typed `overloaded` / `deadline_exceeded` rejections.
    shed: usize,
    /// Transport-level failures (chaos faults, torn lines).
    failed: usize,
    /// Client-side retry attempts beyond the first try (chaos scenario).
    retries: usize,
    wall_seconds: f64,
    throughput_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    shed_rate: f64,
    /// Server-side stage breakdown (baseline scenario only; empty where
    /// the regime runs untraced).
    #[serde(default)]
    stages: Vec<StageSummary>,
}

/// One offered rate of the open-loop Poisson sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SaturationPoint {
    /// Offered arrival rate (requests/second), open-loop: arrivals do not
    /// wait for completions.
    offered_rps: f64,
    /// Offered rate over the injected service capacity (1.0 = the knee).
    utilization: f64,
    arrivals: usize,
    ok: usize,
    /// Typed `overloaded` admission sheds.
    shed_overloaded: usize,
    /// Typed `deadline_exceeded` sheds (queue wait ate the deadline).
    shed_deadline: usize,
    /// Transport-level failures (must stay 0: sheds are answers).
    failed: usize,
    achieved_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// Batched vs singleton round trips over the same cache-missing workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BatchCompare {
    /// Items per mode (all cache misses over one shared eval table).
    items: usize,
    singleton_wall_seconds: f64,
    singleton_rps: f64,
    batched_wall_seconds: f64,
    batched_rps: f64,
    /// `batched_rps / singleton_rps`.
    speedup: f64,
}

/// The `results/BENCH_serve.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ServeBaseline {
    schema_version: u32,
    fidelity: String,
    seed: u64,
    host: HostInfo,
    workers: usize,
    scenarios: Vec<ScenarioResult>,
    /// Open-loop Poisson offered-rate sweep across the saturation knee.
    #[serde(default)]
    saturation: Vec<SaturationPoint>,
    /// `plan_batch` vs singleton round-trip throughput.
    #[serde(default)]
    batch_compare: Option<BatchCompare>,
}

/// The rotating request mix: three distributions over one DP config, so
/// the stream exercises cold solves, cache hits and coalescing alike.
fn request_for(i: usize) -> Request {
    let dists = [
        DistSpec::LogNormal {
            mu: 3.0,
            sigma: 0.5,
        },
        DistSpec::LogNormal {
            mu: 2.0,
            sigma: 0.8,
        },
        DistSpec::LogNormal {
            mu: 1.5,
            sigma: 0.3,
        },
    ];
    Request::plan_with(
        dists[i % 3].clone(),
        SolverSpec::Dp {
            scheme: DiscretizationScheme::EqualProbability,
            n: 300,
            epsilon: 1e-6,
            monotone: true,
        },
    )
}

/// A request no other load thread will have cached: every solve is cold,
/// so the overload scenario keeps the workers genuinely busy.
fn unique_request(i: usize) -> Request {
    Request::plan_with(
        DistSpec::LogNormal {
            mu: 1.5 + 0.01 * i as f64,
            sigma: 0.6,
        },
        SolverSpec::Dp {
            scheme: DiscretizationScheme::EqualProbability,
            n: 600,
            epsilon: 1e-6,
            monotone: true,
        },
    )
}

fn percentile_ms(latencies: &mut [Duration], q: f64) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.sort_unstable();
    let rank = ((latencies.len() as f64 * q).ceil() as usize).clamp(1, latencies.len());
    latencies[rank - 1].as_secs_f64() * 1e3
}

/// Outcome counts accumulated while driving one regime.
#[derive(Debug, Default, Clone, Copy)]
struct Tally {
    ok: usize,
    shed: usize,
    failed: usize,
    retries: usize,
}

fn finish(
    name: &str,
    requests: usize,
    tally: Tally,
    wall: Duration,
    latencies: &mut [Duration],
) -> ScenarioResult {
    let wall_seconds = wall.as_secs_f64();
    ScenarioResult {
        name: name.to_string(),
        requests,
        ok: tally.ok,
        shed: tally.shed,
        failed: tally.failed,
        retries: tally.retries,
        wall_seconds,
        throughput_rps: requests as f64 / wall_seconds.max(1e-9),
        p50_ms: percentile_ms(latencies, 0.50),
        p99_ms: percentile_ms(latencies, 0.99),
        shed_rate: tally.shed as f64 / (requests as f64).max(1.0),
        stages: Vec::new(),
    }
}

/// Per-stage p50/p99 over the plan timelines retained by the server's
/// trace ring, name-sorted for a stable JSON diff.
fn stage_summaries(timelines: &[rsj_obs::TimelineRecord]) -> Vec<StageSummary> {
    let mut by_stage: std::collections::BTreeMap<&str, Vec<Duration>> =
        std::collections::BTreeMap::new();
    for record in timelines.iter().filter(|r| r.op == "plan") {
        for stage in &record.stages {
            by_stage
                .entry(stage.name.as_str())
                .or_default()
                .push(Duration::from_micros(stage.duration_us()));
        }
    }
    by_stage
        .into_iter()
        .map(|(stage, mut durations)| StageSummary {
            stage: stage.to_string(),
            count: durations.len(),
            p50_ms: percentile_ms(&mut durations, 0.50),
            p99_ms: percentile_ms(&mut durations, 0.99),
        })
        .collect()
}

fn spawn_server(config: ServerConfig) -> (SocketAddr, impl FnOnce()) {
    let server = Server::bind(config).expect("bind server");
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run());
    (addr, move || {
        shutdown.signal();
        // Unblock the accept poll with one last connection attempt.
        let _ = std::net::TcpStream::connect(addr);
        join.join()
            .expect("server thread")
            .expect("clean server exit");
    })
}

/// Healthy regime: one closed-loop client, default admission settings.
/// Runs against a `trace_buffer` server so the result also carries the
/// server-side per-stage breakdown.
fn baseline(workers: usize, requests: usize) -> ScenarioResult {
    let (addr, stop) = spawn_server(ServerConfig {
        workers,
        trace_buffer: requests.max(64),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    let mut latencies = Vec::with_capacity(requests);
    let mut tally = Tally::default();
    let started = Instant::now();
    for i in 0..requests {
        let t = Instant::now();
        match client.call(&request_for(i)) {
            Ok(Response::Plan { .. }) => tally.ok += 1,
            Ok(Response::Error { .. }) => tally.shed += 1,
            Ok(_) => {}
            Err(_) => tally.failed += 1,
        }
        latencies.push(t.elapsed());
    }
    let wall = started.elapsed();
    let timelines = client.trace(Some(requests), None, None).unwrap_or_default();
    drop(client);
    stop();
    let mut result = finish("baseline", requests, tally, wall, &mut latencies);
    result.stages = stage_summaries(&timelines);
    result
}

/// Overload regime: a burst of concurrent connections against a tiny
/// admission queue; the interesting number is the typed shed rate.
fn overload(workers: usize, clients: usize, per_client: usize) -> ScenarioResult {
    let (addr, stop) = spawn_server(ServerConfig {
        workers,
        admission: AdmissionConfig {
            capacity: 2,
            high_watermark: 2,
            low_watermark: 1,
        },
        ..ServerConfig::default()
    });
    let started = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(per_client);
                let mut tally = Tally::default();
                for i in 0..per_client {
                    let t = Instant::now();
                    match Client::connect(addr) {
                        Ok(mut client) => {
                            match client
                                .call(&unique_request(c * per_client + i).with_deadline_ms(10_000))
                            {
                                Ok(Response::Plan { .. }) => tally.ok += 1,
                                Ok(Response::Error { .. }) => tally.shed += 1,
                                Ok(_) => {}
                                Err(_) => tally.failed += 1,
                            }
                        }
                        Err(_) => tally.failed += 1,
                    }
                    latencies.push(t.elapsed());
                }
                (tally, latencies)
            })
        })
        .collect();
    let mut tally = Tally::default();
    let mut latencies = Vec::new();
    for t in threads {
        let (part, l) = t.join().expect("load thread");
        tally.ok += part.ok;
        tally.shed += part.shed;
        tally.failed += part.failed;
        latencies.extend(l);
    }
    let wall = started.elapsed();
    stop();
    finish(
        "overload",
        clients * per_client,
        tally,
        wall,
        &mut latencies,
    )
}

/// Chaos regime: the fixed-seed fault schedule (worker panics, dispatch
/// delays, dropped/truncated/stalled connections) behind the chaos proxy,
/// driven by the retrying resilient client.
fn chaos(workers: usize, requests: usize, seed: u64) -> ScenarioResult {
    let policy = ChaosPolicy {
        seed,
        worker_panic_every: 5,
        delay_every: 4,
        delay_ms: 10,
        drop_conn_every: 6,
        stall_every: 5,
        stall_ms: 50,
        partial_write_every: 7,
    };
    let (addr, stop) = spawn_server(ServerConfig {
        workers,
        chaos: Some(policy),
        ..ServerConfig::default()
    });
    let proxy = ChaosProxy::bind(addr, policy).expect("bind proxy");
    let proxy_addr = proxy.local_addr();
    let proxy_stop = proxy.stop_handle();
    let proxy_join = std::thread::spawn(move || proxy.run());

    let retry = RetryPolicy {
        max_attempts: 4,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(50),
        jitter_seed: seed,
        retry_budget: (requests * 2) as u32,
    };
    // A lenient breaker: the point of this scenario is retry
    // effectiveness under a known fault rate, not fail-fast behavior.
    let breaker = BreakerConfig {
        failure_threshold: u32::MAX,
        ..BreakerConfig::default()
    };
    let mut client = ResilientClient::new(proxy_addr.to_string(), retry, breaker);
    let mut latencies = Vec::with_capacity(requests);
    let mut tally = Tally::default();
    let started = Instant::now();
    for i in 0..requests {
        let t = Instant::now();
        match client.call(&request_for(i)) {
            Ok(Response::Plan { .. }) => tally.ok += 1,
            Ok(Response::Error { .. }) => tally.shed += 1,
            Ok(_) => {}
            Err(_) => tally.failed += 1,
        }
        latencies.push(t.elapsed());
    }
    let wall = started.elapsed();
    tally.retries = client.retries_spent() as usize;
    drop(client);
    proxy_stop.stop();
    stop();
    proxy_join
        .join()
        .expect("proxy thread")
        .expect("clean proxy exit");
    finish("chaos", requests, tally, wall, &mut latencies)
}

/// Injected per-request service time for the saturation sweep, so the
/// knee is a known constant instead of a host-dependent solve time.
const SERVICE_MS: u64 = 10;

/// One open-loop Poisson point: `arrivals` requests launched on a seeded
/// exponential-gap schedule at `offered_rps`, regardless of completions
/// (each arrival is its own thread and connection — a closed-loop client
/// would throttle itself and never cross the knee).
fn saturation_point(
    workers: usize,
    offered_rps: f64,
    arrivals: usize,
    seed: u64,
) -> SaturationPoint {
    let policy = ChaosPolicy {
        delay_every: 1,
        delay_ms: SERVICE_MS,
        ..ChaosPolicy::quiet(seed)
    };
    let (addr, stop) = spawn_server(ServerConfig {
        workers,
        admission: AdmissionConfig {
            capacity: 32,
            high_watermark: 24,
            low_watermark: 8,
        },
        chaos: Some(policy),
        ..ServerConfig::default()
    });
    // Seeded Poisson schedule: cumulative exponential gaps. Decorrelate
    // the substream by the rate's bits so every point gets its own draw.
    let stream = substream_seed(seed, offered_rps.to_bits());
    let mut offsets = Vec::with_capacity(arrivals);
    let mut at = 0.0f64;
    for i in 0..arrivals {
        let u = (substream_seed(stream, i as u64) >> 11) as f64 / (1u64 << 53) as f64;
        at += -(1.0 - u).ln() / offered_rps;
        offsets.push(Duration::from_secs_f64(at));
    }
    let started = Instant::now();
    let threads: Vec<_> = offsets
        .into_iter()
        .enumerate()
        .map(|(i, due)| {
            std::thread::spawn(move || {
                let now = started.elapsed();
                if due > now {
                    std::thread::sleep(due - now);
                }
                let t = Instant::now();
                let outcome = Client::connect(addr)
                    .map_err(rsj_serve::ClientError::Io)
                    .and_then(|mut client| {
                        client.call(
                            // Cheap unique solve: the injected delay is the
                            // service time, the solver itself is noise.
                            &Request::plan(DistSpec::Exponential {
                                lambda: 1.0 + i as f64 * 1e-6,
                            })
                            .with_deadline_ms(1_500),
                        )
                    });
                (outcome, t.elapsed())
            })
        })
        .collect();
    let mut point = SaturationPoint {
        offered_rps,
        utilization: offered_rps * SERVICE_MS as f64 / (workers as f64 * 1e3),
        arrivals,
        ok: 0,
        shed_overloaded: 0,
        shed_deadline: 0,
        failed: 0,
        achieved_rps: 0.0,
        p50_ms: 0.0,
        p99_ms: 0.0,
    };
    let mut ok_latencies = Vec::new();
    for thread in threads {
        let (outcome, latency) = thread.join().expect("arrival thread");
        match outcome {
            Ok(Response::Plan { .. }) => {
                point.ok += 1;
                ok_latencies.push(latency);
            }
            Ok(Response::Error { kind, .. }) if kind == rsj_serve::ErrorKind::Overloaded => {
                point.shed_overloaded += 1
            }
            Ok(Response::Error { kind, .. }) if kind == rsj_serve::ErrorKind::DeadlineExceeded => {
                point.shed_deadline += 1
            }
            Ok(_) => point.failed += 1,
            Err(_) => point.failed += 1,
        }
    }
    let wall = started.elapsed().as_secs_f64();
    point.achieved_rps = point.ok as f64 / wall.max(1e-9);
    point.p50_ms = percentile_ms(&mut ok_latencies, 0.50);
    point.p99_ms = percentile_ms(&mut ok_latencies, 0.99);
    stop();
    point
}

/// The offered-rate sweep: half the knee, the knee, and 2× / 4× past it.
fn saturation_sweep(workers: usize, arrivals: usize, seed: u64) -> Vec<SaturationPoint> {
    let knee = workers as f64 * 1e3 / SERVICE_MS as f64;
    [0.5, 1.0, 2.0, 4.0]
        .iter()
        .map(|mult| saturation_point(workers, knee * mult, arrivals, seed))
        .collect()
}

/// The batch workload: one distribution and solver, per-item gamma
/// jitter — every item is a distinct plan-cache key, but all of them
/// share one eval table (and, batched, one warm table build).
fn batch_items(k: usize, round: usize) -> Vec<PlanRequest> {
    (0..k)
        .map(|i| {
            PlanRequest::new(DistSpec::Exponential { lambda: 1.0 })
                .with_solver(SolverSpec::Dp {
                    scheme: DiscretizationScheme::EqualProbability,
                    n: 20,
                    epsilon: 1e-6,
                    monotone: true,
                })
                .with_cost(CostModel {
                    alpha: 1.0,
                    beta: 0.0,
                    // Unique across every round so repeat rounds stay
                    // cache misses against the same server.
                    gamma: 1e-9 * (round * k + i + 1) as f64,
                })
        })
        .collect()
}

/// K singleton round trips vs one `plan_batch` call against one shared
/// server — every item is a distinct cache miss, so neither mode ever
/// sees the other's plans. Both legs drive the [`ResilientClient`] a
/// fleet would actually deploy, so the per-request client bookkeeping
/// (trace-id minting, breaker accounting) that batching amortizes is
/// part of the measurement. The process-wide eval-table memo is warmed
/// once up front so neither mode pays the first build.
fn batch_compare(workers: usize, k: usize) -> BatchCompare {
    batch_items(k, 0)[0]
        .planner()
        .expect("valid item")
        .plan()
        .expect("warmup solve");
    // Round 0 is an untimed warmup (allocator, page faults, branch
    // history); rounds 1..=ROUNDS are timed and the best wall wins —
    // min-of-rounds is the usual low-noise estimator on a shared CPU.
    // The modes alternate within each round so a frequency or scheduler
    // wobble hits both rather than biasing one. Every round uses fresh
    // cost rates, so every solve stays a cache miss — the comparison
    // measures round-trip amortization, not cache hits.
    const ROUNDS: usize = 7;

    let (addr, stop) = spawn_server(ServerConfig {
        workers,
        // 8 warm+timed singleton rounds exceed the default per-connection
        // request cap; the cap is not what this microbenchmark measures.
        max_requests_per_conn: usize::MAX,
        ..ServerConfig::default()
    });
    let mut client = ResilientClient::new(
        addr.to_string(),
        RetryPolicy::default(),
        BreakerConfig::default(),
    );
    let mut singleton_walls = Vec::new();
    let mut batched_walls = Vec::new();
    for round in 0..=ROUNDS {
        // Singleton leg: one request per round trip.
        let items = batch_items(k, 2 * round);
        let started = Instant::now();
        for item in &items {
            let response = client
                .call(&Request::Plan {
                    v: rsj_serve::PROTOCOL_VERSION,
                    distribution: item.distribution.clone(),
                    cost: item.cost,
                    solver: item.solver.clone(),
                    seed: None,
                    simulate: None,
                    deadline_ms: None,
                    trace_id: None,
                    trace: false,
                })
                .expect("singleton call");
            assert!(
                matches!(response, Response::Plan { .. }),
                "singleton mode must plan: {response:?}"
            );
        }
        if round > 0 {
            singleton_walls.push(started.elapsed().as_secs_f64());
        }

        // Batched leg: the same number of items in one round trip.
        let items = batch_items(k, 2 * round + 1);
        let started = Instant::now();
        let results = client.plan_batch(items, None).expect("batch call");
        if round > 0 {
            batched_walls.push(started.elapsed().as_secs_f64());
        }
        assert!(
            results.len() == k && results.iter().all(BatchItem::is_ok),
            "batched mode must plan every item"
        );
    }
    drop(client);
    stop();

    let best = |walls: &[f64]| -> f64 { walls.iter().copied().fold(f64::INFINITY, f64::min) };
    let singleton_wall = best(&singleton_walls);
    let batched_wall = best(&batched_walls);
    let singleton_rps = k as f64 / singleton_wall.max(1e-9);
    let batched_rps = k as f64 / batched_wall.max(1e-9);
    BatchCompare {
        items: k,
        singleton_wall_seconds: singleton_wall,
        singleton_rps,
        batched_wall_seconds: batched_wall,
        batched_rps,
        speedup: batched_rps / singleton_rps.max(1e-9),
    }
}

fn main() -> std::io::Result<()> {
    rsj_obs::init_from_env();
    rsj_obs::set_metrics_enabled(true);
    let host = HostInfo::capture();
    let fidelity = Fidelity::from_env();
    // Closed-loop volumes per regime; the baked-in solver configs are
    // bench-scoped, so only the counts move with fidelity.
    let (base_requests, load_clients, load_per_client, chaos_requests, arrivals, batch_k) =
        match fidelity {
            Fidelity::Paper => (400, 12, 20, 96, 240, 128),
            Fidelity::Quick => (60, 6, 5, 24, 80, 128),
        };
    let workers = 2;

    rsj_obs::info!("serve_load at {fidelity:?} fidelity, {workers} workers");
    // The comparison runs first, before the load regimes and the
    // open-loop sweep litter the process with hundreds of spawned-and-
    // joined arrival threads — scheduler debris that only adds noise to
    // a microbenchmark.
    let compare = batch_compare(workers, batch_k);
    rsj_obs::info!(
        "batch compare over {} items: singleton {:.0} rps, batched {:.0} rps ({:.2}x)",
        compare.items,
        compare.singleton_rps,
        compare.batched_rps,
        compare.speedup
    );
    let scenarios = vec![
        baseline(workers, base_requests),
        overload(workers, load_clients, load_per_client),
        chaos(workers, chaos_requests, DEFAULT_SEED),
    ];
    let saturation = saturation_sweep(workers, arrivals, DEFAULT_SEED);
    for p in &saturation {
        rsj_obs::info!(
            "saturation {:.0} rps offered (u={:.2}): ok={} shed={}+{} failed={} \
             achieved {:.1} rps, p50 {:.2}ms p99 {:.2}ms",
            p.offered_rps,
            p.utilization,
            p.ok,
            p.shed_overloaded,
            p.shed_deadline,
            p.failed,
            p.achieved_rps,
            p.p50_ms,
            p.p99_ms
        );
    }
    for s in &scenarios {
        rsj_obs::info!(
            "{}: {} req in {:.2}s ({:.1} rps), p50 {:.2}ms p99 {:.2}ms, \
             ok={} shed={} failed={} retries={}",
            s.name,
            s.requests,
            s.wall_seconds,
            s.throughput_rps,
            s.p50_ms,
            s.p99_ms,
            s.ok,
            s.shed,
            s.failed,
            s.retries
        );
    }

    let doc = ServeBaseline {
        schema_version: SCHEMA_VERSION,
        fidelity: format!("{fidelity:?}"),
        seed: DEFAULT_SEED,
        host,
        workers,
        scenarios,
        saturation,
        batch_compare: Some(compare),
    };
    let path = report::write_result_file(
        "BENCH_serve.json",
        &format!(
            "{}\n",
            serde_json::to_string_pretty(&doc).expect("serializable")
        ),
    )?;
    println!("wrote {}", path.display());
    Ok(())
}
