//! Offline, API-compatible subset of `criterion`.
//!
//! Runs each benchmark a small fixed number of wall-clock-timed
//! iterations and prints mean time per iteration — no statistics,
//! plotting, or baseline comparison. Enough to keep `cargo bench`
//! compiling and producing usable numbers in the offline environment.

#![warn(missing_docs)]
// Vendored stand-in for the crates.io crate; keep clippy out of it, as
// it would be for a registry dependency.
#![allow(clippy::all)]

use std::fmt::Display;
use std::time::Instant;

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Declared throughput of one benchmark iteration (recorded, echoed in
/// output, otherwise unused).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing harness passed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, called `self.iterations` times after one warmup.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.iterations as f64;
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets a target measurement time (accepted, ignored: iteration
    /// count is fixed by `sample_size`).
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            iterations: self.sample_size as u64,
            mean_ns: 0.0,
        };
        f(&mut b);
        self.report(&id, b.mean_ns);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            iterations: self.sample_size as u64,
            mean_ns: 0.0,
        };
        f(&mut b, input);
        self.report(&id, b.mean_ns);
        self
    }

    fn report(&self, id: &BenchmarkId, mean_ns: f64) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
                format!("  ({:.3e} elem/s)", n as f64 / (mean_ns * 1e-9))
            }
            Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
                format!("  ({:.3e} B/s)", n as f64 / (mean_ns * 1e-9))
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: {:.3} ms/iter{rate}",
            self.name,
            id.id,
            mean_ns / 1e6
        );
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups (benches use `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 5), &5u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_without_panicking() {
        benches();
    }
}
