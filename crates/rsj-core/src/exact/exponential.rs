//! The RESERVATIONONLY optimum for exponential distributions (§3.5).
//!
//! Proposition 2: for `X ~ Exp(1)` the optimal sequence `(sᵢ)` satisfies
//! `s₂ = e^{s₁}`, `sᵢ = e^{sᵢ₋₁ - sᵢ₋₂}`, and minimizes
//! `E₁ = s₁ + 1 + Σᵢ e^{-sᵢ}` — equivalently `E(S) = Σᵢ sᵢ₊₁·e^{-sᵢ}`.
//! The optimum is scale-free: for `Exp(λ)`, `tᵢ = sᵢ/λ` and
//! `E(S_λ) = E₁/λ`. The paper reports `s₁ ≈ 0.74219` from a brute-force
//! search.
//!
//! ## Evaluating `E₁` honestly
//!
//! The recurrence amplifies perturbations of `s₁` doubly exponentially, so
//! every finite-precision trajectory eventually produces a non-increasing
//! step ("breakdown"). Simply truncating the series there *flatters*
//! early-breaking candidates (their unpaid tail is large). Instead, the
//! breakdown remainder is priced as an *optimal restart*: conditioned on
//! `X > s_K`, memorylessness makes the remaining problem a fresh `Exp(1)`
//! instance, so the exact tail contribution is
//!
//! ```text
//! e^{-s_K} · ( s_K·(E₁° - s₁°) + E₁° )
//! ```
//!
//! (`1 + Σ e^{-uᵢ} = E₁° - s₁°` along an optimal restart trajectory
//! `(uᵢ)`). `(s₁°, E₁°)` is obtained by self-consistent iteration: grid
//! minimization with a guessed pair, then re-minimization with the refined
//! pair until fixed.

use std::sync::OnceLock;

/// `E(S)` for the recurrence trajectory started at `s1`, with the optimal
/// restart remainder priced using the reference pair `(s1_ref, e1_ref)`.
fn e1_with_restart(s1: f64, s1_ref: f64, e1_ref: f64) -> f64 {
    debug_assert!(s1 > 0.0);
    let mut total = s1; // t₁·e^{-t₀}, t₀ = 0
    let mut prev2 = 0.0;
    let mut prev1 = s1;
    for _ in 0..500 {
        let surv = (-prev1).exp();
        if surv < 1e-18 {
            return total;
        }
        let gap = prev1 - prev2;
        if gap > 700.0 {
            // The next iterate overflows f64: the trajectory has exploded
            // (valid). That step still costs t_{i+1}·e^{-t_i} = e^{-t_{i-1}}
            // and nothing survives it.
            return total + (-prev2).exp();
        }
        let next = gap.exp();
        if next <= prev1 {
            // Breakdown: price the tail as an optimal restart at prev1.
            return total + surv * (prev1 * (e1_ref - s1_ref) + e1_ref);
        }
        // On-trajectory identity: t_{i+1}·e^{-t_i} = e^{-t_{i-1}}.
        total += (-prev2).exp();
        prev2 = prev1;
        prev1 = next;
    }
    total
}

/// The self-consistent optimal pair `(s₁°, E₁°)` for `Exp(1)`.
fn optimal_pair() -> (f64, f64) {
    static PAIR: OnceLock<(f64, f64)> = OnceLock::new();
    *PAIR.get_or_init(|| {
        let _wall = rsj_obs::ScopedTimer::global("rsj_core_exact_exp_wall_seconds");
        let _span = rsj_obs::span!("exact.exp_optimal_pair");
        let (mut s1, mut e1) = (0.75, 2.37); // coarse §3.5 guesses
        let mut evals: u64 = 0;
        for _ in 0..6 {
            // Grid scan: E(S) has small jumps where the breakdown depth
            // changes, so a fine scan is more robust than golden section.
            let (lo, hi, n) = (0.3, 1.2, 30_000);
            let mut best = (f64::INFINITY, s1);
            for k in 0..=n {
                let cand = lo + (hi - lo) * k as f64 / n as f64;
                let v = e1_with_restart(cand, s1, e1);
                if v < best.0 {
                    best = (v, cand);
                }
            }
            evals += n as u64 + 1;
            let converged = (best.1 - s1).abs() < 1e-9 && (best.0 - e1).abs() < 1e-9;
            s1 = best.1;
            e1 = best.0;
            if converged {
                break;
            }
        }
        if rsj_obs::metrics_enabled() {
            rsj_obs::global_registry()
                .counter("rsj_core_exact_exp_grid_evals_total")
                .add(evals);
        }
        rsj_obs::debug!("exact exponential optimum: s1 {s1:.6}, E1 {e1:.6} ({evals} grid evals)");
        (s1, e1)
    })
}

/// Evaluates `E₁(s₁)` — the expected RESERVATIONONLY cost on `Exp(1)` of
/// the recurrence trajectory started at `s₁`, with breakdown tails priced
/// as optimal restarts.
pub fn exp_e1(s1: f64) -> f64 {
    assert!(s1 > 0.0, "s1 must be positive, got {s1}");
    let (s1_ref, e1_ref) = optimal_pair();
    e1_with_restart(s1, s1_ref, e1_ref)
}

/// The optimal `s₁` for `Exp(1)` under RESERVATIONONLY.
///
/// The paper's brute-force value is `0.74219`; the self-consistent grid
/// search reproduces it to ~1e-3.
pub fn exp_optimal_s1() -> f64 {
    optimal_pair().0
}

/// The optimal expected cost `E(S_λ) = E₁/λ` for `Exp(λ)` under
/// RESERVATIONONLY (Proposition 2).
pub fn exp_optimal_cost(lambda: f64) -> f64 {
    assert!(lambda > 0.0, "lambda must be positive");
    optimal_pair().1 / lambda
}

/// The first `len` terms of the optimal sequence for `Exp(λ)`:
/// `tᵢ = sᵢ/λ`. Terms stop early at the trajectory's numeric breakdown.
pub fn exp_optimal_sequence(lambda: f64, len: usize) -> Vec<f64> {
    assert!(lambda > 0.0, "lambda must be positive");
    let s1 = exp_optimal_s1();
    let mut out = Vec::with_capacity(len);
    let mut prev2 = 0.0;
    let mut prev1 = s1;
    out.push(s1 / lambda);
    while out.len() < len {
        let next = (prev1 - prev2).exp();
        if next <= prev1 || !next.is_finite() {
            break;
        }
        out.push(next / lambda);
        prev2 = prev1;
        prev1 = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::eval::expected_cost_analytic;
    use crate::sequence::ReservationSequence;
    use rsj_dist::{ContinuousDistribution, Exponential};

    #[test]
    fn optimal_s1_matches_published_value() {
        let s1 = exp_optimal_s1();
        assert!(
            (s1 - 0.74219).abs() < 2e-2,
            "s1 {s1} should be near the published 0.74219"
        );
    }

    #[test]
    fn e1_is_minimal_at_s1() {
        let s1 = exp_optimal_s1();
        let e = exp_e1(s1);
        for &delta in &[-0.2, -0.1, -0.05, 0.05, 0.1, 0.2] {
            assert!(
                exp_e1(s1 + delta) >= e,
                "E1({}) = {} must not beat E1({s1}) = {e}",
                s1 + delta,
                exp_e1(s1 + delta)
            );
        }
    }

    #[test]
    fn first_reservation_is_three_quarters_of_mean() {
        // §3.5: "the first reservation for Exp(λ) should be approximately
        // three quarters of the mean value 1/λ".
        for &lambda in &[0.5, 1.0, 4.0] {
            let seq = exp_optimal_sequence(lambda, 3);
            let ratio = seq[0] * lambda;
            assert!((0.70..0.78).contains(&ratio), "λ={lambda}: ratio {ratio}");
        }
    }

    #[test]
    fn scale_invariance_of_cost() {
        // E(S_λ) = E₁/λ.
        let e1 = exp_optimal_cost(1.0);
        for &lambda in &[0.25, 1.0, 3.0] {
            assert!((exp_optimal_cost(lambda) - e1 / lambda).abs() < 1e-12);
        }
    }

    #[test]
    fn e1_matches_series_evaluation() {
        // The Eq. 4 evaluator on the generated prefix must agree with the
        // closed evaluation up to the restart remainder.
        let lambda = 1.0;
        let d = Exponential::new(lambda).unwrap();
        let c = CostModel::reservation_only();
        let times = exp_optimal_sequence(lambda, 64);
        let last = *times.last().unwrap();
        let s = ReservationSequence::new(times, false).unwrap();
        let series = expected_cost_analytic(&s, &d, &c);
        let closed = exp_optimal_cost(lambda);
        let slack = d.survival(last) * (last * 2.0 + 3.0) + 1e-6;
        assert!(
            (series - closed).abs() < slack,
            "series {series} vs closed {closed} (slack {slack})"
        );
    }

    #[test]
    fn optimal_beats_paper_table3_alternatives() {
        // Table 3 reports cost 2.64 at t₁ = Q(0.75) = 1.39 and 4.83 at
        // t₁ = Q(0.99) = 4.61; the optimum must be cheaper.
        let e1 = exp_optimal_cost(1.0);
        assert!(e1 < 2.64, "E1 = {e1}");
        assert!(exp_e1(1.39) > e1);
        assert!(exp_e1(4.61) > exp_e1(1.39), "cost grows away from optimum");
    }

    #[test]
    fn sequence_is_strictly_increasing() {
        let seq = exp_optimal_sequence(2.0, 16);
        for w in seq.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn restart_pricing_penalizes_early_breakdown() {
        // A mid-gap candidate (Fig. 3a) breaks down early; honest pricing
        // must make it cost more than the optimum.
        let e_gap = exp_e1(0.5);
        let e_opt = exp_optimal_cost(1.0);
        assert!(e_gap > e_opt, "gap candidate {e_gap} vs optimum {e_opt}");
    }
}
