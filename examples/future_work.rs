//! The paper's §7 future-work directions, implemented: checkpointed
//! reservations and variable-resource (processors × time) requests.
//!
//! Run with: `cargo run --release --example future_work`

use reservation_strategies::prelude::*;
use rsj_core::extensions::{
    expected_cost_checkpointed, optimal_discrete_checkpointed, run_job_checkpointed,
    CheckpointConfig, MultiResourcePlanner, SpeedupModel, WidthPolicy,
};
use rsj_core::optimal_discrete;
use rsj_dist::{discretize, LogNormal};

fn main() {
    // ---------------------------------------------------------------
    // Part 1 — checkpointing: "avoid restarting the job whenever its
    // execution time exceeds the length of the current reservation".
    // ---------------------------------------------------------------
    let dist = LogNormal::new(3.0, 0.8).unwrap(); // high variance: re-execution hurts
    let cost = CostModel::reservation_only();
    let discrete = discretize(&dist, DiscretizationScheme::EqualProbability, 400, 1e-7).unwrap();

    let plain = optimal_discrete(&discrete, &cost).unwrap();
    println!(
        "no checkpoints: optimal expected cost {:.2}",
        plain.expected_cost
    );

    println!(
        "\n{:>12} {:>12} {:>18}",
        "C = R", "ckpt cost", "vs no-checkpoint"
    );
    for overhead in [0.1, 1.0, 5.0, 20.0, 80.0] {
        let ck = CheckpointConfig::new(overhead, overhead).unwrap();
        let sol = optimal_discrete_checkpointed(&discrete, &cost, &ck).unwrap();
        println!(
            "{overhead:>12} {:>12.2} {:>17.1}%",
            sol.expected_cost,
            (sol.expected_cost / plain.expected_cost - 1.0) * 100.0
        );
    }
    println!("→ cheap checkpoints turn wasted re-execution into saved progress;\n  expensive ones are pure overhead (the §7 trade-off).");

    // Execute one concrete job both ways.
    let ck = CheckpointConfig::new(0.5, 0.5).unwrap();
    let ladder = ReservationSequence::new(vec![20.0, 35.0, 60.0, 100.0, 170.0], false).unwrap();
    let job = 90.0;
    let base = run_job(&ladder, &cost, job);
    let ckpt = run_job_checkpointed(&ladder, &cost, &ck, job);
    println!(
        "\na {job}-unit job on ladder {ladder}:\n  restart-from-scratch: cost {:.1} over {} attempts\n  checkpointed:         cost {:.1} over {} attempts",
        base.cost, base.reservations, ckpt.cost, ckpt.reservations
    );
    let analytic = expected_cost_checkpointed(&ladder, &dist, &cost, &ck);
    println!("  expected checkpointed cost of this ladder: {analytic:.2}");

    // ---------------------------------------------------------------
    // Part 2 — variable resources: reservations become (p, t) pairs.
    // ---------------------------------------------------------------
    println!("\n--- multi-resource planning ---");
    let work = LogNormal::new(1.5, 0.4).unwrap(); // sequential work, hours
    let turnaround = CostModel::new(0.95, 1.0, 1.05).unwrap();
    let strategy = MeanByMean::default();
    let planner = MultiResourcePlanner {
        candidates: &[1, 2, 4, 8, 16, 32, 64, 128],
        speedup: SpeedupModel::Amdahl {
            serial_fraction: 0.02,
        },
        width_policy: WidthPolicy::Turnaround {
            wait_per_proc: 0.02,
        },
        strategy: &strategy,
    };
    println!(
        "{:>6} {:>14} {:>12}",
        "procs", "E[turnaround]", "vs clairvoyant"
    );
    for &p in planner.candidates {
        let plan = planner.plan_at(&work, &turnaround, p).unwrap();
        println!(
            "{p:>6} {:>13.2}h {:>12.2}",
            plan.expected_cost,
            plan.expected_cost / plan.omniscient_cost
        );
    }
    let best = planner.best(&work, &turnaround).unwrap();
    println!(
        "→ best width: {} processors; first request {:.2} h",
        best.processors,
        best.sequence.first()
    );
}
