//! Bounded Pareto distribution `BoundedPareto(L, H, α)` (Table 1 / Table 5 /
//! Theorem 13).

use crate::error::{check_param, Result};
use crate::traits::{ContinuousDistribution, Support};

/// Pareto distribution truncated to `[L, H]`, with tail index `α`.
///
/// Paper instantiation: `L = 1.0`, `H = 20.0`, `α = 2.1`. The moment
/// formulas require `α ∉ {1, 2}`; the constructor rejects those values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    l: f64,
    h: f64,
    alpha: f64,
    /// Cached normalization `1 - (L/H)^α`.
    norm: f64,
}

impl BoundedPareto {
    /// Creates a `BoundedPareto(L, H, α)` distribution.
    pub fn new(l: f64, h: f64, alpha: f64) -> Result<Self> {
        check_param("L", l, "must be > 0", l > 0.0)?;
        check_param("H", h, "must be > L", h > l)?;
        check_param("alpha", alpha, "must be > 0", alpha > 0.0)?;
        check_param(
            "alpha",
            alpha,
            "must differ from 1 and 2 (moment formulas)",
            (alpha - 1.0).abs() > 1e-9 && (alpha - 2.0).abs() > 1e-9,
        )?;
        Ok(Self {
            l,
            h,
            alpha,
            norm: 1.0 - (l / h).powf(alpha),
        })
    }

    /// Left endpoint `L`.
    pub fn lower(&self) -> f64 {
        self.l
    }

    /// Right endpoint `H`.
    pub fn upper(&self) -> f64 {
        self.h
    }

    /// Tail index `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl ContinuousDistribution for BoundedPareto {
    fn name(&self) -> String {
        format!(
            "BoundedPareto(L={}, H={}, α={})",
            self.l, self.h, self.alpha
        )
    }

    fn cache_key(&self) -> Option<String> {
        Some(self.name())
    }

    fn support(&self) -> Support {
        Support::Bounded {
            lower: self.l,
            upper: self.h,
        }
    }

    fn pdf(&self, t: f64) -> f64 {
        if !(self.l..=self.h).contains(&t) {
            return 0.0;
        }
        self.alpha * self.l.powf(self.alpha) * t.powf(-self.alpha - 1.0) / self.norm
    }

    fn cdf(&self, t: f64) -> f64 {
        if t <= self.l {
            0.0
        } else if t >= self.h {
            1.0
        } else {
            (1.0 - (self.l / t).powf(self.alpha)) / self.norm
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile: p out of [0,1]: {p}");
        // Table 5: Q(x) = L / (1 - (1 - (L/H)^α) x)^{1/α}.
        self.l / (1.0 - self.norm * p).powf(1.0 / self.alpha)
    }

    fn mean(&self) -> f64 {
        // Table 5: α/(α-1) · (H^α L - H L^α)/(H^α - L^α).
        let a = self.alpha;
        let ha = self.h.powf(a);
        let la = self.l.powf(a);
        a / (a - 1.0) * (ha * self.l - self.h * la) / (ha - la)
    }

    fn variance(&self) -> f64 {
        let a = self.alpha;
        let ha = self.h.powf(a);
        let la = self.l.powf(a);
        let m = self.mean();
        let second = a / (a - 2.0) * (ha * self.l * self.l - self.h * self.h * la) / (ha - la);
        second - m * m
    }

    fn conditional_mean_above(&self, tau: f64) -> f64 {
        // Theorem 13: E[X | X > τ] = α/(α-1) · (H^{1-α} − τ^{1-α}) / (H^{-α} − τ^{-α}).
        let tau = tau.clamp(self.l, self.h);
        if tau >= self.h {
            return self.h;
        }
        let a = self.alpha;
        let num = self.h.powf(1.0 - a) - tau.powf(1.0 - a);
        let den = self.h.powf(-a) - tau.powf(-a);
        (a / (a - 1.0) * num / den).clamp(tau, self.h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_instance() -> BoundedPareto {
        BoundedPareto::new(1.0, 20.0, 2.1).unwrap()
    }

    #[test]
    fn rejects_bad_params() {
        assert!(BoundedPareto::new(0.0, 20.0, 2.1).is_err());
        assert!(BoundedPareto::new(2.0, 1.0, 2.1).is_err());
        assert!(BoundedPareto::new(1.0, 20.0, 1.0).is_err());
        assert!(BoundedPareto::new(1.0, 20.0, 2.0).is_err());
    }

    #[test]
    fn cdf_boundaries() {
        let d = paper_instance();
        assert_eq!(d.cdf(1.0), 0.0);
        assert_eq!(d.cdf(20.0), 1.0);
        assert!((d.cdf(20.0 - 1e-9) - 1.0).abs() < 1e-8);
    }

    #[test]
    fn cdf_quantile_inverse() {
        let d = paper_instance();
        for &p in &[0.0, 0.1, 0.5, 0.9, 1.0] {
            let t = d.quantile(p);
            assert!((d.cdf(t) - p).abs() < 1e-11, "p={p}");
        }
        assert!((d.quantile(1.0) - 20.0).abs() < 1e-10);
    }

    #[test]
    fn mean_matches_quadrature() {
        let d = paper_instance();
        let numeric = crate::quadrature::integrate(|t| t * d.pdf(t), 1.0, 20.0, 1e-12).value;
        assert!(
            (d.mean() - numeric).abs() < 1e-8,
            "closed {} vs numeric {numeric}",
            d.mean()
        );
    }

    #[test]
    fn variance_matches_quadrature() {
        let d = paper_instance();
        let m = d.mean();
        let numeric =
            crate::quadrature::integrate(|t| (t - m) * (t - m) * d.pdf(t), 1.0, 20.0, 1e-12).value;
        assert!(
            (d.variance() - numeric).abs() < 1e-7,
            "closed {} vs numeric {numeric}",
            d.variance()
        );
    }

    #[test]
    fn conditional_mean_matches_quadrature() {
        let d = paper_instance();
        for &tau in &[1.5, 5.0, 15.0] {
            let closed = d.conditional_mean_above(tau);
            let s = d.survival(tau);
            let numeric =
                tau + crate::quadrature::integrate(|t| d.survival(t), tau, 20.0, 1e-13).value / s;
            assert!(
                (closed - numeric).abs() / numeric < 1e-8,
                "tau={tau}: closed {closed}, numeric {numeric}"
            );
        }
    }

    #[test]
    fn conditional_mean_stays_in_support() {
        let d = paper_instance();
        for &tau in &[1.0, 10.0, 19.9, 20.0] {
            let cm = d.conditional_mean_above(tau);
            assert!((tau.max(1.0)..=20.0).contains(&cm), "tau={tau}: cm {cm}");
        }
    }

    #[test]
    fn pdf_integrates_to_one() {
        let d = paper_instance();
        let q = crate::quadrature::integrate(|t| d.pdf(t), 1.0, 20.0, 1e-12);
        assert!((q.value - 1.0).abs() < 1e-9, "mass {}", q.value);
    }
}
