//! The BRUTE-FORCE procedure of §4.1: grid search over the first
//! reservation `t₁`, completing each candidate into a full sequence with
//! the optimal recurrence (Eq. 11) and keeping the cheapest.
//!
//! The search interval is `[a, b̄]` with `b̄` the distribution's upper
//! endpoint for bounded supports, or the Theorem 2 bound `A₁` otherwise.
//! Candidates whose recurrence breaks down (non-increasing step before the
//! evaluation horizon) are discarded — these are the gaps of Figure 3.

use super::Strategy;
use crate::bounds::upper_bound_t1;
use crate::cancel::CancelToken;
use crate::cost::CostModel;
use crate::error::{CoreError, Result};
use crate::eval::{expected_cost_analytic, expected_cost_monte_carlo};
use crate::recurrence::{sequence_from_t1, RecurrenceConfig};
use crate::sequence::ReservationSequence;
use rand::SeedableRng;
use rsj_dist::ContinuousDistribution;
use rsj_par::Parallelism;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// How candidate sequences are scored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvalMethod {
    /// The paper's §5.1 estimator: average cost over `N` sampled job times
    /// (common random numbers across all candidates).
    MonteCarlo,
    /// The exact Eq. 4 series (an ablation over the paper's method; see
    /// `rsj-bench/benches/eval_methods.rs`).
    Analytic,
}

impl std::fmt::Display for EvalMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalMethod::MonteCarlo => write!(f, "monte_carlo"),
            EvalMethod::Analytic => write!(f, "analytic"),
        }
    }
}

impl std::str::FromStr for EvalMethod {
    type Err = CoreError;

    /// Parses the evaluation-method name used by CLI configs and the wire
    /// protocol: case-insensitive, `-`/`_`/space-insensitive, so
    /// `monte_carlo`, `Monte-Carlo` and `ANALYTIC` all parse.
    fn from_str(s: &str) -> Result<Self> {
        let canon: String = s
            .chars()
            .map(|c| match c {
                '-' | ' ' => '_',
                c => c.to_ascii_lowercase(),
            })
            .collect();
        match canon.as_str() {
            "monte_carlo" | "montecarlo" => Ok(EvalMethod::MonteCarlo),
            "analytic" => Ok(EvalMethod::Analytic),
            _ => Err(CoreError::UnknownName {
                what: "evaluation method",
                input: s.to_string(),
                expected: "`monte_carlo` or `analytic`",
            }),
        }
    }
}

/// One point of a `t₁` sweep (the data behind Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The candidate first reservation.
    pub t1: f64,
    /// Normalized expected cost, or `None` when the candidate's recurrence
    /// is invalid (non-increasing).
    pub normalized_cost: Option<f64>,
}

/// Result of a brute-force search.
#[derive(Debug, Clone, PartialEq)]
pub struct BruteForceResult {
    /// The best first reservation `t₁ᵇᶠ` found.
    pub t1: f64,
    /// The full sequence generated from it.
    pub sequence: ReservationSequence,
    /// Its expected cost (per the configured evaluation method).
    pub expected_cost: f64,
    /// Expected cost normalized by the omniscient scheduler.
    pub normalized_cost: f64,
    /// Number of grid candidates that yielded valid sequences.
    pub valid_candidates: usize,
}

/// The BRUTE-FORCE heuristic (§4.1). Paper parameters: `M = 5000` grid
/// points, `N = 1000` Monte-Carlo samples.
#[derive(Debug, Clone)]
pub struct BruteForce {
    m: usize,
    n_samples: usize,
    eval: EvalMethod,
    seed: u64,
    config: RecurrenceConfig,
    /// Worker-pool override; `None` follows [`Parallelism::current`].
    par: Option<Parallelism>,
}

/// Key of one memoized sample vector: `(dist.cache_key(), seed, n)`.
type SampleKey = (String, u64, usize);

/// Memo for Monte-Carlo sample vectors. The Table 3 quantile probes call
/// [`BruteForce::score_t1`] repeatedly with identical parameters, each
/// draw costing `n` quantile evaluations; the samples are pure functions
/// of the key, so sharing them changes nothing but the wall clock.
static SAMPLE_CACHE: OnceLock<Mutex<HashMap<SampleKey, Arc<Vec<f64>>>>> = OnceLock::new();

/// Entries kept before the sample memo is wiped (each holds `n` f64s).
const SAMPLE_CACHE_CAPACITY: usize = 256;

impl BruteForce {
    /// Creates a brute-force search with `m` grid points and `n_samples`
    /// Monte-Carlo samples (also used to set the recurrence validity
    /// horizon `Q(1 - 1/N)`).
    pub fn new(m: usize, n_samples: usize, eval: EvalMethod, seed: u64) -> Result<Self> {
        if m == 0 {
            return Err(CoreError::InvalidHeuristicParameter {
                name: "m",
                reason: "grid size must be positive",
            });
        }
        if n_samples < 2 {
            return Err(CoreError::InvalidHeuristicParameter {
                name: "n_samples",
                reason: "need at least two Monte-Carlo samples",
            });
        }
        Ok(Self {
            m,
            n_samples,
            eval,
            seed,
            config: RecurrenceConfig::for_monte_carlo(n_samples),
            par: None,
        })
    }

    /// Pins the worker pool used by [`BruteForce::sweep`] instead of the
    /// process-wide [`Parallelism::current`]. The sweep result is
    /// bit-for-bit identical at any thread count; this only controls the
    /// wall clock (and lets tests exercise both paths explicitly).
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.par = Some(par);
        self
    }

    /// The paper's evaluation parameters: `M = 5000`, `N = 1000`,
    /// Monte-Carlo scoring.
    pub fn paper(seed: u64) -> Self {
        Self::new(5000, 1000, EvalMethod::MonteCarlo, seed).expect("paper parameters are valid")
    }

    /// Grid size `M`.
    pub fn grid_size(&self) -> usize {
        self.m
    }

    /// The `t₁` candidate grid over `[a, b̄]` (§4.1: `t₁ = a + m·(b̄-a)/M`).
    pub fn grid(&self, dist: &dyn ContinuousDistribution, cost: &CostModel) -> Vec<f64> {
        let a = dist.support().lower();
        let b = upper_bound_t1(dist, cost);
        (1..=self.m)
            .map(|k| a + k as f64 * (b - a) / self.m as f64)
            .collect()
    }

    fn samples(&self, dist: &dyn ContinuousDistribution) -> Arc<Vec<f64>> {
        let draw = || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
            Arc::new(crate::eval::draw_samples(dist, self.n_samples, &mut rng))
        };
        let Some(dist_key) = dist.cache_key() else {
            return draw();
        };
        let key = (dist_key, self.seed, self.n_samples);
        let cache = SAMPLE_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(hit) = cache.lock().expect("sample cache lock").get(&key) {
            return Arc::clone(hit);
        }
        let samples = draw();
        let mut map = cache.lock().expect("sample cache lock");
        if map.len() >= SAMPLE_CACHE_CAPACITY {
            map.clear();
        }
        Arc::clone(map.entry(key).or_insert(samples))
    }

    /// Scores every grid candidate; invalid candidates map to `None`
    /// (Figure 3's gaps). Parallelized over the grid with the
    /// deterministic `rsj-par` pool: the common-random-numbers samples
    /// are drawn once up front and shared read-only, so the sweep is
    /// bit-for-bit identical at any thread count.
    pub fn sweep(&self, dist: &dyn ContinuousDistribution, cost: &CostModel) -> Vec<SweepPoint> {
        self.sweep_cancellable(dist, cost, &CancelToken::none())
            .expect("a none token never cancels")
    }

    /// [`sweep`](Self::sweep) with cooperative cancellation, polled once
    /// per grid candidate. Once the token fires, remaining candidates are
    /// skipped (their scoring work elided) and the call returns
    /// [`CoreError::Cancelled`]; an uncancelled sweep is bit-for-bit the
    /// same as [`sweep`](Self::sweep).
    pub fn sweep_cancellable(
        &self,
        dist: &dyn ContinuousDistribution,
        cost: &CostModel,
        cancel: &CancelToken,
    ) -> Result<Vec<SweepPoint>> {
        cancel.check()?;
        let samples = match self.eval {
            EvalMethod::MonteCarlo => self.samples(dist),
            EvalMethod::Analytic => Arc::new(Vec::new()),
        };
        let omniscient = cost.omniscient(dist);
        // A malformed distribution (e.g. a degenerate online refit) can
        // yield non-finite samples or a useless omniscient baseline; every
        // candidate is then invalid — the caller sees `NoValidCandidate`
        // instead of a panic deep inside an evaluator.
        let degenerate =
            !(omniscient.is_finite() && omniscient > 0.0) || samples.iter().any(|s| !s.is_finite());
        if degenerate {
            return Ok(self
                .grid(dist, cost)
                .into_iter()
                .map(|t1| SweepPoint {
                    t1,
                    normalized_cost: None,
                })
                .collect());
        }
        let grid = self.grid(dist, cost);
        let points = self
            .par
            .unwrap_or_else(Parallelism::current)
            .par_map(&grid, |_, &t1| {
                // A fired token short-circuits the remaining candidates;
                // the whole sweep is then discarded below, so the skipped
                // scores never leak into an uncancelled result.
                if cancel.is_cancelled() {
                    return SweepPoint {
                        t1,
                        normalized_cost: None,
                    };
                }
                let normalized_cost = sequence_from_t1(dist, cost, t1, &self.config)
                    .ok()
                    .map(|seq| {
                        let e = match self.eval {
                            EvalMethod::MonteCarlo => {
                                expected_cost_monte_carlo(&seq, cost, &samples)
                            }
                            EvalMethod::Analytic => expected_cost_analytic(&seq, dist, cost),
                        };
                        e / omniscient
                    })
                    .filter(|c| c.is_finite());
                SweepPoint {
                    t1,
                    normalized_cost,
                }
            });
        cancel.check()?;
        Ok(points)
    }

    /// Runs the full search and returns the best candidate found.
    pub fn best(
        &self,
        dist: &dyn ContinuousDistribution,
        cost: &CostModel,
    ) -> Result<BruteForceResult> {
        self.best_cancellable(dist, cost, &CancelToken::none())
    }

    /// [`best`](Self::best) with cooperative cancellation (see
    /// [`sweep_cancellable`](Self::sweep_cancellable)).
    pub fn best_cancellable(
        &self,
        dist: &dyn ContinuousDistribution,
        cost: &CostModel,
        cancel: &CancelToken,
    ) -> Result<BruteForceResult> {
        let _wall = rsj_obs::ScopedTimer::global("rsj_core_brute_force_wall_seconds");
        let _span = rsj_obs::span!("brute_force.best");
        let sweep = self.sweep_cancellable(dist, cost, cancel)?;
        let valid_candidates = sweep.iter().filter(|p| p.normalized_cost.is_some()).count();
        if rsj_obs::metrics_enabled() {
            let reg = rsj_obs::global_registry();
            reg.counter("rsj_core_brute_force_solves_total").inc();
            reg.counter("rsj_core_brute_force_candidates_total")
                .add(sweep.len() as u64);
            reg.counter("rsj_core_brute_force_valid_candidates_total")
                .add(valid_candidates as u64);
        }
        let best = sweep
            .iter()
            .filter_map(|p| p.normalized_cost.map(|c| (p.t1, c)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .ok_or(CoreError::NoValidCandidate)?;
        let sequence = sequence_from_t1(dist, cost, best.0, &self.config)?;
        let omniscient = cost.omniscient(dist);
        rsj_obs::debug!(
            "brute-force on {}: t1 {:.6}, normalized cost {:.6}, {}/{} valid candidates",
            dist.name(),
            best.0,
            best.1,
            valid_candidates,
            self.m
        );
        Ok(BruteForceResult {
            t1: best.0,
            sequence,
            expected_cost: best.1 * omniscient,
            normalized_cost: best.1,
            valid_candidates,
        })
    }

    /// Scores a *single* candidate `t₁` (the Table 3 quantile probes);
    /// `None` when the candidate is invalid.
    pub fn score_t1(
        &self,
        dist: &dyn ContinuousDistribution,
        cost: &CostModel,
        t1: f64,
    ) -> Option<f64> {
        let seq = sequence_from_t1(dist, cost, t1, &self.config).ok()?;
        if let EvalMethod::MonteCarlo = self.eval {
            let samples = self.samples(dist);
            if samples.iter().any(|s| !s.is_finite()) {
                return None;
            }
            let norm = expected_cost_monte_carlo(&seq, cost, &samples) / cost.omniscient(dist);
            return norm.is_finite().then_some(norm);
        }
        let norm = expected_cost_analytic(&seq, dist, cost) / cost.omniscient(dist);
        norm.is_finite().then_some(norm)
    }
}

impl Strategy for BruteForce {
    fn name(&self) -> &str {
        "Brute-Force"
    }

    fn sequence(
        &self,
        dist: &dyn ContinuousDistribution,
        cost: &CostModel,
    ) -> Result<ReservationSequence> {
        Ok(self.best(dist, cost)?.sequence)
    }

    fn sequence_cancellable(
        &self,
        dist: &dyn ContinuousDistribution,
        cost: &CostModel,
        cancel: &CancelToken,
    ) -> Result<ReservationSequence> {
        Ok(self.best_cancellable(dist, cost, cancel)?.sequence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsj_dist::{Exponential, LogNormal, Uniform};

    #[test]
    fn uniform_finds_theorem4_optimum() {
        let d = Uniform::new(10.0, 20.0).unwrap();
        let c = CostModel::reservation_only();
        let bf = BruteForce::new(1000, 1000, EvalMethod::Analytic, 3).unwrap();
        let r = bf.best(&d, &c).unwrap();
        // Only t₁ = b (the last grid point) is valid (Theorem 4).
        assert!((r.t1 - 20.0).abs() < 1e-9, "t1 {}", r.t1);
        assert_eq!(r.sequence.times(), &[20.0]);
        assert!((r.normalized_cost - 4.0 / 3.0).abs() < 1e-9);
        assert_eq!(r.valid_candidates, 1);
    }

    #[test]
    fn exponential_finds_near_published_t1() {
        // §3.5: s₁ ≈ 0.74219 with E₁ ≈ analytic optimum.
        let d = Exponential::new(1.0).unwrap();
        let c = CostModel::reservation_only();
        let bf = BruteForce::new(2000, 1000, EvalMethod::Analytic, 3).unwrap();
        let r = bf.best(&d, &c).unwrap();
        assert!(
            (r.t1 - 0.742).abs() < 0.06,
            "t1 {} should be near 0.742",
            r.t1
        );
    }

    #[test]
    fn sweep_has_gaps_and_valid_regions() {
        let d = Exponential::new(1.0).unwrap();
        let c = CostModel::reservation_only();
        let bf = BruteForce::new(400, 1000, EvalMethod::Analytic, 3).unwrap();
        let sweep = bf.sweep(&d, &c);
        assert_eq!(sweep.len(), 400);
        let invalid = sweep.iter().filter(|p| p.normalized_cost.is_none()).count();
        let valid = sweep.len() - invalid;
        assert!(valid > 0, "some candidates must be valid");
        assert!(invalid > 0, "Fig. 3 shows gaps: some must be invalid");
        // Candidates in the known gap (0.4, 0.6) are invalid.
        for p in &sweep {
            if p.t1 > 0.4 && p.t1 < 0.6 {
                assert!(p.normalized_cost.is_none(), "t1 {} should be a gap", p.t1);
            }
        }
    }

    #[test]
    fn monte_carlo_close_to_analytic_at_optimum() {
        let d = LogNormal::new(3.0, 0.5).unwrap();
        let c = CostModel::reservation_only();
        let analytic = BruteForce::new(300, 1000, EvalMethod::Analytic, 3)
            .unwrap()
            .best(&d, &c)
            .unwrap();
        let mc = BruteForce::new(300, 4000, EvalMethod::MonteCarlo, 3)
            .unwrap()
            .best(&d, &c)
            .unwrap();
        assert!(
            (analytic.normalized_cost - mc.normalized_cost).abs() < 0.1,
            "analytic {} vs mc {}",
            analytic.normalized_cost,
            mc.normalized_cost
        );
    }

    #[test]
    fn score_t1_invalid_gives_none() {
        let d = Uniform::new(10.0, 20.0).unwrap();
        let c = CostModel::reservation_only();
        let bf = BruteForce::new(100, 1000, EvalMethod::Analytic, 3).unwrap();
        assert!(bf.score_t1(&d, &c, 15.0).is_none()); // Table 3: '-'
        assert!(bf.score_t1(&d, &c, 20.0).is_some());
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(BruteForce::new(0, 100, EvalMethod::Analytic, 0).is_err());
        assert!(BruteForce::new(10, 1, EvalMethod::Analytic, 0).is_err());
    }

    #[test]
    fn malformed_distribution_is_no_valid_candidate_not_a_panic() {
        use rsj_dist::Support;
        // Stands in for a degenerate online refit: every moment is NaN.
        #[derive(Debug)]
        struct NanDist;
        impl rsj_dist::ContinuousDistribution for NanDist {
            fn name(&self) -> String {
                "NaN".into()
            }
            fn support(&self) -> Support {
                Support::Unbounded { lower: 0.0 }
            }
            fn pdf(&self, _t: f64) -> f64 {
                f64::NAN
            }
            fn cdf(&self, _t: f64) -> f64 {
                f64::NAN
            }
            fn quantile(&self, _p: f64) -> f64 {
                f64::NAN
            }
            fn mean(&self) -> f64 {
                f64::NAN
            }
            fn variance(&self) -> f64 {
                f64::NAN
            }
        }
        let c = CostModel::reservation_only();
        for eval in [EvalMethod::Analytic, EvalMethod::MonteCarlo] {
            let bf = BruteForce::new(50, 100, eval, 3).unwrap();
            assert_eq!(
                bf.best(&NanDist, &c).unwrap_err(),
                CoreError::NoValidCandidate
            );
            assert!(bf.score_t1(&NanDist, &c, 1.0).is_none());
        }
    }

    #[test]
    fn sweep_is_bit_for_bit_identical_across_thread_counts() {
        let d = LogNormal::new(3.0, 0.5).unwrap();
        let c = CostModel::reservation_only();
        for eval in [EvalMethod::Analytic, EvalMethod::MonteCarlo] {
            let bf = BruteForce::new(600, 400, eval, 11).unwrap();
            let serial = bf
                .clone()
                .with_parallelism(Parallelism::serial())
                .sweep(&d, &c);
            let parallel = bf
                .with_parallelism(Parallelism::new(4).unwrap())
                .sweep(&d, &c);
            assert_eq!(serial.len(), parallel.len());
            for (s, p) in serial.iter().zip(&parallel) {
                assert_eq!(s.t1.to_bits(), p.t1.to_bits());
                assert_eq!(
                    s.normalized_cost.map(f64::to_bits),
                    p.normalized_cost.map(f64::to_bits),
                    "{eval:?} diverged at t1 {}",
                    s.t1
                );
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let d = LogNormal::new(3.0, 0.5).unwrap();
        let c = CostModel::reservation_only();
        let bf = BruteForce::new(200, 500, EvalMethod::MonteCarlo, 42).unwrap();
        let a = bf.best(&d, &c).unwrap();
        let b = bf.best(&d, &c).unwrap();
        assert_eq!(a.t1, b.t1);
        assert_eq!(a.expected_cost, b.expected_cost);
    }
}
