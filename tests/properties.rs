//! Property-based tests (proptest) on the core invariants of the system:
//! distribution identities, sequence monotonicity, cost-accounting
//! consistency and DP optimality.

use proptest::prelude::*;
use reservation_strategies::prelude::*;
// `Strategy` collides between proptest's prelude and the reservation
// trait; refer to the latter by an explicit alias.
use rsj_core::Strategy as ReservationStrategy;
use rsj_core::{expected_cost_analytic, run_job};
use rsj_dist::{DiscreteDistribution, Exponential, GammaDist, LogNormal, Pareto, Weibull};

/// Strategy for valid LogNormal parameters.
fn lognormal_params() -> impl proptest::strategy::Strategy<Value = (f64, f64)> {
    (-1.0..4.0f64, 0.1..1.2f64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CDF/quantile round-trip for LogNormal across the parameter space.
    #[test]
    fn lognormal_quantile_inverts_cdf((mu, sigma) in lognormal_params(), p in 0.001..0.999f64) {
        let d = LogNormal::new(mu, sigma).unwrap();
        let t = d.quantile(p);
        prop_assert!((d.cdf(t) - p).abs() < 1e-8);
    }

    /// Survival + CDF = 1 for several families and arbitrary points.
    #[test]
    fn survival_complements_cdf(lambda in 0.2..5.0f64, t in 0.0..50.0f64) {
        let d = Exponential::new(lambda).unwrap();
        prop_assert!((d.cdf(t) + d.survival(t) - 1.0).abs() < 1e-12);
        let w = Weibull::new(1.0 / lambda, 0.8).unwrap();
        prop_assert!((w.cdf(t) + w.survival(t) - 1.0).abs() < 1e-9);
    }

    /// Conditional mean always exceeds the conditioning point and the
    /// unconditional mean never decreases under conditioning.
    #[test]
    fn conditional_mean_dominates(
        (mu, sigma) in lognormal_params(),
        q in 0.05..0.99f64,
    ) {
        let d = LogNormal::new(mu, sigma).unwrap();
        let tau = d.quantile(q);
        let cm = d.conditional_mean_above(tau);
        prop_assert!(cm > tau, "cm {cm} vs tau {tau}");
        prop_assert!(cm >= d.mean() - 1e-9);
    }

    /// Every simple heuristic yields a strictly increasing sequence whose
    /// normalized analytic cost is at least 1.
    #[test]
    fn heuristic_sequences_increase_and_cost_at_least_omniscient(
        (mu, sigma) in lognormal_params(),
        alpha in 0.2..2.0f64,
        beta in 0.0..2.0f64,
        gamma in 0.0..2.0f64,
    ) {
        let d = LogNormal::new(mu, sigma).unwrap();
        let c = CostModel::new(alpha, beta, gamma).unwrap();
        for h in [
            Box::new(MeanByMean::default()) as Box<dyn ReservationStrategy>,
            Box::new(MeanStdev::default()),
            Box::new(MeanDoubling::default()),
            Box::new(MedianByMedian::default()),
        ] {
            let seq = h.sequence(&d, &c).unwrap();
            for w in seq.times().windows(2) {
                prop_assert!(w[1] > w[0], "{} not increasing", h.name());
            }
            let ratio = expected_cost_analytic(&seq, &d, &c) / c.omniscient(&d);
            prop_assert!(ratio >= 1.0 - 1e-6, "{}: ratio {ratio}", h.name());
        }
    }

    /// Per-job accounting: the paid cost is at least the omniscient cost of
    /// that job, and is nondecreasing in the job's duration.
    #[test]
    fn run_job_cost_bounds(
        t in 0.01..60.0f64,
        dt in 0.0..10.0f64,
        alpha in 0.2..2.0f64,
        gamma in 0.0..2.0f64,
    ) {
        let d = LogNormal::new(2.0, 0.6).unwrap();
        let c = CostModel::new(alpha, 1.0, gamma).unwrap();
        let seq = ReservationStrategy::sequence(&MeanDoubling::default(), &d, &c).unwrap();
        let out = run_job(&seq, &c, t);
        prop_assert!(out.cost >= c.single(t, t) - 1e-9, "cheaper than clairvoyant");
        prop_assert!(out.wasted_time >= 0.0);
        let out2 = run_job(&seq, &c, t + dt);
        prop_assert!(out2.cost >= out.cost - 1e-9, "cost must grow with t");
    }

    /// `first_fitting` is consistent with `reservation`.
    #[test]
    fn first_fitting_consistency(t in 0.01..500.0f64) {
        let seq = ReservationSequence::new(vec![1.0, 3.0, 9.0, 27.0], false).unwrap();
        let k = seq.first_fitting(t);
        prop_assert!(seq.reservation(k) >= t);
        if k > 0 {
            prop_assert!(seq.reservation(k - 1) < t);
        }
    }

    /// DP optimality on random discrete distributions: the DP value never
    /// exceeds the cost of random increasing ladders.
    #[test]
    fn dp_beats_random_ladders(
        values in proptest::collection::vec(0.01..100.0f64, 2..10),
        weights in proptest::collection::vec(0.01..1.0f64, 2..10),
        mask in 0u32..256,
        alpha in 0.2..2.0f64,
        beta in 0.0..2.0f64,
        gamma in 0.0..2.0f64,
    ) {
        let mut v: Vec<f64> = values;
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        let n = v.len().min(weights.len());
        if n < 2 { return Ok(()); }
        let d = DiscreteDistribution::new(v[..n].to_vec(), weights[..n].to_vec()).unwrap();
        let c = CostModel::new(alpha, beta, gamma).unwrap();
        let sol = rsj_core::optimal_discrete(&d, &c).unwrap();
        // A random ladder from the mask bits, forced to end at n-1.
        let mut ladder: Vec<usize> = (0..n - 1).filter(|i| mask & (1 << i) != 0).collect();
        ladder.push(n - 1);
        let cost_val = rsj_core::heuristics::discrete_sequence_cost(&d, &c, &ladder);
        prop_assert!(
            sol.expected_cost <= cost_val + 1e-9,
            "dp {} vs ladder {cost_val}",
            sol.expected_cost
        );
    }

    /// The A₁ bound dominates the brute-force optimum's first reservation.
    #[test]
    fn optimal_t1_below_theorem2_bound(rate in 0.3..3.0f64) {
        let d = GammaDist::new(2.0, rate).unwrap();
        let c = CostModel::reservation_only();
        let bf = BruteForce::new(150, 400, EvalMethod::Analytic, 1).unwrap();
        let r = bf.best(&d, &c).unwrap();
        prop_assert!(r.t1 <= rsj_core::upper_bound_t1(&d, &c) + 1e-9);
    }

    /// Pareto conditional-mean closed form satisfies the defining integral
    /// equation E[X | X > τ]·S(τ) = ∫_τ^∞ t f(t) dt.
    #[test]
    fn pareto_conditional_mean_identity(tau in 2.0..50.0f64) {
        let d = Pareto::new(1.5, 3.0).unwrap();
        let lhs = d.conditional_mean_above(tau) * d.survival(tau);
        let rhs = rsj_dist::quadrature::integrate_to_inf(|t| t * d.pdf(t), tau, 1e-12).value;
        prop_assert!((lhs - rhs).abs() / rhs.max(1e-12) < 1e-6, "lhs {lhs} rhs {rhs}");
    }
}

/// Non-proptest sanity: the discrete distribution normalizes.
#[test]
fn discrete_normalization() {
    let d = DiscreteDistribution::new(vec![1.0, 2.0, 5.0], vec![3.0, 3.0, 6.0]).unwrap();
    assert!((d.probs().iter().sum::<f64>() - 1.0).abs() < 1e-15);
    assert_eq!(d.suffix_masses()[0], 1.0);
}
