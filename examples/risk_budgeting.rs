//! Risk-aware budgeting: beyond the expected cost (Eq. 4), the *exact
//! distribution* of a strategy's cost — what budget covers 95% / 99% of
//! jobs, how many reservation attempts to expect, and how two strategies
//! with similar means differ in the tail.
//!
//! Run with: `cargo run --release --example risk_budgeting`

use reservation_strategies::prelude::*;
use rsj_core::risk::risk_profile;
use rsj_core::robustness::misspecification_report;
use rsj_dist::LogNormal;

fn main() {
    let dist = LogNormal::new(3.0, 0.5).unwrap();
    let cost = CostModel::new(1.0, 0.0, 0.0).unwrap(); // RESERVATIONONLY

    let strategies: Vec<Box<dyn Strategy>> = vec![
        Box::new(BruteForce::new(2000, 1000, EvalMethod::Analytic, 1).unwrap()),
        Box::new(MeanByMean::default()),
        Box::new(MeanDoubling::default()),
    ];

    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8} {:>10} {:>12}",
        "strategy", "E[cost]", "p50", "p95", "p99", "E[tries]", "P(>2 tries)"
    );
    for s in &strategies {
        let seq = s.sequence(&dist, &cost).unwrap();
        let profile = risk_profile(&seq, &dist, &cost);
        println!(
            "{:<16} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>10.2} {:>11.1}%",
            s.name(),
            profile.expected_cost(&dist),
            profile.cost_quantile(&dist, 0.5),
            profile.cost_quantile(&dist, 0.95),
            profile.cost_quantile(&dist, 0.99),
            profile.expected_reservations(),
            profile.prob_more_than(2) * 100.0,
        );
    }
    println!(
        "\n→ strategies with similar *means* can differ sharply at p99: the\n  \
         doubling rule overshoots rarely but enormously, while the optimal\n  \
         ladder trades a slightly higher median for a controlled tail."
    );

    // Robustness of the budget to a misfitted model.
    let assumed = LogNormal::new(2.9, 0.45).unwrap(); // slightly wrong fit
    let dp = DiscretizedDp::paper(DiscretizationScheme::EqualProbability);
    let report = misspecification_report(&dp, &assumed, &dist, &cost).unwrap();
    println!(
        "\nplanning on a slightly wrong fit: believed {:.1}, actually pays {:.1} \
         ({:.1}% over a truth-informed plan)",
        report.believed_cost,
        report.planned_cost,
        (report.penalty_ratio - 1.0) * 100.0
    );
}
