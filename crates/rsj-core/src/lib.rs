//! # rsj-core — reservation strategies for stochastic jobs
//!
//! The primary contribution of *Reservation Strategies for Stochastic Jobs*
//! (Aupy, Gainaru, Honoré, Raghavan, Robert, Sun — IPDPS 2019), implemented
//! as a library (systems S6–S8 of `DESIGN.md`):
//!
//! * [`cost`] — the affine cost model `α·t₁ + β·min(t₁, t) + γ` of Eq. 1
//!   and its convex extension (Appendix C);
//! * [`sequence`] — strictly increasing reservation sequences (§2.2);
//! * [`eval`] — exact expected cost (Theorem 1, Eq. 4), Monte-Carlo
//!   estimation (§5.1, Eq. 13) and per-job accounting (Eq. 2);
//! * [`recurrence`] — the optimal-sequence recurrence (Proposition 1,
//!   Eq. 11 / Eq. 37);
//! * [`bounds`] — the Theorem 2 upper bounds `A₁`, `A₂`;
//! * [`heuristics`] — Brute-Force (§4.1), discretization + dynamic
//!   programming (§4.2, Theorem 5) and the measure-based rules of §4.3;
//! * [`exact`] — closed-form optima: Uniform (Theorem 4) and Exponential
//!   (§3.5, `s₁ ≈ 0.74219`).
//!
//! ## Quickstart
//!
//! ```
//! use rsj_core::prelude::*;
//! use rsj_dist::prelude::*;
//!
//! // A job whose runtime follows LogNormal(3, 0.5), on a pay-per-request
//! // platform (RESERVATIONONLY).
//! let dist = LogNormal::new(3.0, 0.5).unwrap();
//! let cost = CostModel::reservation_only();
//!
//! // Compute a reservation sequence with the Mean-by-Mean heuristic...
//! let seq = MeanByMean::default().sequence(&dist, &cost).unwrap();
//!
//! // ...and score it against the omniscient scheduler.
//! let ratio = normalized_cost_analytic(&seq, &dist, &cost);
//! assert!(ratio > 1.0 && ratio < 3.0);
//! ```

#![warn(missing_docs)]
// `!(x > 0.0)`-style guards deliberately reject NaN together with
// out-of-range values; clippy's partial_cmp suggestion obscures that.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod bounds;
pub mod cancel;
pub mod cost;
pub mod error;
pub mod eval;
pub mod exact;
pub mod extensions;
pub mod heuristics;
pub mod recurrence;
pub mod risk;
pub mod robustness;
pub mod sequence;

pub use bounds::{upper_bound_expected_cost, upper_bound_t1};
pub use cancel::CancelToken;
pub use cost::{AffineConvexCost, ConvexCost, CostModel, QuadraticCost};
pub use error::{CoreError, Result};
pub use eval::{
    coverage_gap, draw_samples, expected_cost_analytic, expected_cost_analytic_convex,
    expected_cost_monte_carlo, normalized_cost_analytic, normalized_cost_monte_carlo, run_job,
    run_job_convex, RunOutcome,
};
pub use heuristics::{
    clear_last_dp_path, last_dp_path, monotone_gate, optimal_discrete, optimal_discrete_exact,
    optimal_discrete_exact_par, optimal_discrete_monotone, optimal_discrete_par, paper_suite,
    BruteForce, DiscretizedDp, DpPath, DpSolution, EvalMethod, MeanByMean, MeanDoubling, MeanStdev,
    MedianByMedian, SolverSpec, Strategy, SuiteBuilder, SweepPoint, TailPolicy,
};
pub use recurrence::{sequence_from_t1, sequence_from_t1_convex, RecurrenceConfig};
pub use risk::{budget_at_quantile, risk_profile, CostBracket, RiskProfile};
pub use robustness::{expected_cost_with_extension, misspecification_report, MisspecReport};
pub use sequence::ReservationSequence;

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::bounds::{upper_bound_expected_cost, upper_bound_t1};
    pub use crate::cancel::CancelToken;
    pub use crate::cost::{ConvexCost, CostModel, QuadraticCost};
    pub use crate::eval::{
        expected_cost_analytic, expected_cost_monte_carlo, normalized_cost_analytic,
        normalized_cost_monte_carlo, run_job, RunOutcome,
    };
    pub use crate::heuristics::{
        BruteForce, DiscretizedDp, EvalMethod, MeanByMean, MeanDoubling, MeanStdev, MedianByMedian,
        SolverSpec, Strategy, SuiteBuilder,
    };
    pub use crate::recurrence::{sequence_from_t1, RecurrenceConfig};
    pub use crate::sequence::ReservationSequence;
}
