//! Compacted snapshots of the plan cache, written atomically.
//!
//! A snapshot is the journal's compaction target: every
//! `--snapshot-every` appends the server dumps its live cache into
//! `snapshot-{generation:08}.snap` and truncates `journal.log`, bounding
//! replay work at the next restart to one snapshot plus a short journal
//! tail.
//!
//! Snapshots reuse the journal's CRC32 framing byte for byte
//! ([`crate::journal::encode_record`] / [`crate::journal::RecordScanner`])
//! — one codec, one forensic reader, one set of typed faults.
//!
//! Crash safety: a snapshot is first written and `sync_all`ed to
//! `*.snap.tmp`, then atomically renamed into place, so a crash
//! mid-snapshot leaves either the previous generation or the new one —
//! never a half-written file that recovery would have to guess about.
//! The two newest generations are kept; if the newest turns out to be
//! damaged at recovery time (bit rot), recovery falls back to the older
//! one.

use std::fs;
use std::path::{Path, PathBuf};

use crate::journal::{
    encode_record, read_log_bytes, JournalError, JournalRecord, RecordFault, RecordScanner,
};

/// How many snapshot generations to keep on disk. The newest is the
/// recovery source; the one before it is the fallback if the newest is
/// damaged.
pub const SNAPSHOT_GENERATIONS_KEPT: usize = 2;

/// Manages the snapshot files inside one journal directory.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    dir: PathBuf,
}

/// One snapshot file on disk, newest-first in [`SnapshotStore::list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotFile {
    /// Monotonic snapshot generation (embedded in the file name).
    pub generation: u64,
    /// Full path to the `.snap` file.
    pub path: PathBuf,
}

impl SnapshotStore {
    /// A store over `dir`, creating the directory if needed.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The directory this store manages.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn snapshot_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("snapshot-{generation:08}.snap"))
    }

    /// Writes `records` as generation `generation`: temp file, `sync_all`,
    /// atomic rename, then prune of generations older than the newest
    /// [`SNAPSHOT_GENERATIONS_KEPT`].
    pub fn write(
        &self,
        generation: u64,
        records: &[JournalRecord],
    ) -> Result<PathBuf, JournalError> {
        let final_path = self.snapshot_path(generation);
        let tmp_path = self.dir.join(format!("snapshot-{generation:08}.snap.tmp"));
        let mut buf = Vec::new();
        for record in records {
            buf.extend_from_slice(&encode_record(record)?);
        }
        fs::write(&tmp_path, &buf)?;
        // Durability before visibility: the rename must not land before
        // the bytes do, or a crash could leave a *complete-looking* but
        // empty/partial snapshot under the final name.
        let tmp = fs::File::open(&tmp_path)?;
        tmp.sync_all()?;
        drop(tmp);
        fs::rename(&tmp_path, &final_path)?;
        self.prune()?;
        Ok(final_path)
    }

    /// All snapshot files in the directory, newest generation first.
    /// Unparsable file names are ignored (they are not snapshots).
    pub fn list(&self) -> std::io::Result<Vec<SnapshotFile>> {
        let mut found = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(generation) = name
                .strip_prefix("snapshot-")
                .and_then(|rest| rest.strip_suffix(".snap"))
                .and_then(|digits| digits.parse::<u64>().ok())
            else {
                continue;
            };
            found.push(SnapshotFile {
                generation,
                path: entry.path(),
            });
        }
        found.sort_by_key(|s| std::cmp::Reverse(s.generation));
        Ok(found)
    }

    /// The generation the *next* snapshot should use: one past the newest
    /// on disk, or 1 on a fresh directory.
    pub fn next_generation(&self) -> std::io::Result<u64> {
        Ok(self.list()?.first().map(|s| s.generation + 1).unwrap_or(1))
    }

    /// Scans one snapshot file with the shared forensic reader: decoded
    /// records plus every typed fault encountered.
    pub fn load(
        &self,
        file: &SnapshotFile,
    ) -> std::io::Result<(Vec<JournalRecord>, Vec<RecordFault>)> {
        let bytes = read_log_bytes(&file.path)?;
        let mut records = Vec::new();
        let mut faults = Vec::new();
        for item in RecordScanner::new(&bytes) {
            match item {
                Ok((_, record)) => records.push(record),
                Err(fault) => faults.push(fault),
            }
        }
        Ok((records, faults))
    }

    fn prune(&self) -> std::io::Result<()> {
        for stale in self.list()?.into_iter().skip(SNAPSHOT_GENERATIONS_KEPT) {
            let _ = fs::remove_file(&stale.path);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reservation_strategies::{plan_digest, Plan};

    fn record(tag: &str, seq: &[f64]) -> JournalRecord {
        JournalRecord {
            key: format!("key-{tag}"),
            plan: Plan {
                distribution: format!("dist-{tag}"),
                solver: "mean_by_mean".to_string(),
                sequence: seq.to_vec(),
                complete: true,
                expected_cost: 2.5,
                omniscient_cost: 1.25,
                normalized_cost: 2.0,
                coverage_gap: 0.0,
                digest: plan_digest(seq.iter().copied()),
                simulation: None,
            },
        }
    }

    fn temp_store(tag: &str) -> SnapshotStore {
        let dir = std::env::temp_dir().join(format!("rsj_snap_{}_{}", tag, std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        SnapshotStore::open(dir).unwrap()
    }

    #[test]
    fn write_load_round_trips() {
        let store = temp_store("roundtrip");
        let records = vec![record("a", &[1.0, 2.0]), record("b", &[3.0])];
        store.write(1, &records).unwrap();
        let files = store.list().unwrap();
        assert_eq!(files.len(), 1);
        assert_eq!(files[0].generation, 1);
        let (loaded, faults) = store.load(&files[0]).unwrap();
        assert_eq!(loaded, records);
        assert!(faults.is_empty());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn keeps_only_the_newest_generations() {
        let store = temp_store("prune");
        for generation in 1..=4 {
            store.write(generation, &[record("x", &[1.0])]).unwrap();
        }
        let files = store.list().unwrap();
        let gens: Vec<u64> = files.iter().map(|f| f.generation).collect();
        assert_eq!(gens, vec![4, 3]);
        assert_eq!(store.next_generation().unwrap(), 5);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn no_tmp_file_survives_a_write() {
        let store = temp_store("tmp");
        store.write(1, &[record("a", &[1.0])]).unwrap();
        let leftovers: Vec<_> = fs::read_dir(store.dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn fresh_directory_starts_at_generation_one() {
        let store = temp_store("fresh");
        assert!(store.list().unwrap().is_empty());
        assert_eq!(store.next_generation().unwrap(), 1);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn damaged_snapshot_reports_typed_faults() {
        let store = temp_store("damaged");
        let records = vec![record("a", &[1.0]), record("b", &[2.0])];
        let path = store.write(1, &records).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(&path, &bytes).unwrap();
        let files = store.list().unwrap();
        let (loaded, faults) = store.load(&files[0]).unwrap();
        assert!(!faults.is_empty());
        assert!(loaded.len() < records.len());
        let _ = fs::remove_dir_all(store.dir());
    }
}
