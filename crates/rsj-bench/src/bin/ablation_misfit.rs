//! Runs the fit-then-plan fragility ablation (beyond the paper's own
//! evaluation).

use rsj_bench::scenarios::Fidelity;

fn main() -> std::io::Result<()> {
    rsj_obs::init_from_env();
    let fidelity = Fidelity::from_env();
    rsj_obs::info!(
        "running ablation_misfit at {fidelity:?} fidelity (RSJ_FIDELITY=quick for a fast pass)"
    );
    rsj_bench::experiments::ablation_misfit::emit(fidelity, rsj_bench::DEFAULT_SEED)?;
    Ok(())
}
