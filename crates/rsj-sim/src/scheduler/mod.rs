//! Batch-queue scheduling policies.
//!
//! The paper's Figure 2 comes from logs of Intrepid, whose Cobalt scheduler
//! (like Slurm, §6) runs priority/FCFS queues with backfilling. We implement
//! the two canonical policies:
//!
//! * [`SchedulerPolicy::Fcfs`] — strict first-come-first-served: the queue
//!   head blocks everything behind it;
//! * [`SchedulerPolicy::EasyBackfill`] — EASY backfilling (Mu'alem &
//!   Feitelson \[17\]): the head gets a start-time *reservation* computed from
//!   the running jobs' requested walltimes, and later jobs may jump ahead
//!   when they cannot delay it.

mod conservative;
mod easy;
mod priority;

pub use conservative::schedule_conservative;
pub use easy::schedule_easy;
pub use priority::{schedule_priority, PriorityConfig};

use crate::job::{Job, JobId, Time};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Which queueing policy the simulated cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SchedulerPolicy {
    /// Strict first-come-first-served.
    Fcfs,
    /// FCFS with EASY backfilling (one reservation, for the queue head).
    EasyBackfill,
    /// Conservative backfilling (a reservation for every waiting job).
    Conservative,
    /// Slurm-like two-queue priority scheduling with aging (§6), EASY
    /// backfilling within the reordered queue.
    SlurmLike(PriorityConfig),
}

/// A job currently executing on the machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Running {
    /// The job.
    pub job: Job,
    /// When it started.
    pub start: Time,
    /// Conservative end the scheduler plans around: `start + requested`.
    pub planned_end: Time,
    /// When it actually leaves: `start + min(actual, requested)`.
    pub actual_end: Time,
}

/// Scheduler state shared by the policies: the waiting queue (FIFO order)
/// and the set of running jobs.
#[derive(Debug, Default)]
pub struct SchedulerState {
    /// Waiting queue in arrival order.
    pub waiting: VecDeque<Job>,
    /// Jobs currently on the machine.
    pub running: Vec<Running>,
    /// Total processors in the cluster.
    pub total_processors: usize,
}

impl SchedulerState {
    /// Creates an empty state for a cluster of `total_processors`.
    pub fn new(total_processors: usize) -> Self {
        assert!(total_processors > 0, "cluster must have processors");
        Self {
            waiting: VecDeque::new(),
            running: Vec::new(),
            total_processors,
        }
    }

    /// Processors not currently allocated.
    pub fn free_processors(&self) -> usize {
        let used: usize = self.running.iter().map(|r| r.job.processors).sum();
        self.total_processors
            .checked_sub(used)
            .expect("allocation never exceeds the cluster")
    }

    /// Starts `job` at `now`, returning the new running entry.
    pub fn start_job(&mut self, job: Job, now: Time) -> Running {
        debug_assert!(job.processors <= self.free_processors());
        let running = Running {
            job,
            start: now,
            planned_end: now + job.requested,
            actual_end: now + job.occupancy(),
        };
        self.running.push(running);
        running
    }

    /// Removes a finished job from the running set.
    pub fn remove_running(&mut self, id: JobId) -> Option<Running> {
        let idx = self.running.iter().position(|r| r.job.id == id)?;
        Some(self.running.swap_remove(idx))
    }

    /// Strict FCFS pass: starts queue-head jobs while they fit; returns the
    /// jobs started (in order).
    pub fn schedule_fcfs(&mut self, now: Time) -> Vec<Running> {
        let mut started = Vec::new();
        while let Some(head) = self.waiting.front() {
            if head.processors <= self.free_processors() {
                let job = self.waiting.pop_front().expect("non-empty");
                started.push(self.start_job(job, now));
            } else {
                break;
            }
        }
        started
    }

    /// Runs the configured policy; returns jobs started at `now`.
    pub fn schedule(&mut self, policy: SchedulerPolicy, now: Time) -> Vec<Running> {
        match policy {
            SchedulerPolicy::Fcfs => self.schedule_fcfs(now),
            SchedulerPolicy::EasyBackfill => schedule_easy(self, now),
            SchedulerPolicy::Conservative => schedule_conservative(self, now),
            SchedulerPolicy::SlurmLike(config) => schedule_priority(self, &config, now),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, procs: usize, requested: Time) -> Job {
        Job {
            id: JobId(id),
            arrival: 0.0,
            processors: procs,
            requested,
            actual: requested,
        }
    }

    #[test]
    fn fcfs_starts_in_order_and_blocks() {
        let mut st = SchedulerState::new(10);
        st.waiting.push_back(job(1, 4, 1.0));
        st.waiting.push_back(job(2, 8, 1.0)); // cannot fit beside job 1
        st.waiting.push_back(job(3, 2, 1.0)); // would fit, but FCFS blocks
        let started = st.schedule_fcfs(0.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job.id, JobId(1));
        assert_eq!(st.free_processors(), 6);
        assert_eq!(st.waiting.len(), 2);
    }

    #[test]
    fn free_processors_tracks_running() {
        let mut st = SchedulerState::new(10);
        st.start_job(job(1, 3, 2.0), 0.0);
        st.start_job(job(2, 5, 2.0), 0.0);
        assert_eq!(st.free_processors(), 2);
        st.remove_running(JobId(1));
        assert_eq!(st.free_processors(), 5);
    }

    #[test]
    fn running_entry_times() {
        let mut st = SchedulerState::new(10);
        let j = Job {
            id: JobId(1),
            arrival: 0.5,
            processors: 1,
            requested: 2.0,
            actual: 3.0, // will be killed at the walltime
        };
        let r = st.start_job(j, 1.0);
        assert_eq!(r.planned_end, 3.0);
        assert_eq!(r.actual_end, 3.0); // killed at requested
        let j2 = Job {
            actual: 1.0,
            id: JobId(2),
            ..j
        };
        let r2 = st.start_job(j2, 1.0);
        assert_eq!(r2.planned_end, 3.0);
        assert_eq!(r2.actual_end, 2.0); // finished early
    }
}
