//! Quickstart: compute reservation sequences for a stochastic job and
//! compare every heuristic against the omniscient scheduler.
//!
//! Run with: `cargo run --release --example quickstart`

use reservation_strategies::prelude::*;

fn main() {
    // A job whose execution time is unknown but follows LogNormal(3, 0.5)
    // — the paper's Table 1 instantiation (mean ≈ 22.76 time units).
    let dist = LogNormal::new(3.0, 0.5).unwrap();

    // The platform bills exactly what is requested (RESERVATIONONLY,
    // α = 1, β = γ = 0): the Reserved-Instance model of AWS.
    let cost = CostModel::reservation_only();

    println!("job law:             {}", dist.name());
    println!(
        "mean / median / std: {:.2} / {:.2} / {:.2}",
        dist.mean(),
        dist.median(),
        dist.std_dev()
    );
    println!("omniscient cost E°:  {:.2}\n", cost.omniscient(&dist));

    let heuristics: Vec<Box<dyn Strategy>> = vec![
        Box::new(BruteForce::new(2000, 1000, EvalMethod::Analytic, 42).unwrap()),
        Box::new(MeanByMean::default()),
        Box::new(MeanStdev::default()),
        Box::new(MeanDoubling::default()),
        Box::new(MedianByMedian::default()),
        Box::new(DiscretizedDp::paper(DiscretizationScheme::EqualTime)),
        Box::new(DiscretizedDp::paper(DiscretizationScheme::EqualProbability)),
    ];

    println!(
        "{:<20} {:>10} {:>8}  first reservations",
        "heuristic", "E(S)/E°", "length"
    );
    for h in &heuristics {
        let seq = h.sequence(&dist, &cost).expect("heuristic must succeed");
        let ratio = normalized_cost_analytic(&seq, &dist, &cost);
        let prefix: Vec<String> = seq
            .times()
            .iter()
            .take(4)
            .map(|t| format!("{t:.2}"))
            .collect();
        println!(
            "{:<20} {:>10.3} {:>8}  ({}, …)",
            h.name(),
            ratio,
            seq.len(),
            prefix.join(", ")
        );
    }

    // Executing one concrete job: suppose it actually runs for 30 units.
    let bf = BruteForce::new(2000, 1000, EvalMethod::Analytic, 42).unwrap();
    let seq = bf.sequence(&dist, &cost).unwrap();
    let outcome = run_job(&seq, &cost, 30.0);
    println!(
        "\na 30-unit job under the Brute-Force sequence: cost {:.2} across {} reservation(s), {:.2} units wasted",
        outcome.cost, outcome.reservations, outcome.wasted_time
    );
}
