//! Shared experiment scenarios: the Table 1 distribution instantiations and
//! the heuristic suites with the paper's parameters.

use rsj_core::{Strategy, SuiteBuilder};
use rsj_dist::{ContinuousDistribution, DistSpec};

/// A named Table 1 distribution.
pub struct NamedDist {
    /// Row label as printed in the paper's tables.
    pub name: &'static str,
    /// The instantiated distribution.
    pub dist: Box<dyn ContinuousDistribution>,
}

/// The nine Table 1 instantiations, in table order.
pub fn paper_distributions() -> Vec<NamedDist> {
    DistSpec::paper_table1()
        .into_iter()
        .map(|(name, spec)| NamedDist {
            name,
            dist: spec.build().expect("paper instantiations are valid"),
        })
        .collect()
}

/// Fidelity of an experiment run: the paper's full parameters or a reduced
/// configuration for smoke tests and CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// `M = 5000`, `N = 1000`, `n = 1000` — the paper's §5 settings.
    Paper,
    /// Small grids for fast smoke runs.
    Quick,
}

impl Fidelity {
    /// Reads `RSJ_FIDELITY=quick|paper` from the environment
    /// (default: paper).
    pub fn from_env() -> Self {
        match std::env::var("RSJ_FIDELITY").as_deref() {
            Ok("quick") => Fidelity::Quick,
            _ => Fidelity::Paper,
        }
    }

    /// Brute-force grid size `M`.
    pub fn grid(self) -> usize {
        match self {
            Fidelity::Paper => 5000,
            Fidelity::Quick => 300,
        }
    }

    /// Monte-Carlo sample count `N`.
    pub fn samples(self) -> usize {
        match self {
            Fidelity::Paper => 1000,
            Fidelity::Quick => 400,
        }
    }

    /// Discretization sample count `n`.
    pub fn discretization(self) -> usize {
        match self {
            Fidelity::Paper => 1000,
            Fidelity::Quick => 200,
        }
    }
}

/// The paper's ε for truncating unbounded supports.
pub const EPSILON: f64 = 1e-7;

/// The seven-heuristic Table 2 suite at the given fidelity, built through
/// `rsj-core`'s [`SuiteBuilder`] (the benches only adjust the evaluation
/// parameters, never the set of heuristics).
pub fn heuristic_suite(fidelity: Fidelity, seed: u64) -> Vec<Box<dyn Strategy>> {
    SuiteBuilder::new(seed)
        .grid(fidelity.grid())
        .samples(fidelity.samples())
        .discretization(fidelity.discretization())
        .epsilon(EPSILON)
        .build()
        .expect("valid parameters")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_distributions_in_order() {
        let dists = paper_distributions();
        assert_eq!(dists.len(), 9);
        assert_eq!(dists[0].name, "Exponential");
        assert_eq!(dists[8].name, "BoundedPareto");
    }

    #[test]
    fn suite_order_matches_table2() {
        let suite = heuristic_suite(Fidelity::Quick, 1);
        let names: Vec<&str> = suite.iter().map(|h| h.name()).collect();
        assert_eq!(
            names,
            vec![
                "Brute-Force",
                "Mean-by-Mean",
                "Mean-Stdev",
                "Mean-Doubling",
                "Median-by-Median",
                "Equal-time",
                "Equal-probability"
            ]
        );
    }

    #[test]
    fn fidelity_parameters() {
        assert_eq!(Fidelity::Paper.grid(), 5000);
        assert_eq!(Fidelity::Paper.samples(), 1000);
        assert_eq!(Fidelity::Paper.discretization(), 1000);
        assert!(Fidelity::Quick.grid() < Fidelity::Paper.grid());
    }
}
