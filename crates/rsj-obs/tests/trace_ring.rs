//! The trace ring under contention, and property tests for the
//! Chrome-trace exporter over arbitrary timelines.

use proptest::prelude::*;
use rsj_obs::{chrome_trace_json, StageRecord, TimelineRecord, TraceRing};
use std::sync::Arc;

fn record(trace_id: String, total_us: u64, stages: Vec<StageRecord>) -> TimelineRecord {
    TimelineRecord {
        trace_id,
        op: "plan".to_string(),
        total_us,
        stages,
    }
}

#[test]
fn concurrent_writers_wrap_without_losing_the_newest_records() {
    const WRITERS: usize = 8;
    const PER_WRITER: usize = 500;
    const CAPACITY: usize = 64;
    let ring = Arc::new(TraceRing::new(CAPACITY));

    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    ring.push(record(
                        format!("w{w}-{i}"),
                        (w * PER_WRITER + i) as u64,
                        vec![],
                    ));
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("writer");
    }

    assert_eq!(ring.pushed_total(), (WRITERS * PER_WRITER) as u64);
    assert_eq!(ring.len(), CAPACITY, "a full ring holds exactly capacity");
    let recent = ring.recent(CAPACITY * 2);
    assert_eq!(recent.len(), CAPACITY, "recent() is bounded by capacity");

    // Every slot survived the contention intact: distinct records, each
    // one something a writer actually pushed. (Cross-writer order under
    // racing laps is deliberately unspecified.)
    let ids: Vec<&str> = recent.iter().map(|r| r.trace_id.as_str()).collect();
    let mut dedup = ids.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), ids.len(), "no record may appear twice");
    for id in &ids {
        let (w, i) = id
            .strip_prefix('w')
            .and_then(|rest| rest.split_once('-'))
            .expect("writer-tagged id");
        assert!(w.parse::<usize>().unwrap() < WRITERS, "{id}");
        assert!(i.parse::<usize>().unwrap() < PER_WRITER, "{id}");
    }

    // Once the writers are done, a quiescent lap is fully ordered again:
    // the next `CAPACITY` pushes evict everything and read back exactly
    // newest-first.
    for i in 0..CAPACITY {
        ring.push(record(format!("final-{i}"), i as u64, vec![]));
    }
    let after: Vec<String> = ring
        .recent(CAPACITY)
        .into_iter()
        .map(|r| r.trace_id.clone())
        .collect();
    let expected: Vec<String> = (0..CAPACITY).rev().map(|i| format!("final-{i}")).collect();
    assert_eq!(after, expected);
}

#[test]
fn single_writer_wraparound_keeps_exactly_the_last_capacity() {
    let ring = TraceRing::new(4);
    for i in 0..11u64 {
        ring.push(record(format!("{i}"), i, vec![]));
    }
    let ids: Vec<String> = ring
        .recent(10)
        .into_iter()
        .map(|r| r.trace_id.clone())
        .collect();
    assert_eq!(ids, ["10", "9", "8", "7"]);
}

/// Raw material for one arbitrary timeline: a total and a list of
/// `(name index, gap, length)` stage triples. Stages are laid out
/// sequentially (possibly gapped, possibly zero-length) the way a
/// request records them — but the tail may extend past `total_us`,
/// exercising the exporter's clamping.
type RawRecord = (u64, Vec<(usize, u64, u64)>);

const STAGE_NAMES: [&str; 6] = [
    "queue_wait",
    "decode",
    "build",
    "solve",
    "journal_append",
    "write",
];

fn build_record(index: usize, raw: &RawRecord) -> TimelineRecord {
    let (total_us, ref triples) = *raw;
    let mut cursor = 0u64;
    let stages = triples
        .iter()
        .map(|&(name, gap, len)| {
            let start_us = cursor + gap;
            let end_us = start_us + len;
            cursor = end_us;
            StageRecord {
                name: STAGE_NAMES[name % STAGE_NAMES.len()].to_string(),
                start_us,
                end_us,
                args: Vec::new(),
            }
        })
        .collect();
    record(format!("{index:032x}"), total_us, stages)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any batch of timelines the exporter emits valid JSON whose
    /// events are all complete ("X"), have non-negative monotone extents
    /// (`ts + dur <= total` of their request lane), and nest: sorted
    /// within a lane, every event either contains or is disjoint from
    /// the next.
    #[test]
    fn chrome_export_is_valid_and_well_nested(
        raw in proptest::collection::vec(
            (
                0u64..4_000,
                proptest::collection::vec((0usize..64, 0u64..600, 0u64..600), 0..8),
            ),
            0..5,
        )
    ) {
        let records: Vec<TimelineRecord> = raw
            .iter()
            .enumerate()
            .map(|(i, r)| build_record(i, r))
            .collect();
        let text = chrome_trace_json(&records);
        let doc: serde_json::Value = serde_json::from_str(&text).expect("exporter emits valid JSON");
        let events = doc["traceEvents"].as_array().expect("traceEvents is an array");

        // One request event plus one event per stage.
        let expected: usize = records.iter().map(|r| 1 + r.stages.len()).sum();
        prop_assert_eq!(events.len(), expected);

        // Group by lane (tid); each lane's extent is its request event.
        for (index, rec) in records.iter().enumerate() {
            let tid = index as u64 + 1;
            let lane: Vec<_> = events
                .iter()
                .filter(|e| e["tid"].as_u64() == Some(tid))
                .collect();
            prop_assert_eq!(lane.len(), 1 + rec.stages.len());
            let mut intervals = Vec::new();
            for e in &lane {
                prop_assert_eq!(e["ph"].as_str(), Some("X"));
                let ts = e["ts"].as_u64().expect("ts is a non-negative integer");
                let dur = e["dur"].as_u64().expect("dur is a non-negative integer");
                prop_assert!(ts + dur <= rec.total_us, "event escapes its request: {e:?}");
                if e["cat"].as_str() == Some("stage") {
                    intervals.push((ts, ts + dur));
                }
            }
            // The exporter emits stages sorted (start asc, end desc):
            // verify the order and that consecutive intervals nest or
            // are disjoint — never partially overlap.
            for pair in intervals.windows(2) {
                let ((s1, e1), (s2, e2)) = (pair[0], pair[1]);
                prop_assert!(s1 < s2 || (s1 == s2 && e1 >= e2), "stages out of order");
                prop_assert!(
                    e2 <= e1 || s2 >= e1,
                    "partially overlapping stages: [{s1},{e1}) vs [{s2},{e2})"
                );
            }
        }
    }
}
