//! Criterion: scaling of the Theorem 5 dynamic program as the
//! discretization sample count grows (the Table 4 axis) — the `O(n²)`
//! exact pass against the `O(n log n)` monotone fast path, exposing the
//! crossover point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rsj_core::{
    optimal_discrete, optimal_discrete_exact, optimal_discrete_monotone, CancelToken, CostModel,
};
use rsj_dist::{discretize, DiscretizationScheme, LogNormal};

fn bench_dp_scaling(c: &mut Criterion) {
    let dist = LogNormal::new(3.0, 0.5).unwrap();
    let cost = CostModel::new(0.95, 1.0, 1.05).unwrap();

    let mut group = c.benchmark_group("dp_scaling");
    for n in [100usize, 250, 500, 1000, 2000] {
        let discrete = discretize(&dist, DiscretizationScheme::EqualProbability, n, 1e-7).unwrap();
        group.throughput(Throughput::Elements((n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &discrete, |b, d| {
            b.iter(|| optimal_discrete(d, &cost).unwrap());
        });
    }
    group.finish();

    // Exact O(n²) pass vs the monotone O(n log n) fast path on the same
    // grids: the `exact/…` and `monotone/…` curves cross where the
    // envelope bookkeeping stops dominating — small n favours neither
    // much, large n favours monotone by orders of magnitude.
    let mut group = c.benchmark_group("dp_exact_vs_monotone");
    let cancel = CancelToken::none();
    for n in [100usize, 500, 2000, 8000] {
        let discrete = discretize(&dist, DiscretizationScheme::EqualProbability, n, 1e-7).unwrap();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("exact", n), &discrete, |b, d| {
            b.iter(|| optimal_discrete_exact(d, &cost).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("monotone", n), &discrete, |b, d| {
            b.iter(|| {
                optimal_discrete_monotone(d, &cost, &cancel)
                    .unwrap()
                    .expect("gate fires on the lognormal grid")
            });
        });
    }
    group.finish();

    // The §7 checkpoint-threshold DP shares the O(n²) structure; measure
    // its constant factor against the plain Theorem 5 program.
    let mut group = c.benchmark_group("checkpoint_dp_scaling");
    let ck = rsj_core::extensions::CheckpointConfig::new(0.1, 0.1).unwrap();
    for n in [100usize, 500, 1000] {
        let discrete = discretize(&dist, DiscretizationScheme::EqualProbability, n, 1e-7).unwrap();
        group.throughput(Throughput::Elements((n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &discrete, |b, d| {
            b.iter(|| rsj_core::extensions::optimal_discrete_checkpointed(d, &cost, &ck).unwrap());
        });
    }
    group.finish();

    // Discretization itself (quantile-heavy for Equal-probability).
    let mut group = c.benchmark_group("discretization");
    for scheme in [
        DiscretizationScheme::EqualTime,
        DiscretizationScheme::EqualProbability,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{scheme:?}_n1000")),
            &scheme,
            |b, &s| {
                b.iter(|| discretize(&dist, s, 1000, 1e-7).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dp_scaling);
criterion_main!(benches);
