//! Seeds `results/BENCH_recovery.json`: restart-recovery numbers for the
//! durable `rsj-serve` journal (cold start vs warm restart on the same
//! `--journal-dir`).
//!
//! Two phases over one journal directory:
//!
//! 1. **Cold** — a fresh directory: time-to-ready (nothing to recover),
//!    then solve a batch of distinct DP plans (all cache misses), each
//!    append-journaled before the response.
//! 2. **Warm** — restart a server on the same directory: time-to-ready now
//!    includes replaying the journal into the cache, then re-request the
//!    identical batch and measure the post-restart hit rate and latency.
//!
//! Every served digest — cold and warm — is checked bit-for-bit against
//! the offline [`Planner`] facade; a mismatch is a hard failure, not a
//! statistic. Timings move with the host; the digest/hit invariants are
//! also enforced by the `rsj-serve` recovery test suite.
//!
//! Honours `RSJ_FIDELITY` (`quick` shrinks the batch), `RSJ_LOG` and
//! `RSJ_RESULTS_DIR`.

use reservation_strategies::Planner;
use rsj_bench::perf::HostInfo;
use rsj_bench::scenarios::Fidelity;
use rsj_bench::{report, DEFAULT_SEED};
use rsj_core::SolverSpec;
use rsj_dist::{DiscretizationScheme, DistSpec};
use rsj_serve::{Client, DurabilityConfig, Request, Response, Server, ServerConfig};
use serde::{Deserialize, Serialize};
use std::net::SocketAddr;
use std::path::Path;
use std::time::{Duration, Instant};

const SCHEMA_VERSION: u32 = 1;

/// One phase's numbers.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PhaseResult {
    name: String,
    /// Seconds from bind to the `ready` op answering ready.
    ready_seconds: f64,
    /// Plans requested in the phase.
    requests: usize,
    /// Responses served from the cache (warm phase: recovered entries).
    cache_hits: usize,
    hit_rate: f64,
    /// Wall-clock for the request batch.
    batch_seconds: f64,
    p50_ms: f64,
    p99_ms: f64,
    /// Records the recovery pass reported (0 for the cold phase).
    recovered_records: u64,
    corrupt_records: u64,
}

/// The `results/BENCH_recovery.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RecoveryBaseline {
    schema_version: u32,
    fidelity: String,
    seed: u64,
    host: HostInfo,
    plans: usize,
    /// All served digests matched the offline facade, both phases.
    digests_match_offline: bool,
    phases: Vec<PhaseResult>,
}

fn dist_for(i: usize) -> DistSpec {
    DistSpec::LogNormal {
        mu: 1.5 + 0.01 * i as f64,
        sigma: 0.6,
    }
}

fn dp_solver() -> SolverSpec {
    SolverSpec::Dp {
        scheme: DiscretizationScheme::EqualProbability,
        n: 600,
        epsilon: 1e-6,
        monotone: true,
    }
}

fn request_for(i: usize) -> Request {
    Request::plan_with(dist_for(i), dp_solver())
}

fn offline_digest(i: usize) -> String {
    Planner::builder()
        .distribution(dist_for(i))
        .solver(dp_solver())
        .build()
        .expect("planner")
        .plan()
        .expect("offline plan")
        .digest
}

fn percentile_ms(latencies: &mut [Duration], q: f64) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.sort_unstable();
    let rank = ((latencies.len() as f64 * q).ceil() as usize).clamp(1, latencies.len());
    latencies[rank - 1].as_secs_f64() * 1e3
}

fn spawn_durable(dir: &Path) -> (SocketAddr, impl FnOnce()) {
    let server = Server::bind(ServerConfig {
        workers: 2,
        durability: Some(DurabilityConfig::new(dir)),
        ..ServerConfig::default()
    })
    .expect("bind server");
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run());
    (addr, move || {
        shutdown.signal();
        let _ = std::net::TcpStream::connect(addr);
        join.join()
            .expect("server thread")
            .expect("clean server exit");
    })
}

fn wait_ready(addr: SocketAddr) -> Duration {
    let started = Instant::now();
    let deadline = started + Duration::from_secs(120);
    loop {
        if let Ok(mut client) = Client::connect(addr) {
            if client.ready().unwrap_or(false) {
                return started.elapsed();
            }
        }
        assert!(Instant::now() < deadline, "server never became ready");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Drive the full batch through one server; returns the phase numbers and
/// whether every digest matched the offline expectation.
fn run_phase(
    name: &str,
    addr: SocketAddr,
    ready: Duration,
    plans: usize,
    expected: &[String],
) -> (PhaseResult, bool) {
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(120)))
        .expect("timeout");
    let mut latencies = Vec::with_capacity(plans);
    let mut hits = 0usize;
    let mut digests_ok = true;
    let started = Instant::now();
    for (i, expected_digest) in expected.iter().enumerate() {
        let t = Instant::now();
        match client.call(&request_for(i)).expect("plan response") {
            Response::Plan {
                plan, provenance, ..
            } => {
                if provenance.cached {
                    hits += 1;
                }
                if &plan.digest != expected_digest {
                    rsj_obs::warn!("digest mismatch on plan {i}: {}", plan.digest);
                    digests_ok = false;
                }
            }
            other => panic!("expected a plan, got {other:?}"),
        }
        latencies.push(t.elapsed());
    }
    let batch = started.elapsed();
    let health = client.health().expect("health");
    let (recovered, corrupt) = health
        .recovery
        .map(|r| (r.recovered_records, r.corrupt_records))
        .unwrap_or((0, 0));
    (
        PhaseResult {
            name: name.to_string(),
            ready_seconds: ready.as_secs_f64(),
            requests: plans,
            cache_hits: hits,
            hit_rate: hits as f64 / (plans as f64).max(1.0),
            batch_seconds: batch.as_secs_f64(),
            p50_ms: percentile_ms(&mut latencies, 0.50),
            p99_ms: percentile_ms(&mut latencies, 0.99),
            recovered_records: recovered,
            corrupt_records: corrupt,
        },
        digests_ok,
    )
}

fn main() -> std::io::Result<()> {
    rsj_obs::init_from_env();
    rsj_obs::set_metrics_enabled(true);
    let host = HostInfo::capture();
    let fidelity = Fidelity::from_env();
    let plans = match fidelity {
        Fidelity::Paper => 48,
        Fidelity::Quick => 12,
    };
    let dir = std::env::temp_dir().join(format!("rsj_bench_recovery_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir)?;

    rsj_obs::info!("restart_recovery at {fidelity:?} fidelity, {plans} plans");
    let expected: Vec<String> = (0..plans).map(offline_digest).collect();

    // Cold phase: empty journal dir, every solve a miss.
    let (addr, stop) = spawn_durable(&dir);
    let ready = wait_ready(addr);
    let (cold, cold_ok) = run_phase("cold", addr, ready, plans, &expected);
    stop();

    // Warm phase: same dir; readiness now includes journal replay, and
    // the whole batch should come back from the recovered cache.
    let (addr, stop) = spawn_durable(&dir);
    let ready = wait_ready(addr);
    let (warm, warm_ok) = run_phase("warm", addr, ready, plans, &expected);
    stop();
    let _ = std::fs::remove_dir_all(&dir);

    for p in [&cold, &warm] {
        rsj_obs::info!(
            "{}: ready in {:.3}s, {} plans in {:.2}s, hit rate {:.2}, \
             p50 {:.2}ms p99 {:.2}ms, recovered={} corrupt={}",
            p.name,
            p.ready_seconds,
            p.requests,
            p.batch_seconds,
            p.hit_rate,
            p.p50_ms,
            p.p99_ms,
            p.recovered_records,
            p.corrupt_records
        );
    }
    assert!(
        warm.recovered_records >= plans as u64,
        "warm restart recovered {} of {plans} journaled plans",
        warm.recovered_records
    );
    assert!(
        warm.cache_hits == plans,
        "warm restart served {}/{plans} from the recovered cache",
        warm.cache_hits
    );
    assert!(cold_ok && warm_ok, "served digests diverged from offline");

    let doc = RecoveryBaseline {
        schema_version: SCHEMA_VERSION,
        fidelity: format!("{fidelity:?}"),
        seed: DEFAULT_SEED,
        host,
        plans,
        digests_match_offline: cold_ok && warm_ok,
        phases: vec![cold, warm],
    };
    let path = report::write_result_file(
        "BENCH_recovery.json",
        &format!(
            "{}\n",
            serde_json::to_string_pretty(&doc).expect("serializable")
        ),
    )?;
    println!("wrote {}", path.display());
    Ok(())
}
