//! Output plumbing shared by the experiment binaries: Markdown tables, CSV
//! files and the `results/` directory convention.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Errors from assembling a report table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportError {
    /// A row's cell count does not match the header's column count.
    RowWidthMismatch {
        /// Number of header columns.
        expected: usize,
        /// Number of cells in the offending row.
        got: usize,
        /// Index the row would have had.
        row_index: usize,
    },
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportError::RowWidthMismatch {
                expected,
                got,
                row_index,
            } => write!(
                f,
                "row {row_index} has {got} cells but the header has {expected} columns"
            ),
        }
    }
}

impl std::error::Error for ReportError {}

/// Lets experiment binaries whose `emit` returns `io::Result` propagate
/// table-shape errors with `?`.
impl From<ReportError> for std::io::Error {
    fn from(e: ReportError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, e)
    }
}

/// Where experiment outputs go: `$RSJ_RESULTS_DIR` or `./results`.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("RSJ_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    PathBuf::from(dir)
}

/// Writes `content` to `results/<name>`, creating the directory, and
/// returns the path.
pub fn write_result_file(name: &str, content: &str) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    fs::write(&path, content)?;
    Ok(path)
}

/// A simple Markdown/CSV table builder.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; errors when its length does not match the header
    /// (a malformed experiment result must surface as a reportable error,
    /// not a panic deep inside a long run).
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) -> Result<(), ReportError> {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        if row.len() != self.header.len() {
            return Err(ReportError::RowWidthMismatch {
                expected: self.header.len(),
                got: row.len(),
                row_index: self.rows.len(),
            });
        }
        self.rows.push(row);
        Ok(())
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let widths: Vec<usize> = self
            .header
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let fmt_row = |cells: &[String]| {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(&widths) {
                let _ = write!(line, " {c:w$} |");
            }
            line
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{:-<width$}|", "", width = w + 2);
        }
        out.push_str(&sep);
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }

    /// Renders CSV (comma-separated, quoting cells containing commas).
    pub fn to_csv(&self) -> String {
        let quote = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| quote(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes both renderings under `results/` with the given stem and
    /// prints the Markdown to stdout.
    pub fn emit(&self, stem: &str, title: &str) -> std::io::Result<()> {
        let md = format!("# {title}\n\n{}", self.to_markdown());
        println!("{md}");
        write_result_file(&format!("{stem}.md"), &md)?;
        write_result_file(&format!("{stem}.csv"), &self.to_csv())?;
        Ok(())
    }
}

/// Formats a ratio like the paper's tables (2 decimals), with `-` for
/// invalid entries.
pub fn fmt_ratio(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.2}"),
        None => "-".into(),
    }
}

/// Checks that `path` exists (used by smoke tests).
pub fn exists(path: &Path) -> bool {
    path.exists()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["1", "2.50"]).unwrap();
        let md = t.to_markdown();
        assert!(md.contains("| a | b"), "{md}");
        assert!(md.contains("| 1 | 2.50 |"), "{md}");
        assert!(md.lines().nth(1).unwrap().starts_with("|--"), "{md}");
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new(vec!["name", "v"]);
        t.push_row(vec!["a,b", "1"]).unwrap();
        assert!(t.to_csv().contains("\"a,b\",1"));
    }

    #[test]
    fn row_width_mismatch_is_a_typed_error() {
        let mut t = Table::new(vec!["a", "b"]);
        let err = t.push_row(vec!["only-one"]).unwrap_err();
        assert_eq!(
            err,
            ReportError::RowWidthMismatch {
                expected: 2,
                got: 1,
                row_index: 0,
            }
        );
        assert!(err.to_string().contains("2 columns"));
        assert!(t.is_empty(), "failed row must not be committed");
        // And it converts into io::Error for `?` in emit() pipelines.
        let io: std::io::Error = err.into();
        assert_eq!(io.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn fmt_ratio_dash() {
        assert_eq!(fmt_ratio(None), "-");
        assert_eq!(fmt_ratio(Some(1.3333)), "1.33");
    }
}
