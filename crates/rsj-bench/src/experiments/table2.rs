//! Table 2: normalized expected costs of the seven heuristics on the nine
//! Table 1 distributions under RESERVATIONONLY.

use crate::report::{fmt_ratio, Table};
use crate::scenarios::{heuristic_suite, paper_distributions, Fidelity};
use rand::SeedableRng;
use rsj_core::{draw_samples, expected_cost_monte_carlo, CostModel};
use rsj_par::Parallelism;

/// One distribution's row: heuristic name → normalized cost (None when the
/// heuristic failed to produce a sequence).
#[derive(Debug, Clone)]
pub struct Row {
    /// Distribution label.
    pub distribution: String,
    /// `(heuristic, Ẽ(S)/E°)` pairs in suite order.
    pub costs: Vec<(String, Option<f64>)>,
}

/// Computes the Table 2 data. Every heuristic for one distribution is
/// scored on the same `N` Monte-Carlo samples (common random numbers).
pub fn compute(fidelity: Fidelity, seed: u64) -> Vec<Row> {
    let cost = CostModel::reservation_only();
    let dists = paper_distributions();
    Parallelism::current().par_map(&dists, |i, nd| {
        let suite = heuristic_suite(fidelity, seed.wrapping_add(i as u64));
        let mut rng =
            rand::rngs::StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(i as u64));
        let samples = draw_samples(nd.dist.as_ref(), fidelity.samples(), &mut rng);
        let omniscient = cost.omniscient(nd.dist.as_ref());
        let costs = suite
            .iter()
            .map(|h| {
                let ratio = h
                    .sequence(nd.dist.as_ref(), &cost)
                    .ok()
                    .map(|seq| expected_cost_monte_carlo(&seq, &cost, &samples) / omniscient);
                (h.name().to_string(), ratio)
            })
            .collect();
        Row {
            distribution: nd.name.to_string(),
            costs,
        }
    })
}

/// Renders the paper's layout: each non-brute-force column shows the
/// normalized cost with its ratio to Brute-Force in brackets.
pub fn render(rows: &[Row]) -> Result<Table, crate::report::ReportError> {
    let mut header = vec!["Distribution".to_string()];
    if let Some(first) = rows.first() {
        header.extend(first.costs.iter().map(|(n, _)| n.clone()));
    }
    let mut table = Table::new(header);
    for row in rows {
        let brute = row.costs[0].1;
        let mut cells = vec![row.distribution.clone()];
        for (i, (_, ratio)) in row.costs.iter().enumerate() {
            if i == 0 {
                cells.push(fmt_ratio(*ratio));
            } else {
                match (*ratio, brute) {
                    (Some(r), Some(b)) if b > 0.0 => cells.push(format!("{r:.2} ({:.2})", r / b)),
                    _ => cells.push(fmt_ratio(*ratio)),
                }
            }
        }
        table.push_row(cells)?;
    }
    Ok(table)
}

/// Runs the experiment and writes `results/table2.{md,csv}`.
pub fn emit(fidelity: Fidelity, seed: u64) -> std::io::Result<Vec<Row>> {
    let rows = compute(fidelity, seed);
    render(&rows)?.emit(
        "table2",
        "Table 2 — normalized expected costs, RESERVATIONONLY (values in brackets: vs Brute-Force)",
    )?;
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_has_expected_shape_and_sane_values() {
        let rows = compute(Fidelity::Quick, 7);
        assert_eq!(rows.len(), 9);
        for row in &rows {
            assert_eq!(row.costs.len(), 7);
            for (h, ratio) in &row.costs {
                let r = ratio.unwrap_or_else(|| panic!("{}/{h} missing", row.distribution));
                // All ratios are ≥ ~1 and below the AWS break-even 4
                // (Table 2's headline observation), with slack for the
                // reduced quick fidelity.
                assert!(r > 0.95 && r < 5.0, "{}/{}: ratio {r}", row.distribution, h);
            }
        }
    }

    #[test]
    fn uniform_row_matches_theorem4() {
        let rows = compute(Fidelity::Quick, 7);
        let uniform = rows.iter().find(|r| r.distribution == "Uniform").unwrap();
        // Brute-Force, Equal-time and Equal-probability all find (b):
        // normalized cost 4/3 up to Monte-Carlo noise.
        for idx in [0, 5, 6] {
            let (name, ratio) = &uniform.costs[idx];
            let r = ratio.unwrap();
            assert!((r - 4.0 / 3.0).abs() < 0.05, "{name}: {r}");
        }
    }

    #[test]
    fn brute_force_is_best_or_close_analytically() {
        // Table 2's bracketed values are ≥ 1: Brute-Force wins. The MC
        // estimator is noisy for heavy-tailed laws (its Pareto variance is
        // dominated by rare tail samples), so the property is checked with
        // an analytically-scored Brute-Force against the exact Eq. 4
        // series of every heuristic.
        use crate::scenarios::paper_distributions;
        use rsj_core::normalized_cost_analytic;
        let cost = CostModel::reservation_only();
        for (i, nd) in paper_distributions().iter().enumerate() {
            let mut suite = crate::scenarios::heuristic_suite(Fidelity::Quick, 7 + i as u64);
            suite[0] = Box::new(
                rsj_core::BruteForce::new(400, 1000, rsj_core::EvalMethod::Analytic, 7).unwrap(),
            );
            let ratios: Vec<f64> = suite
                .iter()
                .map(|h| {
                    let seq = h.sequence(nd.dist.as_ref(), &cost).unwrap();
                    normalized_cost_analytic(&seq, nd.dist.as_ref(), &cost)
                })
                .collect();
            let brute = ratios[0];
            for (h, r) in suite.iter().zip(&ratios).skip(1) {
                assert!(
                    *r > brute * 0.98,
                    "{}: {} {r} vs brute {brute}",
                    nd.name,
                    h.name()
                );
            }
        }
    }

    #[test]
    fn render_shape() {
        let rows = compute(Fidelity::Quick, 7);
        let t = render(&rows).unwrap();
        assert_eq!(t.len(), 9);
        let md = t.to_markdown();
        assert!(md.contains("Brute-Force"));
        assert!(md.contains("("));
    }
}
