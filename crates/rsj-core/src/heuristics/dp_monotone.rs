//! O(n log n) fast path for the Theorem 5 backward pass (system S26).
//!
//! ## Why the recurrence is totally monotone
//!
//! Writing the unnormalized candidate cost of picking reservation `j` at
//! state `i` the way `dp.rs` does,
//!
//! ```text
//! cand(i, j) = (α·vⱼ + γ)·sᵢ + β·(a_{j+1} − aᵢ) + β·vⱼ·s_{j+1} + w_{j+1}
//! ```
//!
//! every term is either a function of `j` alone, of `i` alone (`−β·aᵢ`,
//! which shifts all candidates of a state equally and cannot change the
//! argmin), or the product `slope(j)·sᵢ` with `slope(j) = α·vⱼ + γ`. Each
//! candidate is therefore an affine function of the query point `x = sᵢ`,
//! and the per-state minimization is a lower-envelope-of-lines query.
//! Because support values are strictly increasing and `α ≥ 0`, slopes are
//! nondecreasing in `j`; because suffix masses are non-increasing in `i`,
//! the backward pass queries nondecreasing `x`. This is exactly the
//! concave least-weight-subsequence structure (the quadrangle inequality
//! holds *by algebra* — a proven sufficient condition, not an empirical
//! sample of matrix rows), so the Hirschberg–Larmore / Galil–Giancarlo
//! deque of candidate intervals solves all `n` minimizations in
//! `O(n log n)` comparisons.
//!
//! ## Bit-identity discipline
//!
//! The serial `O(n²)` scan compares *floating-point* candidate values and
//! keeps the leftmost `j` on exact ties. This module reproduces those
//! decisions rather than approximating them:
//!
//! * every comparison evaluates `cand(p, ·)` with the **identical
//!   expression and operation order** as the serial scan, so the numbers
//!   compared are the very bits the serial scan would compare;
//! * `beats(c, d, p)` (with `c < d`) is `cand(p, c) ≤ cand(p, d)` — an
//!   exact tie is decided in favour of the smaller index, matching the
//!   serial scan's strict-`<` update rule;
//! * whenever a comparison is too close to call — the relative difference
//!   is within [`MONOTONE_MARGIN`], where rounding could order the floats
//!   differently from the envelope's real-arithmetic reasoning — or any
//!   candidate is non-finite, the fast path **aborts** and the caller
//!   falls back to the exact pass, which is correct by definition;
//! * `w[i]` is computed by re-evaluating `cand(i, winner)`, so the stored
//!   value is the same expression the serial scan stores.
//!
//! The equivalence suite (`tests/dp_monotone_equivalence.rs`) and the CI
//! `perf-smoke` digest diff enforce the guarantee end to end.

use super::dp::DP_CANCEL_STRIDE;
use crate::cancel::CancelToken;
use crate::cost::CostModel;
use crate::error::Result;
use std::collections::VecDeque;

/// Relative margin below which a cross-candidate comparison is considered
/// too close to trust. f64 evaluation of one candidate is accurate to a
/// few ulps (~1e-16 relative); 1e-12 leaves four orders of magnitude of
/// headroom while staying far below the spacing of genuinely distinct
/// candidates on real grids, so spurious aborts are rare. Exact ties
/// (difference of 0.0) are *not* aborts — they are decided leftmost, the
/// same way the serial scan decides them.
const MONOTONE_MARGIN: f64 = 1e-12;

/// A successful fast-path solve: the unnormalized value table `w`
/// (`w[i] = E*ᵢ·Sᵢ`, length `n + 1`), the per-state argmin `choice`, and
/// the number of candidate evaluations performed (the `O(n log n)` work
/// counter recorded as `rsj_core_dp_monotone_evals_total`).
pub(super) struct MonotoneSolve {
    pub w: Vec<f64>,
    pub choice: Vec<usize>,
    pub evals: u64,
}

/// The runtime gate: `O(n)` verification of the sufficient condition the
/// envelope argument needs — finite strictly increasing values, finite
/// nonnegative masses, finite non-increasing suffix masses and a finite
/// cost model with `α ≥ 0`. Inputs built through [`DiscreteDistribution`]
/// and [`CostModel`] always satisfy this; the gate re-checks the raw
/// arrays so the fast path never *assumes* upstream validation (and so
/// tests can hand it adversarial slices directly).
///
/// [`DiscreteDistribution`]: rsj_dist::DiscreteDistribution
pub fn monotone_gate(values: &[f64], probs: &[f64], suffix: &[f64], cost: &CostModel) -> bool {
    let n = values.len();
    if n == 0 || probs.len() != n || suffix.len() != n + 1 {
        return false;
    }
    if !(cost.alpha.is_finite() && cost.beta.is_finite() && cost.gamma.is_finite())
        || cost.alpha < 0.0
    {
        return false;
    }
    let mut prev = f64::NEG_INFINITY;
    for &v in values {
        if !v.is_finite() || v <= prev {
            return false;
        }
        prev = v;
    }
    if probs.iter().any(|&f| !f.is_finite() || f < 0.0) {
        return false;
    }
    let mut prev = f64::INFINITY;
    for &s in suffix {
        if !s.is_finite() || s > prev {
            return false;
        }
        prev = s;
    }
    true
}

/// One contiguous block of *future query states* `[lo, hi]` on which the
/// line `j` is the current envelope minimum. The deque holds segments in
/// increasing-state order; together they partition the states not yet
/// queried.
struct Seg {
    j: usize,
    lo: usize,
    hi: usize,
}

/// Attempts the fast path. `Ok(None)` means the gate declined or a
/// comparison hit the margin/finiteness abort — the caller must run the
/// exact pass. `Ok(Some(..))` is bit-identical to what the exact pass
/// would produce (see the module docs for the discipline that makes this
/// hold and the test suite that enforces it).
pub(super) fn try_solve(
    v: &[f64],
    f: &[f64],
    s: &[f64],
    a: &[f64],
    cost: &CostModel,
    cancel: &CancelToken,
) -> Result<Option<MonotoneSolve>> {
    if !monotone_gate(v, f, s, cost) {
        return Ok(None);
    }
    let n = v.len();
    let mut w = vec![0.0; n + 1];
    let mut choice = vec![0usize; n];
    let mut evals: u64 = 0;

    // The exact pass's candidate expression, verbatim: same ops, same
    // order, so every number compared or stored here is the number the
    // serial scan would have produced.
    let cand_at = |w: &[f64], i: usize, j: usize| {
        (cost.alpha * v[j] + cost.gamma) * s[i]
            + cost.beta * (a[j + 1] - a[i])
            + cost.beta * v[j] * s[j + 1]
            + w[j + 1]
    };
    // Does line `c` win against line `d` (c < d) at state `p`, in the
    // serial scan's float-level sense? `None` = too close to call.
    let beats = |w: &[f64], evals: &mut u64, c: usize, d: usize, p: usize| -> Option<bool> {
        let ca = cand_at(w, p, c);
        let cd = cand_at(w, p, d);
        *evals += 2;
        if !ca.is_finite() || !cd.is_finite() {
            return None;
        }
        let delta = ca - cd;
        if delta == 0.0 {
            return Some(true); // exact tie → leftmost index, like the serial scan
        }
        if delta.abs() <= MONOTONE_MARGIN * ca.abs().max(cd.abs()) {
            return None;
        }
        Some(delta < 0.0)
    };

    let mut dq: VecDeque<Seg> = VecDeque::with_capacity(64);
    for i in (0..n).rev() {
        if (n - i).is_multiple_of(DP_CANCEL_STRIDE) {
            cancel.check()?;
        }
        // Insert line c = i. It has the smallest slope so far, so it wins
        // on a (possibly empty) prefix [0, h] of the remaining states:
        // pop front segments it beats outright, then binary-search the
        // boundary inside the first surviving segment.
        let c = i;
        loop {
            let Some(front) = dq.front_mut() else {
                dq.push_front(Seg { j: c, lo: 0, hi: i });
                break;
            };
            match beats(&w, &mut evals, c, front.j, front.hi) {
                None => return Ok(None),
                Some(true) => {
                    dq.pop_front();
                }
                Some(false) => {
                    // c loses at front.hi; find the largest state in
                    // [front.lo, front.hi) where it still wins, if any.
                    let (mut lo, mut hi) = (front.lo, front.hi);
                    while lo < hi {
                        let mid = lo + (hi - lo) / 2;
                        match beats(&w, &mut evals, c, front.j, mid) {
                            None => return Ok(None),
                            Some(true) => lo = mid + 1,
                            Some(false) => hi = mid,
                        }
                    }
                    // `lo` is the first state where c loses; states below
                    // it (including any range freed by the pops above)
                    // belong to c.
                    if lo > 0 {
                        front.lo = lo;
                        dq.push_front(Seg {
                            j: c,
                            lo: 0,
                            hi: lo - 1,
                        });
                    }
                    break;
                }
            }
        }

        // Query state i: the deque partitions [0, i], so the back segment
        // contains i and its line is the envelope minimum there.
        let back = dq.back().expect("deque partitions [0, i]");
        debug_assert!(back.lo <= i && i <= back.hi);
        let winner = back.j;
        let best = cand_at(&w, i, winner);
        evals += 1;
        if !best.is_finite() {
            // The serial scan would propagate this non-finite value into
            // every later comparison; don't try to reproduce that here.
            return Ok(None);
        }
        w[i] = best;
        choice[i] = winner;

        // State i will never be queried again: shrink the partition to
        // [0, i-1].
        if let Some(back) = dq.back_mut() {
            if back.lo == i {
                dq.pop_back();
            } else {
                back.hi = i - 1;
            }
        }
    }

    Ok(Some(MonotoneSolve { w, choice, evals }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_accepts_valid_and_rejects_broken_arrays() {
        let cost = CostModel::reservation_only();
        let v = [1.0, 2.0, 4.0];
        let f = [0.5, 0.3, 0.2];
        let s = [1.0, 0.5, 0.2, 0.0];
        assert!(monotone_gate(&v, &f, &s, &cost));
        // Non-increasing values break the slope ordering.
        assert!(!monotone_gate(&[1.0, 1.0, 4.0], &f, &s, &cost));
        assert!(!monotone_gate(&[4.0, 2.0, 1.0], &f, &s, &cost));
        // Non-monotone suffix masses break the query ordering.
        assert!(!monotone_gate(&v, &f, &[0.2, 0.5, 1.0, 0.0], &cost));
        // Non-finite entries anywhere decline.
        assert!(!monotone_gate(&[1.0, f64::NAN, 4.0], &f, &s, &cost));
        assert!(!monotone_gate(&v, &[0.5, f64::INFINITY, 0.2], &s, &cost));
        // Mismatched shapes decline.
        assert!(!monotone_gate(&v, &f[..2], &s, &cost));
        assert!(!monotone_gate(&[], &[], &[0.0], &cost));
    }
}
