//! Runs the fault-injection ablation (beyond the paper's own evaluation).

use rsj_bench::scenarios::Fidelity;
use rsj_bench::DEFAULT_SEED;

fn main() -> std::io::Result<()> {
    let fidelity = Fidelity::from_env();
    eprintln!(
        "running ablation_faults at {fidelity:?} fidelity (RSJ_FIDELITY=quick for a fast pass)"
    );
    rsj_bench::experiments::ablation_faults::emit(fidelity, DEFAULT_SEED)?;
    Ok(())
}
