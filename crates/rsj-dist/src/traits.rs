//! The [`ContinuousDistribution`] trait: the contract every job-runtime
//! distribution must satisfy for the reservation machinery of `rsj-core`.
//!
//! The paper assumes (§2.3) smooth nonnegative distributions with finite
//! expectation, supported either on `[a, b]` or `[a, ∞)` with `a ≥ 0`.

use crate::quadrature;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Support of a job-runtime distribution (paper §2.1): either a finite
/// interval `[a, b]` with `0 ≤ a < b`, or a half-line `[a, ∞)` with `0 ≤ a`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Support {
    /// Finite support `[lower, upper]`.
    Bounded {
        /// Left endpoint `a ≥ 0`.
        lower: f64,
        /// Right endpoint `b > a`.
        upper: f64,
    },
    /// Infinite support `[lower, ∞)`.
    Unbounded {
        /// Left endpoint `a ≥ 0`.
        lower: f64,
    },
}

impl Support {
    /// Left endpoint of the support.
    pub fn lower(&self) -> f64 {
        match *self {
            Support::Bounded { lower, .. } | Support::Unbounded { lower } => lower,
        }
    }

    /// Right endpoint, or `None` for unbounded distributions.
    pub fn upper(&self) -> Option<f64> {
        match *self {
            Support::Bounded { upper, .. } => Some(upper),
            Support::Unbounded { .. } => None,
        }
    }

    /// Whether the support is a finite interval.
    pub fn is_bounded(&self) -> bool {
        matches!(self, Support::Bounded { .. })
    }

    /// Whether `t` lies inside the support (inclusive).
    pub fn contains(&self, t: f64) -> bool {
        match *self {
            Support::Bounded { lower, upper } => (lower..=upper).contains(&t),
            Support::Unbounded { lower } => t >= lower,
        }
    }
}

/// A smooth, nonnegative continuous probability distribution modelling the
/// execution time of a stochastic job.
///
/// Implementors provide the density `f`, CDF `F`, quantile `Q`, the first two
/// moments and — crucially for the Mean-by-Mean heuristic (Appendix B) — the
/// conditional expectation `E[X | X > τ]`. Default implementations fall back
/// on numeric quadrature and inverse-transform sampling; every concrete
/// distribution in this crate overrides them with the closed forms of
/// Table 5 / Appendix B.
///
/// The trait is object-safe: `rsj-core` consumes `&dyn ContinuousDistribution`.
pub trait ContinuousDistribution: Send + Sync + std::fmt::Debug {
    /// Human-readable name including parameters, e.g. `Weibull(λ=1, κ=0.5)`.
    fn name(&self) -> String;

    /// The support of the distribution.
    fn support(&self) -> Support;

    /// Probability density function `f(t)`. Zero outside the support.
    fn pdf(&self, t: f64) -> f64;

    /// Cumulative distribution function `F(t) = P(X ≤ t)`.
    fn cdf(&self, t: f64) -> f64;

    /// Quantile function `Q(p) = inf{t | F(t) ≥ p}` for `p ∈ [0, 1]`.
    fn quantile(&self, p: f64) -> f64;

    /// Expected value `E[X]` (finite by standing assumption).
    fn mean(&self) -> f64;

    /// Variance `Var[X]` (finite by the assumption of Theorem 2).
    fn variance(&self) -> f64;

    /// Survival function `P(X ≥ t) = 1 - F(t)`.
    ///
    /// Override when a direct form avoids cancellation in the tail (the
    /// expected-cost series of Eq. 4 sums many tail probabilities).
    fn survival(&self, t: f64) -> f64 {
        (1.0 - self.cdf(t)).clamp(0.0, 1.0)
    }

    /// Evaluates `F` at every point of a grid, slice-in/slice-out.
    ///
    /// Bit-identical to calling [`cdf`](Self::cdf) point by point — the
    /// default *is* that loop, and overrides must preserve it (the
    /// `EvalTable` bit-identity tests enforce this for the grid pipeline).
    /// The win is dispatch: through `&dyn ContinuousDistribution` the
    /// default method is monomorphized per implementor, so the inner
    /// `self.cdf` call devirtualizes and inlines — one virtual call per
    /// *grid* instead of one per point.
    ///
    /// # Panics
    /// Panics if `points` and `out` differ in length.
    fn cdf_batch(&self, points: &[f64], out: &mut [f64]) {
        assert_eq!(
            points.len(),
            out.len(),
            "cdf_batch: points/out length mismatch"
        );
        for (o, &p) in out.iter_mut().zip(points) {
            *o = self.cdf(p);
        }
    }

    /// Evaluates the survival function at every point of a grid,
    /// slice-in/slice-out. Same contract as [`cdf_batch`](Self::cdf_batch):
    /// bit-identical to the per-point [`survival`](Self::survival) calls,
    /// with the virtual dispatch hoisted out of the loop.
    ///
    /// # Panics
    /// Panics if `points` and `out` differ in length.
    fn survival_batch(&self, points: &[f64], out: &mut [f64]) {
        assert_eq!(
            points.len(),
            out.len(),
            "survival_batch: points/out length mismatch"
        );
        for (o, &p) in out.iter_mut().zip(points) {
            *o = self.survival(p);
        }
    }

    /// Standard deviation `σ`.
    fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Second raw moment `E[X²] = Var[X] + E[X]²`.
    fn second_moment(&self) -> f64 {
        let m = self.mean();
        self.variance() + m * m
    }

    /// Median `Q(1/2)`.
    fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Conditional expectation `E[X | X > τ]` (Appendix B, Eq. 14).
    ///
    /// For `τ` below the support this is the unconditional mean. The default
    /// integrates the survival function:
    /// `E[X | X > τ] = τ + ∫_τ^{sup} P(X ≥ t) dt / P(X ≥ τ)`.
    fn conditional_mean_above(&self, tau: f64) -> f64 {
        let support = self.support();
        if tau <= support.lower() {
            return self.mean();
        }
        let s_tau = self.survival(tau);
        if s_tau <= 0.0 {
            // Conditioning on a null event; return the essential supremum.
            return support.upper().unwrap_or(tau);
        }
        let integral = match support.upper() {
            Some(b) => quadrature::integrate(|t| self.survival(t), tau, b, 1e-12).value,
            None => quadrature::integrate_to_inf(|t| self.survival(t), tau, 1e-12).value,
        };
        tau + integral / s_tau
    }

    /// A string that uniquely identifies this distribution (law *and*
    /// parameters) for process-wide memoization, or `None` when no
    /// faithful key exists.
    ///
    /// Caching is opt-in: the default is `None` because a display name
    /// that truncates parameters (e.g. an empirical law showing only its
    /// knot count) would silently alias distinct distributions. Types
    /// whose `name()` round-trips every parameter — the nine parametric
    /// laws of Table 1 — override this with `Some(self.name())`, which is
    /// faithful because Rust's `{}` formatting of `f64` is
    /// shortest-roundtrip.
    fn cache_key(&self) -> Option<String> {
        None
    }

    /// Draws one execution time by inverse-transform sampling.
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        // `gen` yields a uniform in [0, 1); Q(0) is the support's lower end.
        let u: f64 = rand::Rng::gen(rng);
        self.quantile(u)
    }
}

/// Draws `n` samples into a vector (helper shared by evaluators and tests).
pub fn sample_n(dist: &dyn ContinuousDistribution, n: usize, rng: &mut dyn RngCore) -> Vec<f64> {
    (0..n).map(|_| dist.sample(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_accessors() {
        let b = Support::Bounded {
            lower: 1.0,
            upper: 4.0,
        };
        assert_eq!(b.lower(), 1.0);
        assert_eq!(b.upper(), Some(4.0));
        assert!(b.is_bounded());
        assert!(b.contains(1.0) && b.contains(4.0) && !b.contains(4.1));

        let u = Support::Unbounded { lower: 0.5 };
        assert_eq!(u.lower(), 0.5);
        assert_eq!(u.upper(), None);
        assert!(!u.is_bounded());
        assert!(u.contains(1e12) && !u.contains(0.4));
    }
}
