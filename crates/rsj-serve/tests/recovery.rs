//! Crash-recovery integration tests: a real `kill -9` mid-load, seeded
//! journal corruption, snapshot compaction, and the not-ready window.
//!
//! The kill test follows the self-exec pattern: the parent test re-runs
//! this test binary as a child process (targeting the env-gated, ignored
//! `child_server_process` entry below), which runs a durable server in
//! the foreground. The parent drives load through it, SIGKILLs it with no
//! warning, restarts a server on the same journal directory in-process,
//! and asserts every answered request is a warm cache hit with a digest
//! bit-identical to the offline solver.
//!
//! Tests asserting on the process-global metrics registry serialize on
//! [`registry_lock`].

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use reservation_strategies::Planner;
use rsj_core::SolverSpec;
use rsj_dist::{DiscretizationScheme, DistSpec};
use rsj_serve::journal::{frame_spans, read_log_bytes, JOURNAL_FILE};
use rsj_serve::{
    Client, CorruptionPolicy, DurabilityConfig, ErrorKind, Request, Response, Server, ServerConfig,
};

fn registry_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rsj_recovery_{}_{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A distinct, fast DP request per index — deterministic, cacheable, and
/// reproducible offline for digest comparison.
fn dp_request(i: usize) -> Request {
    Request::plan_with(dist_for(i), dp_solver())
}

fn dist_for(i: usize) -> DistSpec {
    DistSpec::LogNormal {
        mu: 1.5 + 0.05 * i as f64,
        sigma: 0.6,
    }
}

fn dp_solver() -> SolverSpec {
    SolverSpec::Dp {
        scheme: DiscretizationScheme::EqualProbability,
        n: 200,
        epsilon: 1e-6,
        monotone: true,
    }
}

/// The same plan computed offline through the facade: the ground truth a
/// served (or recovered) plan must match bit for bit.
fn offline_digest(i: usize) -> String {
    Planner::builder()
        .distribution(dist_for(i))
        .solver(dp_solver())
        .build()
        .expect("planner")
        .plan()
        .expect("offline plan")
        .digest
}

fn spawn_durable_server(
    dir: &Path,
    snapshot_every: u64,
    recovery_delay: Option<Duration>,
) -> (
    SocketAddr,
    rsj_serve::ShutdownHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let config = ServerConfig {
        durability: Some(DurabilityConfig {
            dir: dir.to_path_buf(),
            snapshot_every,
            fsync: false,
            recovery_delay,
        }),
        ..ServerConfig::default()
    };
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

fn wait_until_ready(addr: SocketAddr, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        if let Ok(mut client) = Client::connect(addr) {
            if client.ready().unwrap_or(false) {
                return;
            }
        }
        assert!(Instant::now() < deadline, "server never became ready");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn plan_digest_and_cached(response: &Response) -> (String, bool) {
    match response {
        Response::Plan {
            plan, provenance, ..
        } => (plan.digest.clone(), provenance.cached),
        other => panic!("expected a plan, got {other:?}"),
    }
}

/// Child-process entry for the kill -9 test: runs a durable server in the
/// foreground until killed. Gated on an env var so `cargo test` never
/// runs it directly (`#[ignore]` keeps it out of the default set too).
#[test]
#[ignore = "child-process entry point for kill_neg9_mid_load_then_warm_restart"]
fn child_server_process() {
    let Ok(dir) = std::env::var("RSJ_RECOVERY_CHILD_DIR") else {
        return;
    };
    let config = ServerConfig {
        durability: Some(DurabilityConfig::new(&dir)),
        ..ServerConfig::default()
    };
    let server = Server::bind(config).expect("child bind");
    let addr = server.local_addr();
    // Atomic publish of the address: write to a temp name, then rename,
    // so the parent never reads a half-written line.
    let tmp = Path::new(&dir).join("addr.tmp");
    std::fs::write(&tmp, addr.to_string()).expect("write addr");
    std::fs::rename(&tmp, Path::new(&dir).join("addr.txt")).expect("publish addr");
    // Runs until SIGKILL.
    server.run().expect("child server");
}

/// The acceptance-criteria test: `kill -9` a serving process mid-load,
/// restart on the same journal dir, and require readiness, warm hits, and
/// bit-identical digests vs the offline solver.
#[test]
fn kill_neg9_mid_load_then_warm_restart() {
    let _guard = registry_lock();
    let dir = temp_dir("kill9");

    // Re-exec this test binary at the child entry point.
    let exe = std::env::current_exe().expect("current exe");
    let mut child = std::process::Command::new(exe)
        .args([
            "child_server_process",
            "--exact",
            "--ignored",
            "--nocapture",
        ])
        .env("RSJ_RECOVERY_CHILD_DIR", &dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child server");

    // Wait for the child to publish its address.
    let addr_path = dir.join("addr.txt");
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr: SocketAddr = loop {
        if let Ok(text) = std::fs::read_to_string(&addr_path) {
            if let Ok(addr) = text.trim().parse() {
                break addr;
            }
        }
        assert!(
            Instant::now() < deadline,
            "child never published an address"
        );
        std::thread::sleep(Duration::from_millis(25));
    };

    // Drive load: solve N distinct plans, remembering what the client was
    // told. Everything answered is journaled (append-before-response).
    const PLANS: usize = 6;
    let mut answered = Vec::new();
    {
        let mut client = Client::connect(addr).expect("connect to child");
        client
            .set_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        for i in 0..PLANS {
            let response = client.call(&dp_request(i)).expect("plan");
            let (digest, _) = plan_digest_and_cached(&response);
            answered.push((i, digest));
        }
    }
    assert_eq!(answered.len(), PLANS);

    // SIGKILL, mid-operation, no drain, no flush beyond the per-append
    // OS flush. The journal must already hold every answered plan.
    child.kill().expect("kill -9 the child");
    let _ = child.wait();

    // Restart on the same directory, in-process this time.
    let (addr, handle, join) = spawn_durable_server(&dir, 64, None);
    wait_until_ready(addr, Duration::from_secs(30));

    let mut client = Client::connect(addr).expect("connect to restarted server");
    client
        .set_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");

    // Readiness flipped, and recovery reports the journaled plans.
    let health = client.health().expect("health");
    assert!(health.ready && health.recovered, "{health:?}");
    let recovery = health.recovery.expect("recovery stats present");
    assert_eq!(
        recovery.recovered_records, PLANS as u64,
        "every answered plan must survive kill -9: {recovery:?}"
    );
    assert_eq!(recovery.corrupt_records, 0, "{recovery:?}");

    // Every previously answered key is a warm cache hit, and every digest
    // is bit-identical to both what the client was told pre-crash and the
    // offline solver's answer.
    for (i, pre_crash_digest) in &answered {
        let response = client.call(&dp_request(*i)).expect("warm plan");
        let (digest, cached) = plan_digest_and_cached(&response);
        assert!(cached, "plan {i} was not served from the recovered cache");
        assert_eq!(&digest, pre_crash_digest, "plan {i} digest drifted");
        assert_eq!(digest, offline_digest(*i), "plan {i} differs from offline");
    }

    handle.signal();
    let _ = Client::connect(addr); // poke the accept loop
    join.join().expect("server thread").expect("clean exit");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Seeded corruption injector over a real journal: recovery must skip
/// damaged records with typed faults (counted, never a panic) while every
/// record the corruption left intact still becomes a warm hit.
#[test]
fn seeded_corruption_is_skipped_counted_and_survivors_recovered() {
    let _guard = registry_lock();
    let dir = temp_dir("corrupt");

    // Build a journal by serving plans, then drain cleanly.
    const PLANS: usize = 6;
    {
        let (addr, handle, join) = spawn_durable_server(&dir, 0, None);
        wait_until_ready(addr, Duration::from_secs(30));
        let mut client = Client::connect(addr).expect("connect");
        client
            .set_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        for i in 0..PLANS {
            client.call(&dp_request(i)).expect("plan");
        }
        handle.signal();
        let _ = Client::connect(addr);
        join.join().expect("server thread").expect("clean exit");
    }

    // Corrupt it with the seeded injector: every op a pure function of
    // (seed, index), so a failure here replays exactly.
    let journal_path = dir.join(JOURNAL_FILE);
    let bytes = read_log_bytes(&journal_path).expect("read journal");
    assert!(!bytes.is_empty(), "journal should hold {PLANS} records");
    let spans = frame_spans(&bytes);
    assert_eq!(spans.len(), PLANS);
    let policy = CorruptionPolicy::new(20190520);
    let damaged = policy.corrupt(&bytes, &spans, 3);
    assert_ne!(damaged, bytes, "3 seeded ops must change the stream");
    std::fs::write(&journal_path, &damaged).expect("write damaged journal");

    // Restart over the damaged journal: no panic, typed skips, counted.
    let (addr, handle, join) = spawn_durable_server(&dir, 64, None);
    wait_until_ready(addr, Duration::from_secs(30));
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let health = client.health().expect("health");
    let recovery = health.recovery.expect("recovery stats");
    assert!(
        recovery.recovered_records + recovery.corrupt_records > 0,
        "{recovery:?}"
    );

    // Every plan the injector's damage spared must be a warm hit with the
    // offline digest; damaged ones recompute (a miss, not an error).
    let mut warm = 0usize;
    for i in 0..PLANS {
        let response = client.call(&dp_request(i)).expect("plan after damage");
        let (digest, cached) = plan_digest_and_cached(&response);
        assert_eq!(digest, offline_digest(i), "plan {i} digest must match");
        if cached {
            warm += 1;
        }
    }
    assert!(
        warm >= recovery.recovered_records.min(PLANS as u64) as usize,
        "recovered records should serve warm: warm={warm}, {recovery:?}"
    );

    handle.signal();
    let _ = Client::connect(addr);
    join.join().expect("server thread").expect("clean exit");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Snapshot compaction: with a small `snapshot_every`, serving enough
/// plans must produce a snapshot and truncate the journal; a restart
/// recovers from the snapshot (plus tail) and reports it in `health`.
#[test]
fn snapshot_compaction_bounds_the_journal_and_recovers() {
    let _guard = registry_lock();
    let dir = temp_dir("compact");

    const PLANS: usize = 10;
    {
        let (addr, handle, join) = spawn_durable_server(&dir, 4, None);
        wait_until_ready(addr, Duration::from_secs(30));
        let mut client = Client::connect(addr).expect("connect");
        client
            .set_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        for i in 0..PLANS {
            client.call(&dp_request(i)).expect("plan");
        }
        handle.signal();
        let _ = Client::connect(addr);
        join.join().expect("server thread").expect("clean exit");
    }

    // 10 appends at snapshot_every=4 → at least 2 compactions; the
    // journal tail holds fewer records than were served.
    let snapshots: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".snap"))
        .collect();
    assert!(!snapshots.is_empty(), "no snapshot was written");
    let tail = read_log_bytes(&dir.join(JOURNAL_FILE)).expect("read journal");
    assert!(
        frame_spans(&tail).len() < PLANS,
        "journal was never truncated by compaction"
    );

    let (addr, handle, join) = spawn_durable_server(&dir, 4, None);
    wait_until_ready(addr, Duration::from_secs(30));
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let health = client.health().expect("health");
    let recovery = health.recovery.expect("recovery stats");
    assert!(recovery.snapshot_generation.is_some(), "{recovery:?}");
    assert!(recovery.snapshot_records > 0, "{recovery:?}");
    assert!(recovery.recovered_records >= PLANS as u64, "{recovery:?}");

    // All served plans warm.
    for i in 0..PLANS {
        let response = client.call(&dp_request(i)).expect("warm plan");
        let (digest, cached) = plan_digest_and_cached(&response);
        assert!(cached, "plan {i} should be warm after compacted recovery");
        assert_eq!(digest, offline_digest(i));
    }

    handle.signal();
    let _ = Client::connect(addr);
    join.join().expect("server thread").expect("clean exit");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The not-ready window: while recovery runs, `plan` is shed with a typed
/// `not_ready`, `ready` answers not-ready, but `ping` and `health` work;
/// once recovery finishes everything flows.
#[test]
fn plan_requests_are_shed_with_not_ready_until_recovery_completes() {
    let _guard = registry_lock();
    let dir = temp_dir("notready");

    let (addr, handle, join) = spawn_durable_server(&dir, 64, Some(Duration::from_millis(600)));

    // Inside the window: liveness yes, readiness no, plan typed-shed.
    let mut client = Client::connect(addr).expect("connect during recovery");
    client
        .set_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    client.ping().expect("ping answers during recovery");
    let health = client.health().expect("health answers during recovery");
    assert!(!health.recovered, "{health:?}");
    assert!(!health.ready, "{health:?}");
    assert!(!client.ready().expect("ready answers"), "not ready yet");
    match client.call(&dp_request(0)).expect("plan answered") {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::NotReady),
        other => panic!("expected not_ready during recovery, got {other:?}"),
    }

    // After the window closes, the same connection serves plans.
    wait_until_ready(addr, Duration::from_secs(30));
    let response = client.call(&dp_request(0)).expect("plan after recovery");
    let (digest, _) = plan_digest_and_cached(&response);
    assert_eq!(digest, offline_digest(0));

    handle.signal();
    let _ = Client::connect(addr);
    join.join().expect("server thread").expect("clean exit");
    let _ = std::fs::remove_dir_all(&dir);
}
