//! The optimal-sequence recurrence of Theorem 3 / Proposition 1 (Eq. 11)
//! and its convex generalization (Appendix C, Eq. 37).
//!
//! An optimal sequence is fully determined by its first reservation `t₁`:
//! for `i ≥ 2`,
//!
//! ```text
//! tᵢ = (1 - F(tᵢ₋₂))/f(tᵢ₋₁) + (β/α)·((1 - F(tᵢ₋₁))/f(tᵢ₋₁) - tᵢ₋₁) - γ/α
//! ```
//!
//! ## Numerical reality of the recurrence
//!
//! The map `(tᵢ₋₂, tᵢ₋₁) → tᵢ` amplifies perturbations doubly
//! exponentially (for `Exp(1)`, `tᵢ = e^{tᵢ₋₁ - tᵢ₋₂}`), so even the exact
//! optimal `t₁` cannot be tracked in `f64` beyond a handful of terms: at
//! some depth the computed iterate dips below its predecessor. The paper's
//! brute force (§4.1/§5.2, Fig. 3) discards a candidate `t₁` whenever this
//! happens *before the sequence covers the Monte-Carlo evaluation horizon*
//! (`Q(1 - 1/N)` for `N` samples — their published `t₁ᵇᶠ` values are only
//! consistent with this reading). We reproduce exactly that semantics:
//!
//! 1. **Validity phase** — iterate Eq. 11 until `tᵢ ≥ Q(coverage_quantile)`
//!    (or `F(tᵢ) = 1` for bounded supports). A non-increasing step here
//!    invalidates `t₁` ([`CoreError::NonIncreasingSequence`], the Fig. 3
//!    gaps).
//! 2. **Extension phase** (unbounded supports) — keep iterating while the
//!    recurrence still increases; on breakdown switch to conditional-mean
//!    steps (`tᵢ₊₁ = E[X | X > tᵢ]`, always increasing) until
//!    `P(X ≥ tᵢ) < tail_cutoff`. The extension's cost contribution is
//!    `O(tail probability at the switch point)` and keeps both the analytic
//!    series (Eq. 4) and large Monte-Carlo runs well defined.

use crate::cost::{ConvexCost, CostModel};
use crate::error::{CoreError, Result};
use crate::sequence::ReservationSequence;
use rsj_dist::ContinuousDistribution;
use serde::{Deserialize, Serialize};

/// Tuning knobs for sequence generation from the Eq. 11 recurrence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecurrenceConfig {
    /// The sequence must increase at least until it covers this quantile of
    /// the job-time distribution; earlier breakdown invalidates `t₁`.
    /// Default `0.999`, matching the paper's `N = 1000` Monte-Carlo horizon.
    pub coverage_quantile: f64,
    /// The extension phase stops once `P(X ≥ tᵢ)` drops below this.
    pub tail_cutoff: f64,
    /// Hard cap on the number of materialized reservations.
    pub max_len: usize,
}

impl Default for RecurrenceConfig {
    fn default() -> Self {
        Self {
            coverage_quantile: 0.999,
            tail_cutoff: 1e-12,
            max_len: 100_000,
        }
    }
}

impl RecurrenceConfig {
    /// Coverage horizon matched to an `n`-sample Monte-Carlo evaluation
    /// (`Q(1 - 1/n)`).
    pub fn for_monte_carlo(n_samples: usize) -> Self {
        Self {
            coverage_quantile: 1.0 - 1.0 / n_samples.max(2) as f64,
            ..Self::default()
        }
    }
}

/// Relative slack when deciding that a reservation has reached the upper
/// end of a bounded support.
const UPPER_EPS: f64 = 1e-12;

/// One Eq. 11 step: the next reservation from the two previous ones.
fn next_affine(
    dist: &dyn ContinuousDistribution,
    cost: &CostModel,
    t_prev2: f64,
    t_prev1: f64,
) -> Option<f64> {
    let pdf = dist.pdf(t_prev1);
    if !(pdf > 0.0) || !pdf.is_finite() {
        return None;
    }
    let s_prev2 = if t_prev2 <= 0.0 {
        1.0
    } else {
        dist.survival(t_prev2)
    };
    let s_prev1 = dist.survival(t_prev1);
    let t = s_prev2 / pdf + (cost.beta / cost.alpha) * (s_prev1 / pdf - t_prev1)
        - cost.gamma / cost.alpha;
    t.is_finite().then_some(t)
}

/// One Eq. 37 step for a convex reservation cost `G`.
fn next_convex(
    dist: &dyn ContinuousDistribution,
    cost: &dyn ConvexCost,
    t_prev2: f64,
    t_prev1: f64,
) -> Option<f64> {
    let pdf = dist.pdf(t_prev1);
    if !(pdf > 0.0) || !pdf.is_finite() {
        return None;
    }
    let s_prev2 = if t_prev2 <= 0.0 {
        1.0
    } else {
        dist.survival(t_prev2)
    };
    let s_prev1 = dist.survival(t_prev1);
    let arg = cost.g_prime(t_prev1) * s_prev2 / pdf + cost.beta() * (s_prev1 / pdf - t_prev1);
    if !arg.is_finite() {
        return None;
    }
    let t = cost.g_inverse(arg);
    t.is_finite().then_some(t)
}

/// Generates the sequence characterized by `t1` via Eq. 11.
///
/// Returns [`CoreError::NonIncreasingSequence`] when the recurrence breaks
/// down before covering `coverage_quantile` — the candidate `t1` is then
/// not a plausible `t₁°` (paper §5.2).
pub fn sequence_from_t1(
    dist: &dyn ContinuousDistribution,
    cost: &CostModel,
    t1: f64,
    config: &RecurrenceConfig,
) -> Result<ReservationSequence> {
    generate(dist, t1, config, |d, p2, p1| next_affine(d, cost, p2, p1))
}

/// Generates the sequence characterized by `t1` under a convex reservation
/// cost via Eq. 37.
pub fn sequence_from_t1_convex(
    dist: &dyn ContinuousDistribution,
    cost: &dyn ConvexCost,
    t1: f64,
    config: &RecurrenceConfig,
) -> Result<ReservationSequence> {
    generate(dist, t1, config, |d, p2, p1| next_convex(d, cost, p2, p1))
}

fn generate(
    dist: &dyn ContinuousDistribution,
    t1: f64,
    config: &RecurrenceConfig,
    step: impl Fn(&dyn ContinuousDistribution, f64, f64) -> Option<f64>,
) -> Result<ReservationSequence> {
    let support = dist.support();
    let lower = support.lower();
    if !t1.is_finite() || t1 <= 0.0 || (lower > 0.0 && t1 < lower * (1.0 - UPPER_EPS)) {
        return Err(CoreError::NonIncreasingSequence {
            index: 1,
            t_prev: lower,
            t_next: t1,
        });
    }

    // Bounded support: once a reservation reaches b, the sequence is done.
    if let Some(b) = support.upper() {
        if t1 >= b * (1.0 - UPPER_EPS) {
            return ReservationSequence::single(b);
        }
    }

    let coverage_target = match support.upper() {
        Some(b) => b,
        None => dist.quantile(config.coverage_quantile),
    };

    let mut times = vec![t1];
    let mut t_prev2 = 0.0;
    let mut t_prev1 = t1;

    // Phase 1 + 2: iterate the optimal recurrence while it increases.
    let mut recurrence_alive = true;
    while times.len() < config.max_len {
        let covered = t_prev1 >= coverage_target * (1.0 - UPPER_EPS);
        if covered {
            match support.upper() {
                // Bounded and covered ⇒ complete.
                Some(_) => return ReservationSequence::new(times, true),
                // Unbounded: continue to the tail cutoff.
                None => {
                    if dist.survival(t_prev1) < config.tail_cutoff {
                        return ReservationSequence::new(times, false);
                    }
                }
            }
        }

        let candidate = if recurrence_alive {
            step(dist, t_prev2, t_prev1)
        } else {
            None
        };
        let next = match candidate {
            Some(t) if t > t_prev1 => t,
            _ if !covered => {
                // Breakdown before the validity horizon: reject t1.
                return Err(CoreError::NonIncreasingSequence {
                    index: times.len() + 1,
                    t_prev: t_prev1,
                    t_next: candidate.unwrap_or(f64::NAN),
                });
            }
            _ => {
                // Breakdown past the horizon: fall back to conditional-mean
                // extension steps, which strictly increase.
                recurrence_alive = false;
                let cm = dist.conditional_mean_above(t_prev1);
                if cm > t_prev1 * (1.0 + 1e-9) {
                    cm
                } else {
                    // Conditional-mean increments can stall numerically in
                    // extreme tails; force geometric progress.
                    t_prev1 * 1.5
                }
            }
        };

        // Clamp into a bounded support's endpoint.
        if let Some(b) = support.upper() {
            if next >= b * (1.0 - UPPER_EPS) {
                times.push(b);
                return ReservationSequence::new(times, true);
            }
        }

        times.push(next);
        t_prev2 = t_prev1;
        t_prev1 = next;
    }

    // max_len exhausted before reaching the support's end / tail cutoff.
    ReservationSequence::new(times, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::AffineConvexCost;
    use rsj_dist::{Exponential, LogNormal, Uniform};

    #[test]
    fn exponential_recurrence_matches_closed_form() {
        // RESERVATIONONLY on Exp(λ): tᵢ = e^{λ(tᵢ₋₁ - tᵢ₋₂)}/λ (§3.5).
        let d = Exponential::new(2.0).unwrap();
        let c = CostModel::reservation_only();
        let cfg = RecurrenceConfig::default();
        let s = sequence_from_t1(&d, &c, 0.74219 / 2.0, &cfg).unwrap();
        let t = s.times();
        assert!(t.len() >= 4);
        for i in 2..4 {
            let expected = (2.0 * (t[i - 1] - t[i - 2])).exp() / 2.0;
            assert!(
                (t[i] - expected).abs() < 1e-9,
                "i={i}: {} vs {expected}",
                t[i]
            );
        }
    }

    #[test]
    fn exponential_scale_invariance() {
        // The λ = 1 sequence divided by λ solves Exp(λ) (Proposition 2).
        let c = CostModel::reservation_only();
        let cfg = RecurrenceConfig::default();
        let d1 = Exponential::new(1.0).unwrap();
        let d3 = Exponential::new(3.0).unwrap();
        let s1 = sequence_from_t1(&d1, &c, 0.74219, &cfg).unwrap();
        let s3 = sequence_from_t1(&d3, &c, 0.74219 / 3.0, &cfg).unwrap();
        for (a, b) in s1.times().iter().zip(s3.times()).take(5) {
            assert!((a / 3.0 - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn rejects_bad_t1_for_uniform() {
        // Theorem 4: any t₁ < b yields t₂ = (b-a) + a·… that collapses; the
        // paper's Table 3 shows '-' for every quantile t₁.
        let d = Uniform::new(10.0, 20.0).unwrap();
        let c = CostModel::reservation_only();
        let cfg = RecurrenceConfig::default();
        for &t1 in &[12.5, 15.0, 17.5, 19.9] {
            assert!(
                sequence_from_t1(&d, &c, t1, &cfg).is_err(),
                "t1={t1} should be invalid"
            );
        }
        // t₁ = b is the optimum.
        let s = sequence_from_t1(&d, &c, 20.0, &cfg).unwrap();
        assert_eq!(s.times(), &[20.0]);
        assert!(s.is_complete());
    }

    #[test]
    fn rejects_t1_below_support() {
        let d = Uniform::new(10.0, 20.0).unwrap();
        let c = CostModel::reservation_only();
        assert!(sequence_from_t1(&d, &c, 5.0, &RecurrenceConfig::default()).is_err());
        assert!(sequence_from_t1(&d, &c, -1.0, &RecurrenceConfig::default()).is_err());
    }

    #[test]
    fn lognormal_sequence_is_increasing_and_deep() {
        let d = LogNormal::new(3.0, 0.5).unwrap();
        let c = CostModel::reservation_only();
        let cfg = RecurrenceConfig::default();
        let s = sequence_from_t1(&d, &c, 30.64, &cfg).unwrap();
        let t = s.times();
        for w in t.windows(2) {
            assert!(w[1] > w[0], "sequence must increase: {} {}", w[0], w[1]);
        }
        // The tail must be covered down to the cutoff.
        assert!(d.survival(s.last()) < 1e-11, "gap {}", d.survival(s.last()));
    }

    #[test]
    fn exponential_valid_at_optimum_with_mc_horizon() {
        // At the published s₁ ≈ 0.74219, the recurrence stays increasing
        // past Q(0.999) ≈ 6.9 (see module docs).
        let d = Exponential::new(1.0).unwrap();
        let c = CostModel::reservation_only();
        let cfg = RecurrenceConfig::for_monte_carlo(1000);
        let s = sequence_from_t1(&d, &c, 0.74219, &cfg).unwrap();
        assert!(s.last() >= d.quantile(0.999));
    }

    #[test]
    fn exponential_gap_region_is_invalid() {
        // Fig. 3(a): candidates between ~0.25 and ~0.75 break down before
        // the Monte-Carlo horizon.
        let d = Exponential::new(1.0).unwrap();
        let c = CostModel::reservation_only();
        let cfg = RecurrenceConfig::for_monte_carlo(1000);
        assert!(sequence_from_t1(&d, &c, 0.4, &cfg).is_err());
        assert!(sequence_from_t1(&d, &c, 0.6, &cfg).is_err());
    }

    #[test]
    fn convex_affine_reduces_to_affine() {
        let d = LogNormal::new(3.0, 0.5).unwrap();
        let c = CostModel::new(0.95, 1.0, 1.05).unwrap();
        let cfg = RecurrenceConfig::default();
        let plain = sequence_from_t1(&d, &c, 25.0, &cfg);
        let convex = sequence_from_t1_convex(&d, &AffineConvexCost(c), 25.0, &cfg);
        match (plain, convex) {
            (Ok(a), Ok(b)) => {
                for (x, y) in a.times().iter().zip(b.times()).take(8) {
                    assert!((x - y).abs() < 1e-8, "{x} vs {y}");
                }
            }
            (Err(_), Err(_)) => {}
            (a, b) => panic!("affine/convex disagree: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn sequence_capped_at_max_len() {
        let d = Exponential::new(1.0).unwrap();
        let c = CostModel::reservation_only();
        let cfg = RecurrenceConfig {
            max_len: 5,
            ..RecurrenceConfig::default()
        };
        let s = sequence_from_t1(&d, &c, 0.1, &cfg).unwrap();
        assert!(s.len() <= 5);
    }
}
