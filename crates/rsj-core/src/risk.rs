//! Risk profile of a reservation strategy: the full *distribution* of the
//! cost, not just its expectation.
//!
//! For a fixed sequence `S`, the cost of a job of duration `t` (Eq. 2) is
//! piecewise affine and nondecreasing in `t`: within the bracket
//! `t ∈ (tₖ₋₁, tₖ]` it equals `prefixₖ + α·tₖ + γ + β·t`, where `prefixₖ`
//! is the (deterministic) cost of the `k-1` failed reservations. The cost
//! CDF, its quantiles and tail expectations therefore have closed forms in
//! terms of the job-time distribution — no sampling needed.
//!
//! This is what a budget-constrained cloud user actually needs: not only
//! "what will a job cost on average" (Eq. 4) but "what budget covers 99%
//! of jobs" and "how bad is the worst 5%".

use crate::cost::CostModel;
use crate::eval::run_job;
use crate::sequence::ReservationSequence;
use rsj_dist::ContinuousDistribution;
use serde::{Deserialize, Serialize};

/// One affine piece of the cost function: for job times in
/// `(t_lower, t_upper]`, cost = `fixed + β·t`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostBracket {
    /// 1-based reservation index `k` that succeeds in this bracket.
    pub reservation: usize,
    /// Lower job-time bound (exclusive), `tₖ₋₁`.
    pub t_lower: f64,
    /// Upper job-time bound (inclusive), `tₖ`.
    pub t_upper: f64,
    /// Deterministic part: failed prefixes + `α·tₖ + γ`.
    pub fixed: f64,
    /// Probability that the job lands in this bracket.
    pub probability: f64,
}

impl CostBracket {
    /// Cost at the bracket's lower edge (approached from above).
    pub fn cost_low(&self, beta: f64) -> f64 {
        self.fixed + beta * self.t_lower
    }

    /// Cost at the bracket's upper edge.
    pub fn cost_high(&self, beta: f64) -> f64 {
        self.fixed + beta * self.t_upper
    }
}

/// The exact risk profile of a strategy for a given job-time law.
#[derive(Debug, Clone)]
pub struct RiskProfile {
    brackets: Vec<CostBracket>,
    beta: f64,
}

/// Builds the risk profile, materializing brackets until the tail
/// probability drops below `1e-12` (using the sequence's geometric
/// extension past its prefix if needed).
pub fn risk_profile(
    seq: &ReservationSequence,
    dist: &dyn ContinuousDistribution,
    cost: &CostModel,
) -> RiskProfile {
    let mut brackets = Vec::new();
    let mut prefix = 0.0;
    let mut t_prev = 0.0;
    let mut k = 0usize;
    loop {
        let t_k = seq.reservation(k);
        let p = (dist.survival(t_prev) - dist.survival(t_k)).max(0.0);
        if p > 0.0 {
            brackets.push(CostBracket {
                reservation: k + 1,
                t_lower: t_prev,
                t_upper: t_k,
                fixed: prefix + cost.alpha * t_k + cost.gamma,
                probability: p,
            });
        }
        if dist.survival(t_k) < 1e-12 || k > 1_000_000 {
            break;
        }
        prefix += cost.failed(t_k);
        t_prev = t_k;
        k += 1;
    }
    RiskProfile {
        brackets,
        beta: cost.beta,
    }
}

impl RiskProfile {
    /// The affine pieces, in increasing-cost order (costs are monotone in
    /// the job time across brackets).
    pub fn brackets(&self) -> &[CostBracket] {
        &self.brackets
    }

    /// `P(cost ≤ c)` — requires the job-time law used to build the profile.
    pub fn cost_cdf(&self, dist: &dyn ContinuousDistribution, c: f64) -> f64 {
        let mut acc = 0.0;
        for b in &self.brackets {
            if c >= b.cost_high(self.beta) {
                acc += b.probability;
            } else if c > b.cost_low(self.beta) {
                // Partially covered bracket: invert cost = fixed + β·t.
                if self.beta > 0.0 {
                    let t = (c - b.fixed) / self.beta;
                    acc += (dist.cdf(t) - dist.cdf(b.t_lower)).max(0.0);
                } else {
                    // β = 0: the whole bracket costs exactly `fixed`
                    // (cost_low = cost_high), handled above.
                }
                break;
            } else {
                break;
            }
        }
        acc.min(1.0)
    }

    /// The cost quantile: the smallest budget covering a fraction `q` of
    /// jobs.
    pub fn cost_quantile(&self, dist: &dyn ContinuousDistribution, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile level out of [0,1]: {q}");
        let mut acc = 0.0;
        for b in &self.brackets {
            if acc + b.probability >= q {
                if self.beta == 0.0 {
                    return b.cost_high(self.beta);
                }
                // Within this bracket: find t with F(t) = F(t_lower) + (q - acc).
                let target = dist.cdf(b.t_lower) + (q - acc);
                let t = dist.quantile(target.min(1.0)).min(b.t_upper);
                return b.fixed + self.beta * t;
            }
            acc += b.probability;
        }
        self.brackets
            .last()
            .map(|b| b.cost_high(self.beta))
            .unwrap_or(0.0)
    }

    /// Expected cost, reconstructed from the brackets (must agree with the
    /// Eq. 4 series; used as an internal cross-check and for conditional
    /// variants).
    pub fn expected_cost(&self, dist: &dyn ContinuousDistribution) -> f64 {
        let mut total = 0.0;
        for b in &self.brackets {
            // E[β·t over the bracket] via the conditional-mean identity.
            let m_low = dist.conditional_mean_above(b.t_lower) * dist.survival(b.t_lower);
            let m_high = dist.conditional_mean_above(b.t_upper) * dist.survival(b.t_upper);
            total += b.fixed * b.probability + self.beta * (m_low - m_high).max(0.0);
        }
        total
    }

    /// Probability that a job needs more than `k` reservations.
    pub fn prob_more_than(&self, k: usize) -> f64 {
        self.brackets
            .iter()
            .filter(|b| b.reservation > k)
            .map(|b| b.probability)
            .sum()
    }

    /// Expected number of reservations.
    pub fn expected_reservations(&self) -> f64 {
        self.brackets
            .iter()
            .map(|b| b.reservation as f64 * b.probability)
            .sum::<f64>()
            / self.brackets.iter().map(|b| b.probability).sum::<f64>()
    }
}

/// Convenience: the budget covering a fraction `q` of jobs under `seq`.
pub fn budget_at_quantile(
    seq: &ReservationSequence,
    dist: &dyn ContinuousDistribution,
    cost: &CostModel,
    q: f64,
) -> f64 {
    risk_profile(seq, dist, cost).cost_quantile(dist, q)
}

/// Monte-Carlo cross-check helper used in tests: the empirical cost
/// quantile over sampled jobs.
pub fn empirical_cost_quantile(
    seq: &ReservationSequence,
    cost: &CostModel,
    samples: &[f64],
    q: f64,
) -> f64 {
    assert!(!samples.is_empty());
    let mut costs: Vec<f64> = samples
        .iter()
        .map(|&t| run_job(seq, cost, t).cost)
        .collect();
    costs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let idx = ((q * costs.len() as f64).ceil() as usize).clamp(1, costs.len()) - 1;
    costs[idx]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::expected_cost_analytic;
    use crate::heuristics::{MeanByMean, Strategy};
    use rsj_dist::{Exponential, LogNormal, Uniform};

    #[test]
    fn single_reservation_profile() {
        let d = Uniform::new(10.0, 20.0).unwrap();
        let c = CostModel::new(1.0, 1.0, 0.5).unwrap();
        let s = ReservationSequence::single(20.0).unwrap();
        let p = risk_profile(&s, &d, &c);
        assert_eq!(p.brackets().len(), 1);
        let b = p.brackets()[0];
        assert_eq!(b.reservation, 1);
        assert!((b.probability - 1.0).abs() < 1e-12);
        // Cost ranges over [20.5 + 10, 20.5 + 20].
        assert!((p.cost_quantile(&d, 0.0) - 30.5).abs() < 1e-9);
        assert!((p.cost_quantile(&d, 1.0) - 40.5).abs() < 1e-9);
        assert!((p.cost_quantile(&d, 0.5) - 35.5).abs() < 1e-9);
        assert!((p.cost_cdf(&d, 35.5) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn expected_cost_matches_eq4_series() {
        let d = LogNormal::new(3.0, 0.5).unwrap();
        let c = CostModel::new(0.95, 1.0, 1.05).unwrap();
        let seq = MeanByMean::default().sequence(&d, &c).unwrap();
        let p = risk_profile(&seq, &d, &c);
        let via_brackets = p.expected_cost(&d);
        let via_series = expected_cost_analytic(&seq, &d, &c);
        assert!(
            (via_brackets - via_series).abs() / via_series < 1e-9,
            "brackets {via_brackets} vs series {via_series}"
        );
    }

    #[test]
    fn quantiles_match_empirical() {
        use rand::SeedableRng;
        let d = Exponential::new(1.0).unwrap();
        let c = CostModel::new(1.0, 0.5, 0.2).unwrap();
        let seq = MeanByMean::default().sequence(&d, &c).unwrap();
        let p = risk_profile(&seq, &d, &c);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let samples = crate::eval::draw_samples(&d, 200_000, &mut rng);
        for q in [0.1, 0.5, 0.9, 0.99] {
            let exact = p.cost_quantile(&d, q);
            let emp = empirical_cost_quantile(&seq, &c, &samples, q);
            assert!(
                (exact - emp).abs() / emp < 0.02,
                "q={q}: exact {exact} vs empirical {emp}"
            );
        }
    }

    #[test]
    fn cdf_quantile_are_inverse() {
        let d = LogNormal::new(3.0, 0.5).unwrap();
        let c = CostModel::new(1.0, 1.0, 0.0).unwrap();
        let seq = MeanByMean::default().sequence(&d, &c).unwrap();
        let p = risk_profile(&seq, &d, &c);
        for q in [0.05, 0.3, 0.6, 0.95] {
            let budget = p.cost_quantile(&d, q);
            let back = p.cost_cdf(&d, budget);
            assert!((back - q).abs() < 1e-6, "q={q}: F(Q(q)) = {back}");
        }
    }

    #[test]
    fn cdf_is_monotone_with_jumps_at_reservation_boundaries() {
        // RESERVATIONONLY: within a bracket the cost is constant (β = 0),
        // so the cost CDF is a step function.
        let d = Exponential::new(1.0).unwrap();
        let c = CostModel::reservation_only();
        let seq = MeanByMean::default().sequence(&d, &c).unwrap();
        let p = risk_profile(&seq, &d, &c);
        let mut prev = -1.0;
        for budget in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
            let f = p.cost_cdf(&d, budget);
            assert!(f >= prev - 1e-12);
            prev = f;
        }
        // The first bracket's cost is exactly t₁ = 1 with prob 1 - e⁻¹.
        assert!((p.cost_cdf(&d, 1.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-9);
    }

    #[test]
    fn reservation_count_statistics() {
        let d = Exponential::new(1.0).unwrap();
        let c = CostModel::reservation_only();
        let seq = MeanByMean::default().sequence(&d, &c).unwrap();
        let p = risk_profile(&seq, &d, &c);
        // P(more than 1 reservation) = P(X > 1) = e⁻¹ for t₁ = 1.
        assert!((p.prob_more_than(1) - (-1.0f64).exp()).abs() < 1e-9);
        // E[#reservations] = Σ P(X > tₖ) + 1 = Σ e^{-k} + 1 = 1/(e-1) + 1.
        let expect = 1.0 / (std::f64::consts::E - 1.0) + 1.0;
        assert!(
            (p.expected_reservations() - expect).abs() < 1e-6,
            "{} vs {expect}",
            p.expected_reservations()
        );
    }

    #[test]
    fn budget_helper() {
        let d = Uniform::new(10.0, 20.0).unwrap();
        let c = CostModel::reservation_only();
        let s = ReservationSequence::single(20.0).unwrap();
        // Every job costs exactly 20.
        assert!((budget_at_quantile(&s, &d, &c, 0.99) - 20.0).abs() < 1e-9);
    }
}
