//! The Figure 2 analysis: average queue wait as a function of requested
//! runtime, per processor count, with an affine least-squares fit whose
//! coefficients become the `(α, γ)` of the NeuroHPC cost model (§5.3).

use crate::job::JobRecord;
use rsj_dist::{fit_affine, AffineFit};
use serde::{Deserialize, Serialize};

/// One of the 20 request-size groups of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaitGroup {
    /// Mean requested runtime of the group's jobs (hours).
    pub mean_requested: f64,
    /// Mean queue wait of the group's jobs (hours).
    pub mean_wait: f64,
    /// Number of jobs in the group.
    pub count: usize,
}

/// The full Figure 2 data for one processor count: grouped points plus the
/// affine fit `wait ≈ α·requested + γ`.
#[derive(Debug, Clone, PartialEq)]
pub struct WaitTimeAnalysis {
    /// Processor count the jobs were filtered on.
    pub processors: usize,
    /// The grouped averages (the blue points of Figure 2).
    pub groups: Vec<WaitGroup>,
    /// The affine fit (the green line of Figure 2).
    pub fit: AffineFit,
}

/// Groups records of jobs that ran on exactly `processors` into `n_groups`
/// clusters of similar requested runtime (equal-count quantile groups, as
/// in \[20\]) and fits the affine wait model.
///
/// Returns `None` when fewer than `2·n_groups` matching jobs exist.
pub fn analyze_wait_times(
    records: &[JobRecord],
    processors: usize,
    n_groups: usize,
) -> Option<WaitTimeAnalysis> {
    assert!(n_groups >= 2, "need at least two groups for a fit");
    let mut matching: Vec<&JobRecord> = records
        .iter()
        .filter(|r| r.job.processors == processors)
        .collect();
    if matching.len() < 2 * n_groups {
        return None;
    }
    matching.sort_by(|a, b| {
        a.job
            .requested
            .partial_cmp(&b.job.requested)
            .expect("finite requests")
    });

    let per_group = matching.len() / n_groups;
    let mut groups = Vec::with_capacity(n_groups);
    for g in 0..n_groups {
        let lo = g * per_group;
        let hi = if g == n_groups - 1 {
            matching.len()
        } else {
            lo + per_group
        };
        let slice = &matching[lo..hi];
        let n = slice.len() as f64;
        groups.push(WaitGroup {
            mean_requested: slice.iter().map(|r| r.job.requested).sum::<f64>() / n,
            mean_wait: slice.iter().map(|r| r.wait).sum::<f64>() / n,
            count: slice.len(),
        });
    }

    let xs: Vec<f64> = groups.iter().map(|g| g.mean_requested).collect();
    let ys: Vec<f64> = groups.iter().map(|g| g.mean_wait).collect();
    let fit = fit_affine(&xs, &ys).ok()?;
    Some(WaitTimeAnalysis {
        processors,
        groups,
        fit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Job, JobId};

    fn record(id: u64, procs: usize, requested: f64, wait: f64) -> JobRecord {
        let job = Job {
            id: JobId(id),
            arrival: 0.0,
            processors: procs,
            requested,
            actual: requested,
        };
        JobRecord {
            job,
            start: wait,
            end: wait + requested,
            wait,
            killed: false,
            fault: None,
        }
    }

    #[test]
    fn recovers_planted_affine_relation() {
        // wait = 0.95·requested + 1.05 exactly.
        let records: Vec<JobRecord> = (0..400)
            .map(|i| {
                let req = 0.5 + i as f64 * 0.01;
                record(i, 204, req, 0.95 * req + 1.05)
            })
            .collect();
        let a = analyze_wait_times(&records, 204, 20).unwrap();
        assert_eq!(a.groups.len(), 20);
        assert!((a.fit.slope - 0.95).abs() < 1e-9, "slope {}", a.fit.slope);
        assert!(
            (a.fit.intercept - 1.05).abs() < 1e-9,
            "intercept {}",
            a.fit.intercept
        );
        assert!(a.fit.r_squared > 0.999);
    }

    #[test]
    fn filters_by_processor_count() {
        let mut records: Vec<JobRecord> = (0..200)
            .map(|i| record(i, 204, 1.0 + i as f64 * 0.01, 2.0))
            .collect();
        records.extend((200..400).map(|i| record(i, 409, 1.0 + i as f64 * 0.01, 50.0)));
        let a204 = analyze_wait_times(&records, 204, 10).unwrap();
        let a409 = analyze_wait_times(&records, 409, 10).unwrap();
        assert!(a204.groups.iter().all(|g| (g.mean_wait - 2.0).abs() < 1e-9));
        assert!(a409
            .groups
            .iter()
            .all(|g| (g.mean_wait - 50.0).abs() < 1e-9));
    }

    #[test]
    fn none_when_insufficient_data() {
        let records: Vec<JobRecord> = (0..10).map(|i| record(i, 204, 1.0, 1.0)).collect();
        assert!(analyze_wait_times(&records, 204, 20).is_none());
        assert!(analyze_wait_times(&records, 999, 2).is_none());
    }

    #[test]
    fn group_counts_cover_all_jobs() {
        let records: Vec<JobRecord> = (0..103)
            .map(|i| record(i, 204, 1.0 + i as f64, 1.0))
            .collect();
        let a = analyze_wait_times(&records, 204, 5).unwrap();
        let total: usize = a.groups.iter().map(|g| g.count).sum();
        assert_eq!(total, 103);
    }
}
