//! Variable-resource reservations — the second §7 future-work direction:
//! "allowing requests with variable amount of resources, hence offering a
//! combination of a reservation time and a number of processors".
//!
//! Model: the job carries stochastic *sequential work* `X`; on `p`
//! processors it runs for `X·g(p)` where `g(p)` comes from a speedup model
//! (Amdahl's law by default: `g(p) = f + (1-f)/p` for serial fraction
//! `f`). A reservation is now a pair `(p, t)` and costs
//!
//! ```text
//! α·p·t + β·p·min(t, X·g(p)) + γ
//! ```
//!
//! (processor-hours reserved and used). For a *fixed* `p` this is exactly
//! the base STOCHASTIC problem on the scaled law `X·g(p)` with
//! `α′ = α·p`, `β′ = β·p` — so the whole 1-D machinery applies, and the
//! planner reduces to a one-dimensional search over candidate processor
//! counts.

use crate::cost::CostModel;
use crate::error::{CoreError, Result};
use crate::eval::expected_cost_analytic;
use crate::heuristics::Strategy;
use crate::sequence::ReservationSequence;
use rsj_dist::transform::Scaled;
use rsj_dist::ContinuousDistribution;
use serde::{Deserialize, Serialize};

/// Parallel speedup models mapping processor count to the runtime factor
/// `g(p)` (runtime = sequential work × `g(p)`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SpeedupModel {
    /// Amdahl's law with serial fraction `f ∈ [0, 1]`:
    /// `g(p) = f + (1-f)/p`.
    Amdahl {
        /// Serial fraction.
        serial_fraction: f64,
    },
    /// Perfect linear speedup: `g(p) = 1/p`.
    Linear,
    /// Communication-penalized: `g(p) = 1/p + c·ln(p)` (a common model for
    /// collectives-bound codes).
    LogOverhead {
        /// Per-level communication coefficient `c ≥ 0`.
        overhead: f64,
    },
}

impl SpeedupModel {
    /// The runtime factor `g(p) > 0`.
    pub fn factor(&self, processors: usize) -> f64 {
        assert!(processors >= 1, "need at least one processor");
        let p = processors as f64;
        match *self {
            SpeedupModel::Amdahl { serial_fraction } => {
                serial_fraction + (1.0 - serial_fraction) / p
            }
            SpeedupModel::Linear => 1.0 / p,
            SpeedupModel::LogOverhead { overhead } => 1.0 / p + overhead * p.ln(),
        }
    }

    /// Validates model parameters.
    pub fn validate(&self) -> Result<()> {
        let ok = match *self {
            SpeedupModel::Amdahl { serial_fraction } => (0.0..=1.0).contains(&serial_fraction),
            SpeedupModel::Linear => true,
            SpeedupModel::LogOverhead { overhead } => overhead >= 0.0 && overhead.is_finite(),
        };
        if ok {
            Ok(())
        } else {
            Err(CoreError::InvalidHeuristicParameter {
                name: "speedup_model",
                reason: "parameters out of range",
            })
        }
    }
}

/// How the cost model changes with the processor count `p`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WidthPolicy {
    /// Cloud billing in processor-hours: `α′ = α·p`, `β′ = β·p`, `γ′ = γ`.
    ///
    /// Under linear speedup this is width-invariant (processor-hours are
    /// conserved), and any sublinear speedup strictly favours narrow jobs.
    ProcessorHours,
    /// HPC turnaround objective: cost is *time*, not processor-hours
    /// (`α`, `β` unscaled), but the per-attempt queue penalty grows with
    /// the width: `γ′ = γ + wait_per_proc·p` (wider jobs wait longer, cf.
    /// Figure 2 / §6). This creates the genuine time-vs-width trade-off.
    Turnaround {
        /// Additional expected wait (hours) per requested processor.
        wait_per_proc: f64,
    },
}

impl WidthPolicy {
    /// The width-adjusted cost model.
    pub fn cost_at(&self, base: &CostModel, processors: usize) -> Result<CostModel> {
        let p = processors as f64;
        match *self {
            WidthPolicy::ProcessorHours => {
                CostModel::new(base.alpha * p, base.beta * p, base.gamma)
            }
            WidthPolicy::Turnaround { wait_per_proc } => {
                if !(wait_per_proc >= 0.0) || !wait_per_proc.is_finite() {
                    return Err(CoreError::InvalidCostParameter {
                        name: "wait_per_proc",
                        value: wait_per_proc,
                        requirement: "must be >= 0 and finite",
                    });
                }
                CostModel::new(base.alpha, base.beta, base.gamma + wait_per_proc * p)
            }
        }
    }
}

/// A fully specified multi-resource reservation plan.
#[derive(Debug, Clone)]
pub struct MultiResourcePlan {
    /// Chosen processor count.
    pub processors: usize,
    /// Reservation *durations* at that width.
    pub sequence: ReservationSequence,
    /// Expected cost (processor-hour units) of the plan.
    pub expected_cost: f64,
    /// Expected cost of the omniscient scheduler at the same width.
    pub omniscient_cost: f64,
}

/// Plans `(p, t₁ < t₂ < …)` reservations: for each candidate width, solve
/// the induced 1-D STOCHASTIC instance with `strategy` and keep the
/// cheapest.
pub struct MultiResourcePlanner<'a> {
    /// Candidate processor counts.
    pub candidates: &'a [usize],
    /// Speedup model.
    pub speedup: SpeedupModel,
    /// How the cost model scales with the width.
    pub width_policy: WidthPolicy,
    /// The 1-D strategy used per width.
    pub strategy: &'a dyn Strategy,
}

impl<'a> MultiResourcePlanner<'a> {
    /// Evaluates one processor count, returning the plan at that width.
    pub fn plan_at(
        &self,
        work: &dyn ContinuousDistribution,
        cost: &CostModel,
        processors: usize,
    ) -> Result<MultiResourcePlan> {
        self.speedup.validate()?;
        if processors == 0 {
            return Err(CoreError::InvalidHeuristicParameter {
                name: "processors",
                reason: "must be positive",
            });
        }
        let g = self.speedup.factor(processors);
        let runtime = Scaled::new(DynDist(work), g)?;
        let width_cost = self.width_policy.cost_at(cost, processors)?;
        let sequence = self.strategy.sequence(&runtime, &width_cost)?;
        let expected_cost = expected_cost_analytic(&sequence, &runtime, &width_cost);
        Ok(MultiResourcePlan {
            processors,
            sequence,
            expected_cost,
            omniscient_cost: width_cost.omniscient(&runtime),
        })
    }

    /// Finds the cheapest width among the candidates.
    pub fn best(
        &self,
        work: &dyn ContinuousDistribution,
        cost: &CostModel,
    ) -> Result<MultiResourcePlan> {
        let mut best: Option<MultiResourcePlan> = None;
        for &p in self.candidates {
            let plan = self.plan_at(work, cost, p)?;
            if best
                .as_ref()
                .is_none_or(|b| plan.expected_cost < b.expected_cost)
            {
                best = Some(plan);
            }
        }
        best.ok_or(CoreError::InvalidHeuristicParameter {
            name: "candidates",
            reason: "no candidate processor counts supplied",
        })
    }
}

/// Borrowed-trait-object adapter so `Scaled` (generic over a concrete `D`)
/// can wrap a `&dyn ContinuousDistribution`.
#[derive(Debug)]
struct DynDist<'a>(&'a dyn ContinuousDistribution);

impl ContinuousDistribution for DynDist<'_> {
    fn name(&self) -> String {
        self.0.name()
    }
    fn support(&self) -> rsj_dist::Support {
        self.0.support()
    }
    fn pdf(&self, t: f64) -> f64 {
        self.0.pdf(t)
    }
    fn cdf(&self, t: f64) -> f64 {
        self.0.cdf(t)
    }
    fn survival(&self, t: f64) -> f64 {
        self.0.survival(t)
    }
    fn quantile(&self, p: f64) -> f64 {
        self.0.quantile(p)
    }
    fn mean(&self) -> f64 {
        self.0.mean()
    }
    fn variance(&self) -> f64 {
        self.0.variance()
    }
    fn conditional_mean_above(&self, tau: f64) -> f64 {
        self.0.conditional_mean_above(tau)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::MeanByMean;
    use rsj_dist::LogNormal;

    #[test]
    fn speedup_factors() {
        let amdahl = SpeedupModel::Amdahl {
            serial_fraction: 0.1,
        };
        assert!((amdahl.factor(1) - 1.0).abs() < 1e-12);
        // p → ∞: factor → f.
        assert!((amdahl.factor(1_000_000) - 0.1).abs() < 1e-5);
        assert!((SpeedupModel::Linear.factor(4) - 0.25).abs() < 1e-12);
        let log = SpeedupModel::LogOverhead { overhead: 0.01 };
        assert!(log.factor(8) > SpeedupModel::Linear.factor(8));
    }

    #[test]
    fn validation() {
        assert!(SpeedupModel::Amdahl {
            serial_fraction: 1.5
        }
        .validate()
        .is_err());
        assert!(SpeedupModel::LogOverhead { overhead: -0.1 }
            .validate()
            .is_err());
        assert!(SpeedupModel::Linear.validate().is_ok());
    }

    #[test]
    fn linear_speedup_processor_hours_is_width_invariant() {
        // With g(p) = 1/p and costs ∝ p·t, processor-hours are conserved:
        // every width costs the same (γ = 0). The reservation *count* is
        // also invariant (scaling the law scales the ladder), so a fixed γ
        // would not break the tie either.
        let work = LogNormal::new(1.0, 0.5).unwrap();
        let cost = CostModel::reservation_only();
        let strategy = MeanByMean::default();
        let planner = MultiResourcePlanner {
            candidates: &[1, 2, 8, 64],
            speedup: SpeedupModel::Linear,
            width_policy: WidthPolicy::ProcessorHours,
            strategy: &strategy,
        };
        let costs: Vec<f64> = planner
            .candidates
            .iter()
            .map(|&p| planner.plan_at(&work, &cost, p).unwrap().expected_cost)
            .collect();
        for w in costs.windows(2) {
            assert!(
                (w[0] - w[1]).abs() / w[0] < 1e-9,
                "linear speedup must be width-invariant: {costs:?}"
            );
        }
    }

    #[test]
    fn amdahl_processor_hours_prefers_narrow() {
        // Sublinear speedup burns processor-hours on the serial part: the
        // cloud-billing planner must prefer narrow widths.
        let work = LogNormal::new(1.0, 0.5).unwrap();
        let cost = CostModel::reservation_only();
        let strategy = MeanByMean::default();
        let planner = MultiResourcePlanner {
            candidates: &[1, 4, 16, 64],
            speedup: SpeedupModel::Amdahl {
                serial_fraction: 0.5,
            },
            width_policy: WidthPolicy::ProcessorHours,
            strategy: &strategy,
        };
        let best = planner.best(&work, &cost).unwrap();
        assert_eq!(best.processors, 1, "serial-heavy code should stay narrow");
    }

    #[test]
    fn turnaround_objective_has_interior_optimum() {
        // Turnaround: width shortens the runtime (linear speedup) but each
        // attempt's queue wait grows with p — a genuine trade-off.
        let work = LogNormal::new(1.5, 0.4).unwrap();
        let cost = CostModel::new(0.95, 1.0, 1.05).unwrap();
        let strategy = MeanByMean::default();
        let planner = MultiResourcePlanner {
            candidates: &[1, 2, 4, 8, 16, 32, 64, 128],
            speedup: SpeedupModel::Linear,
            width_policy: WidthPolicy::Turnaround {
                wait_per_proc: 0.05,
            },
            strategy: &strategy,
        };
        let best = planner.best(&work, &cost).unwrap();
        assert!(
            best.processors > 1 && best.processors < 128,
            "expected an interior optimum, got {}",
            best.processors
        );
        // The chosen plan is self-consistent.
        assert!(best.expected_cost >= best.omniscient_cost * (1.0 - 1e-9));
    }

    #[test]
    fn turnaround_wait_penalty_narrows_the_optimum() {
        // A steeper wait-vs-width penalty must never widen the best plan.
        let work = LogNormal::new(1.5, 0.4).unwrap();
        let cost = CostModel::new(0.95, 1.0, 1.05).unwrap();
        let strategy = MeanByMean::default();
        let mut widths = Vec::new();
        for wpp in [0.001, 0.05, 2.0] {
            let planner = MultiResourcePlanner {
                candidates: &[1, 2, 4, 8, 16, 32, 64, 128],
                speedup: SpeedupModel::Linear,
                width_policy: WidthPolicy::Turnaround { wait_per_proc: wpp },
                strategy: &strategy,
            };
            widths.push(planner.best(&work, &cost).unwrap().processors);
        }
        assert!(
            widths[0] >= widths[1] && widths[1] >= widths[2],
            "widths must shrink with the penalty: {widths:?}"
        );
        assert!(
            widths[0] > widths[2],
            "the effect must be visible: {widths:?}"
        );
    }

    #[test]
    fn width_policy_validation() {
        let base = CostModel::reservation_only();
        assert!(WidthPolicy::Turnaround {
            wait_per_proc: -1.0
        }
        .cost_at(&base, 4)
        .is_err());
        let c = WidthPolicy::Turnaround { wait_per_proc: 0.5 }
            .cost_at(&base, 4)
            .unwrap();
        assert_eq!(c.gamma, 2.0);
        assert_eq!(c.alpha, 1.0);
        let c = WidthPolicy::ProcessorHours.cost_at(&base, 4).unwrap();
        assert_eq!(c.alpha, 4.0);
    }

    #[test]
    fn rejects_empty_candidates() {
        let work = LogNormal::new(1.0, 0.5).unwrap();
        let cost = CostModel::reservation_only();
        let strategy = MeanByMean::default();
        let planner = MultiResourcePlanner {
            candidates: &[],
            speedup: SpeedupModel::Linear,
            width_policy: WidthPolicy::ProcessorHours,
            strategy: &strategy,
        };
        assert!(planner.best(&work, &cost).is_err());
    }
}
