//! Single-flight coalescing: at most one in-flight computation per key.
//!
//! When N connections miss the plan cache on the same
//! [`cache_key`](reservation_strategies::Planner::cache_key)
//! simultaneously, running N identical solver invocations multiplies a
//! thundering herd by the cost of a DP or brute-force sweep. A
//! [`SingleFlight`] group elects the first caller as the **leader** — it
//! runs the computation — and parks the rest as **followers** on a
//! condvar; everyone receives a clone of the leader's result. Because
//! solves are deterministic (a repo-wide invariant), the shared result is
//! bit-identical to what each follower would have computed itself.
//!
//! Followers wait with their own deadline: a follower whose deadline
//! expires before the leader finishes gives up with
//! [`Flighted::TimedOut`] without disturbing the flight. A leader whose
//! closure panics does not wedge its followers — a drop guard publishes
//! the caller-supplied `abandoned` value instead.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

#[derive(Debug)]
struct Flight<V> {
    result: Mutex<Option<V>>,
    done: Condvar,
}

/// How a value came out of [`SingleFlight::run`].
#[derive(Debug, PartialEq, Eq)]
pub enum Flighted<V> {
    /// This caller was the leader and computed the value itself.
    Led(V),
    /// This caller coalesced onto another caller's in-flight computation.
    Joined(V),
    /// This caller's deadline expired before the leader finished.
    TimedOut,
}

impl<V> Flighted<V> {
    /// The carried value, if the call did not time out.
    pub fn into_value(self) -> Option<V> {
        match self {
            Flighted::Led(v) | Flighted::Joined(v) => Some(v),
            Flighted::TimedOut => None,
        }
    }
}

/// A group of keyed in-flight computations (see module docs).
#[derive(Debug, Default)]
pub struct SingleFlight<V> {
    flights: Mutex<HashMap<String, Arc<Flight<V>>>>,
}

impl<V: Clone> SingleFlight<V> {
    /// An empty group.
    pub fn new() -> Self {
        Self {
            flights: Mutex::new(HashMap::new()),
        }
    }

    /// Runs `compute` for `key`, coalescing with any identical in-flight
    /// call. The leader executes `compute`; followers block (up to
    /// `deadline`, if any) and receive a clone of its result. If the
    /// leader panics, followers receive `abandoned` and the panic
    /// propagates to the leader's caller.
    pub fn run<F>(
        &self,
        key: &str,
        deadline: Option<Instant>,
        abandoned: V,
        compute: F,
    ) -> Flighted<V>
    where
        F: FnOnce() -> V,
    {
        let (flight, is_leader) = {
            let mut flights = self.flights.lock().expect("singleflight lock");
            match flights.get(key) {
                Some(flight) => (Arc::clone(flight), false),
                None => {
                    let flight = Arc::new(Flight {
                        result: Mutex::new(None),
                        done: Condvar::new(),
                    });
                    flights.insert(key.to_owned(), Arc::clone(&flight));
                    (flight, true)
                }
            }
        };

        if is_leader {
            // The guard publishes a result and retires the flight even if
            // `compute` panics, so followers never hang on a dead leader.
            let mut guard = LeaderGuard {
                group: self,
                key,
                flight: &flight,
                result: Some(abandoned),
            };
            let value = compute();
            guard.result = Some(value.clone());
            drop(guard);
            Flighted::Led(value)
        } else {
            let mut result = flight.result.lock().expect("flight lock");
            loop {
                if let Some(value) = result.as_ref() {
                    return Flighted::Joined(value.clone());
                }
                match deadline {
                    Some(deadline) => {
                        let now = Instant::now();
                        if now >= deadline {
                            return Flighted::TimedOut;
                        }
                        let (next, _) = flight
                            .done
                            .wait_timeout(result, deadline - now)
                            .expect("flight lock");
                        result = next;
                    }
                    None => {
                        result = flight.done.wait(result).expect("flight lock");
                    }
                }
            }
        }
    }

    /// Number of keys currently in flight (test/diagnostic hook).
    pub fn in_flight(&self) -> usize {
        self.flights.lock().expect("singleflight lock").len()
    }
}

/// Publishes the leader's result (or the `abandoned` fallback on panic)
/// and removes the key from the group.
struct LeaderGuard<'a, V: Clone> {
    group: &'a SingleFlight<V>,
    key: &'a str,
    flight: &'a Arc<Flight<V>>,
    result: Option<V>,
}

impl<V: Clone> Drop for LeaderGuard<'_, V> {
    fn drop(&mut self) {
        {
            let mut slot = self.flight.result.lock().expect("flight lock");
            *slot = self.result.take();
        }
        self.flight.done.notify_all();
        self.group
            .flights
            .lock()
            .expect("singleflight lock")
            .remove(self.key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;
    use std::time::Duration;

    #[test]
    fn solo_caller_leads_and_flight_retires() {
        let sf = SingleFlight::new();
        assert_eq!(sf.run("k", None, 0, || 42), Flighted::Led(42));
        assert_eq!(sf.in_flight(), 0);
    }

    #[test]
    fn concurrent_identical_keys_run_compute_exactly_once() {
        let sf = Arc::new(SingleFlight::new());
        let computed = Arc::new(AtomicUsize::new(0));
        let start = Arc::new(Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (sf, computed, start) =
                    (Arc::clone(&sf), Arc::clone(&computed), Arc::clone(&start));
                std::thread::spawn(move || {
                    start.wait();
                    sf.run("key", None, 0usize, || {
                        // Hold the flight open long enough for the other
                        // callers to join it.
                        std::thread::sleep(Duration::from_millis(50));
                        computed.fetch_add(1, Ordering::SeqCst) + 1
                    })
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let leaders = results
            .iter()
            .filter(|r| matches!(r, Flighted::Led(_)))
            .count();
        // With a barrier start and a 50 ms flight, every caller lands in
        // the same flight: one leader, one compute, identical values.
        assert_eq!(computed.load(Ordering::SeqCst), leaders);
        assert_eq!(leaders, 1, "all callers coalesced onto one flight");
        assert!(results
            .iter()
            .all(|r| matches!(r, Flighted::Led(1) | Flighted::Joined(1))));
        assert_eq!(sf.in_flight(), 0);
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let sf = SingleFlight::new();
        assert_eq!(sf.run("a", None, 0, || 1), Flighted::Led(1));
        assert_eq!(sf.run("b", None, 0, || 2), Flighted::Led(2));
    }

    #[test]
    fn follower_times_out_without_disturbing_the_flight() {
        let sf = Arc::new(SingleFlight::new());
        let entered = Arc::new(Barrier::new(2));
        let leader = {
            let (sf, entered) = (Arc::clone(&sf), Arc::clone(&entered));
            std::thread::spawn(move || {
                sf.run("k", None, 0, || {
                    entered.wait();
                    std::thread::sleep(Duration::from_millis(120));
                    7
                })
            })
        };
        entered.wait();
        let impatient = sf.run(
            "k",
            Some(Instant::now() + Duration::from_millis(5)),
            0,
            || unreachable!("follower never computes"),
        );
        assert_eq!(impatient, Flighted::TimedOut);
        assert_eq!(leader.join().unwrap(), Flighted::Led(7));
    }

    #[test]
    fn leader_panic_releases_followers_with_the_abandoned_value() {
        let sf = Arc::new(SingleFlight::<i32>::new());
        let entered = Arc::new(Barrier::new(2));
        let leader = {
            let (sf, entered) = (Arc::clone(&sf), Arc::clone(&entered));
            std::thread::spawn(move || {
                sf.run("k", None, -1, || {
                    entered.wait();
                    std::thread::sleep(Duration::from_millis(30));
                    panic!("chaos strikes the leader");
                })
            })
        };
        entered.wait();
        let follower = sf.run("k", None, -1, || unreachable!());
        assert_eq!(follower, Flighted::Joined(-1));
        assert!(leader.join().is_err(), "panic propagates to the leader");
        assert_eq!(sf.in_flight(), 0);
    }
}
