//! Deterministic discrete-event core: a time-ordered event queue with
//! stable FIFO tie-breaking.

use crate::job::{JobId, Time};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens at an event's firing time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A job enters the waiting queue.
    Arrival(JobId),
    /// A running job leaves the machine (completion or walltime kill).
    Departure(JobId),
    /// A node crash (or early walltime kill) terminates a running job.
    NodeFailure(JobId),
    /// A spot-style preemption reclaims a running job's processors.
    Preemption(JobId),
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    time: Time,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for a min-heap on (time, seq); times are finite by
        // construction (asserted at push).
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are finite")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A min-heap of timed events. Events at equal times fire in insertion
/// order, making simulations reproducible.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` at `time`.
    ///
    /// # Panics
    /// Panics if `time` is not finite.
    pub fn push(&mut self, time: Time, kind: EventKind) {
        assert!(time.is_finite(), "event time must be finite, got {time}");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, kind });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Time, EventKind)> {
        self.heap.pop().map(|e| (e.time, e.kind))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, EventKind::Arrival(JobId(3)));
        q.push(1.0, EventKind::Arrival(JobId(1)));
        q.push(2.0, EventKind::Departure(JobId(2)));
        let order: Vec<Time> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn equal_times_fifo() {
        let mut q = EventQueue::new();
        q.push(1.0, EventKind::Arrival(JobId(10)));
        q.push(1.0, EventKind::Arrival(JobId(20)));
        q.push(1.0, EventKind::Departure(JobId(30)));
        let kinds: Vec<EventKind> = std::iter::from_fn(|| q.pop().map(|(_, k)| k)).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::Arrival(JobId(10)),
                EventKind::Arrival(JobId(20)),
                EventKind::Departure(JobId(30)),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_non_finite_time() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, EventKind::Arrival(JobId(1)));
    }

    #[test]
    fn len_tracks_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1.0, EventKind::Arrival(JobId(1)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
