//! The measure-based incremental heuristics of §4.3: Mean-by-Mean,
//! Mean-Stdev, Mean-Doubling and Median-by-Median.
//!
//! None of these explore the structure of the optimal solution; they apply
//! simple rules to standard measures (mean, standard deviation, quantiles)
//! of the distribution. Appendix B's closed-form conditional expectations
//! (implemented by each distribution's `conditional_mean_above`) make
//! Mean-by-Mean exact for all nine supported laws.

use super::{Strategy, TailPolicy};
use crate::cost::CostModel;
use crate::error::Result;
use crate::sequence::ReservationSequence;
use rsj_dist::ContinuousDistribution;

/// Relative slack for deciding a reservation has reached a bounded
/// support's upper endpoint.
const UPPER_EPS: f64 = 1e-12;

/// Shared driver: starts at `t1` and repeatedly applies `rule(i, tᵢ) → tᵢ₊₁`
/// (`i` is the 1-based index of the *current* last element), clamping into
/// bounded supports and stopping at the tail policy's cutoff.
fn build_sequence(
    dist: &dyn ContinuousDistribution,
    t1: f64,
    mut rule: impl FnMut(usize, f64) -> f64,
    policy: &TailPolicy,
) -> Result<ReservationSequence> {
    let upper = dist.support().upper();
    if let Some(b) = upper {
        if t1 >= b * (1.0 - UPPER_EPS) {
            return ReservationSequence::single(b);
        }
    }
    let mut times = vec![t1];
    let mut t = t1;
    let mut i = 1;
    while times.len() < policy.max_len {
        // Unbounded tail cutoff; bounded supports run until they hit b.
        if upper.is_none() && dist.survival(t) < policy.tail_cutoff {
            break;
        }
        let mut next = rule(i, t);
        if !(next > t * (1.0 + 1e-12)) || !next.is_finite() {
            // Stalled rule (numerically flat increments deep in a tail):
            // force geometric progress — the sequence must tend to the
            // support's end (§2.2, property 2).
            next = t * 1.5;
        }
        if let Some(b) = upper {
            if next >= b * (1.0 - UPPER_EPS) {
                times.push(b);
                return ReservationSequence::new(times, true);
            }
            if dist.survival(next) < policy.tail_cutoff {
                // Essentially no mass left before b: close the sequence.
                times.push(b);
                return ReservationSequence::new(times, true);
            }
        }
        times.push(next);
        t = next;
        i += 1;
    }
    ReservationSequence::new(times, false)
}

/// MEAN-BY-MEAN (§4.3): `t₁ = μ`, then `tᵢ₊₁ = E[X | X > tᵢ]` — the
/// conditional expectation of the remaining interval (Appendix B).
#[derive(Debug, Clone, Default)]
pub struct MeanByMean {
    /// Tail depth policy.
    pub policy: TailPolicy,
}

impl Strategy for MeanByMean {
    fn name(&self) -> &str {
        "Mean-by-Mean"
    }

    fn sequence(
        &self,
        dist: &dyn ContinuousDistribution,
        _cost: &CostModel,
    ) -> Result<ReservationSequence> {
        build_sequence(
            dist,
            dist.mean(),
            |_, t| dist.conditional_mean_above(t),
            &self.policy,
        )
    }
}

/// MEAN-STDEV (§4.3): `tᵢ = μ + (i-1)·σ`.
#[derive(Debug, Clone, Default)]
pub struct MeanStdev {
    /// Tail depth policy.
    pub policy: TailPolicy,
}

impl Strategy for MeanStdev {
    fn name(&self) -> &str {
        "Mean-Stdev"
    }

    fn sequence(
        &self,
        dist: &dyn ContinuousDistribution,
        _cost: &CostModel,
    ) -> Result<ReservationSequence> {
        let mu = dist.mean();
        let sigma = dist.std_dev();
        build_sequence(dist, mu, |i, _| mu + i as f64 * sigma, &self.policy)
    }
}

/// MEAN-DOUBLING (§4.3): `tᵢ = 2^{i-1}·μ`.
#[derive(Debug, Clone, Default)]
pub struct MeanDoubling {
    /// Tail depth policy.
    pub policy: TailPolicy,
}

impl Strategy for MeanDoubling {
    fn name(&self) -> &str {
        "Mean-Doubling"
    }

    fn sequence(
        &self,
        dist: &dyn ContinuousDistribution,
        _cost: &CostModel,
    ) -> Result<ReservationSequence> {
        let mu = dist.mean();
        build_sequence(dist, mu, |i, _| 2f64.powi(i as i32) * mu, &self.policy)
    }
}

/// MEDIAN-BY-MEDIAN (§4.3): `tᵢ = Q(1 - 2⁻ⁱ)` — the median of the
/// remaining interval at every step.
#[derive(Debug, Clone, Default)]
pub struct MedianByMedian {
    /// Tail depth policy.
    pub policy: TailPolicy,
}

impl Strategy for MedianByMedian {
    fn name(&self) -> &str {
        "Median-by-Median"
    }

    fn sequence(
        &self,
        dist: &dyn ContinuousDistribution,
        _cost: &CostModel,
    ) -> Result<ReservationSequence> {
        build_sequence(
            dist,
            dist.median(),
            |i, _| dist.quantile(1.0 - 2f64.powi(-(i as i32 + 1))),
            &self.policy,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsj_dist::{BetaDist, Exponential, LogNormal, Pareto, Uniform};

    fn cost() -> CostModel {
        CostModel::reservation_only()
    }

    #[test]
    fn mean_by_mean_exponential_is_arithmetic() {
        // Memorylessness: tᵢ = i/λ (Appendix B).
        let d = Exponential::new(2.0).unwrap();
        let s = MeanByMean::default().sequence(&d, &cost()).unwrap();
        for (i, t) in s.times().iter().take(10).enumerate() {
            assert!((t - (i + 1) as f64 * 0.5).abs() < 1e-10, "i={i}: {t}");
        }
    }

    #[test]
    fn mean_by_mean_uniform_halves_to_b() {
        // Theorem 11: t₁ = 15, tᵢ₊₁ = (tᵢ + 20)/2, closing at b = 20.
        let d = Uniform::new(10.0, 20.0).unwrap();
        let s = MeanByMean::default().sequence(&d, &cost()).unwrap();
        let t = s.times();
        assert!((t[0] - 15.0).abs() < 1e-12);
        assert!((t[1] - 17.5).abs() < 1e-12);
        assert!((t[2] - 18.75).abs() < 1e-12);
        assert!(s.is_complete());
        assert_eq!(s.last(), 20.0);
    }

    #[test]
    fn mean_by_mean_pareto_is_geometric() {
        // Theorem 10: tᵢ₊₁ = α/(α-1)·tᵢ = 1.5·tᵢ.
        let d = Pareto::new(1.5, 3.0).unwrap();
        let s = MeanByMean::default().sequence(&d, &cost()).unwrap();
        let t = s.times();
        assert!((t[0] - 2.25).abs() < 1e-12);
        for w in t.windows(2).take(8) {
            assert!((w[1] / w[0] - 1.5).abs() < 1e-9);
        }
    }

    #[test]
    fn mean_stdev_is_arithmetic() {
        let d = LogNormal::new(3.0, 0.5).unwrap();
        let s = MeanStdev::default().sequence(&d, &cost()).unwrap();
        let (mu, sigma) = (d.mean(), d.std_dev());
        for (i, t) in s.times().iter().take(10).enumerate() {
            assert!((t - (mu + i as f64 * sigma)).abs() < 1e-9, "i={i}");
        }
    }

    #[test]
    fn mean_doubling_doubles() {
        let d = LogNormal::new(3.0, 0.5).unwrap();
        let s = MeanDoubling::default().sequence(&d, &cost()).unwrap();
        let t = s.times();
        for w in t.windows(2).take(5) {
            assert!((w[1] / w[0] - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn median_by_median_quantile_ladder() {
        let d = Exponential::new(1.0).unwrap();
        let s = MedianByMedian::default().sequence(&d, &cost()).unwrap();
        let t = s.times();
        // tᵢ = Q(1 - 2⁻ⁱ) = i·ln 2 for Exp(1).
        for (i, x) in t.iter().take(10).enumerate() {
            let expected = (i + 1) as f64 * std::f64::consts::LN_2;
            assert!((x - expected).abs() < 1e-9, "i={i}: {x} vs {expected}");
        }
    }

    #[test]
    fn all_sequences_reach_tail_cutoff() {
        let d = LogNormal::new(3.0, 0.5).unwrap();
        let heuristics: Vec<Box<dyn Strategy>> = vec![
            Box::new(MeanByMean::default()),
            Box::new(MeanStdev::default()),
            Box::new(MeanDoubling::default()),
            Box::new(MedianByMedian::default()),
        ];
        for h in heuristics {
            let s = h.sequence(&d, &cost()).unwrap();
            assert!(
                d.survival(s.last()) < 1e-11,
                "{}: gap {}",
                h.name(),
                d.survival(s.last())
            );
        }
    }

    #[test]
    fn bounded_support_sequences_end_at_b() {
        let d = BetaDist::new(2.0, 2.0).unwrap();
        let heuristics: Vec<Box<dyn Strategy>> = vec![
            Box::new(MeanByMean::default()),
            Box::new(MeanStdev::default()),
            Box::new(MeanDoubling::default()),
            Box::new(MedianByMedian::default()),
        ];
        for h in heuristics {
            let s = h.sequence(&d, &cost()).unwrap();
            assert!(s.is_complete(), "{} must complete", h.name());
            assert_eq!(s.last(), 1.0, "{} must end at b", h.name());
        }
    }

    #[test]
    fn mean_stdev_uniform_matches_paper_shape() {
        // Uniform(10, 20): 15, 17.89, then clamp at 20.
        let d = Uniform::new(10.0, 20.0).unwrap();
        let s = MeanStdev::default().sequence(&d, &cost()).unwrap();
        let t = s.times();
        assert!((t[0] - 15.0).abs() < 1e-12);
        assert!((t[1] - (15.0 + d.std_dev())).abs() < 1e-12);
        assert_eq!(s.last(), 20.0);
        assert_eq!(s.len(), 3);
    }
}
