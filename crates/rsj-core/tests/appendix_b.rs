//! Appendix B conformance: the Mean-by-Mean sequences produced through
//! each distribution's `conditional_mean_above` must match the *explicit*
//! recursive formulas of Table 6, re-implemented here independently.

use rsj_core::{CostModel, MeanByMean, Strategy};
use rsj_dist::prelude::*;
use rsj_dist::special::beta::{beta, beta_inc_unreg};
use rsj_dist::special::erf::erf;
use rsj_dist::special::gamma::{gamma, upper_incomplete_gamma};

fn mean_by_mean(dist: &dyn ContinuousDistribution, k: usize) -> Vec<f64> {
    let seq = MeanByMean::default()
        .sequence(dist, &CostModel::reservation_only())
        .unwrap();
    seq.times().iter().copied().take(k).collect()
}

fn assert_seq_close(ours: &[f64], reference: &[f64], tol: f64, label: &str) {
    for (i, (a, b)) in ours.iter().zip(reference).enumerate() {
        assert!(
            (a - b).abs() / b.abs().max(1e-12) < tol,
            "{label}[{i}]: ours {a} vs Table 6 {b}"
        );
    }
}

#[test]
fn exponential_table6() {
    // tᵢ = i/λ.
    let lambda = 1.7;
    let d = Exponential::new(lambda).unwrap();
    let ours = mean_by_mean(&d, 8);
    let reference: Vec<f64> = (1..=8).map(|i| i as f64 / lambda).collect();
    assert_seq_close(&ours, &reference, 1e-10, "Exponential");
}

#[test]
fn weibull_table6() {
    // tᵢ = λ·Rᵢ, R₁ = Γ(1 + 1/κ), Rᵢ = e^{Rᵢ₋₁^κ}·Γ(1 + 1/κ, Rᵢ₋₁^κ).
    let (lambda, kappa) = (1.0, 0.5);
    let d = Weibull::new(lambda, kappa).unwrap();
    let ours = mean_by_mean(&d, 6);
    let mut reference = Vec::new();
    let mut r = gamma(1.0 + 1.0 / kappa);
    reference.push(lambda * r);
    for _ in 1..6 {
        let z = r.powf(kappa);
        r = z.exp() * upper_incomplete_gamma(1.0 + 1.0 / kappa, z);
        reference.push(lambda * r);
    }
    assert_seq_close(&ours, &reference, 1e-9, "Weibull");
}

#[test]
fn gamma_table6() {
    // tᵢ = Rᵢ/β, R₁ = α, Rᵢ = α + Rᵢ₋₁^α·e^{-Rᵢ₋₁}/Γ(α, Rᵢ₋₁).
    let (alpha, beta_rate) = (2.0, 2.0);
    let d = GammaDist::new(alpha, beta_rate).unwrap();
    let ours = mean_by_mean(&d, 6);
    let mut reference = Vec::new();
    let mut r = alpha;
    reference.push(r / beta_rate);
    for _ in 1..6 {
        r = alpha + r.powf(alpha) * (-r).exp() / upper_incomplete_gamma(alpha, r);
        reference.push(r / beta_rate);
    }
    assert_seq_close(&ours, &reference, 1e-9, "Gamma");
}

#[test]
fn lognormal_table6() {
    // tᵢ = e^{μ+σ²/2}·Rᵢ, R₁ = 1,
    // Rᵢ = (1 + erf((σ² - 2·ln Rᵢ₋₁)/(2√2·σ))) / (1 - erf((σ² + 2·ln Rᵢ₋₁)/(2√2·σ))).
    let (mu, sigma) = (3.0, 0.5);
    let d = LogNormal::new(mu, sigma).unwrap();
    let ours = mean_by_mean(&d, 6);
    let scale = (mu + sigma * sigma / 2.0).exp();
    let mut reference = Vec::new();
    let mut r: f64 = 1.0;
    reference.push(scale * r);
    for _ in 1..6 {
        let s2 = sigma * sigma;
        let den = 2.0 * std::f64::consts::SQRT_2 * sigma;
        r = (1.0 + erf((s2 - 2.0 * r.ln()) / den)) / (1.0 - erf((s2 + 2.0 * r.ln()) / den));
        reference.push(scale * r);
    }
    assert_seq_close(&ours, &reference, 1e-8, "LogNormal");
}

#[test]
fn truncated_normal_table6_shape() {
    // Table 6's compact form for the TruncatedNormal contains typos (see
    // the Table 5 variance discrepancy documented in rsj-dist); we verify
    // the defining property instead: each step is the exact conditional
    // mean E[X | X > tᵢ₋₁] = μ + σ·λ((tᵢ₋₁-μ)/σ), with λ the inverse
    // Mills ratio — evaluated here through the independent erf route.
    let (mu, sigma, a) = (8.0, 2.0f64.sqrt(), 0.0);
    let d = TruncatedNormal::new(mu, sigma, a).unwrap();
    let ours = mean_by_mean(&d, 6);
    let mills = |z: f64| {
        let phi = (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt();
        let tail = 0.5 * (1.0 - erf(z / std::f64::consts::SQRT_2));
        phi / tail
    };
    let mut reference = Vec::new();
    let mut t = mu + sigma * mills((a - mu) / sigma); // the mean
    reference.push(t);
    for _ in 1..6 {
        t = mu + sigma * mills((t - mu) / sigma);
        reference.push(t);
    }
    assert_seq_close(&ours, &reference, 1e-8, "TruncatedNormal");
}

#[test]
fn pareto_table6() {
    // t₁ = αν/(α-1), tᵢ = α/(α-1)·tᵢ₋₁.
    let (nu, alpha) = (1.5, 3.0);
    let d = Pareto::new(nu, alpha).unwrap();
    let ours = mean_by_mean(&d, 8);
    let ratio = alpha / (alpha - 1.0);
    let mut reference = vec![ratio * nu];
    for i in 1..8 {
        reference.push(reference[i - 1] * ratio);
    }
    assert_seq_close(&ours, &reference, 1e-10, "Pareto");
}

#[test]
fn uniform_table6() {
    // t₁ = (a+b)/2, tᵢ = (tᵢ₋₁ + b)/2.
    let (a, b) = (10.0, 20.0);
    let d = Uniform::new(a, b).unwrap();
    let ours = mean_by_mean(&d, 6);
    let mut reference = vec![(a + b) / 2.0];
    for i in 1..6 {
        reference.push((reference[i - 1] + b) / 2.0);
    }
    // The final materialized element may be the clamped b itself; compare
    // the strictly interior prefix.
    let interior = ours.len().min(reference.len());
    assert_seq_close(
        &ours[..interior - 1],
        &reference[..interior - 1],
        1e-12,
        "Uniform",
    );
}

#[test]
fn beta_table6() {
    // t₁ = α/(α+β), tᵢ = [B(α+1,β) - B(tᵢ₋₁;α+1,β)]/[B(α,β) - B(tᵢ₋₁;α,β)].
    let (al, be) = (2.0, 2.0);
    let d = BetaDist::new(al, be).unwrap();
    let ours = mean_by_mean(&d, 6);
    let mut reference = vec![al / (al + be)];
    for i in 1..6 {
        let t = reference[i - 1];
        reference.push(
            (beta(al + 1.0, be) - beta_inc_unreg(al + 1.0, be, t))
                / (beta(al, be) - beta_inc_unreg(al, be, t)),
        );
    }
    let interior = ours.len().min(reference.len()) - 1;
    assert_seq_close(&ours[..interior], &reference[..interior], 1e-9, "Beta");
}

#[test]
fn bounded_pareto_table6() {
    // tᵢ = α/(α-1)·(H^{1-α} - tᵢ₋₁^{1-α})/(H^{-α} - tᵢ₋₁^{-α}), t₀ = mean's L-form.
    let (l, h, alpha) = (1.0, 20.0, 2.1);
    let d = BoundedPareto::new(l, h, alpha).unwrap();
    let ours = mean_by_mean(&d, 6);
    let step = |prev: f64| {
        alpha / (alpha - 1.0) * (h.powf(1.0 - alpha) - prev.powf(1.0 - alpha))
            / (h.powf(-alpha) - prev.powf(-alpha))
    };
    // t₁ is the mean, which equals the recursion evaluated from L.
    let mut reference = vec![step(l)];
    for i in 1..6 {
        reference.push(step(reference[i - 1]));
    }
    let interior = ours.len().min(reference.len()) - 1;
    assert_seq_close(
        &ours[..interior],
        &reference[..interior],
        1e-9,
        "BoundedPareto",
    );
}

/// Theorem 3's first-order optimality condition (Eq. 9) holds along the
/// brute-force optimum: for interior i,
/// `α·tᵢ₊₁ + β·tᵢ + γ ≈ α·(1-F(tᵢ₋₁))/f(tᵢ) + β·(1-F(tᵢ))/f(tᵢ)`.
#[test]
fn eq9_optimality_condition_along_brute_force_optimum() {
    use rsj_core::{BruteForce, EvalMethod};
    let d = LogNormal::new(3.0, 0.5).unwrap();
    let c = CostModel::new(1.0, 0.5, 0.1).unwrap();
    let bf = BruteForce::new(3000, 1000, EvalMethod::Analytic, 1).unwrap();
    let seq = bf.sequence(&d, &c).unwrap();
    let t = seq.times();
    assert!(t.len() >= 4);
    for i in 1..3 {
        let lhs = c.alpha * t[i + 1] + c.beta * t[i] + c.gamma;
        let rhs =
            c.alpha * d.survival(t[i - 1]) / d.pdf(t[i]) + c.beta * d.survival(t[i]) / d.pdf(t[i]);
        assert!(
            (lhs - rhs).abs() / rhs < 1e-6,
            "Eq. 9 violated at i={i}: lhs {lhs} vs rhs {rhs}"
        );
    }
}
