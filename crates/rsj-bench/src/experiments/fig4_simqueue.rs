//! Closing the loop across substrates (beyond the paper's evaluation):
//! rerun the Figure 4 comparison with the NeuroHPC cost model derived from
//! *our own* simulated batch queue (Figure 2's fit) instead of the paper's
//! published Intrepid coefficients.
//!
//! If the paper's qualitative conclusion is robust, the heuristic ordering
//! must not depend on whose queue produced the `(α, γ)` pair.

use crate::report::{fmt_ratio, Table};
use crate::scenarios::{heuristic_suite, Fidelity};
use rand::SeedableRng;
use rsj_core::{draw_samples, expected_cost_monte_carlo, CostModel};
use rsj_dist::ContinuousDistribution;
use rsj_sim::cost_model_from_queue;
use rsj_traces::NeuroHpcScenario;

/// Result: the derived cost model plus each heuristic's normalized cost on
/// the base VBMQA scenario under it.
#[derive(Debug, Clone)]
pub struct SimQueueFig4 {
    /// Cost model fitted from the simulated queue (409-processor class).
    pub cost: CostModel,
    /// `(heuristic, Ẽ(S)/E°)` in suite order.
    pub costs: Vec<(String, Option<f64>)>,
}

/// Runs the cross-substrate experiment.
pub fn compute(fidelity: Fidelity, seed: u64) -> SimQueueFig4 {
    // 1. Figure 2's simulation → affine wait fit for the 409-wide class.
    let fig2 = super::fig2::compute(fidelity, seed);
    let analysis = fig2
        .analyses
        .iter()
        .find(|a| a.processors == 409)
        .or_else(|| fig2.analyses.first())
        .expect("the Figure 2 workload produces at least one analyzable width");
    let cost = cost_model_from_queue(analysis);

    // 2. Figure 4's base VBMQA law (hours) under the derived model.
    let scenario = NeuroHpcScenario::paper();
    let dist: &dyn ContinuousDistribution = &scenario.dist;
    let suite = heuristic_suite(fidelity, seed);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_mul(17));
    let samples = draw_samples(dist, fidelity.samples(), &mut rng);
    let omniscient = cost.omniscient(dist);
    let costs = suite
        .iter()
        .map(|h| {
            let ratio = h
                .sequence(dist, &cost)
                .ok()
                .map(|seq| expected_cost_monte_carlo(&seq, &cost, &samples) / omniscient);
            (h.name().to_string(), ratio)
        })
        .collect();
    SimQueueFig4 { cost, costs }
}

/// Runs and writes `results/fig4_simqueue.{md,csv}`.
pub fn emit(fidelity: Fidelity, seed: u64) -> std::io::Result<SimQueueFig4> {
    let result = compute(fidelity, seed);
    let mut header = vec!["cost model".to_string()];
    if !result.costs.is_empty() {
        header.extend(result.costs.iter().map(|(n, _)| n.clone()));
    }
    let mut table = Table::new(header);
    let mut cells = vec![format!(
        "α={:.3}, β=1, γ={:.3}",
        result.cost.alpha, result.cost.gamma
    )];
    cells.extend(result.costs.iter().map(|(_, c)| fmt_ratio(*c)));
    table.push_row(cells)?;
    table.emit(
        "fig4_simqueue",
        "Figure 4 variant — NeuroHPC under the cost model fitted from OUR simulated queue (cross-substrate robustness)",
    )?;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristic_ordering_survives_the_queue_swap() {
        let r = compute(Fidelity::Quick, 47);
        assert_eq!(r.costs.len(), 7);
        let get = |idx: usize| r.costs[idx].1.unwrap();
        // Paper conclusion under the swapped cost model: structured
        // heuristics (Brute-Force, Equal-time, Equal-probability) at least
        // match the best simple rule.
        let structured = get(0).min(get(5)).min(get(6));
        let simple_best = get(1).min(get(2)).min(get(3)).min(get(4));
        assert!(
            structured <= simple_best + 0.05,
            "structured {structured} vs simple {simple_best}"
        );
        // The derived model is valid and distinct from the paper's.
        assert!(r.cost.alpha > 0.0 && r.cost.beta == 1.0 && r.cost.gamma >= 0.0);
    }
}
