//! Theory-level integration tests: the paper's analytic results hold
//! across the crate boundaries (exact solutions vs heuristics vs
//! evaluators).

use reservation_strategies::prelude::*;
use rsj_core::exact::{exp_optimal_cost, exp_optimal_s1};
use rsj_core::exact::{uniform_optimal_cost, uniform_optimal_sequence};
use rsj_core::{expected_cost_analytic, normalized_cost_analytic};
use rsj_dist::{Exponential, Uniform};

/// Theorem 4 + Table 2: every heuristic on Uniform(10, 20) is bounded
/// below by the single-reservation optimum, which Brute-Force and the DP
/// heuristics attain exactly.
#[test]
fn uniform_optimum_attained_by_structured_heuristics() {
    let d = Uniform::new(10.0, 20.0).unwrap();
    let c = CostModel::reservation_only();
    let optimal = uniform_optimal_cost(&d, &c);
    assert_eq!(uniform_optimal_sequence(&d).unwrap().times(), &[20.0]);

    let structured: Vec<Box<dyn Strategy>> = vec![
        Box::new(BruteForce::new(500, 500, EvalMethod::Analytic, 1).unwrap()),
        Box::new(DiscretizedDp::new(DiscretizationScheme::EqualTime, 200, 1e-7).unwrap()),
        Box::new(DiscretizedDp::new(DiscretizationScheme::EqualProbability, 200, 1e-7).unwrap()),
    ];
    for h in &structured {
        let seq = h.sequence(&d, &c).unwrap();
        let e = expected_cost_analytic(&seq, &d, &c);
        assert!((e - optimal).abs() < 1e-6, "{}: {e} vs {optimal}", h.name());
    }

    let simple: Vec<Box<dyn Strategy>> = vec![
        Box::new(MeanByMean::default()),
        Box::new(MeanStdev::default()),
        Box::new(MeanDoubling::default()),
        Box::new(MedianByMedian::default()),
    ];
    for h in &simple {
        let seq = h.sequence(&d, &c).unwrap();
        let e = expected_cost_analytic(&seq, &d, &c);
        assert!(e > optimal, "{} cannot beat Theorem 4", h.name());
    }
}

/// §3.5: the scale-free exponential optimum is matched by Brute-Force and
/// approached by the DP heuristic.
#[test]
fn exponential_optimum_cross_check() {
    let c = CostModel::reservation_only();
    for lambda in [0.5, 1.0, 2.0] {
        let d = Exponential::new(lambda).unwrap();
        let closed = exp_optimal_cost(lambda);
        // Brute-Force (analytic scoring) gets within a few percent.
        let bf = BruteForce::new(1500, 1000, EvalMethod::Analytic, 2).unwrap();
        let r = bf.best(&d, &c).unwrap();
        assert!(
            (r.expected_cost - closed).abs() / closed < 0.05,
            "λ={lambda}: bf {} vs closed {closed}",
            r.expected_cost
        );
        // DP heuristic likewise.
        let dp = DiscretizedDp::new(DiscretizationScheme::EqualProbability, 800, 1e-7).unwrap();
        let seq = dp.sequence(&d, &c).unwrap();
        let e = expected_cost_analytic(&seq, &d, &c);
        assert!(
            (e - closed).abs() / closed < 0.05,
            "λ={lambda}: dp {e} vs closed {closed}"
        );
    }
}

/// Proposition 2's scale law: normalized costs are λ-invariant.
#[test]
fn exponential_normalized_cost_is_scale_free() {
    let c = CostModel::reservation_only();
    let s1 = exp_optimal_s1();
    let mut ratios = Vec::new();
    for lambda in [0.25, 1.0, 4.0] {
        let d = Exponential::new(lambda).unwrap();
        let seq =
            rsj_core::sequence_from_t1(&d, &c, s1 / lambda, &rsj_core::RecurrenceConfig::default())
                .unwrap();
        ratios.push(normalized_cost_analytic(&seq, &d, &c));
    }
    for w in ratios.windows(2) {
        assert!(
            (w[0] - w[1]).abs() < 1e-6,
            "normalized costs must match: {ratios:?}"
        );
    }
}

/// Theorem 2: every heuristic's expected cost respects the A₂ bound.
#[test]
fn theorem2_bound_holds_for_all_heuristics() {
    let c = CostModel::new(1.0, 0.5, 0.25).unwrap();
    for (name, spec) in rsj_dist::DistSpec::paper_table1() {
        let dist = spec.build().unwrap();
        if dist.support().is_bounded() {
            continue; // Theorem 2 targets unbounded supports
        }
        let a2 = rsj_core::upper_bound_expected_cost(dist.as_ref(), &c);
        let seq = BruteForce::new(400, 500, EvalMethod::Analytic, 3)
            .unwrap()
            .sequence(dist.as_ref(), &c)
            .unwrap();
        let e = expected_cost_analytic(&seq, dist.as_ref(), &c);
        assert!(e <= a2 + 1e-9, "{name}: {e} exceeds A₂ = {a2}");
    }
}

/// Theorem 5's DP is optimal: no heuristic sequence restricted to the same
/// support beats it on the discrete instance.
#[test]
fn dp_optimality_against_heuristic_projections() {
    use rsj_core::heuristics::{discrete_sequence_cost, optimal_discrete};
    let d = rsj_dist::Exponential::new(1.0).unwrap();
    let c = CostModel::new(1.0, 1.0, 0.5).unwrap();
    let discrete =
        rsj_dist::discretize(&d, DiscretizationScheme::EqualProbability, 60, 1e-6).unwrap();
    let sol = optimal_discrete(&discrete, &c).unwrap();
    let n = discrete.len();

    // Project a few hand-built ladders onto the support and compare.
    let ladders: Vec<Vec<usize>> = vec![
        (0..n).collect(),                           // reserve every value
        vec![n - 1],                                // single max reservation
        (0..n).step_by(7).chain([n - 1]).collect(), // coarse ladder
    ];
    for mut ladder in ladders {
        ladder.dedup();
        if *ladder.last().unwrap() != n - 1 {
            ladder.push(n - 1);
        }
        let cost_val = discrete_sequence_cost(&discrete, &c, &ladder);
        assert!(
            sol.expected_cost <= cost_val + 1e-9,
            "DP {} must not exceed ladder {}",
            sol.expected_cost,
            cost_val
        );
    }
}

/// Eq. 4 (analytic) and Eq. 13 (Monte Carlo) agree for every heuristic on
/// a representative distribution.
#[test]
fn analytic_and_monte_carlo_evaluators_agree() {
    use rand::SeedableRng;
    let d = rsj_dist::GammaDist::new(2.0, 2.0).unwrap();
    let c = CostModel::new(0.95, 1.0, 1.05).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(55);
    let samples = rsj_core::draw_samples(&d, 200_000, &mut rng);
    for h in [
        Box::new(MeanByMean::default()) as Box<dyn Strategy>,
        Box::new(MeanStdev::default()),
        Box::new(MedianByMedian::default()),
    ] {
        let seq = h.sequence(&d, &c).unwrap();
        let a = expected_cost_analytic(&seq, &d, &c);
        let m = rsj_core::expected_cost_monte_carlo(&seq, &c, &samples);
        assert!(
            (a - m).abs() / a < 0.01,
            "{}: analytic {a} vs MC {m}",
            h.name()
        );
    }
}
