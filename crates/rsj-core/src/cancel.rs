//! Cooperative cancellation for long solver runs.
//!
//! A [`CancelToken`] combines an explicit cancellation flag (raised by
//! another thread via [`CancelToken::cancel`]) with an optional wall-clock
//! deadline. Solvers poll it at loop granularity — once per DP state, once
//! per brute-force candidate — and bail out with [`CoreError::Cancelled`]
//! instead of finishing a result nobody will read. This is what lets a
//! serving layer enforce per-request deadlines *inside* a solve rather
//! than only before it starts.
//!
//! The default token ([`CancelToken::none`]) carries neither flag nor
//! deadline; checking it is a branch on two `None`s, so un-cancellable
//! call sites pay nothing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::{CoreError, Result};

/// A cloneable cancellation signal: an optional shared flag plus an
/// optional deadline. Clones observe the same flag, so cancelling any
/// clone cancels them all.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Option<Arc<AtomicBool>>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that can never fire: no flag, no deadline.
    pub fn none() -> Self {
        Self::default()
    }

    /// A token with a flag that [`cancel`](Self::cancel) raises.
    pub fn new() -> Self {
        Self {
            flag: Some(Arc::new(AtomicBool::new(false))),
            deadline: None,
        }
    }

    /// A flagged token that also fires once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        Self {
            flag: Some(Arc::new(AtomicBool::new(false))),
            deadline: Some(deadline),
        }
    }

    /// A flagged token firing after `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        Self::with_deadline(Instant::now() + timeout)
    }

    /// Raises the flag. Idempotent; a no-op on flagless tokens.
    pub fn cancel(&self) {
        if let Some(flag) = &self.flag {
            flag.store(true, Ordering::Relaxed);
        }
    }

    /// Whether the flag is up or the deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        if let Some(flag) = &self.flag {
            if flag.load(Ordering::Relaxed) {
                return true;
            }
        }
        match self.deadline {
            Some(deadline) => Instant::now() >= deadline,
            None => false,
        }
    }

    /// `Err(CoreError::Cancelled)` once the token has fired — the form
    /// solver loops use with `?`.
    pub fn check(&self) -> Result<()> {
        if self.is_cancelled() {
            return Err(CoreError::Cancelled);
        }
        Ok(())
    }

    /// Time left until the deadline; `None` when there is no deadline.
    /// Zero once the deadline has passed.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// The wall-clock deadline, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fires() {
        let t = CancelToken::none();
        assert!(!t.is_cancelled());
        t.cancel(); // no-op, must not panic
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
        assert!(t.remaining().is_none());
    }

    #[test]
    fn flag_is_shared_across_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!clone.is_cancelled());
        t.cancel();
        assert!(clone.is_cancelled());
        assert_eq!(clone.check(), Err(CoreError::Cancelled));
    }

    #[test]
    fn past_deadline_fires_without_cancel() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        assert_eq!(t.remaining(), Some(Duration::ZERO));
        let future = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(!future.is_cancelled());
        assert!(future.remaining().unwrap() > Duration::from_secs(3000));
    }
}
