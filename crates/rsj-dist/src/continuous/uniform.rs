//! Uniform distribution `Uniform(a, b)` (Table 1 / Table 5 / Theorem 11).
//!
//! The one distribution for which the paper proves a closed-form optimal
//! strategy: the single reservation `S° = (b)` (Theorem 4).

use crate::error::{check_param, Result};
use crate::traits::{ContinuousDistribution, Support};

/// Uniform distribution on `[a, b]` with `0 ≤ a < b`.
///
/// Paper instantiation: `a = 10`, `b = 20`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    a: f64,
    b: f64,
}

impl Uniform {
    /// Creates a `Uniform(a, b)` distribution.
    pub fn new(a: f64, b: f64) -> Result<Self> {
        check_param("a", a, "must be >= 0 and finite", a >= 0.0)?;
        check_param("b", b, "must be finite and > a", b > a)?;
        Ok(Self { a, b })
    }

    /// Left endpoint `a`.
    pub fn lower(&self) -> f64 {
        self.a
    }

    /// Right endpoint `b`.
    pub fn upper(&self) -> f64 {
        self.b
    }
}

impl ContinuousDistribution for Uniform {
    fn name(&self) -> String {
        format!("Uniform(a={}, b={})", self.a, self.b)
    }

    fn cache_key(&self) -> Option<String> {
        Some(self.name())
    }

    fn support(&self) -> Support {
        Support::Bounded {
            lower: self.a,
            upper: self.b,
        }
    }

    fn pdf(&self, t: f64) -> f64 {
        if (self.a..=self.b).contains(&t) {
            1.0 / (self.b - self.a)
        } else {
            0.0
        }
    }

    fn cdf(&self, t: f64) -> f64 {
        if t <= self.a {
            0.0
        } else if t >= self.b {
            1.0
        } else {
            (t - self.a) / (self.b - self.a)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile: p out of [0,1]: {p}");
        (1.0 - p) * self.a + p * self.b
    }

    fn mean(&self) -> f64 {
        0.5 * (self.a + self.b)
    }

    fn variance(&self) -> f64 {
        let w = self.b - self.a;
        w * w / 12.0
    }

    fn conditional_mean_above(&self, tau: f64) -> f64 {
        // Theorem 11: E[X | X > τ] = (b + τ)/2 for τ ∈ [a, b].
        let tau = tau.clamp(self.a, self.b);
        0.5 * (self.b + tau)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_instance() -> Uniform {
        Uniform::new(10.0, 20.0).unwrap()
    }

    #[test]
    fn rejects_bad_params() {
        assert!(Uniform::new(-1.0, 2.0).is_err());
        assert!(Uniform::new(3.0, 3.0).is_err());
        assert!(Uniform::new(5.0, 4.0).is_err());
    }

    #[test]
    fn moments() {
        let d = paper_instance();
        assert_eq!(d.mean(), 15.0);
        assert!((d.variance() - 100.0 / 12.0).abs() < 1e-13);
    }

    #[test]
    fn cdf_quantile_inverse() {
        let d = paper_instance();
        for &p in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            let t = d.quantile(p);
            assert!((d.cdf(t) - p).abs() < 1e-14, "p={p}");
        }
        assert_eq!(d.quantile(0.0), 10.0);
        assert_eq!(d.quantile(1.0), 20.0);
    }

    #[test]
    fn conditional_mean() {
        let d = paper_instance();
        assert_eq!(d.conditional_mean_above(0.0), 15.0); // below support: mean
        assert_eq!(d.conditional_mean_above(15.0), 17.5);
        assert_eq!(d.conditional_mean_above(20.0), 20.0);
    }

    #[test]
    fn conditional_mean_matches_quadrature() {
        let d = paper_instance();
        let tau = 13.0;
        let closed = d.conditional_mean_above(tau);
        let s = d.survival(tau);
        let numeric =
            tau + crate::quadrature::integrate(|t| d.survival(t), tau, 20.0, 1e-13).value / s;
        assert!((closed - numeric).abs() < 1e-9);
    }

    #[test]
    fn pdf_outside_support() {
        let d = paper_instance();
        assert_eq!(d.pdf(9.99), 0.0);
        assert_eq!(d.pdf(20.01), 0.0);
        assert_eq!(d.pdf(15.0), 0.1);
    }
}
