//! Synthetic neuroscience runtime archives (system S12).
//!
//! The paper's Figure 1 fits LogNormal laws to 5000+ archived runs of two
//! medical-imaging applications from Vanderbilt's private database \[14\]:
//! fMRIQA \[10\] and VBMQA \[16\]. We do not have that database; we synthesize
//! archives whose generating process matches the published fits, then run
//! the *same* fit → schedule pipeline the paper does (DESIGN.md §4.1).
//!
//! VBMQA's published fit is `LogNormal(μ=7.1128, σ=0.2039)` (seconds; §5.3).
//! The fMRIQA parameters are displayed only graphically in the paper, so a
//! plausible instance is used — it never feeds a quantitative experiment.

use crate::format::{TraceArchive, TraceRecord};
use rand::Rng;
use rand::RngCore;
use rsj_dist::{ContinuousDistribution, LogNormal};

/// VBMQA's published log-space location (seconds).
pub const VBMQA_MU: f64 = 7.1128;
/// VBMQA's published log-space scale.
pub const VBMQA_SIGMA: f64 = 0.2039;
/// fMRIQA synthetic log-space location (plausible instance; see module docs).
pub const FMRIQA_MU: f64 = 7.60;
/// fMRIQA synthetic log-space scale.
pub const FMRIQA_SIGMA: f64 = 0.35;
/// Archive span in days (July 2013 – October 2016).
pub const ARCHIVE_SPAN_DAYS: f64 = 1200.0;

/// Generator configuration for one application's synthetic archive.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Application name recorded in the archive.
    pub app: String,
    /// Generating law (runtimes in seconds).
    pub law: LogNormal,
    /// Number of runs (the paper has "over 5000").
    pub runs: usize,
    /// Fraction of contaminated runs (e.g. stragglers from preempted
    /// nodes), drawn uniformly from `[1, 3]×` the sampled runtime. Zero
    /// reproduces the clean published fit.
    pub contamination: f64,
}

impl SynthConfig {
    /// VBMQA with the paper's published fit parameters.
    pub fn vbmqa(runs: usize) -> Self {
        Self {
            app: "VBMQA".into(),
            law: LogNormal::new(VBMQA_MU, VBMQA_SIGMA).expect("published parameters are valid"),
            runs,
            contamination: 0.0,
        }
    }

    /// fMRIQA with the plausible synthetic parameters.
    pub fn fmriqa(runs: usize) -> Self {
        Self {
            app: "fMRIQA".into(),
            law: LogNormal::new(FMRIQA_MU, FMRIQA_SIGMA).expect("parameters are valid"),
            runs,
            contamination: 0.0,
        }
    }
}

/// Generates one application's archive.
pub fn synthesize(config: &SynthConfig, rng: &mut dyn RngCore) -> TraceArchive {
    assert!(config.runs > 0, "need at least one run");
    assert!(
        (0.0..=1.0).contains(&config.contamination),
        "contamination must be a fraction"
    );
    let mut records = Vec::with_capacity(config.runs);
    for _ in 0..config.runs {
        let day = rng.gen::<f64>() * ARCHIVE_SPAN_DAYS;
        let mut runtime = config.law.sample(rng);
        if rng.gen::<f64>() < config.contamination {
            runtime *= 1.0 + 2.0 * rng.gen::<f64>();
        }
        records.push(TraceRecord {
            app: config.app.clone(),
            day,
            runtime_secs: runtime,
        });
    }
    records.sort_by(|a, b| a.day.partial_cmp(&b.day).expect("finite days"));
    TraceArchive { records }
}

/// Generates the two-application archive of Figure 1.
pub fn figure1_archive(runs_per_app: usize, rng: &mut dyn RngCore) -> TraceArchive {
    let mut a = synthesize(&SynthConfig::fmriqa(runs_per_app), rng);
    let b = synthesize(&SynthConfig::vbmqa(runs_per_app), rng);
    a.records.extend(b.records);
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vbmqa_sample_mean_matches_published() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let archive = synthesize(&SynthConfig::vbmqa(5000), &mut rng);
        let runtimes = archive.runtimes_of("VBMQA");
        let mean = runtimes.iter().sum::<f64>() / runtimes.len() as f64;
        // Published natural mean ≈ 1253.37 s.
        assert!((mean - 1253.37).abs() < 20.0, "mean {mean}");
    }

    #[test]
    fn archive_sorted_by_day_within_app() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let archive = synthesize(&SynthConfig::vbmqa(100), &mut rng);
        for w in archive.records.windows(2) {
            assert!(w[0].day <= w[1].day);
        }
        assert!(archive
            .records
            .iter()
            .all(|r| (0.0..=ARCHIVE_SPAN_DAYS).contains(&r.day)));
    }

    #[test]
    fn contamination_raises_mean() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let clean = synthesize(&SynthConfig::vbmqa(4000), &mut rng);
        let mut cfg = SynthConfig::vbmqa(4000);
        cfg.contamination = 0.3;
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let dirty = synthesize(&cfg, &mut rng);
        let m = |a: &TraceArchive| {
            let r = a.runtimes_of("VBMQA");
            r.iter().sum::<f64>() / r.len() as f64
        };
        assert!(m(&dirty) > m(&clean) * 1.1);
    }

    #[test]
    fn figure1_has_both_apps() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(24);
        let archive = figure1_archive(500, &mut rng);
        assert_eq!(archive.runtimes_of("fMRIQA").len(), 500);
        assert_eq!(archive.runtimes_of("VBMQA").len(), 500);
    }
}
