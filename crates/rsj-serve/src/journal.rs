//! The durable plan journal: a CRC32-framed, append-only record log.
//!
//! Every solved `(cache_key, Plan)` pair becomes one framed record:
//!
//! ```text
//! ┌───────────┬──────────┬──────────┬──────────────────┐
//! │ magic (4) │ len (4)  │ crc (4)  │ payload (len)    │
//! │ "RSJ1"    │ u32 LE   │ u32 LE   │ JSON JournalRecord│
//! └───────────┴──────────┴──────────┴──────────────────┘
//! ```
//!
//! The CRC-32 (IEEE, the zlib/PNG polynomial) covers the payload bytes, so
//! any single-byte corruption of a frame — header or body — is detected.
//! Snapshot files (see [`crate::snapshot`]) reuse the identical framing:
//! one codec, one recovery reader.
//!
//! Decoding is *forensic*, never trusting: the [`RecordScanner`] walks a
//! byte buffer frame by frame, and every way a frame can be damaged maps
//! to a typed [`RecordFault`] — bad magic, implausible length, CRC
//! mismatch, unparsable payload, a plan whose recomputed FNV-1a digest
//! disagrees with the journaled one, or a torn tail (the crash window of
//! an append that never finished). Faulty frames are **skipped with a
//! typed error, never a panic**: after a fault the scanner resynchronizes
//! by searching for the next magic marker, so one flipped bit cannot take
//! out the rest of the log. `"RSJ1"` has no border (no proper prefix that
//! is also a suffix), so a resync scan can never step over a genuine
//! frame start.
//!
//! Durability model: [`JournalWriter::append`] flushes each record to the
//! OS before returning, so everything acknowledged to a client survives
//! `kill -9` (process death). Surviving *machine* death too requires
//! `fsync: true`, which additionally issues `sync_data` per append.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use reservation_strategies::{plan_digest, Plan};
use serde::{Deserialize, Serialize};

/// Frame marker; chosen with no border so resync scans cannot skip a
/// genuine frame start.
pub const RECORD_MAGIC: [u8; 4] = *b"RSJ1";

/// Frame header size: magic + payload length + payload CRC.
pub const RECORD_HEADER_BYTES: usize = 12;

/// Upper bound on one record's payload; larger lengths are treated as
/// corruption (a flipped bit in the length field), not as allocations.
pub const MAX_RECORD_BYTES: usize = 64 << 20;

/// The default journal file name inside a `--journal-dir`.
pub const JOURNAL_FILE: &str = "journal.log";

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the zlib/PNG
/// checksum. Table-driven, built once per process.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// One journaled unit of work: the composite cache key and the plan the
/// solver produced for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalRecord {
    /// The server's composite cache key (`Planner::cache_key` + simulate
    /// options) — exactly what the warm cache is keyed on.
    pub key: String,
    /// The solved plan, digest included.
    pub plan: Plan,
}

/// Why the journal could not be written.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The record did not serialize (a bug, not an operational fault).
    Encode(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o error: {e}"),
            JournalError::Encode(m) => write!(f, "journal encode error: {m}"),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            JournalError::Encode(_) => None,
        }
    }
}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// A typed decoding fault: one damaged frame, located by byte offset.
/// Recovery skips the frame, counts the fault, and carries on — these are
/// diagnoses, not panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordFault {
    /// The bytes at `offset` are not a frame start (bit rot in the magic,
    /// or garbage between frames).
    BadMagic {
        /// Byte offset of the damaged region.
        offset: u64,
    },
    /// The length field is implausible (> [`MAX_RECORD_BYTES`]).
    BadLength {
        /// Byte offset of the frame header.
        offset: u64,
        /// The length the damaged header claimed.
        claimed: u32,
    },
    /// The payload does not match its CRC — at least one corrupted byte.
    BadCrc {
        /// Byte offset of the frame header.
        offset: u64,
        /// CRC stored in the header.
        stored: u32,
        /// CRC recomputed over the payload as read.
        computed: u32,
    },
    /// The CRC held but the payload is not a valid `JournalRecord` (a
    /// record written by an incompatible schema, or a CRC collision).
    BadPayload {
        /// Byte offset of the frame header.
        offset: u64,
        /// Parser diagnostic.
        reason: String,
    },
    /// The decoded plan's recomputed FNV-1a sequence digest disagrees
    /// with the digest stored inside it — the plan is internally
    /// inconsistent and must not be served.
    DigestMismatch {
        /// Byte offset of the frame header.
        offset: u64,
        /// The record's cache key, for the operator's log.
        key: String,
    },
    /// The buffer ends mid-frame: the crash window of an unfinished
    /// append. Always the final event of a scan.
    TornTail {
        /// Byte offset where the torn frame starts.
        offset: u64,
        /// How many more bytes the frame needed.
        missing: usize,
    },
}

impl fmt::Display for RecordFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordFault::BadMagic { offset } => write!(f, "bad magic at offset {offset}"),
            RecordFault::BadLength { offset, claimed } => {
                write!(f, "implausible length {claimed} at offset {offset}")
            }
            RecordFault::BadCrc {
                offset,
                stored,
                computed,
            } => write!(
                f,
                "crc mismatch at offset {offset} (stored {stored:08x}, computed {computed:08x})"
            ),
            RecordFault::BadPayload { offset, reason } => {
                write!(f, "unparsable payload at offset {offset}: {reason}")
            }
            RecordFault::DigestMismatch { offset, key } => {
                write!(f, "plan digest mismatch at offset {offset} (key {key})")
            }
            RecordFault::TornTail { offset, missing } => {
                write!(f, "torn tail at offset {offset} ({missing} bytes missing)")
            }
        }
    }
}

/// Encodes one record as a complete frame (header + payload).
pub fn encode_record(record: &JournalRecord) -> Result<Vec<u8>, JournalError> {
    let payload = serde_json::to_string(record)
        .map_err(|e| JournalError::Encode(e.to_string()))?
        .into_bytes();
    if payload.len() > MAX_RECORD_BYTES {
        return Err(JournalError::Encode(format!(
            "record payload {} bytes exceeds MAX_RECORD_BYTES",
            payload.len()
        )));
    }
    let mut frame = Vec::with_capacity(RECORD_HEADER_BYTES + payload.len());
    frame.extend_from_slice(&RECORD_MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    Ok(frame)
}

/// A scanned frame: its header offset and the decoded record.
pub type ScannedRecord = (u64, JournalRecord);

/// Walks a framed byte buffer, yielding decoded records and typed faults
/// in file order. Never panics on any input; after a fault it
/// resynchronizes on the next [`RECORD_MAGIC`] occurrence.
///
/// The whole log is scanned from memory: journals are compacted into
/// snapshots every `--snapshot-every` appends, so the tail being replayed
/// stays small (and a snapshot is exactly one compacted journal).
pub struct RecordScanner<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> RecordScanner<'a> {
    /// A scanner over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Finds the next occurrence of [`RECORD_MAGIC`] at or after `from`,
    /// or the end of the buffer.
    fn resync(&self, from: usize) -> usize {
        let mut i = from;
        while i + RECORD_MAGIC.len() <= self.buf.len() {
            if self.buf[i..i + RECORD_MAGIC.len()] == RECORD_MAGIC {
                return i;
            }
            i += 1;
        }
        self.buf.len()
    }
}

impl Iterator for RecordScanner<'_> {
    type Item = Result<ScannedRecord, RecordFault>;

    fn next(&mut self) -> Option<Self::Item> {
        let offset = self.pos;
        let remaining = self.buf.len() - offset;
        if remaining == 0 {
            return None;
        }
        if remaining < RECORD_HEADER_BYTES {
            // Not even a header fits: either a torn append or trailing
            // garbage. If it starts like a frame, call it torn.
            self.pos = self.buf.len();
            if self.buf[offset..].starts_with(&RECORD_MAGIC[..remaining.min(4)]) {
                return Some(Err(RecordFault::TornTail {
                    offset: offset as u64,
                    missing: RECORD_HEADER_BYTES - remaining,
                }));
            }
            return Some(Err(RecordFault::BadMagic {
                offset: offset as u64,
            }));
        }
        if self.buf[offset..offset + 4] != RECORD_MAGIC {
            // Garbage (or a zeroed tail): report once, then hunt for
            // the next frame start.
            self.pos = self.resync(offset + 1);
            return Some(Err(RecordFault::BadMagic {
                offset: offset as u64,
            }));
        }
        let len = u32::from_le_bytes(
            self.buf[offset + 4..offset + 8]
                .try_into()
                .expect("4 bytes"),
        );
        let stored_crc = u32::from_le_bytes(
            self.buf[offset + 8..offset + 12]
                .try_into()
                .expect("4 bytes"),
        );
        if len as usize > MAX_RECORD_BYTES {
            // A flipped bit in the length field; the rest of the header
            // cannot be trusted either, so resync past this magic.
            self.pos = self.resync(offset + 4);
            return Some(Err(RecordFault::BadLength {
                offset: offset as u64,
                claimed: len,
            }));
        }
        let body_start = offset + RECORD_HEADER_BYTES;
        let body_end = body_start + len as usize;
        if body_end > self.buf.len() {
            // The append never finished (crash window) — or a flipped
            // length bit points past the end. A true torn tail is the
            // *last* thing in the file, so if another frame start
            // exists later, the length was lying: skip there instead
            // of abandoning readable records.
            let next = self.resync(offset + 4);
            if next < self.buf.len() {
                self.pos = next;
                return Some(Err(RecordFault::BadLength {
                    offset: offset as u64,
                    claimed: len,
                }));
            }
            self.pos = self.buf.len();
            return Some(Err(RecordFault::TornTail {
                offset: offset as u64,
                missing: body_end - self.buf.len(),
            }));
        }
        let payload = &self.buf[body_start..body_end];
        let computed = crc32(payload);
        if computed != stored_crc {
            // Corrupt payload or corrupt header: trust neither, resync
            // past this magic. (`RSJ1` has no border, so the scan
            // cannot step over a genuine later frame.)
            self.pos = self.resync(offset + 4);
            return Some(Err(RecordFault::BadCrc {
                offset: offset as u64,
                stored: stored_crc,
                computed,
            }));
        }
        // CRC-validated frame: the framing is sound even if the
        // payload semantics are not, so skip frame-aligned from here.
        self.pos = body_end;
        let record: JournalRecord = match serde_json::from_slice(payload) {
            Ok(r) => r,
            Err(e) => {
                return Some(Err(RecordFault::BadPayload {
                    offset: offset as u64,
                    reason: e.to_string(),
                }));
            }
        };
        if plan_digest(record.plan.sequence.iter().copied()) != record.plan.digest {
            return Some(Err(RecordFault::DigestMismatch {
                offset: offset as u64,
                key: record.key,
            }));
        }
        Some(Ok((offset as u64, record)))
    }
}

/// Byte spans of the well-formed frames in `buf`, in order. Used by the
/// chaos corruption injector to aim a fault at "record `i`".
pub fn frame_spans(buf: &[u8]) -> Vec<std::ops::Range<usize>> {
    let mut spans = Vec::new();
    let mut scanner = RecordScanner::new(buf);
    while let Some(item) = scanner.next() {
        if let Ok((offset, _)) = item {
            spans.push(offset as usize..scanner.pos);
        }
    }
    spans
}

/// The append half: an exclusive handle on `journal.log`, flushing each
/// record to the OS before acknowledging it.
#[derive(Debug)]
pub struct JournalWriter {
    file: BufWriter<File>,
    path: PathBuf,
    fsync: bool,
    appended: u64,
}

impl JournalWriter {
    /// Opens (creating if needed) the journal at `path` for appending.
    /// `fsync` additionally issues `sync_data` per append, extending the
    /// durability guarantee from process death to machine death.
    pub fn open(path: impl Into<PathBuf>, fsync: bool) -> Result<Self, JournalError> {
        let path = path.into();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Self {
            file: BufWriter::new(file),
            path,
            fsync,
            appended: 0,
        })
    }

    /// Appends one record and flushes it to the OS; returns the frame
    /// size in bytes. After `Ok`, the record survives `kill -9`.
    pub fn append(&mut self, record: &JournalRecord) -> Result<usize, JournalError> {
        let frame = encode_record(record)?;
        self.file.write_all(&frame)?;
        self.file.flush()?;
        if self.fsync {
            self.file.get_ref().sync_data()?;
        }
        self.appended += 1;
        Ok(frame.len())
    }

    /// Records appended through this handle (not counting pre-existing
    /// file contents).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Empties the journal — called right after a snapshot compaction has
    /// durably captured everything the journal held. The file is
    /// truncated in place and the handle reopened for appending.
    pub fn reset(&mut self) -> Result<(), JournalError> {
        self.file.flush()?;
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&self.path)?;
        if self.fsync {
            file.sync_all()?;
        }
        drop(file);
        let file = OpenOptions::new().append(true).open(&self.path)?;
        self.file = BufWriter::new(file);
        Ok(())
    }

    /// Forces everything buffered out to disk (`sync_data`), regardless
    /// of the per-append `fsync` setting.
    pub fn sync(&mut self) -> Result<(), JournalError> {
        self.file.flush()?;
        self.file.get_ref().sync_data()?;
        Ok(())
    }
}

/// Reads a journal (or snapshot) file fully into memory for scanning. A
/// missing file is an empty journal, not an error — the first boot of a
/// fresh `--journal-dir` has nothing to replay.
pub fn read_log_bytes(path: &Path) -> std::io::Result<Vec<u8>> {
    match std::fs::read(path) {
        Ok(bytes) => Ok(bytes),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn test_plan(tag: &str, seq: &[f64]) -> Plan {
        Plan {
            distribution: format!("dist-{tag}"),
            solver: "mean_by_mean".to_string(),
            sequence: seq.to_vec(),
            complete: true,
            expected_cost: 2.5,
            omniscient_cost: 1.25,
            normalized_cost: 2.0,
            coverage_gap: 0.0,
            digest: plan_digest(seq.iter().copied()),
            simulation: None,
        }
    }

    pub(crate) fn record(tag: &str, seq: &[f64]) -> JournalRecord {
        JournalRecord {
            key: format!("key-{tag}"),
            plan: test_plan(tag, seq),
        }
    }

    fn stream(records: &[JournalRecord]) -> Vec<u8> {
        let mut buf = Vec::new();
        for r in records {
            buf.extend_from_slice(&encode_record(r).expect("encode"));
        }
        buf
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_round_trip_bit_for_bit() {
        let records = vec![
            record("a", &[1.0, 2.5, 10.0]),
            record("b", &[0.125]),
            record("c", &[3.0, 4.0, 5.0, 6.0]),
        ];
        let buf = stream(&records);
        let decoded: Vec<_> = RecordScanner::new(&buf)
            .map(|r| r.expect("clean stream").1)
            .collect();
        assert_eq!(decoded, records);
    }

    #[test]
    fn torn_tail_is_typed_and_terminal() {
        let records = vec![record("a", &[1.0]), record("b", &[2.0])];
        let buf = stream(&records);
        // Cut mid-way through the second frame's payload.
        let spans = frame_spans(&buf);
        let cut = spans[1].start + RECORD_HEADER_BYTES + 3;
        let torn = &buf[..cut];
        let items: Vec<_> = RecordScanner::new(torn).collect();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].as_ref().expect("first intact").1, records[0]);
        assert!(
            matches!(items[1], Err(RecordFault::TornTail { .. })),
            "{:?}",
            items[1]
        );
    }

    #[test]
    fn header_torn_tail_is_typed() {
        let buf = stream(&[record("a", &[1.0])]);
        // Only the first 6 bytes of a header survive.
        let torn = &buf[..6];
        let items: Vec<_> = RecordScanner::new(torn).collect();
        assert_eq!(
            items,
            vec![Err(RecordFault::TornTail {
                offset: 0,
                missing: RECORD_HEADER_BYTES - 6,
            })]
        );
    }

    #[test]
    fn every_single_byte_flip_is_detected_and_skipped() {
        let records = vec![
            record("a", &[1.0, 2.0]),
            record("b", &[3.0, 4.0]),
            record("c", &[5.0, 6.0]),
        ];
        let buf = stream(&records);
        let spans = frame_spans(&buf);
        // Flip one byte somewhere in the middle record — header and body.
        for pos in spans[1].clone() {
            let mut damaged = buf.clone();
            damaged[pos] ^= 0x40;
            let mut ok = Vec::new();
            let mut faults = 0usize;
            for item in RecordScanner::new(&damaged) {
                match item {
                    Ok((_, r)) => ok.push(r),
                    Err(_) => faults += 1,
                }
            }
            assert!(faults >= 1, "flip at {pos} went undetected");
            // The damaged record never resurfaces silently wrong; its
            // neighbors always survive.
            assert!(
                ok.contains(&records[0]) && ok.contains(&records[2]),
                "flip at {pos} took out an undamaged neighbor"
            );
            assert!(
                !ok.iter().any(|r| r.key == "key-b" && *r != records[1]),
                "flip at {pos} produced a silently wrong record"
            );
        }
    }

    #[test]
    fn zeroed_tail_is_one_typed_fault() {
        let records = vec![record("a", &[1.0])];
        let mut buf = stream(&records);
        buf.extend_from_slice(&[0u8; 37]);
        let items: Vec<_> = RecordScanner::new(&buf).collect();
        assert_eq!(items.len(), 2);
        assert!(items[0].is_ok());
        assert!(
            matches!(items[1], Err(RecordFault::BadMagic { .. })),
            "{:?}",
            items[1]
        );
    }

    #[test]
    fn garbage_between_frames_resyncs_to_the_next_record() {
        let a = record("a", &[1.0]);
        let b = record("b", &[2.0]);
        let mut buf = encode_record(&a).unwrap();
        buf.extend_from_slice(b"\x07garbage bytes\xFF\xFE");
        buf.extend_from_slice(&encode_record(&b).unwrap());
        let mut ok = Vec::new();
        let mut faults = Vec::new();
        for item in RecordScanner::new(&buf) {
            match item {
                Ok((_, r)) => ok.push(r),
                Err(f) => faults.push(f),
            }
        }
        assert_eq!(ok, vec![a, b]);
        assert_eq!(faults.len(), 1, "{faults:?}");
    }

    #[test]
    fn duplicate_frames_decode_as_duplicates() {
        let a = record("a", &[1.0]);
        let mut buf = encode_record(&a).unwrap();
        let dup = buf.clone();
        buf.extend_from_slice(&dup);
        let decoded: Vec<_> = RecordScanner::new(&buf)
            .map(|r| r.expect("clean").1)
            .collect();
        assert_eq!(decoded, vec![a.clone(), a]);
    }

    #[test]
    fn forged_digest_is_a_typed_fault() {
        let mut bad = record("a", &[1.0, 2.0]);
        bad.plan.digest = "deadbeefdeadbeef".to_string();
        let buf = encode_record(&bad).unwrap();
        let items: Vec<_> = RecordScanner::new(&buf).collect();
        assert_eq!(items.len(), 1);
        assert!(
            matches!(items[0], Err(RecordFault::DigestMismatch { .. })),
            "{:?}",
            items[0]
        );
    }

    #[test]
    fn writer_appends_flushes_and_resets() {
        let dir = std::env::temp_dir().join(format!("rsj_journal_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(JOURNAL_FILE);
        let _ = std::fs::remove_file(&path);

        let mut writer = JournalWriter::open(&path, false).unwrap();
        let a = record("a", &[1.0]);
        let b = record("b", &[2.0]);
        writer.append(&a).unwrap();
        writer.append(&b).unwrap();
        assert_eq!(writer.appended(), 2);

        // Readable while the writer handle is still live (flushed per append).
        let bytes = read_log_bytes(&path).unwrap();
        let decoded: Vec<_> = RecordScanner::new(&bytes).map(|r| r.unwrap().1).collect();
        assert_eq!(decoded, vec![a, b.clone()]);

        // Reset empties the file; appends keep working afterwards.
        writer.reset().unwrap();
        assert!(read_log_bytes(&path).unwrap().is_empty());
        writer.append(&b).unwrap();
        let bytes = read_log_bytes(&path).unwrap();
        let decoded: Vec<_> = RecordScanner::new(&bytes).map(|r| r.unwrap().1).collect();
        assert_eq!(decoded, vec![b]);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_journal_reads_as_empty() {
        let path = std::env::temp_dir().join("rsj_journal_never_created.log");
        assert!(read_log_bytes(&path).unwrap().is_empty());
    }
}
