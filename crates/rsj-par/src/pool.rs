//! Scoped fork-join worker pool with deterministic chunked work
//! distribution.
//!
//! # Determinism contract
//!
//! Every entry point partitions its input into chunks whose boundaries
//! depend **only on the input length** — never on the thread count, the
//! claim order, or timing. Chunk results are written back keyed by chunk
//! index and recombined in chunk order, and reductions fold left-to-right
//! within each chunk and then left-to-right across chunk partials. The
//! single-thread path uses the *same* chunk shape, so for a deterministic
//! per-index task function the output is bit-for-bit identical at any
//! thread count. (For floating-point reductions this fixes one specific
//! association; callers get cross-thread-count reproducibility without
//! needing true associativity.)
//!
//! Work is distributed dynamically: workers claim chunk indices from a
//! shared atomic counter, so an expensive chunk does not stall the rest
//! of the batch. Dynamic claiming affects only *who* computes a chunk,
//! not *what* is computed — determinism is unaffected.

use crate::error::{panic_message, ParError};
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Upper bound on the number of chunks a call is split into. 256 keeps
/// per-chunk claim overhead negligible while leaving enough slack for
/// dynamic load balancing on wide machines (64 threads × 4 chunks each).
const TARGET_CHUNKS: usize = 256;

/// Process-wide thread-count override installed by the CLI `--threads`
/// flag. Zero means "not installed".
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Chunk size used for an input of `len` items. Depends only on `len`
/// (see the module-level determinism contract). Public so tests and
/// benchmarks can reason about the chunk shape.
pub fn chunk_size(len: usize) -> usize {
    (len / TARGET_CHUNKS).max(1)
}

/// A validated degree of parallelism. Construction rejects zero; the
/// fork-join methods never spawn more workers than there are chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    threads: NonZeroUsize,
}

impl Parallelism {
    /// Exactly `threads` workers. Errors with [`ParError::ZeroThreads`]
    /// when `threads == 0`.
    pub fn new(threads: usize) -> Result<Self, ParError> {
        NonZeroUsize::new(threads)
            .map(|threads| Parallelism { threads })
            .ok_or(ParError::ZeroThreads)
    }

    /// Single-threaded execution (always valid).
    pub fn serial() -> Self {
        Parallelism {
            threads: NonZeroUsize::MIN,
        }
    }

    /// The machine's available parallelism, or 1 when it cannot be
    /// determined.
    pub fn available() -> Self {
        Parallelism {
            threads: std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN),
        }
    }

    /// Strict environment lookup: honours `RSJ_THREADS` when set
    /// (rejecting `0` and non-integers with a typed error), otherwise
    /// falls back to [`Parallelism::available`]. Binaries should call
    /// this once at startup so a bad override fails loudly.
    pub fn from_env() -> Result<Self, ParError> {
        match std::env::var("RSJ_THREADS") {
            Ok(raw) if raw.trim().is_empty() => Ok(Self::available()),
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(0) => Err(ParError::ZeroThreads),
                Ok(n) => Self::new(n),
                Err(_) => Err(ParError::InvalidEnv { value: raw }),
            },
            Err(_) => Ok(Self::available()),
        }
    }

    /// The effective parallelism for library call sites: the installed
    /// global override if any, else `RSJ_THREADS`, else the machine
    /// parallelism. A malformed `RSJ_THREADS` logs a warning and degrades
    /// to serial execution rather than silently grabbing every core.
    ///
    /// The env/hardware fallback is resolved once per process: it costs
    /// an environment read plus a syscall, and call sites treat this as
    /// cheap enough for per-request paths. [`Parallelism::install_global`]
    /// still overrides it at any time.
    pub fn current() -> Self {
        let global = GLOBAL_THREADS.load(Ordering::Relaxed);
        if let Some(threads) = NonZeroUsize::new(global) {
            return Parallelism { threads };
        }
        static FALLBACK: std::sync::OnceLock<Parallelism> = std::sync::OnceLock::new();
        *FALLBACK.get_or_init(|| match Self::from_env() {
            Ok(par) => par,
            Err(e) => {
                rsj_obs::warn!("{e}; falling back to serial execution");
                Self::serial()
            }
        })
    }

    /// Installs `self` as the process-wide default returned by
    /// [`Parallelism::current`], overriding `RSJ_THREADS`. Used by the
    /// CLI `--threads` flag and by benchmarks that sweep thread counts.
    pub fn install_global(self) {
        GLOBAL_THREADS.store(self.threads.get(), Ordering::Relaxed);
    }

    /// Removes the process-wide override (tests).
    pub fn clear_global() {
        GLOBAL_THREADS.store(0, Ordering::Relaxed);
    }

    /// The number of worker threads this handle will use at most.
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// Maps `f` over `0..len` and returns the results in index order.
    /// Bit-for-bit identical to the serial loop for deterministic `f`;
    /// a panicking task surfaces as [`ParError::WorkerPanicked`].
    pub fn try_par_run<R, F>(&self, len: usize, f: F) -> Result<Vec<R>, ParError>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let chunk = chunk_size(len);
        let n_chunks = len.div_ceil(chunk);
        let per_chunk = self.run_chunks(n_chunks, |c| {
            let start = c * chunk;
            let end = (start + chunk).min(len);
            (start..end).map(&f).collect::<Vec<R>>()
        })?;
        record_tasks(len);
        Ok(per_chunk.into_iter().flatten().collect())
    }

    /// Slice variant of [`Parallelism::try_par_run`]; `f` receives the
    /// item index and a reference to the item.
    pub fn try_par_map<T, R, F>(&self, items: &[T], f: F) -> Result<Vec<R>, ParError>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.try_par_run(items.len(), |i| f(i, &items[i]))
    }

    /// Like [`Parallelism::try_par_map`] but re-raises a worker panic in
    /// the caller, mirroring the serial `iter().map()` contract. Use the
    /// `try_` variant where a typed error is wanted.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        match self.try_par_map(items, f) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Maps `f` over the items and reduces with `reduce` using the fixed
    /// chunked association described in the module docs: left-to-right
    /// within each chunk, then left-to-right across chunk partials.
    /// Returns `None` for an empty input.
    pub fn try_par_map_reduce<T, R, F, G>(
        &self,
        items: &[T],
        map: F,
        reduce: G,
    ) -> Result<Option<R>, ParError>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
        G: Fn(R, R) -> R + Sync,
    {
        let len = items.len();
        if len == 0 {
            return Ok(None);
        }
        let chunk = chunk_size(len);
        let n_chunks = len.div_ceil(chunk);
        let partials = self.run_chunks(n_chunks, |c| {
            let start = c * chunk;
            let end = (start + chunk).min(len);
            let mut acc = map(start, &items[start]);
            for (i, item) in items.iter().enumerate().take(end).skip(start + 1) {
                acc = reduce(acc, map(i, item));
            }
            acc
        })?;
        record_tasks(len);
        Ok(partials.into_iter().reduce(reduce))
    }

    /// Range variant of [`Parallelism::try_par_map_reduce`]: maps `f`
    /// over `0..len` and reduces with the *same* chunk shape and
    /// association (left-to-right within each chunk, then left-to-right
    /// across chunk partials). For a given `len` the reduction tree is
    /// identical to the slice variant's, so replacing
    /// `try_par_map_reduce(&(0..len).collect::<Vec<_>>(), …)` with this
    /// method changes no output bits — it only drops the index-vector
    /// allocation (the DP inner loop used to allocate one per state).
    pub fn try_par_reduce_range<R, F, G>(
        &self,
        len: usize,
        map: F,
        reduce: G,
    ) -> Result<Option<R>, ParError>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
        G: Fn(R, R) -> R + Sync,
    {
        if len == 0 {
            return Ok(None);
        }
        let chunk = chunk_size(len);
        let n_chunks = len.div_ceil(chunk);
        let partials = self.run_chunks(n_chunks, |c| {
            let start = c * chunk;
            let end = (start + chunk).min(len);
            let mut acc = map(start);
            for i in start + 1..end {
                acc = reduce(acc, map(i));
            }
            acc
        })?;
        record_tasks(len);
        Ok(partials.into_iter().reduce(reduce))
    }

    /// Executes `f` once per chunk index and returns the chunk results in
    /// chunk order. This is the scheduling core: workers claim chunk
    /// indices from a shared atomic counter; a captured panic aborts
    /// outstanding claims and surfaces as a typed error.
    fn run_chunks<R, F>(&self, n_chunks: usize, f: F) -> Result<Vec<R>, ParError>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if n_chunks == 0 {
            return Ok(Vec::new());
        }
        let workers = self.threads.get().min(n_chunks);
        let metrics = rsj_obs::metrics_enabled();
        if workers <= 1 {
            let started = Instant::now();
            let out = catch_unwind(AssertUnwindSafe(|| {
                (0..n_chunks).map(&f).collect::<Vec<R>>()
            }))
            .map_err(|payload| ParError::WorkerPanicked {
                message: panic_message(payload.as_ref()),
            });
            if metrics {
                let reg = rsj_obs::global_registry();
                reg.counter("rsj_par_serial_calls_total").inc();
                reg.counter("rsj_par_chunks_total").add(n_chunks as u64);
                reg.histogram("rsj_par_worker_busy_seconds")
                    .observe(started.elapsed().as_secs_f64());
            }
            return out;
        }

        let next_chunk = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let panic_msg: Mutex<Option<String>> = Mutex::new(None);
        let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n_chunks));
        let steals = AtomicUsize::new(0);
        let mut busy = vec![0.0f64; workers];

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for worker in 0..workers {
                let f = &f;
                let next_chunk = &next_chunk;
                let abort = &abort;
                let panic_msg = &panic_msg;
                let done = &done;
                let steals = &steals;
                handles.push(scope.spawn(move || {
                    let started = Instant::now();
                    loop {
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        let c = next_chunk.fetch_add(1, Ordering::Relaxed);
                        if c >= n_chunks {
                            break;
                        }
                        // Under a static round-robin deal chunk `c` would
                        // belong to worker `c % workers`; claiming someone
                        // else's share is the dynamic-balancing "steal".
                        if c % workers != worker {
                            steals.fetch_add(1, Ordering::Relaxed);
                        }
                        match catch_unwind(AssertUnwindSafe(|| f(c))) {
                            Ok(result) => {
                                done.lock().expect("result lock").push((c, result));
                            }
                            Err(payload) => {
                                let mut slot = panic_msg.lock().expect("panic lock");
                                slot.get_or_insert_with(|| panic_message(payload.as_ref()));
                                abort.store(true, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                    started.elapsed().as_secs_f64()
                }));
            }
            for (worker, handle) in handles.into_iter().enumerate() {
                // Workers never unwind (tasks run under catch_unwind), so
                // join only fails if the runtime itself is broken.
                busy[worker] = handle.join().expect("pool worker exited cleanly");
            }
        });

        if metrics {
            let reg = rsj_obs::global_registry();
            reg.counter("rsj_par_calls_total").inc();
            reg.counter("rsj_par_chunks_total").add(n_chunks as u64);
            reg.counter("rsj_par_steals_total")
                .add(steals.load(Ordering::Relaxed) as u64);
            let hist = reg.histogram("rsj_par_worker_busy_seconds");
            for seconds in &busy {
                hist.observe(*seconds);
            }
        }

        if let Some(message) = panic_msg.into_inner().expect("panic lock") {
            return Err(ParError::WorkerPanicked { message });
        }
        let mut per_chunk = done.into_inner().expect("result lock");
        per_chunk.sort_unstable_by_key(|(c, _)| *c);
        debug_assert_eq!(per_chunk.len(), n_chunks);
        Ok(per_chunk.into_iter().map(|(_, r)| r).collect())
    }
}

/// Shared task-count accounting for the public entry points.
fn record_tasks(len: usize) {
    if rsj_obs::metrics_enabled() {
        rsj_obs::global_registry()
            .counter("rsj_par_tasks_total")
            .add(len as u64);
    }
}
