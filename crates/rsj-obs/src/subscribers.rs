//! Ready-made [`Subscriber`] implementations: the leveled stderr logger
//! behind `RSJ_LOG`, a JSON-lines sink for machine-readable traces, and an
//! in-memory capture for tests.

use crate::level::Level;
use crate::trace::{Event, SpanRecord, Subscriber};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::Duration;

/// Leveled logger printing `[LEVEL target] span.path: message` lines to
/// stderr. This is what [`crate::init_from_env`] installs.
#[derive(Debug)]
pub struct StderrLogger {
    level: Level,
}

impl StderrLogger {
    /// A logger passing everything at `level` and more severe.
    pub fn new(level: Level) -> Self {
        Self { level }
    }

    fn format(event: &Event<'_>) -> String {
        let mut line = format!("[{} {}] ", event.level.tag(), event.target);
        if !event.spans.is_empty() {
            line.push_str(&event.spans.join(">"));
            line.push_str(": ");
        }
        line.push_str(event.message);
        line
    }
}

impl Subscriber for StderrLogger {
    fn max_level(&self) -> Level {
        self.level
    }

    fn on_event(&self, event: &Event<'_>) {
        eprintln!("{}", Self::format(event));
    }

    fn on_span_exit(&self, span: &SpanRecord<'_>, elapsed: Duration) {
        eprintln!(
            "[{} span] {}: {:.3?}",
            Level::Trace.tag(),
            span.spans.join(">"),
            elapsed
        );
    }
}

/// Writes one JSON object per line (events and span exits) to any writer —
/// the machine-readable twin of [`StderrLogger`].
///
/// Lines have the shape
/// `{"type":"event","level":"info","target":"…","spans":[…],"message":"…"}`
/// and
/// `{"type":"span","name":"…","spans":[…],"elapsed_secs":0.0012}`.
pub struct JsonLinesSink {
    level: Level,
    writer: Mutex<Box<dyn Write + Send>>,
}

impl JsonLinesSink {
    /// A sink writing to `writer` at `level`.
    pub fn new(level: Level, writer: Box<dyn Write + Send>) -> Self {
        Self {
            level,
            writer: Mutex::new(writer),
        }
    }

    /// A sink appending to the file at `path` (created if absent).
    pub fn to_file(level: Level, path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::new(level, Box::new(BufWriter::new(file))))
    }

    fn write_line(&self, value: impl serde::Serialize) {
        let Ok(line) = serde_json::to_string(&value) else {
            return;
        };
        let mut writer = self.writer.lock().expect("sink lock poisoned");
        // A full disk or closed pipe must not take the traced program
        // down; the line is dropped.
        let _ = writeln!(writer, "{line}");
        let _ = writer.flush();
    }
}

impl std::fmt::Debug for JsonLinesSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonLinesSink")
            .field("level", &self.level)
            .finish_non_exhaustive()
    }
}

impl Subscriber for JsonLinesSink {
    fn max_level(&self) -> Level {
        self.level
    }

    fn on_event(&self, event: &Event<'_>) {
        self.write_line(serde_json::json!({
            "type": "event",
            "level": event.level.as_str(),
            "target": event.target,
            "spans": event.spans,
            "message": event.message,
        }));
    }

    fn on_span_exit(&self, span: &SpanRecord<'_>, elapsed: Duration) {
        self.write_line(serde_json::json!({
            "type": "span",
            "name": span.name,
            "spans": span.spans,
            "elapsed_secs": elapsed.as_secs_f64(),
        }));
    }
}

/// Captures formatted events in memory — for asserting on log output in
/// tests without touching stderr.
#[derive(Debug)]
pub struct MemorySink {
    level: Level,
    events: Mutex<Vec<String>>,
    span_exits: Mutex<Vec<(String, Duration)>>,
}

impl MemorySink {
    /// A capture accepting everything at `level` and more severe.
    pub fn new(level: Level) -> Self {
        Self {
            level,
            events: Mutex::new(Vec::new()),
            span_exits: Mutex::new(Vec::new()),
        }
    }

    /// The formatted events captured so far, in order.
    pub fn events(&self) -> Vec<String> {
        self.events.lock().expect("sink lock poisoned").clone()
    }

    /// The span exits captured so far: `(span path, elapsed)`.
    pub fn span_exits(&self) -> Vec<(String, Duration)> {
        self.span_exits.lock().expect("sink lock poisoned").clone()
    }
}

impl Subscriber for MemorySink {
    fn max_level(&self) -> Level {
        self.level
    }

    fn on_event(&self, event: &Event<'_>) {
        self.events
            .lock()
            .expect("sink lock poisoned")
            .push(StderrLogger::format(event));
    }

    fn on_span_exit(&self, span: &SpanRecord<'_>, elapsed: Duration) {
        self.span_exits
            .lock()
            .expect("sink lock poisoned")
            .push((span.spans.join(">"), elapsed));
    }
}
