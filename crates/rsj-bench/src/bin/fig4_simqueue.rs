//! Figure 4 variant: NeuroHPC under the cost model fitted from the
//! simulated queue (cross-substrate robustness check).

use rsj_bench::scenarios::Fidelity;

fn main() -> std::io::Result<()> {
    rsj_obs::init_from_env();
    let fidelity = Fidelity::from_env();
    rsj_obs::info!("running fig4_simqueue at {fidelity:?} fidelity");
    rsj_bench::experiments::fig4_simqueue::emit(fidelity, rsj_bench::DEFAULT_SEED)?;
    Ok(())
}
